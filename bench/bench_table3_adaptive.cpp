// Table III — adaptive attack evaluation (paper §V).
//
// Each defense is attacked with the strongest attack tailored to it:
//   * depthwise-conv models -> low-frequency DCT-projected RP2 (Eq. 8, dim 16)
//   * TV / Tikhonov models  -> RP2 with the defender's regularizer added to
//                              the attacker loss (Eqs. 9-11)
// Paper shape: the 5x5 conv breaks (worst ASR 75%), Tik_hf degrades by ~30
// points, while TV stays capped around 20-25% — the truly robust variant.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Table III: adaptive attack evaluation", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);
  const int map_h = 32, map_w = 32;  // first-layer maps are image-sized (conv1 s1)

  struct Row {
    std::string label;
    std::string variant;
    eval::ConfigAdapter adapt;
  };
  const std::vector<Row> rows = {
      {"3x3 conv", "dw3",
       [](const attack::Rp2Config& c) { return attack::low_frequency_config(c, 16); }},
      {"5x5 conv", "dw5",
       [](const attack::Rp2Config& c) { return attack::low_frequency_config(c, 16); }},
      {"7x7 conv", "dw7",
       [](const attack::Rp2Config& c) { return attack::low_frequency_config(c, 16); }},
      {"TV (1e-4)", "tv1e-4",
       [](const attack::Rp2Config& c) { return attack::tv_aware_config(c); }},
      {"TV (1e-5)", "tv1e-5",
       [](const attack::Rp2Config& c) { return attack::tv_aware_config(c); }},
      {"Tik_hf", "tik_hf",
       [&](const attack::Rp2Config& c) {
         return attack::tik_hf_aware_config(c, defense::tik_hf_operator(map_h));
       }},
      {"Tik_pseudo", "tik_pseudo",
       [&](const attack::Rp2Config& c) {
         return attack::tik_pseudo_aware_config(c, defense::tik_pseudo_operator(map_h, map_w));
       }},
  };

  util::Table table({"Model", "Avg Success", "Worst Success", "L2 Dissimilarity"});
  for (const auto& row : rows) {
    nn::LisaCnn& model = zoo.get(row.variant);
    const auto sweep = eval::whitebox_sweep(model, zoo.test_accuracy(row.variant), stop_set,
                                            scale, row.adapt);
    table.add_row({row.label, util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    std::printf("  [done] %s\n", row.label.c_str());
  }
  std::printf("\n");
  bench::emit(table, "table3_adaptive.csv");
  std::printf("\nexpected shape (paper): the adaptive low-frequency attack hurts the 5x5\n"
              "conv badly; TV remains the most robust defense under adaptive adversaries.\n");
  return 0;
}
