// Table III — adaptive attack evaluation (paper §V).
//
// Each defense is attacked with the strongest attack tailored to it:
//   * depthwise-conv models -> low-frequency DCT-projected RP2 (Eq. 8, dim 16)
//   * TV / Tikhonov models  -> RP2 with the defender's regularizer added to
//                              the attacker loss (Eqs. 9-11)
//   * input-transform zoo   -> BPDA straight-through RP2 (Athalye et al.):
//                              squeeze / median / DCT-quantize variants are
//                              served through the engine's preprocess stage
//                              and attacked through it
// Paper shape: the 5x5 conv breaks (worst ASR 75%), Tik_hf degrades by ~30
// points, while TV stays capped around 20-25% — the truly robust variant.
// The input transforms are expected to fall to BPDA (their robustness is
// largely gradient masking).
#include "bench/bench_common.h"
#include "src/attack/adaptive.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Table III: adaptive attack evaluation", env.scale);
  const int map_h = 32, map_w = 32;  // first-layer maps are image-sized (conv1 s1)

  struct Row {
    std::string label;
    std::string variant;
    attack::Rp2Adapter adapt;
    bool input_transform = false;  // engine preprocess-stage variant vs trained zoo model
  };
  const std::vector<Row> rows = {
      {"3x3 conv", "dw3", attack::low_frequency_adapter(16)},
      {"5x5 conv", "dw5", attack::low_frequency_adapter(16)},
      {"7x7 conv", "dw7", attack::low_frequency_adapter(16)},
      {"TV (1e-4)", "tv1e-4", attack::tv_aware_adapter()},
      {"TV (1e-5)", "tv1e-5", attack::tv_aware_adapter()},
      {"Tik_hf", "tik_hf", attack::tik_hf_aware_adapter(defense::tik_hf_operator(map_h))},
      {"Tik_pseudo", "tik_pseudo",
       attack::tik_pseudo_aware_adapter(defense::tik_pseudo_operator(map_h, map_w))},
      // Input-transform zoo, attacked with BPDA straight-through gradients
      // (the transform itself rides in the victim handle; the adapter just
      // pins the bpda flag on, documenting the adaptive protocol).
      {"Squeeze 4-bit (BPDA)", "squeeze4", attack::bpda_adapter(), /*input_transform=*/true},
      {"Median 3x3 (BPDA)", "median3", attack::bpda_adapter(), /*input_transform=*/true},
      {"DCT quant q50 (BPDA)", "dctq50", attack::bpda_adapter(), /*input_transform=*/true},
  };

  // Every victim's adaptive sweep rides one cross-victim scheduler: the
  // per-target crafting jobs of all the defenses run concurrently across
  // their replica shards instead of finishing one victim before the next.
  // Results are bitwise identical to per-victim AdaptiveSweep::run() calls.
  eval::SweepScheduler scheduler(env.harness);
  std::vector<std::size_t> jobs;
  for (const auto& row : rows) {
    if (row.input_transform) {
      env.add_transform_victim(row.variant);
    } else {
      env.add_zoo_victim(row.variant);
    }
    jobs.push_back(scheduler.add(eval::AdaptiveSweep{env.scale, row.adapt}, row.variant,
                                 env.victim_accuracy(row.variant), env.stop_set));
  }
  scheduler.run();

  util::Table table({"Model", "Avg Success", "Worst Success", "L2 Dissimilarity"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& sweep = scheduler.sweep_result(jobs[i]);
    table.add_row({rows[i].label, util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    bench::done(rows[i].label);
  }
  std::printf("\n");
  bench::emit(table, "table3_adaptive.csv");
  bench::print_sweep_progress(scheduler);
  bench::print_serving_stats(env.harness);
  std::printf("\nexpected shape (paper): the adaptive low-frequency attack hurts the 5x5\n"
              "conv badly; TV remains the most robust defense under adaptive adversaries;\n"
              "the input-transform zoo (squeeze/median/dctq) falls to BPDA, which sees\n"
              "through the non-differentiable preprocess stage with identity gradients.\n");
  return 0;
}
