// Figs. 5 & 6 (supplementary) — per-target scatter of attack success rate vs
// L2 dissimilarity. Fig. 5 plots the depthwise-conv and TV variants; Fig. 6
// the Tikhonov variants and Gaussian-augmentation baselines. Paper shape:
// TV / Tikhonov points cluster low-and-right (low ASR at higher perturbation
// cost) with less variance across targets than the conv variants.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Figs. 5/6: per-target ASR vs L2 dissimilarity", env.scale);

  const std::vector<std::pair<std::string, std::string>> fig5 = {
      {"conv3x3", "dw3"}, {"conv5x5", "dw5"}, {"conv7x7", "dw7"},
      {"TV 1e-4", "tv1e-4"}, {"TV 1e-5", "tv1e-5"}};
  const std::vector<std::pair<std::string, std::string>> fig6 = {
      {"Tik_hf", "tik_hf"},     {"Tik_pseudo", "tik_pseudo"}, {"Gaussian 0.1", "gauss0.1"},
      {"Gaussian 0.2", "gauss0.2"}, {"Gaussian 0.3", "gauss0.3"}};

  // All ten victims ride one cross-victim scheduler, so every defense's
  // per-target crafting runs concurrently across its replica shards (bitwise
  // identical to sweeping the victims one at a time).
  const eval::WhiteboxSweep protocol{env.scale};
  eval::SweepScheduler scheduler(env.harness);
  std::vector<std::pair<std::string, std::size_t>> jobs;  // series label -> job id
  auto enqueue = [&](const std::vector<std::pair<std::string, std::string>>& series) {
    for (const auto& [label, variant] : series) {
      env.add_zoo_victim(variant);
      jobs.emplace_back(label, scheduler.add(protocol, variant,
                                             env.victim_accuracy(variant), env.stop_set));
    }
  };
  enqueue(fig5);
  enqueue(fig6);
  scheduler.run();

  std::size_t next_job = 0;
  auto emit_figure = [&](const std::vector<std::pair<std::string, std::string>>& series,
                         const std::string& figure, const std::string& csv) {
    util::Table table({"Series", "Target", "L2 Dissimilarity", "Attack Success Rate"});
    for (std::size_t i = 0; i < series.size(); ++i, ++next_job) {
      const auto& [label, job] = jobs[next_job];
      for (const auto& point : scheduler.sweep_result(job).per_target) {
        table.add_row({label, std::to_string(point.target),
                       util::Table::num(point.l2_dissimilarity),
                       util::Table::pct(point.success_rate)});
      }
      bench::done(figure + " / " + label);
    }
    std::printf("\n");
    bench::emit(table, csv);
  };

  emit_figure(fig5, "Fig.5", "fig5_asr_vs_l2.csv");
  emit_figure(fig6, "Fig.6", "fig6_asr_vs_l2.csv");
  bench::print_sweep_progress(scheduler);
  bench::print_serving_stats(env.harness);
  std::printf("\nplot each CSV as a scatter (x = L2 dissimilarity, y = ASR); lower-right\n"
              "is better for the defender.\n");
  return 0;
}
