// Figs. 5 & 6 (supplementary) — per-target scatter of attack success rate vs
// L2 dissimilarity. Fig. 5 plots the depthwise-conv and TV variants; Fig. 6
// the Tikhonov variants and Gaussian-augmentation baselines. Paper shape:
// TV / Tikhonov points cluster low-and-right (low ASR at higher perturbation
// cost) with less variance across targets than the conv variants.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Figs. 5/6: per-target ASR vs L2 dissimilarity", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  const std::vector<std::pair<std::string, std::string>> fig5 = {
      {"conv3x3", "dw3"}, {"conv5x5", "dw5"}, {"conv7x7", "dw7"},
      {"TV 1e-4", "tv1e-4"}, {"TV 1e-5", "tv1e-5"}};
  const std::vector<std::pair<std::string, std::string>> fig6 = {
      {"Tik_hf", "tik_hf"},     {"Tik_pseudo", "tik_pseudo"}, {"Gaussian 0.1", "gauss0.1"},
      {"Gaussian 0.2", "gauss0.2"}, {"Gaussian 0.3", "gauss0.3"}};

  auto run = [&](const std::vector<std::pair<std::string, std::string>>& series,
                 const std::string& figure, const std::string& csv) {
    util::Table table({"Series", "Target", "L2 Dissimilarity", "Attack Success Rate"});
    for (const auto& [label, variant] : series) {
      nn::LisaCnn& model = zoo.get(variant);
      const auto sweep =
          eval::whitebox_sweep(model, zoo.test_accuracy(variant), stop_set, scale);
      for (const auto& point : sweep.per_target) {
        table.add_row({label, std::to_string(point.target),
                       util::Table::num(point.l2_dissimilarity),
                       util::Table::pct(point.success_rate)});
      }
      std::printf("  [done] %s / %s\n", figure.c_str(), label.c_str());
    }
    std::printf("\n");
    bench::emit(table, csv);
  };

  run(fig5, "Fig.5", "fig5_asr_vs_l2.csv");
  run(fig6, "Fig.6", "fig6_asr_vs_l2.csv");
  std::printf("\nplot each CSV as a scatter (x = L2 dissimilarity, y = ASR); lower-right\n"
              "is better for the defender.\n");
  return 0;
}
