// Table V (supplementary) — adversarial training vs adaptive attacks.
//
// The adaptive attacks of Table III (TV-aware, Tik_hf-aware, Tik_pseudo-aware
// RP2) are run against the PGD-adversarially-trained classifier. Paper shape:
// adversarial training beats the proposed defenses except TV — reinforcing
// that no single defense dominates across threat models.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Table V: adversarial training under adaptive attacks", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);
  const int map_h = 32, map_w = 32;

  nn::LisaCnn& advtrain = zoo.get("advtrain");
  const double legit = zoo.test_accuracy("advtrain");
  std::printf("adversarially trained model: legit accuracy %s\n\n",
              util::Table::pct(legit).c_str());

  struct Row {
    std::string label;
    eval::ConfigAdapter adapt;
  };
  const std::vector<Row> rows = {
      {"TV adaptive attack",
       [](const attack::Rp2Config& c) { return attack::tv_aware_config(c); }},
      {"Tik_hf attack",
       [&](const attack::Rp2Config& c) {
         return attack::tik_hf_aware_config(c, defense::tik_hf_operator(map_h));
       }},
      {"Tik_pseudo attack",
       [&](const attack::Rp2Config& c) {
         return attack::tik_pseudo_aware_config(c, defense::tik_pseudo_operator(map_h, map_w));
       }},
  };

  util::Table table({"Attack", "Avg Success", "Worst Success", "L2 Dissimilarity"});
  for (const auto& row : rows) {
    const auto sweep = eval::whitebox_sweep(advtrain, legit, stop_set, scale, row.adapt);
    table.add_row({row.label, util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    std::printf("  [done] %s\n", row.label.c_str());
  }
  std::printf("\n");
  bench::emit(table, "table5_advtrain.csv");
  return 0;
}
