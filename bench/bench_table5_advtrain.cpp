// Table V (supplementary) — adversarial training vs adaptive attacks.
//
// The adaptive attacks of Table III (TV-aware, Tik_hf-aware, Tik_pseudo-aware
// RP2) are run against the PGD-adversarially-trained classifier. Paper shape:
// adversarial training beats the proposed defenses except TV — reinforcing
// that no single defense dominates across threat models.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env("advtrain");
  bench::banner("Table V: adversarial training under adaptive attacks", env.scale);
  const int map_h = 32, map_w = 32;

  env.add_zoo_victim("advtrain");
  const double legit = env.victim_accuracy("advtrain");
  std::printf("adversarially trained model: legit accuracy %s\n\n",
              util::Table::pct(legit).c_str());

  struct Row {
    std::string label;
    attack::Rp2Adapter adapt;
  };
  const std::vector<Row> rows = {
      {"TV adaptive attack", attack::tv_aware_adapter()},
      {"Tik_hf attack", attack::tik_hf_aware_adapter(defense::tik_hf_operator(map_h))},
      {"Tik_pseudo attack",
       attack::tik_pseudo_aware_adapter(defense::tik_pseudo_operator(map_h, map_w))},
  };

  util::Table table({"Attack", "Avg Success", "Worst Success", "L2 Dissimilarity"});
  for (const auto& row : rows) {
    const auto sweep = eval::AdaptiveSweep{env.scale, row.adapt}.run(env.harness, "advtrain",
                                                                     legit, env.stop_set);
    table.add_row({row.label, util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    bench::done(row.label);
  }
  std::printf("\n");
  bench::emit(table, "table5_advtrain.csv");
  bench::print_serving_stats(env.harness);
  return 0;
}
