// Shared scaffolding for the table/figure bench binaries.
//
// Every attack-evaluation bench builds an EvalEnv: the model zoo, the
// stop-sign eval set at the active scale, and an engine-backed eval::Harness.
// Victims are registered as engine variants and every clean/adversarial
// classification batch rides the replica-sharded serving path — results are
// bitwise identical for any BLURNET_EVAL_REPLICAS value.
#pragma once

#include <cstdio>
#include <string>

#include "src/defense/model_zoo.h"
#include "src/eval/harness.h"
#include "src/util/cpu_caps.h"
#include "src/util/env.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace blurnet::bench {

/// Serving replicas per victim variant in the bench harnesses
/// (BLURNET_EVAL_REPLICAS, default 1). Per-image predictions and every table
/// number are bitwise identical for any value; higher counts fan the
/// per-target RP2 crafting runs out in parallel (and, through
/// eval::SweepScheduler, across victims).
inline int eval_replicas() { return util::env_int("BLURNET_EVAL_REPLICAS", 1); }

// The EOT pose knob (BLURNET_EOT_POSES, default 1 — the historical
// single-pose path) is read and validated once by
// eval::ExperimentScale::from_env() and lives in EvalEnv's scale
// (scale.eot_poses): paper_rp2_config() feeds it to every RP2 protocol and
// table 4 applies it to PGD. Unlike the replica knob it *changes the
// adversary* (K poses per gradient step is a strictly stronger,
// paper-faithful attack), so table numbers are only comparable at equal
// pose counts.

/// Zoo + eval set + engine-backed harness, the boilerplate previously
/// copy-pasted across the bench_table* binaries.
struct EvalEnv {
  eval::ExperimentScale scale;
  defense::ModelZoo zoo;
  data::StopSignSet stop_set;
  eval::Harness harness;

  /// `base_variant` is the zoo model adopted as the engine's base weights
  /// (trained or loaded from cache on construction).
  explicit EvalEnv(const std::string& base_variant = "baseline")
      : scale(eval::ExperimentScale::from_env()),
        zoo(defense::default_zoo_config()),
        stop_set(data::stop_sign_eval_set(scale.eval_images)),
        harness(zoo.get(base_variant), eval_replicas()),
        base_variant_(base_variant) {}

  /// Train (or load) zoo variant `zoo_name` and register it as a victim
  /// named `victim` (defaults to the zoo name). The engine's own base model
  /// is served through an alias of the "base" shard instead of deep-cloning
  /// a second, identical replica set.
  void add_zoo_victim(const std::string& zoo_name, const eval::VictimSpec& spec = {},
                      const std::string& victim = "") {
    const std::string name = victim.empty() ? zoo_name : victim;
    if (zoo_name == base_variant_ && spec.replicas == 0) {
      harness.engine().alias_variant(name, serve::kBaseVariant);
      harness.adopt_variant(name, spec);
    } else {
      harness.add_victim(name, zoo.get(zoo_name), spec);
    }
  }

  /// Register an input-transform defense (a defense::ModelZoo
  /// transform-variant name: squeeze4, median3, dctq50, ...) over the
  /// engine's base weights as victim `victim` (defaults to the zoo name).
  /// The variant executes the engine's preprocess→forward pipeline, and its
  /// victim_handle() carries the transform so the adaptive protocols craft
  /// with BPDA straight-through gradients.
  void add_transform_victim(const std::string& zoo_name, const eval::VictimSpec& spec = {},
                            const std::string& victim = "") {
    const std::string name = victim.empty() ? zoo_name : victim;
    harness.add_transform_victim(name, defense::ModelZoo::transform_spec(zoo_name), spec);
  }

  /// Clean test-set accuracy of a victim through the batched serving path.
  double victim_accuracy(const std::string& victim) {
    return harness.dataset_accuracy(victim, zoo.dataset().test);
  }

 private:
  std::string base_variant_;
};

/// Print the standard bench banner with the active scale and the SIMD
/// kernel target every dispatched hot loop will run on (resolving it here
/// also surfaces a bad BLURNET_FORCE_KERNEL before any training starts).
inline void banner(const std::string& title, const eval::ExperimentScale& scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("scale: %d stop-sign images, %d targets, %d RP2 iterations, "
              "%d EOT pose%s/step (set BLURNET_FAST=1 / BLURNET_PAPER=1 / "
              "BLURNET_EOT_POSES=K to change)\n",
              scale.eval_images, scale.num_targets, scale.rp2_iterations, scale.eot_poses,
              scale.eot_poses == 1 ? "" : "s");
  std::printf("kernel: %s (set BLURNET_FORCE_KERNEL=scalar|avx2|neon to override)\n\n",
              util::kernel_target_name(util::active_kernel_target()));
}

/// Progress line after each completed protocol row.
inline void done(const std::string& label) { std::printf("  [done] %s\n", label.c_str()); }

/// Print a table and persist the CSV next to it.
inline void emit(const util::Table& table, const std::string& csv_name) {
  std::printf("%s\n", table.to_string().c_str());
  eval::write_results_file(csv_name, table.to_csv());
  std::printf("csv written to %s/%s\n", eval::results_dir().c_str(), csv_name.c_str());
}

/// Scheduler footer: per-victim crafting counters after an
/// eval::SweepScheduler run (crafting tasks completed, concurrent lanes).
inline void print_sweep_progress(const eval::SweepScheduler& scheduler) {
  std::printf("crafting tasks per victim (name=done/total on L lanes):");
  for (const auto& entry : scheduler.progress()) {
    std::printf(" %s=%d/%d@L%d", entry.victim.c_str(), entry.targets_done,
                entry.targets_total, entry.lanes);
  }
  std::printf("\n");
}

/// Serving-stats footer: how many images each victim variant classified
/// during the protocol (exact sums of the per-replica counters), with the
/// variant's own replica count — victims may be sharded differently. Also
/// restates the kernel target so a log tail identifies the numerics.
inline void print_serving_stats(const eval::Harness& harness) {
  std::printf("served images per victim variant (name=images/replicas):");
  for (const auto& name : harness.victim_names()) {
    std::printf(" %s=%lld/r%d", name.c_str(),
                static_cast<long long>(harness.images_served(name)),
                harness.replica_count(name));
  }
  std::printf(" [kernel=%s]\n",
              util::kernel_target_name(util::active_kernel_target()));
}

}  // namespace blurnet::bench
