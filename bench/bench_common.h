// Shared scaffolding for the table/figure bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "src/eval/experiments.h"
#include "src/serve/engine.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace blurnet::bench {

/// Clean accuracy over a dataset, classified through the serving path (one
/// batched forward pass per max_batch slice) via the named engine variant.
inline double engine_accuracy(const serve::InferenceEngine& engine,
                              const data::Dataset& data,
                              const std::string& variant = serve::kBaseVariant) {
  if (data.size() == 0) return 0.0;
  const auto predictions = engine.classify(data.images, serve::Options{variant});
  return serve::accuracy(predictions, data.labels);
}

/// Print the standard bench banner with the active scale.
inline void banner(const std::string& title, const eval::ExperimentScale& scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("scale: %d stop-sign images, %d targets, %d RP2 iterations "
              "(set BLURNET_FAST=1 / BLURNET_PAPER=1 to change)\n\n",
              scale.eval_images, scale.num_targets, scale.rp2_iterations);
}

/// Print a table and persist the CSV next to it.
inline void emit(const util::Table& table, const std::string& csv_name) {
  std::printf("%s\n", table.to_string().c_str());
  eval::write_results_file(csv_name, table.to_csv());
  std::printf("csv written to %s/%s\n", eval::results_dir().c_str(), csv_name.c_str());
}

}  // namespace blurnet::bench
