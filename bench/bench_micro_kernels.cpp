// Micro-benchmarks (google-benchmark) for the computational kernels the
// experiments lean on: convolution forward/backward, FFT/DCT transforms,
// depthwise blur, TV penalty, and a full RP2 attack iteration.
#include <benchmark/benchmark.h>

#include "src/autograd/ops.h"
#include "src/nn/lisa_cnn.h"
#include "src/signal/dct.h"
#include "src/signal/fft.h"
#include "src/signal/kernels.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

using namespace blurnet;

namespace {

tensor::Tensor random_nchw(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                           std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return tensor::Tensor::randn(tensor::Shape::nchw(n, c, h, w), rng);
}

void BM_Conv2dForward(benchmark::State& state) {
  const auto batch = state.range(0);
  const auto x = autograd::Variable::constant(random_nchw(batch, 3, 32, 32));
  util::Rng rng(2);
  const auto w = autograd::Variable::constant(
      tensor::Tensor::randn(tensor::Shape{8, 3, 5, 5}, rng, 0.0f, 0.1f));
  const auto b = autograd::Variable::constant(tensor::Tensor::zeros(tensor::Shape::vec(8)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::conv2d(x, w, b, 1, 2).value().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(8)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const auto batch = state.range(0);
  util::Rng rng(3);
  for (auto _ : state) {
    auto x = autograd::Variable::leaf(random_nchw(batch, 3, 32, 32), true);
    auto w = autograd::Variable::leaf(
        tensor::Tensor::randn(tensor::Shape{8, 3, 5, 5}, rng, 0.0f, 0.1f), true);
    auto b = autograd::Variable::leaf(tensor::Tensor::zeros(tensor::Shape::vec(8)), true);
    auto loss = autograd::mean(autograd::conv2d(x, w, b, 1, 2));
    autograd::backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dBackward)->Arg(1)->Arg(8);

void BM_DepthwiseBlur(benchmark::State& state) {
  const auto kernel_size = state.range(0);
  const auto x = random_nchw(8, 8, 32, 32);
  const auto kernel = signal::make_blur_kernel(static_cast<int>(kernel_size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::filter2d_depthwise(x, kernel).data());
  }
}
BENCHMARK(BM_DepthwiseBlur)->Arg(3)->Arg(5)->Arg(7);

void BM_Fft2d(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  std::vector<double> plane(static_cast<std::size_t>(side) * side);
  util::Rng rng(4);
  for (auto& v : plane) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fft2d_real(plane, side, side));
  }
}
BENCHMARK(BM_Fft2d)->Arg(16)->Arg(32)->Arg(33)->Arg(64);

void BM_Dct2d(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  std::vector<double> plane(static_cast<std::size_t>(side) * side);
  util::Rng rng(5);
  for (auto& v : plane) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::dct2d(plane, side, side));
  }
}
BENCHMARK(BM_Dct2d)->Arg(16)->Arg(32);

void BM_TvLoss(benchmark::State& state) {
  auto x = autograd::Variable::leaf(random_nchw(8, 8, 32, 32), true);
  for (auto _ : state) {
    auto loss = autograd::tv_loss(x);
    autograd::backward(loss);
    x.zero_grad();
    benchmark::DoNotOptimize(loss.scalar_value());
  }
}
BENCHMARK(BM_TvLoss);

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng(6);
  const auto a = tensor::Tensor::randn(tensor::Shape::mat(n, n), rng);
  const auto b = tensor::Tensor::randn(tensor::Shape::mat(n, n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256);

void BM_LisaCnnInference(benchmark::State& state) {
  nn::LisaCnnConfig config;
  config.conv1_filters = 8;
  config.conv2_filters = 16;
  config.conv3_filters = 32;
  const nn::LisaCnn model(config);
  const auto x = random_nchw(state.range(0), 3, 32, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.logits(x).data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LisaCnnInference)->Arg(1)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
