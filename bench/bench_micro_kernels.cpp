// Micro-benchmarks (google-benchmark) for the computational kernels the
// experiments lean on: convolution forward/backward, FFT/DCT transforms,
// depthwise blur, the input-transform defense kernels, TV penalty, the
// persistent-pool parallel runtime, and the batched inference engine.
#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "src/attack/eot.h"
#include "src/attack/masks.h"
#include "src/attack/rp2.h"
#include "src/autograd/ops.h"
#include "src/data/dataset.h"
#include "src/defense/input_transform.h"
#include "src/linalg/gemm.h"
#include "src/nn/lisa_cnn.h"
#include "src/serve/engine.h"
#include "src/signal/dct.h"
#include "src/signal/fft.h"
#include "src/signal/kernels.h"
#include "src/tensor/ops.h"
#include "src/util/cpu_caps.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

using namespace blurnet;

namespace {

tensor::Tensor random_nchw(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                           std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return tensor::Tensor::randn(tensor::Shape::nchw(n, c, h, w), rng);
}

void BM_Conv2dForward(benchmark::State& state) {
  const auto batch = state.range(0);
  const auto x = autograd::Variable::constant(random_nchw(batch, 3, 32, 32));
  util::Rng rng(2);
  const auto w = autograd::Variable::constant(
      tensor::Tensor::randn(tensor::Shape{8, 3, 5, 5}, rng, 0.0f, 0.1f));
  const auto b = autograd::Variable::constant(tensor::Tensor::zeros(tensor::Shape::vec(8)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::conv2d(x, w, b, 1, 2).value().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(8)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  const auto batch = state.range(0);
  util::Rng rng(3);
  for (auto _ : state) {
    auto x = autograd::Variable::leaf(random_nchw(batch, 3, 32, 32), true);
    auto w = autograd::Variable::leaf(
        tensor::Tensor::randn(tensor::Shape{8, 3, 5, 5}, rng, 0.0f, 0.1f), true);
    auto b = autograd::Variable::leaf(tensor::Tensor::zeros(tensor::Shape::vec(8)), true);
    auto loss = autograd::mean(autograd::conv2d(x, w, b, 1, 2));
    autograd::backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dBackward)->Arg(1)->Arg(8);

void BM_DepthwiseBlur(benchmark::State& state) {
  const auto kernel_size = state.range(0);
  const auto x = random_nchw(8, 8, 32, 32);
  const auto kernel = signal::make_blur_kernel(static_cast<int>(kernel_size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::filter2d_depthwise(x, kernel).data());
  }
}
BENCHMARK(BM_DepthwiseBlur)->Arg(3)->Arg(5)->Arg(7);

// Many small planes, repeated: the workload that exposed the per-call
// thread-spawn overhead of the seed runtime. The parallel region is tiny, so
// with the worker count pinned above 1 the cost used to be dominated by
// std::thread creation; the persistent pool turns it into a wakeup.
void BM_DepthwiseBlurManySmallPlanes(benchmark::State& state) {
  util::set_parallel_workers(static_cast<int>(state.range(0)));
  const auto x = random_nchw(64, 16, 16, 16);
  const auto kernel = signal::make_blur_kernel(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::filter2d_depthwise(x, kernel).data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 16);
  util::reset_parallel_workers();
}
BENCHMARK(BM_DepthwiseBlurManySmallPlanes)->Arg(1)->Arg(2)->Arg(4);

// Pure parallel-region overhead: a near-empty body over a small range, so the
// timing is the runtime's dispatch cost rather than useful work.
void BM_ParallelForDispatch(benchmark::State& state) {
  util::set_parallel_workers(static_cast<int>(state.range(0)));
  std::vector<float> sink(1024, 1.0f);
  for (auto _ : state) {
    util::parallel_for(1024, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) sink[static_cast<std::size_t>(i)] += 1.0f;
    }, /*min_chunk=*/64);
    benchmark::DoNotOptimize(sink.data());
  }
  util::reset_parallel_workers();
}
BENCHMARK(BM_ParallelForDispatch)->Arg(2)->Arg(4);

// The seed runtime's strategy, kept here as the reference point: spawn and
// join fresh std::threads for every parallel region. Compare against
// BM_ParallelForDispatch at the same worker count to see what the persistent
// pool buys on dispatch-bound workloads.
void spawn_per_call_parallel_for(std::int64_t n, int workers,
                                 const std::function<void(std::int64_t, std::int64_t)>& fn,
                                 std::int64_t min_chunk) {
  const int chunks =
      static_cast<int>(std::min<std::int64_t>(workers, (n + min_chunk - 1) / min_chunk));
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    const std::int64_t begin = c * chunk;
    const std::int64_t end = std::min<std::int64_t>(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : threads) t.join();
}

void BM_ParallelForDispatchSpawnBaseline(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::vector<float> sink(1024, 1.0f);
  for (auto _ : state) {
    spawn_per_call_parallel_for(1024, workers, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) sink[static_cast<std::size_t>(i)] += 1.0f;
    }, /*min_chunk=*/64);
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_ParallelForDispatchSpawnBaseline)->Arg(2)->Arg(4);

void BM_DepthwiseBlurManySmallPlanesSpawnBaseline(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto x = random_nchw(64, 16, 16, 16);
  const auto kernel = signal::make_blur_kernel(3);
  const std::int64_t planes = 64 * 16, side = 16, hw = side * side;
  tensor::Tensor out(x.shape());
  // Same per-plane arithmetic as filter_plane's interior, dispatched the seed
  // way (fresh threads per call) so only the dispatch strategy differs from
  // BM_DepthwiseBlurManySmallPlanes.
  const float* taps = kernel.data();
  for (auto _ : state) {
    spawn_per_call_parallel_for(planes, workers, [&](std::int64_t p0, std::int64_t p1) {
      for (std::int64_t p = p0; p < p1; ++p) {
        const float* src = x.data() + p * hw;
        float* dst = out.data() + p * hw;
        for (std::int64_t y = 0; y < side; ++y) {
          for (std::int64_t xx = 0; xx < side; ++xx) {
            double acc = 0.0;
            for (int fy = 0; fy < 3; ++fy) {
              const std::int64_t sy = y + fy - 1;
              if (sy < 0 || sy >= side) continue;
              for (int fx = 0; fx < 3; ++fx) {
                const std::int64_t sx = xx + fx - 1;
                if (sx < 0 || sx >= side) continue;
                acc += static_cast<double>(taps[fy * 3 + fx]) * src[sy * side + sx];
              }
            }
            dst[y * side + xx] = static_cast<float>(acc);
          }
        }
      }
    }, /*min_chunk=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * planes);
}
BENCHMARK(BM_DepthwiseBlurManySmallPlanesSpawnBaseline)->Arg(1)->Arg(2)->Arg(4);

// ---- pose-batched EOT: the attack-side batching -----------------------------
// BM_AffineWarpBatch: forward + backward of the per-sample-transform warp on
// an [N,3,32,32] batch — the op the EOT pipeline leans on. The arg is the
// row count n*K of the tiled pose batch.
void BM_AffineWarpBatch(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  attack::EotSampler sampler(11, static_cast<int>(rows), attack::EotPoseRange{});
  const auto transforms = sampler.sample_step(32, 32);
  const auto base = random_nchw(rows, 3, 32, 32, 12);
  for (auto _ : state) {
    auto x = autograd::Variable::leaf(base.clone(), /*requires_grad=*/true);
    auto loss = autograd::sum(autograd::affine_warp(x, transforms));
    autograd::backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AffineWarpBatch)->Arg(1)->Arg(8)->Arg(32);

// BM_Rp2EotPoses: whole RP2 crafting iterations at K poses per step. The
// per-iteration graph forwards an [n*K] batch, so the K sweep shows how the
// pose-batched gradient side amortizes over the packed GEMM microkernel
// (items = image×pose pairs forwarded; per-pair throughput should *rise*
// with K while wall time per iteration rises sublinearly).
void BM_Rp2EotPoses(benchmark::State& state) {
  const int poses = static_cast<int>(state.range(0));
  nn::LisaCnnConfig config;
  config.conv1_filters = 8;
  config.conv2_filters = 16;
  config.conv3_filters = 32;
  const nn::LisaCnn model(config);
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = attack::sticker_mask(stop_set.masks);
  attack::Rp2Config rp2;
  rp2.iterations = 4;
  rp2.target_class = 5;
  rp2.eot_poses = poses;
  for (auto _ : state) {
    const auto result = attack::rp2_attack(model, stop_set.images, sticker, rp2);
    benchmark::DoNotOptimize(result.final_loss);
  }
  state.SetItemsProcessed(state.iterations() * rp2.iterations * stop_set.images.dim(0) *
                          poses);
}
BENCHMARK(BM_Rp2EotPoses)->Arg(1)->Arg(4)->Arg(16);

// ---- input-transform defenses: the engine's preprocess stage ----------------
// One [8,3,32,32] batch through each stateless transform kernel — the
// per-batch cost a transform-wrapped variant adds ahead of its forward pass.
void BM_InputTransformSqueeze(benchmark::State& state) {
  const auto x = random_nchw(8, 3, 32, 32, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(defense::bit_depth_squeeze(x, 4).data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_InputTransformSqueeze);

void BM_InputTransformMedian(benchmark::State& state) {
  const auto kernel = static_cast<int>(state.range(0));
  const auto x = random_nchw(8, 3, 32, 32, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(defense::median_filter_nchw(x, kernel).data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_InputTransformMedian)->Arg(3)->Arg(5);

void BM_InputTransformDctQuant(benchmark::State& state) {
  const auto x = random_nchw(8, 3, 32, 32, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(defense::dct_quantize_nchw(x, 50).data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_InputTransformDctQuant);

void BM_Fft2d(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  std::vector<double> plane(static_cast<std::size_t>(side) * side);
  util::Rng rng(4);
  for (auto& v : plane) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fft2d_real(plane, side, side));
  }
}
BENCHMARK(BM_Fft2d)->Arg(16)->Arg(32)->Arg(33)->Arg(64);

void BM_Dct2d(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  std::vector<double> plane(static_cast<std::size_t>(side) * side);
  util::Rng rng(5);
  for (auto& v : plane) v = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::dct2d(plane, side, side));
  }
}
BENCHMARK(BM_Dct2d)->Arg(16)->Arg(32);

void BM_TvLoss(benchmark::State& state) {
  auto x = autograd::Variable::leaf(random_nchw(8, 8, 32, 32), true);
  for (auto _ : state) {
    auto loss = autograd::tv_loss(x);
    autograd::backward(loss);
    x.zero_grad();
    benchmark::DoNotOptimize(loss.scalar_value());
  }
}
BENCHMARK(BM_TvLoss);

// ---- GEMM: packed microkernel vs the seed's naive ikj loop ------------------
// Args are {m, k, n}. The first three shapes are the im2col GEMMs of the
// LISA-CNN conv layers at 32x32 (filters x patch x out-pixels); the last is a
// square cache-unfriendly size. BM_GemmNaiveIkj reproduces the loop the
// microkernel replaced (minus its NaN-dropping zero-skip), so the ratio of
// the two is the speedup reported in the README perf section. Both sides run
// with the worker count pinned to 1: the ratio isolates kernel quality
// (packing, blocking, register tiling) from thread parallelism, and matches
// how the conv GEMMs actually run — nested inline under the batch
// parallel_for. The end-to-end benches (BM_Conv2d*, BM_Engine*) capture the
// threaded picture.
void gemm_bench_shapes(benchmark::internal::Benchmark* b) {
  b->Args({8, 75, 1024})    // conv1: 8 filters, 3x5x5 patch, 32x32 out
      ->Args({16, 200, 256})  // conv2: 16 filters, 8x5x5 patch, 16x16 out
      ->Args({32, 400, 64})   // conv3: 32 filters, 16x5x5 patch, 8x8 out
      ->Args({256, 256, 256});
}

void BM_GemmMicrokernel(benchmark::State& state) {
  util::set_parallel_workers(1);
  const std::int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  util::Rng rng(7);
  const auto a = tensor::Tensor::randn(tensor::Shape::mat(m, k), rng);
  const auto b = tensor::Tensor::randn(tensor::Shape::mat(k, n), rng);
  tensor::Tensor c(tensor::Shape::mat(m, n));
  for (auto _ : state) {
    linalg::sgemm_nn(m, n, k, a.data(), b.data(), c.data(), /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
  util::reset_parallel_workers();
}
BENCHMARK(BM_GemmMicrokernel)->Apply(gemm_bench_shapes);

void BM_GemmNaiveIkj(benchmark::State& state) {
  const std::int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  util::Rng rng(7);
  const auto a = tensor::Tensor::randn(tensor::Shape::mat(m, k), rng);
  const auto b = tensor::Tensor::randn(tensor::Shape::mat(k, n), rng);
  tensor::Tensor c(tensor::Shape::mat(m, n));
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (auto _ : state) {
    std::fill(pc, pc + m * n, 0.0f);
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aik = pa[i * k + kk];
        const float* brow = pb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    benchmark::DoNotOptimize(pc);
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_GemmNaiveIkj)->Apply(gemm_bench_shapes);

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng(6);
  const auto a = tensor::Tensor::randn(tensor::Shape::mat(n, n), rng);
  const auto b = tensor::Tensor::randn(tensor::Shape::mat(n, n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256);

void BM_LisaCnnInference(benchmark::State& state) {
  nn::LisaCnnConfig config;
  config.conv1_filters = 8;
  config.conv2_filters = 16;
  config.conv3_filters = 32;
  const nn::LisaCnn model(config);
  const auto x = random_nchw(state.range(0), 3, 32, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.logits(x).data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LisaCnnInference)->Arg(1)->Arg(16);

serve::EngineConfig bench_engine_config() {
  serve::EngineConfig config;
  config.model.conv1_filters = 8;
  config.model.conv2_filters = 16;
  config.model.conv3_filters = 32;
  config.defense = {nn::FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox};
  return config;
}

// One coalesced forward pass over the whole batch...
void BM_EngineClassifyBatched(benchmark::State& state) {
  const serve::InferenceEngine engine(bench_engine_config());
  const auto batch = random_nchw(state.range(0), 3, 32, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.classify(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineClassifyBatched)->Arg(16)->Arg(64);

// ...versus the same images pushed through one forward pass each. The batched
// path should win clearly on a 64-image batch.
void BM_EngineClassifyPerImage(benchmark::State& state) {
  const serve::InferenceEngine engine(bench_engine_config());
  const auto n = state.range(0);
  const auto batch = random_nchw(n, 3, 32, 32);
  const std::int64_t stride = 3 * 32 * 32;
  std::vector<tensor::Tensor> images;
  for (std::int64_t i = 0; i < n; ++i) {
    tensor::Tensor image(tensor::Shape{3, 32, 32});
    std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride, image.data());
    images.push_back(std::move(image));
  }
  for (auto _ : state) {
    for (const auto& image : images) {
      benchmark::DoNotOptimize(engine.classify(image));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineClassifyPerImage)->Arg(16)->Arg(64);

// Submit-path throughput under a replica sweep: 64 single-image requests are
// queued at once; each replica's worker coalesces up to max_batch of them
// into one forward pass, so with R replicas up to R batches are in flight
// concurrently. The 1 -> 2 -> 4 progression shows the scaling headroom of the
// sharded router (on a multicore host; a 1-CPU cgroup flattens wall clock).
void BM_EngineSubmitThroughput(benchmark::State& state) {
  serve::EngineConfig config = bench_engine_config();
  config.replicas = static_cast<int>(state.range(0));
  config.max_batch = 16;
  serve::InferenceEngine engine(config);
  constexpr std::int64_t kImages = 64;
  const auto batch = random_nchw(kImages, 3, 32, 32, 9);
  const std::int64_t stride = 3 * 32 * 32;
  std::vector<tensor::Tensor> images;
  for (std::int64_t i = 0; i < kImages; ++i) {
    tensor::Tensor image(tensor::Shape{3, 32, 32});
    std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride, image.data());
    images.push_back(std::move(image));
  }
  for (auto _ : state) {
    std::vector<std::future<serve::Prediction>> futures;
    futures.reserve(static_cast<std::size_t>(kImages));
    for (const auto& image : images) {
      futures.push_back(engine.submit(image, serve::Options{serve::kDefendedVariant}));
    }
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().label);
    }
  }
  state.SetItemsProcessed(state.iterations() * kImages);
}
BENCHMARK(BM_EngineSubmitThroughput)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the resolved SIMD kernel
// target into the benchmark context so every emitted JSON carries a
// top-level "kernel" field — scalar-vs-avx2 A/B runs stay distinguishable
// after the fact. Resolving the target here also fails fast on a bad
// BLURNET_FORCE_KERNEL before any timing starts.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "kernel", util::kernel_target_name(util::active_kernel_target()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
