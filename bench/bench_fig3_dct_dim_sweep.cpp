// Fig. 3 — impact of the DCT mask dimension on the adaptive attack success
// rate against the 7x7 depthwise-convolution defense. The paper finds the
// attack peaks around dim 8 (≈35% ASR): small masks are too restrictive,
// large masks reintroduce the high frequencies the defense filters out.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Fig. 3: DCT mask dimension vs adaptive ASR (7x7 conv)", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& model = zoo.get("dw7");
  const double legit = zoo.test_accuracy("dw7");
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  util::Table table({"DCT mask dim", "Avg Success", "Worst Success", "L2 Dissimilarity"});
  for (const int dim : {4, 8, 16, 32}) {
    const auto sweep = eval::whitebox_sweep(
        model, legit, stop_set, scale,
        [dim](const attack::Rp2Config& c) { return attack::low_frequency_config(c, dim); });
    table.add_row({std::to_string(dim), util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    std::printf("  [done] dim=%d\n", dim);
  }
  std::printf("\n");
  bench::emit(table, "fig3_dct_dim_sweep.csv");
  return 0;
}
