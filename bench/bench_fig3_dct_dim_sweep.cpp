// Fig. 3 — impact of the DCT mask dimension on the adaptive attack success
// rate against the 7x7 depthwise-convolution defense. The paper finds the
// attack peaks around dim 8 (≈35% ASR): small masks are too restrictive,
// large masks reintroduce the high frequencies the defense filters out.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Fig. 3: DCT mask dimension vs adaptive ASR (7x7 conv)", env.scale);

  env.add_zoo_victim("dw7");
  const double legit = env.victim_accuracy("dw7");

  util::Table table({"DCT mask dim", "Avg Success", "Worst Success", "L2 Dissimilarity"});
  for (const int dim : {4, 8, 16, 32}) {
    const auto sweep =
        eval::AdaptiveSweep{env.scale, attack::low_frequency_adapter(dim)}.run(
            env.harness, "dw7", legit, env.stop_set);
    table.add_row({std::to_string(dim), util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    bench::done("dim=" + std::to_string(dim));
  }
  std::printf("\n");
  bench::emit(table, "fig3_dct_dim_sweep.csv");
  bench::print_serving_stats(env.harness);
  return 0;
}
