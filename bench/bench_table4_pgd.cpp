// Table IV (supplementary) — PGD evaluation under the unrestricted pixel
// threat model (eps = 8/255, alpha = 0.01, 10 steps).
//
// Paper shape: every BlurNet defense is broken (100% ASR) once the adversary
// may perturb arbitrary pixels — the defenses are tailored to the localized
// sticker threat model, supporting the paper's "no universal defense" point.
#include <sstream>

#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Table IV: PGD (unrestricted L-inf pixel adversary)", env.scale);
  const std::vector<int> labels(static_cast<std::size_t>(env.stop_set.images.dim(0)),
                                data::SignRenderer::stop_class_id());

  const std::vector<std::pair<std::string, std::string>> rows = {
      {"Baseline", "baseline"}, {"3x3 conv", "dw3"},       {"5x5 conv", "dw5"},
      {"7x7 conv", "dw7"},      {"TV (1e-4)", "tv1e-4"},   {"TV (1e-5)", "tv1e-5"},
      {"Tik_hf", "tik_hf"},     {"Tik_pseudo", "tik_pseudo"},
  };
  for (const auto& [label, variant] : rows) env.add_zoo_victim(variant);

  // Paper §III-B uses eps=8/255, alpha=0.01, 10 steps against an overfit
  // LISA-CNN. Our noise-augmented synthetic classifiers have larger margins,
  // so we sweep eps as well: the reproduction target is that every defense
  // falls *together* as the pixel budget grows — none of them transfers to
  // the unrestricted threat model.
  // BLURNET_EOT_POSES > 1 upgrades the pixel adversary to pose-batched EOT
  // PGD: each step averages the loss gradient over K sampled alignments (the
  // default 1 is the classic, alignment-free PGD of the paper's protocol).
  const int poses = env.scale.eot_poses;
  if (poses > 1) std::printf("EOT: averaging %d poses per PGD step\n\n", poses);

  util::Table table({"Model", "eps", "Attack Success Rate", "L2 Dissimilarity"});
  for (const double eps_num : {8.0, 16.0, 32.0}) {
    attack::PgdConfig pgd;
    pgd.epsilon = eps_num / 255.0;
    pgd.step_size = 0.01;
    pgd.steps = eps_num <= 8.0 ? 10 : 20;
    pgd.eot_poses = poses;
    for (const auto& [label, variant] : rows) {
      // The handle splits the victim: gradients through a serving replica's
      // weight clone, clean/adversarial predictions through the engine.
      const auto result = attack::pgd_attack(env.harness.victim_handle(variant),
                                             env.stop_set.images, labels, pgd);
      std::ostringstream eps_label;
      eps_label << static_cast<int>(eps_num) << "/255";
      table.add_row({label, eps_label.str(), util::Table::pct(result.success_rate_altered()),
                     util::Table::num(result.l2_dissimilarity(env.stop_set.images))});
    }
  }
  bench::emit(table, "table4_pgd.csv");
  bench::print_serving_stats(env.harness);
  std::printf("\nexpected shape (paper): at a sufficient pixel budget all rows reach ~100%%\n"
              "together — localized-perturbation defenses do not transfer to the\n"
              "unrestricted pixel threat model.\n");
  return 0;
}
