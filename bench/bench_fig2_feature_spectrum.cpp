// Fig. 2 — FFT spectra of first-layer feature maps: clean, adversarial,
// their difference, and the blurred difference. The paper's motivation: the
// sticker injects high-frequency artifacts into the L1 maps, and a 5x5 blur
// removes most of them. We report per-channel high-frequency energy of the
// four panels and dump the spectra of a few channels as PGM images.
#include <filesystem>

#include "bench/bench_common.h"
#include "src/defense/blurnet.h"
#include "src/signal/kernels.h"
#include "src/signal/spectrum.h"
#include "src/tensor/ops.h"
#include "src/util/ppm.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Fig. 2: first-layer feature-map spectra", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& baseline = zoo.get("baseline");
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = attack::sticker_mask(stop_set.masks);

  attack::Rp2Config rp2 = eval::paper_rp2_config(scale);
  rp2.target_class = 6;
  const auto attacked = attack::rp2_attack(baseline, stop_set.images, sticker, rp2);

  const auto clean_maps =
      baseline.forward(autograd::Variable::constant(stop_set.images)).features_l1.value();
  const auto adv_maps =
      baseline.forward(autograd::Variable::constant(attacked.adversarial)).features_l1.value();
  const auto diff = tensor::sub(adv_maps, clean_maps);
  const auto blur = signal::make_blur_kernel(5);
  const auto diff_blurred = signal::filter2d_depthwise(diff, blur);

  const int fh = static_cast<int>(clean_maps.dim(2));
  const int fw = static_cast<int>(clean_maps.dim(3));
  const std::int64_t channels = clean_maps.dim(1);

  util::Table table(
      {"Channel", "HF clean", "HF adv", "HF diff", "HF blurred diff", "diff energy", "blurred diff energy"});
  double mean_hf_diff = 0.0, mean_hf_blurred = 0.0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const auto plane_clean = signal::extract_plane(clean_maps, 0, c);
    const auto plane_adv = signal::extract_plane(adv_maps, 0, c);
    const auto plane_diff = signal::extract_plane(diff, 0, c);
    const auto plane_blur = signal::extract_plane(diff_blurred, 0, c);
    const double hf_clean = signal::high_frequency_energy_ratio(plane_clean, fh, fw);
    const double hf_adv = signal::high_frequency_energy_ratio(plane_adv, fh, fw);
    const double hf_diff = signal::high_frequency_energy_ratio(plane_diff, fh, fw);
    const double hf_blur = signal::high_frequency_energy_ratio(plane_blur, fh, fw);
    auto energy = [](const std::vector<double>& p) {
      double acc = 0.0;
      for (const double v : p) acc += v * v;
      return acc;
    };
    mean_hf_diff += hf_diff / static_cast<double>(channels);
    mean_hf_blurred += hf_blur / static_cast<double>(channels);
    table.add_row({std::to_string(c), util::Table::num(hf_clean, 4),
                   util::Table::num(hf_adv, 4), util::Table::num(hf_diff, 4),
                   util::Table::num(hf_blur, 4), util::Table::num(energy(plane_diff), 3),
                   util::Table::num(energy(plane_blur), 3)});
  }
  bench::emit(table, "fig2_feature_spectrum.csv");

  // Spectra panels for the first few channels (the rows of Fig. 2).
  const auto out_dir = std::filesystem::path(eval::results_dir()) / "fig2";
  std::filesystem::create_directories(out_dir);
  for (std::int64_t c = 0; c < std::min<std::int64_t>(channels, 4); ++c) {
    auto dump = [&](const tensor::Tensor& maps, const std::string& tag) {
      const auto spec = signal::log_magnitude_spectrum(signal::extract_plane(maps, 0, c), fh, fw);
      std::vector<float> buffer(spec.begin(), spec.end());
      util::write_pnm_chw((out_dir / ("ch" + std::to_string(c) + "_" + tag + ".pgm")).string(),
                          buffer.data(), 1, fh, fw);
    };
    dump(clean_maps, "clean");
    dump(adv_maps, "adv");
    dump(diff, "diff");
    dump(diff_blurred, "diff_blurred");
  }

  std::printf("\nmean HF ratio of the perturbation-induced difference: %.4f -> %.4f after a\n"
              "5x5 blur — the filter strips the high-frequency artifacts the attack relies on\n"
              "(the paper's justification for filtering feature maps).\n",
              mean_hf_diff, mean_hf_blurred);
  return 0;
}
