// Ablation (supplementary §A) — where should the blur filter go?
//
// The paper argues filters belong after layer 1 only: higher layers carry
// classification-relevant high-frequency content and their neurons' receptive
// fields no longer preserve the perturbation's spatial locality. We wrap the
// trained baseline with a fixed 5x5 blur at each position and measure clean
// accuracy and black-box transfer ASR.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Ablation: blur filter position (supplementary A)", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& baseline = zoo.get("baseline");
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  struct Row {
    std::string label;
    nn::FilterPlacement placement;
  };
  const std::vector<Row> rows = {
      {"no filter", nn::FilterPlacement::kNone},
      {"input", nn::FilterPlacement::kInput},
      {"after layer 1", nn::FilterPlacement::kAfterLayer1},
      {"after layer 2", nn::FilterPlacement::kAfterLayer2},
      {"after layer 3", nn::FilterPlacement::kAfterLayer3},
  };

  util::Table table({"Filter position", "Test accuracy", "Transfer ASR"});
  for (const auto& row : rows) {
    nn::LisaCnnConfig config = baseline.config();
    config.fixed_filter = {row.placement, row.placement == nn::FilterPlacement::kNone ? 0 : 5,
                           signal::KernelKind::kBox};
    nn::LisaCnn wrapped(config);
    wrapped.copy_weights_from(baseline);
    const double accuracy = defense::classifier_accuracy(wrapped, zoo.dataset().test);
    const auto transfer = eval::transfer_attack(baseline, wrapped, stop_set, scale);
    table.add_row({row.label, util::Table::pct(accuracy),
                   util::Table::pct(transfer.attack_success)});
    std::printf("  [done] %s\n", row.label.c_str());
  }
  std::printf("\n");
  bench::emit(table, "ablation_filter_position.csv");
  std::printf("\nexpected shape (paper): blurring after layer 1 trades a little accuracy for\n"
              "robustness; blurring higher layers costs much more accuracy for less benefit.\n");
  return 0;
}
