// Ablation (supplementary §A) — where should the blur filter go?
//
// The paper argues filters belong after layer 1 only: higher layers carry
// classification-relevant high-frequency content and their neurons' receptive
// fields no longer preserve the perturbation's spatial locality. We wrap the
// trained baseline with a fixed 5x5 blur at each position and measure clean
// accuracy and black-box transfer ASR.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Ablation: blur filter position (supplementary A)", env.scale);

  struct Row {
    std::string label;
    nn::FilterPlacement placement;
  };
  const std::vector<Row> rows = {
      {"no filter", nn::FilterPlacement::kNone},
      {"input", nn::FilterPlacement::kInput},
      {"after layer 1", nn::FilterPlacement::kAfterLayer1},
      {"after layer 2", nn::FilterPlacement::kAfterLayer2},
      {"after layer 3", nn::FilterPlacement::kAfterLayer3},
  };

  // Every filter position is the baseline's weights served behind a different
  // wrap — weight-transfer variants of the harness engine.
  std::vector<std::string> victims;
  for (const auto& row : rows) {
    nn::LisaCnnConfig config = env.harness.engine().model().config();
    config.fixed_filter = {row.placement, row.placement == nn::FilterPlacement::kNone ? 0 : 5,
                           signal::KernelKind::kBox};
    env.harness.add_variant_victim(row.label, config);
    victims.push_back(row.label);
  }
  env.harness.adopt_variant(serve::kBaseVariant);

  const auto transfers =
      eval::TransferMatrix{env.scale}.run(env.harness, serve::kBaseVariant, victims,
                                          env.stop_set);

  util::Table table({"Filter position", "Test accuracy", "Transfer ASR"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double accuracy = env.victim_accuracy(rows[i].label);
    table.add_row({rows[i].label, util::Table::pct(accuracy),
                   util::Table::pct(transfers[i].attack_success)});
    bench::done(rows[i].label);
  }
  std::printf("\n");
  bench::emit(table, "ablation_filter_position.csv");
  bench::print_serving_stats(env.harness);
  std::printf("\nexpected shape (paper): blurring after layer 1 trades a little accuracy for\n"
              "robustness; blurring higher layers costs much more accuracy for less benefit.\n");
  return 0;
}
