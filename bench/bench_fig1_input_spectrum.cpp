// Fig. 1 — FFT spectrum of an unperturbed vs perturbed stop sign (input
// space). The paper's observation: the two spectra are visually
// indistinguishable, so filtering the *input* is a questionable defense.
// We quantify that with the relative spectral distance and high-frequency
// energy ratios per image, and dump the log-magnitude spectra as PGM images.
#include <filesystem>

#include "bench/bench_common.h"
#include "src/defense/blurnet.h"
#include "src/signal/spectrum.h"
#include "src/util/ppm.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Fig. 1: input-space FFT spectra (clean vs stickered)", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& baseline = zoo.get("baseline");
  const int count = std::min(scale.eval_images, 6);
  const auto stop_set = data::stop_sign_eval_set(count);
  const auto sticker = attack::sticker_mask(stop_set.masks);

  attack::Rp2Config rp2 = eval::paper_rp2_config(scale);
  rp2.target_class = 6;
  const auto attacked = attack::rp2_attack(baseline, stop_set.images, sticker, rp2);

  const int h = static_cast<int>(stop_set.images.dim(2));
  const int w = static_cast<int>(stop_set.images.dim(3));

  util::Table table({"Image", "Spectral distance", "HF ratio clean", "HF ratio adv"});
  double mean_distance = 0.0;
  for (int i = 0; i < count; ++i) {
    double distance = 0.0, hf_clean = 0.0, hf_adv = 0.0;
    for (int c = 0; c < 3; ++c) {
      const auto clean_plane = signal::extract_plane(stop_set.images, i, c);
      const auto adv_plane = signal::extract_plane(attacked.adversarial, i, c);
      distance += signal::spectral_distance(clean_plane, adv_plane, h, w) / 3.0;
      hf_clean += signal::high_frequency_energy_ratio(clean_plane, h, w) / 3.0;
      hf_adv += signal::high_frequency_energy_ratio(adv_plane, h, w) / 3.0;
    }
    mean_distance += distance / count;
    table.add_row({std::to_string(i), util::Table::num(distance, 4),
                   util::Table::num(hf_clean, 4), util::Table::num(hf_adv, 4)});
  }
  bench::emit(table, "fig1_input_spectrum.csv");

  // Dump the spectra of image 0 (the panels of Fig. 1).
  const auto out_dir = std::filesystem::path(eval::results_dir()) / "fig1";
  std::filesystem::create_directories(out_dir);
  const auto clean_spec =
      signal::log_magnitude_spectrum(signal::extract_plane(stop_set.images, 0, 0), h, w);
  const auto adv_spec =
      signal::log_magnitude_spectrum(signal::extract_plane(attacked.adversarial, 0, 0), h, w);
  std::vector<float> buffer(clean_spec.begin(), clean_spec.end());
  util::write_pnm_chw((out_dir / "clean_spectrum.pgm").string(), buffer.data(), 1, h, w);
  buffer.assign(adv_spec.begin(), adv_spec.end());
  util::write_pnm_chw((out_dir / "adv_spectrum.pgm").string(), buffer.data(), 1, h, w);

  std::printf("\nmean spectral distance: %.4f — the sticker leaves the input spectrum\n"
              "nearly unchanged (paper: 'no clear indication where the perturbations lie').\n",
              mean_distance);
  return 0;
}
