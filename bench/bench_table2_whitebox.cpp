// Table II — white-box evaluation.
//
// Every defense variant is retrained and attacked with RP2 sweeping the
// attack target; rows report legitimate accuracy, average / worst-case attack
// success rate over targets, and L2 dissimilarity. Paper shape: TV and Tik_hf
// reduce the worst-case ASR from 90% (baseline) to 17.5% / 10% while the
// pixel-threat baselines (Gaussian aug, randomized smoothing, adversarial
// training) trade accuracy for uneven robustness.
#include <sstream>

#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Table II: white-box evaluation", env.scale);

  struct Row {
    std::string label;
    std::string variant;     // zoo name
    std::string alpha;       // α column
    double smoothing_sigma;  // >0: evaluate with randomized smoothing
  };
  const std::vector<Row> rows = {
      {"Baseline", "baseline", "0", 0.0},
      {"Gaussian aug (s=0.1)", "gauss0.1", "-", 0.0},
      {"Gaussian aug (s=0.2)", "gauss0.2", "-", 0.0},
      {"Gaussian aug (s=0.3)", "gauss0.3", "-", 0.0},
      {"Rand. sm (s=0.1)", "gauss0.1", "-", 0.1},
      {"Rand. sm (s=0.2)", "gauss0.2", "-", 0.2},
      {"Rand. sm (s=0.3)", "gauss0.3", "-", 0.3},
      {"Adv-train", "advtrain", "-", 0.0},
      {"3x3 conv", "dw3", "1e-5", 0.0},
      {"5x5 conv", "dw5", "0.1", 0.0},
      {"7x7 conv", "dw7", "0.1", 0.0},
      {"TV", "tv1e-4", "1e-4", 0.0},
      {"TV", "tv1e-5", "1e-5", 0.0},
      {"Tik_hf", "tik_hf", "1e-4", 0.0},
      {"Tik_pseudo", "tik_pseudo", "1e-6", 0.0},
  };

  const eval::WhiteboxSweep protocol{env.scale};
  util::Table table({"Model", "alpha", "Legit Acc.", "Avg Success", "Worst Success",
                     "L2 Dissimilarity"});
  for (const auto& row : rows) {
    // A smoothing row is its own victim: the same trained weights served
    // behind a majority-vote prediction policy, next to the plain variant.
    // The sigma is part of the name so distinct smoothing strengths on the
    // same weights never collapse onto one registration.
    std::ostringstream victim_name;
    victim_name << row.variant;
    if (row.smoothing_sigma > 0.0) victim_name << "+rs" << row.smoothing_sigma;
    const std::string victim = victim_name.str();
    if (!env.harness.has_victim(victim)) {
      eval::VictimSpec spec;
      if (row.smoothing_sigma > 0.0) {
        defense::SmoothingConfig smoothing;
        smoothing.sigma = row.smoothing_sigma;
        spec.smoothing = smoothing;
      }
      env.add_zoo_victim(row.variant, spec, victim);
    }
    // Clean accuracy through the batched serving path: the whole test set
    // goes through the victim's engine variant in coalesced forward passes.
    const double legit = env.victim_accuracy(victim);
    const auto sweep = protocol.run(env.harness, victim, legit, env.stop_set);
    table.add_row({row.label, row.alpha, util::Table::pct(sweep.legit_accuracy),
                   util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    bench::done(row.label);
  }
  std::printf("\n");
  bench::emit(table, "table2_whitebox.csv");
  bench::print_serving_stats(env.harness);
  std::printf("\nexpected shape (paper): TV and Tik_hf give the lowest worst-case ASR at\n"
              "minimal accuracy cost; depthwise conv improves with kernel width.\n");
  return 0;
}
