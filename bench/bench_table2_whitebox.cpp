// Table II — white-box evaluation.
//
// Every defense variant is retrained and attacked with RP2 sweeping the
// attack target; rows report legitimate accuracy, average / worst-case attack
// success rate over targets, and L2 dissimilarity. Paper shape: TV and Tik_hf
// reduce the worst-case ASR from 90% (baseline) to 17.5% / 10% while the
// pixel-threat baselines (Gaussian aug, randomized smoothing, adversarial
// training) trade accuracy for uneven robustness.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Table II: white-box evaluation", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  struct Row {
    std::string label;
    std::string variant;   // zoo name
    std::string alpha;     // α column
    double smoothing_sigma;  // >0: evaluate with randomized smoothing
  };
  const std::vector<Row> rows = {
      {"Baseline", "baseline", "0", 0.0},
      {"Gaussian aug (s=0.1)", "gauss0.1", "-", 0.0},
      {"Gaussian aug (s=0.2)", "gauss0.2", "-", 0.0},
      {"Gaussian aug (s=0.3)", "gauss0.3", "-", 0.0},
      {"Rand. sm (s=0.1)", "gauss0.1", "-", 0.1},
      {"Rand. sm (s=0.2)", "gauss0.2", "-", 0.2},
      {"Rand. sm (s=0.3)", "gauss0.3", "-", 0.3},
      {"Adv-train", "advtrain", "-", 0.0},
      {"3x3 conv", "dw3", "1e-5", 0.0},
      {"5x5 conv", "dw5", "0.1", 0.0},
      {"7x7 conv", "dw7", "0.1", 0.0},
      {"TV", "tv1e-4", "1e-4", 0.0},
      {"TV", "tv1e-5", "1e-5", 0.0},
      {"Tik_hf", "tik_hf", "1e-4", 0.0},
      {"Tik_pseudo", "tik_pseudo", "1e-6", 0.0},
  };

  util::Table table({"Model", "alpha", "Legit Acc.", "Avg Success", "Worst Success",
                     "L2 Dissimilarity"});
  for (const auto& row : rows) {
    nn::LisaCnn& model = zoo.get(row.variant);
    eval::Predictor predictor;
    double legit = 0.0;
    if (row.smoothing_sigma > 0.0) {
      defense::SmoothingConfig smoothing;
      smoothing.sigma = row.smoothing_sigma;
      predictor = [&model, smoothing](const tensor::Tensor& x) {
        return defense::smoothed_predict(model, x, smoothing);
      };
      const auto& test = zoo.dataset().test;
      legit = defense::smoothed_accuracy(model, test.images, test.labels, smoothing);
    } else {
      // Clean accuracy through the batched serving path: the whole test set
      // goes through the engine's "base" variant in coalesced forward passes
      // instead of per-image calls.
      const serve::InferenceEngine engine(model, {});
      legit = bench::engine_accuracy(engine, zoo.dataset().test, serve::kBaseVariant);
    }
    const auto sweep =
        eval::whitebox_sweep(model, legit, stop_set, scale, nullptr, predictor);
    table.add_row({row.label, row.alpha, util::Table::pct(sweep.legit_accuracy),
                   util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success), util::Table::num(sweep.mean_l2)});
    std::printf("  [done] %s\n", row.label.c_str());
  }
  std::printf("\n");
  bench::emit(table, "table2_whitebox.csv");
  std::printf("\nexpected shape (paper): TV and Tik_hf give the lowest worst-case ASR at\n"
              "minimal accuracy cost; depthwise conv improves with kernel width.\n");
  return 0;
}
