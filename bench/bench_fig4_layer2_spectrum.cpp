// Fig. 4 (supplementary) — FFT spectra of *second-layer* feature maps on
// clean signs. The paper's point: higher layers naturally contain
// high-frequency content (the spectrum is flat, not low-pass), so inserting
// blur filters there destroys information the classifier needs — which is
// why BlurNet only filters after layer 1. We compare the per-layer
// high-frequency energy ratios.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"
#include "src/signal/spectrum.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Fig. 4: layer-2 feature-map spectra (clean signs)", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& baseline = zoo.get("baseline");
  const auto stop_set = data::stop_sign_eval_set(std::min(scale.eval_images, 6));

  const auto forward = baseline.forward(autograd::Variable::constant(stop_set.images));
  const auto l1 = forward.features_l1.value();
  const auto l2 = forward.features_l2.value();
  const auto l3 = forward.features_l3.value();

  auto layer_stats = [&](const tensor::Tensor& maps) {
    const int h = static_cast<int>(maps.dim(2));
    const int w = static_cast<int>(maps.dim(3));
    double mean = 0.0;
    int count = 0;
    for (std::int64_t n = 0; n < maps.dim(0); ++n) {
      for (std::int64_t c = 0; c < maps.dim(1); ++c) {
        mean += signal::high_frequency_energy_ratio(signal::extract_plane(maps, n, c), h, w);
        ++count;
      }
    }
    return mean / count;
  };

  const double hf1 = layer_stats(l1);
  const double hf2 = layer_stats(l2);
  const double hf3 = layer_stats(l3);

  util::Table table({"Layer", "Map size", "Mean HF energy ratio"});
  table.add_row({"conv1 (filtered by BlurNet)",
                 std::to_string(l1.dim(2)) + "x" + std::to_string(l1.dim(3)),
                 util::Table::num(hf1, 4)});
  table.add_row({"conv2",
                 std::to_string(l2.dim(2)) + "x" + std::to_string(l2.dim(3)),
                 util::Table::num(hf2, 4)});
  table.add_row({"conv3",
                 std::to_string(l3.dim(2)) + "x" + std::to_string(l3.dim(3)),
                 util::Table::num(hf3, 4)});
  bench::emit(table, "fig4_layer2_spectrum.csv");

  std::printf("\nexpected shape (paper): higher layers carry relatively more high-frequency\n"
              "content (flatter spectra), so low-pass filtering them would destroy\n"
              "classification-relevant information (see also bench_ablation_filter_position).\n");
  return 0;
}
