// Table I — black-box transfer evaluation.
//
// RP2 adversarial examples are crafted on the vanilla classifier and
// transferred to the same weights wrapped with (a) an input blur and (b) a
// blur on the first-layer feature maps. The paper's finding: filtering the
// feature maps beats filtering the input at equal kernel size
// (90% -> 17.5% ASR for 5x5 on L1 maps vs 67.5% for 5x5 on the input).
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"
#include "src/serve/engine.h"

using namespace blurnet;

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Table I: black-box transfer (input filter vs feature-map filter)", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& baseline = zoo.get("baseline");
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  // Each row is the baseline's weights served behind a different fixed-filter
  // defense. One engine holds every row as a registered variant — the
  // weight-transfer into the filtered architecture happens at registration,
  // exactly the way a deployment would roll out a new defense next to the
  // live model.
  struct Row {
    std::string name;
    nn::FixedFilterSpec defense;
  };
  const std::vector<Row> rows = {
      {"Baseline", {}},
      {"Input filter 3x3", {nn::FilterPlacement::kInput, 3, signal::KernelKind::kBox}},
      {"Input filter 5x5", {nn::FilterPlacement::kInput, 5, signal::KernelKind::kBox}},
      {"3x3 filter on L1 maps",
       {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox}},
      {"5x5 filter on L1 maps",
       {nn::FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox}},
  };

  serve::InferenceEngine engine(baseline, {});
  for (const auto& row : rows) {
    nn::LisaCnnConfig variant_config = baseline.config();
    variant_config.fixed_filter = row.defense;
    engine.register_variant(row.name, variant_config);
  }

  util::Table table({"Model", "Accuracy", "Attack Success Rate"});
  for (const auto& row : rows) {
    const auto result =
        eval::transfer_attack(baseline, engine.variant(row.name), stop_set, scale);
    table.add_row({row.name, util::Table::pct(result.clean_accuracy),
                   util::Table::pct(result.attack_success)});
  }
  bench::emit(table, "table1_blackbox.csv");
  std::printf("\nexpected shape (paper): feature-map filtering reduces ASR far more than\n"
              "input filtering at the same kernel size; 5x5 on L1 maps is the strongest.\n");
  return 0;
}
