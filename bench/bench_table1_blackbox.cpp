// Table I — black-box transfer evaluation.
//
// RP2 adversarial examples are crafted on the vanilla classifier and
// transferred to the same weights wrapped with (a) an input blur and (b) a
// blur on the first-layer feature maps. The paper's finding: filtering the
// feature maps beats filtering the input at equal kernel size
// (90% -> 17.5% ASR for 5x5 on L1 maps vs 67.5% for 5x5 on the input).
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

namespace {

nn::LisaCnn wrap_with_filter(const nn::LisaCnn& base, nn::FilterPlacement placement,
                             int kernel) {
  nn::LisaCnnConfig config = base.config();
  config.fixed_filter = {placement, kernel, signal::KernelKind::kBox};
  nn::LisaCnn wrapped(config);
  wrapped.copy_weights_from(base);
  return wrapped;
}

}  // namespace

int main() {
  const auto scale = eval::ExperimentScale::from_env();
  bench::banner("Table I: black-box transfer (input filter vs feature-map filter)", scale);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& baseline = zoo.get("baseline");
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  struct Row {
    std::string name;
    nn::LisaCnn model;
  };
  std::vector<Row> rows;
  rows.push_back({"Baseline", wrap_with_filter(baseline, nn::FilterPlacement::kNone, 0)});
  rows.push_back({"Input filter 3x3", wrap_with_filter(baseline, nn::FilterPlacement::kInput, 3)});
  rows.push_back({"Input filter 5x5", wrap_with_filter(baseline, nn::FilterPlacement::kInput, 5)});
  rows.push_back(
      {"3x3 filter on L1 maps", wrap_with_filter(baseline, nn::FilterPlacement::kAfterLayer1, 3)});
  rows.push_back(
      {"5x5 filter on L1 maps", wrap_with_filter(baseline, nn::FilterPlacement::kAfterLayer1, 5)});

  util::Table table({"Model", "Accuracy", "Attack Success Rate"});
  for (auto& row : rows) {
    const auto result = eval::transfer_attack(baseline, row.model, stop_set, scale);
    table.add_row({row.name, util::Table::pct(result.clean_accuracy),
                   util::Table::pct(result.attack_success)});
  }
  bench::emit(table, "table1_blackbox.csv");
  std::printf("\nexpected shape (paper): feature-map filtering reduces ASR far more than\n"
              "input filtering at the same kernel size; 5x5 on L1 maps is the strongest.\n");
  return 0;
}
