// Table I — black-box transfer evaluation.
//
// RP2 adversarial examples are crafted on the vanilla classifier and
// transferred to the same weights wrapped with (a) an input blur and (b) a
// blur on the first-layer feature maps. The paper's finding: filtering the
// feature maps beats filtering the input at equal kernel size
// (90% -> 17.5% ASR for 5x5 on L1 maps vs 67.5% for 5x5 on the input).
// Extra rows serve the input-transform zoo (bit-depth squeeze, median,
// DCT quantization) through the engine's preprocess stage for the same
// oblivious-transfer comparison.
#include "bench/bench_common.h"
#include "src/defense/blurnet.h"

using namespace blurnet;

int main() {
  bench::EvalEnv env;
  bench::banner("Table I: black-box transfer (input filter vs feature-map filter)", env.scale);

  // Each row is the baseline's weights served behind a different fixed-filter
  // defense — a weight-transfer variant of the harness engine, exactly the
  // way a deployment would roll out a new defense next to the live model.
  struct Row {
    std::string name;
    nn::FixedFilterSpec defense;
  };
  const std::vector<Row> rows = {
      {"Baseline", {}},
      {"Input filter 3x3", {nn::FilterPlacement::kInput, 3, signal::KernelKind::kBox}},
      {"Input filter 5x5", {nn::FilterPlacement::kInput, 5, signal::KernelKind::kBox}},
      {"3x3 filter on L1 maps",
       {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox}},
      {"5x5 filter on L1 maps",
       {nn::FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox}},
  };

  std::vector<std::string> victims;
  std::vector<std::string> labels;
  for (const auto& row : rows) {
    nn::LisaCnnConfig variant_config = env.harness.engine().model().config();
    variant_config.fixed_filter = row.defense;
    env.harness.add_variant_victim(row.name, variant_config);
    victims.push_back(row.name);
    labels.push_back(row.name);
  }
  // Input-transform zoo rows: the same baseline weights served behind the
  // engine's preprocess stage (squeeze / median / DCT quantization) — the
  // related-work axis the feature-map filter is compared against. Transfer is
  // the *oblivious* threat model for them: the sticker is crafted on the
  // vanilla source, so the transform only acts server-side.
  struct TransformRow {
    std::string label;
    std::string zoo_name;
  };
  const std::vector<TransformRow> transform_rows = {
      {"Bit-depth squeeze 4-bit", "squeeze4"},
      {"Median filter 3x3", "median3"},
      {"DCT quantize q50", "dctq50"},
  };
  for (const auto& row : transform_rows) {
    env.add_transform_victim(row.zoo_name);
    victims.push_back(row.zoo_name);
    labels.push_back(row.label);
  }
  // The attack source: the engine's own base variant (the vanilla weights).
  env.harness.adopt_variant(serve::kBaseVariant);

  // The transfer protocol crafts each per-target sticker ONCE on the source
  // and evaluates the same physical sticker on every victim variant through
  // the engine — no per-row re-crafting of an identical optimization.
  const auto results =
      eval::TransferMatrix{env.scale}.run(env.harness, serve::kBaseVariant, victims,
                                          env.stop_set);

  util::Table table({"Model", "Accuracy", "Attack Success Rate"});
  for (std::size_t i = 0; i < victims.size(); ++i) {
    table.add_row({labels[i], util::Table::pct(results[i].clean_accuracy),
                   util::Table::pct(results[i].attack_success)});
    bench::done(labels[i]);
  }
  std::printf("\n");
  bench::emit(table, "table1_blackbox.csv");
  bench::print_serving_stats(env.harness);
  std::printf("\nexpected shape (paper): feature-map filtering reduces ASR far more than\n"
              "input filtering at the same kernel size; 5x5 on L1 maps is the strongest.\n");
  return 0;
}
