// Open-loop load test of the serving engine: offered-load sweep with a mixed
// base / defended / transform traffic mix, plus a deliberate overload point
// to measure saturation throughput and the overload policy's shed behavior.
//
// Results go to results/bench_serve_load.json (BLURNET_OUT_DIR to move the
// directory). The engine serves freshly initialized weights — arrival
// dynamics, queueing and tails do not depend on what the weights are, and
// skipping training keeps the bench runnable in CI.
//
// Knobs (all env vars):
//   BLURNET_LOAD_REQUESTS  requests per sweep point        (default 400)
//   BLURNET_LOAD_SEED      schedule seed                   (default 42)
//   BLURNET_LOAD_REPLICAS  replicas per variant            (default 2)
//   BLURNET_LOAD_QUEUE_CAP queue capacity per variant      (default 64)
//   BLURNET_LOAD_ARRIVAL   poisson | onoff | uniform       (default poisson)
//   BLURNET_LOAD_POLICY    reject | block                  (default reject)
//   BLURNET_LOAD_RPS       base offered rate; 0 calibrates (default 0)
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/eval/experiments.h"
#include "src/serve/engine.h"
#include "src/serve/loadgen.h"
#include "src/tensor/tensor.h"
#include "src/util/cpu_caps.h"
#include "src/util/env.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

using namespace blurnet;

namespace {

std::string json_snapshot(const serve::LatencySnapshot& s) {
  std::ostringstream out;
  out << "{\"count\": " << s.count << ", \"window\": " << s.window
      << ", \"mean_us\": " << s.mean_us << ", \"p50_us\": " << s.p50_us
      << ", \"p99_us\": " << s.p99_us << ", \"p999_us\": " << s.p999_us
      << ", \"max_us\": " << s.max_us << "}";
  return out.str();
}

std::string json_report(const serve::LoadReport& report) {
  std::ostringstream out;
  out << "{\"offered_rps\": " << report.offered_rps
      << ", \"achieved_rps\": " << report.achieved_rps
      << ", \"duration_s\": " << report.duration_s
      << ", \"offered\": " << report.offered << ", \"served\": " << report.served
      << ", \"rejected\": " << report.rejected << ", \"failed\": " << report.failed
      << ", \"latency\": " << json_snapshot(report.latency) << ", \"variants\": [";
  for (std::size_t i = 0; i < report.variants.size(); ++i) {
    const auto& v = report.variants[i];
    if (i > 0) out << ", ";
    out << "{\"variant\": \"" << v.variant << "\", \"offered\": " << v.offered
        << ", \"served\": " << v.served << ", \"rejected\": " << v.rejected
        << ", \"failed\": " << v.failed
        << ", \"latency\": " << json_snapshot(v.latency) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main() {
  const int requests = util::env_int("BLURNET_LOAD_REQUESTS", 400);
  const int seed = util::env_int("BLURNET_LOAD_SEED", 42);
  const int replicas = util::env_int("BLURNET_LOAD_REPLICAS", 2);
  const int queue_cap = util::env_int("BLURNET_LOAD_QUEUE_CAP", 64);
  const std::string arrival_name =
      util::env_string("BLURNET_LOAD_ARRIVAL").value_or("poisson");
  const std::string policy_name = util::env_string("BLURNET_LOAD_POLICY").value_or("reject");
  double base_rps = static_cast<double>(util::env_int("BLURNET_LOAD_RPS", 0));

  serve::ArrivalProcess arrival;
  if (arrival_name == "poisson") {
    arrival = serve::ArrivalProcess::kPoisson;
  } else if (arrival_name == "onoff") {
    arrival = serve::ArrivalProcess::kOnOff;
  } else if (arrival_name == "uniform") {
    arrival = serve::ArrivalProcess::kUniform;
  } else {
    std::fprintf(stderr, "unknown BLURNET_LOAD_ARRIVAL \"%s\"\n", arrival_name.c_str());
    return 1;
  }
  serve::OverloadPolicy policy;
  if (policy_name == "reject") {
    policy = serve::OverloadPolicy::kReject;
  } else if (policy_name == "block") {
    policy = serve::OverloadPolicy::kBlock;
  } else {
    std::fprintf(stderr, "unknown BLURNET_LOAD_POLICY \"%s\"\n", policy_name.c_str());
    return 1;
  }

  serve::EngineConfig config;
  config.defense = {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox};
  config.replicas = replicas;
  config.queue_capacity = queue_cap;
  config.overload_policy = policy;
  serve::InferenceEngine engine(config);
  engine.register_transform_variant("squeeze4", defense::TransformSpec::squeeze(4));

  util::Rng rng(99);
  const tensor::Tensor image =
      tensor::Tensor::rand_uniform(tensor::Shape::nchw(1, 3, 32, 32), rng)
          .reshape(tensor::Shape{3, 32, 32});

  // Warm up every variant and calibrate the single-stream service rate of the
  // slowest one, so the sweep fractions mean the same thing on any machine.
  const std::vector<std::string> variants = {serve::kBaseVariant, serve::kDefendedVariant,
                                             "squeeze4"};
  if (base_rps <= 0.0) {
    double slowest_rps = 0.0;
    for (const auto& name : variants) {
      serve::Options options;
      options.variant = name;
      const int calib = 64;
      tensor::Tensor batch(tensor::Shape::nchw(calib, 3, 32, 32));
      for (int i = 0; i < calib; ++i) {
        std::copy(image.data(), image.data() + image.numel(),
                  batch.data() + i * image.numel());
      }
      engine.classify(batch, options);  // warm-up (scratch, arenas, caches)
      util::Timer timer;
      engine.classify(batch, options);
      const double rate = calib / timer.seconds();
      if (slowest_rps == 0.0 || rate < slowest_rps) slowest_rps = rate;
      std::printf("calibrate %-10s %8.1f img/s\n", name.c_str(), rate);
    }
    base_rps = slowest_rps;
  }
  std::printf("base service rate: %.1f img/s, arrival=%s, policy=%s, queue=%d, replicas=%d\n",
              base_rps, arrival_name.c_str(), policy_name.c_str(), queue_cap, replicas);

  std::ostringstream sweeps;
  std::printf("\n%-10s %10s %10s %9s %9s %10s %10s %10s\n", "load", "offered/s",
              "achieved/s", "served", "rejected", "p50 ms", "p99 ms", "p999 ms");
  double saturation_rps = 0.0;
  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0, 2.0};
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    serve::LoadConfig load;
    load.offered_rps = base_rps * fractions[f];
    load.arrival = arrival;
    load.requests = requests;
    load.seed = static_cast<std::uint64_t>(seed);
    load.mix = {{serve::kBaseVariant, 2.0}, {serve::kDefendedVariant, 1.0}, {"squeeze4", 1.0}};
    serve::LoadGenerator generator(engine, load);
    const serve::LoadReport report = generator.run(image);
    saturation_rps = std::max(saturation_rps, report.achieved_rps);
    std::printf("%-10.2f %10.1f %10.1f %9lld %9lld %10.2f %10.2f %10.2f\n", fractions[f],
                report.offered_rps, report.achieved_rps,
                static_cast<long long>(report.served),
                static_cast<long long>(report.rejected), report.latency.p50_us / 1000.0,
                report.latency.p99_us / 1000.0, report.latency.p999_us / 1000.0);
    if (f > 0) sweeps << ",\n    ";
    sweeps << "{\"load_fraction\": " << fractions[f] << ", \"report\": " << json_report(report)
           << "}";
  }
  std::printf("\nsaturation throughput: %.1f req/s (best achieved across the sweep)\n",
              saturation_rps);

  const serve::EngineStats stats = engine.stats();
  std::ostringstream out;
  out << "{\n  \"requests_per_point\": " << requests << ",\n  \"seed\": " << seed
      << ",\n  \"kernel\": \"" << util::kernel_target_name(util::active_kernel_target())
      << "\",\n  \"replicas\": " << replicas << ",\n  \"queue_capacity\": " << queue_cap
      << ",\n  \"arrival\": \"" << arrival_name << "\",\n  \"policy\": \"" << policy_name
      << "\",\n  \"base_service_rps\": " << base_rps
      << ",\n  \"saturation_rps\": " << saturation_rps
      << ",\n  \"engine\": {\"images\": " << stats.images
      << ", \"batches\": " << stats.batches << ", \"largest_batch\": " << stats.largest_batch
      << ", \"rejected\": " << stats.rejected << ", \"blocked\": " << stats.blocked
      << ", \"queue_peak\": " << stats.queue_peak << "},\n  \"sweep\": [\n    "
      << sweeps.str() << "\n  ]\n}\n";
  eval::write_results_file("bench_serve_load.json", out.str());
  std::printf("wrote %s/bench_serve_load.json\n", eval::results_dir().c_str());
  return 0;
}
