// Quickstart: train an undefended road-sign classifier and a TV-regularized
// BlurNet classifier on the synthetic LISA dataset, attack both with RP2,
// compare attack success rates, and serve the trained models through the
// batched inference engine.
//
//   ./examples/quickstart [--epochs N] [--images N] [--iters N]
#include <algorithm>
#include <cstdio>
#include <future>
#include <utility>
#include <vector>

#include "src/defense/blurnet.h"
#include "src/eval/harness.h"
#include "src/serve/engine.h"
#include "src/util/cli.h"
#include "src/util/timer.h"

using namespace blurnet;

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("epochs", "12", "training epochs per model");
  cli.add_flag("images", "6", "stop-sign images to attack");
  cli.add_flag("iters", "120", "RP2 iterations");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help("quickstart").c_str());
    return 0;
  }

  // 1. Data: 18-class synthetic LISA (see DESIGN.md for the substitution).
  data::SynthLisaOptions data_options;
  data_options.train_per_class = 40;
  data_options.test_per_class = 10;
  const auto lisa = data::make_synth_lisa(data_options);
  std::printf("dataset: %lld train / %lld test images, %d classes\n",
              static_cast<long long>(lisa.train.size()),
              static_cast<long long>(lisa.test.size()), lisa.train.num_classes);

  // 2. Train the undefended baseline and the TV-regularized defense.
  nn::LisaCnnConfig model_config;
  model_config.conv1_filters = 8;
  model_config.conv2_filters = 16;
  model_config.conv3_filters = 32;

  defense::TrainConfig train_config;
  train_config.epochs = cli.get_int("epochs");

  nn::LisaCnn baseline(model_config);
  const auto base_stats = defense::train_classifier(baseline, lisa.train, lisa.test, train_config);
  std::printf("baseline: test accuracy %.1f%%\n", 100.0 * base_stats.test_accuracy);

  defense::TrainConfig tv_config = train_config;
  tv_config.regularizer = defense::RegularizerSpec::tv(3e-4);
  nn::LisaCnn defended(model_config);
  const auto tv_stats = defense::train_classifier(defended, lisa.train, lisa.test, tv_config);
  std::printf("BlurNet (TV): test accuracy %.1f%%\n", 100.0 * tv_stats.test_accuracy);

  // 3. Serving: wrap the trained baseline in the replica-sharded inference
  // engine with a 5x5 feature-map blur as the deployed defense (Table I's
  // strongest row). Every variant ("base", "defended", plus anything
  // registered) is served by two bitwise-identical replicas; classify() routes
  // each call to the least-loaded one and slices it into coalesced forward
  // passes.
  serve::InferenceEngine engine(
      baseline, {nn::FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox},
      /*max_batch=*/64, /*replicas=*/2);

  // 4. RP2 sticker attack against both models through the evaluation
  // harness, using the paper's physical protocol: the sticker is optimized
  // on the attacker's own sign instances and evaluated on a held-out
  // stop-sign set. The harness borrows the production engine — the same
  // replicas classify the evaluation batches, and the per-target crafting
  // runs fan out across them.
  eval::ExperimentScale scale;
  scale.eval_images = cli.get_int("images");
  scale.num_targets = 3;
  scale.rp2_iterations = cli.get_int("iters");
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  eval::Harness harness(engine);
  harness.adopt_variant(serve::kBaseVariant);
  harness.add_victim("blurnet-tv", defended);

  std::printf("\nRP2 sticker attack (%d targets, %d iterations):\n", scale.num_targets,
              scale.rp2_iterations);
  const eval::WhiteboxSweep protocol{scale};
  const auto sweep_baseline =
      protocol.run(harness, serve::kBaseVariant, base_stats.test_accuracy, stop_set);
  const auto sweep_defended =
      protocol.run(harness, "blurnet-tv", tv_stats.test_accuracy, stop_set);
  std::printf("  baseline : avg ASR %.1f%%, worst %.1f%%  (L2 dissimilarity %.3f)\n",
              100.0 * sweep_baseline.average_success, 100.0 * sweep_baseline.worst_success,
              sweep_baseline.mean_l2);
  std::printf("  BlurNet  : avg ASR %.1f%%, worst %.1f%%  (L2 dissimilarity %.3f)\n",
              100.0 * sweep_defended.average_success, 100.0 * sweep_defended.worst_success,
              sweep_defended.mean_l2);
  std::printf("\nLower success on the BlurNet row is the paper's headline effect.\n");

  // 5. Synchronous batched classification through the same engine.
  const auto& test = lisa.test;

  util::Timer timer;
  const double plain_acc = serve::accuracy(engine.classify(test.images), test.labels);
  const double batched_ms = timer.milliseconds();

  timer.reset();
  const double defended_acc = serve::accuracy(
      engine.classify(test.images, serve::Options{serve::kDefendedVariant}), test.labels);
  const double defended_ms = timer.milliseconds();

  const auto count = static_cast<double>(test.size());
  std::printf("\nbatched serving (%lld test images through InferenceEngine):\n",
              static_cast<long long>(test.size()));
  std::printf("  base     : accuracy %.1f%%  (%.1f ms, %.0f img/s)\n",
              100.0 * plain_acc, batched_ms, 1e3 * count / batched_ms);
  std::printf("  defended : accuracy %.1f%%  (%.1f ms, %.0f img/s, 5x5 blur on L1 maps)\n",
              100.0 * defended_acc, defended_ms, 1e3 * count / defended_ms);

  // 6. Async traffic: push the test set image-by-image through submit(), the
  // way independent callers would. Worker threads coalesce the queue into
  // batches and load-balance them across the defended variant's replicas.
  timer.reset();
  std::vector<std::future<serve::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(test.size()));
  const std::int64_t image_numel = 3LL * 32 * 32;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    tensor::Tensor image(tensor::Shape{3, 32, 32});
    std::copy(test.images.data() + i * image_numel,
              test.images.data() + (i + 1) * image_numel, image.data());
    futures.push_back(engine.submit(std::move(image), serve::Options{serve::kDefendedVariant}));
  }
  std::size_t correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    if (futures[static_cast<std::size_t>(i)].get().label ==
        test.labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  const double submit_ms = timer.milliseconds();
  const auto stats = engine.stats();
  std::printf("  submit() : accuracy %.1f%%  (%.1f ms, %.0f img/s; %lld requests coalesced "
              "into %lld batches, largest %lld)\n",
              100.0 * static_cast<double>(correct) / count, submit_ms,
              1e3 * count / submit_ms, static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches),
              static_cast<long long>(stats.largest_batch));
  for (const auto& vs : stats.variants) {
    for (std::size_t r = 0; r < vs.replicas.size(); ++r) {
      if (vs.replicas[r].images == 0) continue;
      std::printf("    %-8s replica %zu: %lld images, %lld queued batches\n",
                  vs.variant.c_str(), r, static_cast<long long>(vs.replicas[r].images),
                  static_cast<long long>(vs.replicas[r].batches));
    }
  }
  return 0;
}
