// Spectrum analysis walk-through (the paper's motivation, Figs. 1-2): compare
// the FFT spectra of clean vs stickered stop signs at the input and at the
// first-layer feature maps, and show what a 5x5 blur does to the difference.
//
//   ./examples/spectrum_analysis [--outdir DIR]
#include <cstdio>

#include "src/defense/blurnet.h"
#include "src/signal/kernels.h"
#include "src/signal/spectrum.h"
#include "src/util/cli.h"
#include "src/util/ppm.h"

#include <filesystem>

using namespace blurnet;

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("outdir", "results/spectrum", "output directory for spectrum PGMs");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help("spectrum_analysis").c_str());
    return 0;
  }
  const std::string outdir = cli.get_string("outdir");
  std::filesystem::create_directories(outdir);

  defense::ModelZoo zoo(defense::default_zoo_config());
  nn::LisaCnn& model = zoo.get("baseline");

  const auto stop_set = data::stop_sign_eval_set(/*count=*/1);
  const auto sticker = attack::sticker_mask(stop_set.masks);
  attack::Rp2Config rp2;
  rp2.iterations = 150;
  rp2.target_class = 6;
  const auto attacked = attack::rp2_attack(model, stop_set.images, sticker, rp2);

  const int h = static_cast<int>(stop_set.images.dim(2));
  const int w = static_cast<int>(stop_set.images.dim(3));

  // --- Fig. 1: input spectra are nearly indistinguishable ---
  std::printf("Input spectrum (Fig. 1):\n");
  double mean_dist = 0.0;
  for (int c = 0; c < 3; ++c) {
    const auto clean_plane = signal::extract_plane(stop_set.images, 0, c);
    const auto adv_plane = signal::extract_plane(attacked.adversarial, 0, c);
    const double dist = signal::spectral_distance(clean_plane, adv_plane, h, w);
    mean_dist += dist / 3.0;
    if (c == 0) {
      const auto clean_spec = signal::log_magnitude_spectrum(clean_plane, h, w);
      const auto adv_spec = signal::log_magnitude_spectrum(adv_plane, h, w);
      std::vector<float> buf(clean_spec.begin(), clean_spec.end());
      util::write_pnm_chw(outdir + "/input_clean_spectrum.pgm", buf.data(), 1, h, w);
      buf.assign(adv_spec.begin(), adv_spec.end());
      util::write_pnm_chw(outdir + "/input_adv_spectrum.pgm", buf.data(), 1, h, w);
    }
  }
  std::printf("  relative spectral distance clean vs adversarial: %.4f (small => the\n"
              "  sticker is invisible in the input spectrum, motivating feature-level filtering)\n\n",
              mean_dist);

  // --- Fig. 2: first-layer feature-map spectra ---
  const auto clean_features =
      model.forward(autograd::Variable::constant(stop_set.images)).features_l1.value();
  const auto adv_features =
      model.forward(autograd::Variable::constant(attacked.adversarial)).features_l1.value();
  const auto blur = signal::make_blur_kernel(5);
  const auto adv_blurred = signal::filter2d_depthwise(adv_features, blur);

  const int fh = static_cast<int>(clean_features.dim(2));
  const int fw = static_cast<int>(clean_features.dim(3));
  std::printf("First-layer feature maps (Fig. 2), high-frequency energy ratio:\n");
  std::printf("  %-8s %10s %10s %14s\n", "channel", "clean", "adv", "adv+5x5 blur");
  const std::int64_t channels = clean_features.dim(1);
  for (std::int64_t c = 0; c < channels; ++c) {
    const auto hf_clean = signal::high_frequency_energy_ratio(
        signal::extract_plane(clean_features, 0, c), fh, fw);
    const auto hf_adv = signal::high_frequency_energy_ratio(
        signal::extract_plane(adv_features, 0, c), fh, fw);
    const auto hf_blur = signal::high_frequency_energy_ratio(
        signal::extract_plane(adv_blurred, 0, c), fh, fw);
    std::printf("  %-8lld %9.4f %9.4f %13.4f\n", static_cast<long long>(c), hf_clean,
                hf_adv, hf_blur);
  }
  std::printf("\nBlurring the feature maps strips the high-frequency energy the sticker\n"
              "injected — the core observation behind BlurNet.\n");
  std::printf("spectra written to %s\n", outdir.c_str());
  return 0;
}
