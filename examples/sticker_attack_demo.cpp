// Sticker attack demo: craft an RP2 adversarial stop sign against a trained
// classifier, dump PPM images (clean / sticker mask / adversarial /
// perturbation), and print the classifier's view of each.
//
//   ./examples/sticker_attack_demo [--target K] [--iters N] [--poses K] [--outdir DIR]
#include <cstdio>
#include <filesystem>

#include "src/defense/blurnet.h"
#include "src/serve/engine.h"
#include "src/tensor/ops.h"
#include "src/util/cli.h"
#include "src/util/ppm.h"

using namespace blurnet;

namespace {

void describe(const serve::InferenceEngine& engine, const tensor::Tensor& batch,
              const char* name) {
  // The deployed view of the image: one batched classify() through the
  // engine, which reports the label and its softmax confidence.
  const auto prediction = engine.classify(batch)[0];
  std::printf("  %-14s -> %-20s (p=%.2f)\n", name,
              data::SignRenderer::class_names()[static_cast<std::size_t>(prediction.label)]
                  .c_str(),
              prediction.confidence);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("target", "6", "attack target class id (0-17)");
  cli.add_flag("iters", "200", "RP2 iterations");
  cli.add_flag("poses", "4", "EOT poses averaged per step (1 = single-pose RP2)");
  cli.add_flag("outdir", "results/sticker_demo", "output directory for PPM dumps");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help("sticker_attack_demo").c_str());
    return 0;
  }
  const int target = cli.get_int("target");
  const std::string outdir = cli.get_string("outdir");
  std::filesystem::create_directories(outdir);

  // Train (or load) the baseline from the model zoo cache and serve it.
  defense::ModelZoo zoo(defense::default_zoo_config());
  serve::InferenceEngine engine(zoo.get("baseline"), {});
  std::printf("baseline test accuracy: %.1f%%\n\n", 100.0 * zoo.test_accuracy("baseline"));

  // One stop sign + the two-bar sticker mask.
  const auto stop_set = data::stop_sign_eval_set(/*count=*/1);
  const auto sticker = attack::sticker_mask(stop_set.masks);

  attack::Rp2Config rp2;
  rp2.iterations = cli.get_int("iters");
  rp2.target_class = target;
  // Pose-batched EOT: every step forwards all (image, pose) pairs in one
  // graph and averages the targeted loss over the sampled alignments.
  rp2.eot_poses = cli.get_int("poses");
  std::printf("crafting with %d EOT pose%s per step\n", rp2.eot_poses,
              rp2.eot_poses == 1 ? "" : "s");
  // The victim handle splits the attack's two roles: gradients through the
  // serving replica's weight clone, final predictions through the engine.
  const attack::VictimHandle victim(
      engine.replica_model(serve::kBaseVariant, 0), [&engine](const tensor::Tensor& images) {
        std::vector<int> labels;
        for (const auto& p : engine.classify(images)) labels.push_back(p.label);
        return labels;
      });
  const auto result = attack::rp2_attack(victim, stop_set.images, sticker, rp2);

  std::printf("classifier predictions:\n");
  describe(engine, stop_set.images, "clean");
  describe(engine, result.adversarial, "adversarial");
  std::printf("\nattack target was '%s'; L2 dissimilarity %.3f\n",
              data::SignRenderer::class_names()[static_cast<std::size_t>(target)].c_str(),
              result.l2_dissimilarity(stop_set.images));

  // Dump images.
  const int h = static_cast<int>(stop_set.images.dim(2));
  const int w = static_cast<int>(stop_set.images.dim(3));
  util::write_pnm_chw(outdir + "/clean.ppm", stop_set.images.data(), 3, h, w);
  util::write_pnm_chw(outdir + "/adversarial.ppm", result.adversarial.data(), 3, h, w);
  util::write_pnm_chw(outdir + "/mask.pgm", sticker.data(), 1, h, w);
  // Visualize the perturbation around mid-gray.
  auto vis = tensor::add_scalar(tensor::mul_scalar(result.perturbation, 0.5f), 0.5f);
  util::write_pnm_chw(outdir + "/perturbation.ppm", vis.data(), 3, h, w);
  std::printf("wrote clean.ppm / adversarial.ppm / mask.pgm / perturbation.ppm to %s\n",
              outdir.c_str());
  return 0;
}
