// Defense comparison: pull several trained variants from the model zoo and
// evaluate them under the white-box RP2 protocol at a reduced scale. This is
// a miniature of bench_table2_whitebox meant for interactive exploration.
//
//   ./examples/defense_comparison [--variants a,b,c] [--images N] [--targets N]
#include <cstdio>
#include <sstream>

#include "src/defense/blurnet.h"
#include "src/eval/experiments.h"
#include "src/serve/engine.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace blurnet;

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("variants", "baseline,tv1e-4,dw5", "comma-separated zoo variants");
  cli.add_flag("images", "6", "stop-sign eval images");
  cli.add_flag("targets", "3", "number of attack targets");
  cli.add_flag("iters", "100", "RP2 iterations");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help("defense_comparison").c_str());
    return 0;
  }

  std::vector<std::string> variants;
  {
    std::stringstream ss(cli.get_string("variants"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) variants.push_back(item);
    }
  }

  eval::ExperimentScale scale;
  scale.eval_images = cli.get_int("images");
  scale.num_targets = cli.get_int("targets");
  scale.rp2_iterations = cli.get_int("iters");

  defense::ModelZoo zoo(defense::default_zoo_config());
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  util::Table table({"Variant", "Legit Acc.", "Avg ASR", "Worst ASR", "L2 Dissim"});
  for (const auto& name : variants) {
    nn::LisaCnn& model = zoo.get(name);
    // Clean accuracy through the serving path: the engine's "base" variant
    // classifies the whole test set in coalesced forward passes, exactly like
    // production traffic would see the model.
    const serve::InferenceEngine engine(model, {});
    const auto& test = zoo.dataset().test;
    const double acc = serve::accuracy(
        engine.classify(test.images, serve::Options{serve::kBaseVariant}), test.labels);
    const auto sweep = eval::whitebox_sweep(model, acc, stop_set, scale);
    table.add_row({name, util::Table::pct(sweep.legit_accuracy),
                   util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success),
                   util::Table::num(sweep.mean_l2)});
  }
  std::printf("white-box RP2 sweep (%d images, %d targets, %d iterations)\n\n%s",
              scale.eval_images, scale.num_targets, scale.rp2_iterations,
              table.to_string().c_str());
  return 0;
}
