// Defense comparison: pull several trained variants from the model zoo and
// evaluate them under the white-box RP2 protocol at a reduced scale. This is
// a miniature of bench_table2_whitebox meant for interactive exploration.
//
//   ./examples/defense_comparison [--variants a,b,c] [--images N] [--targets N]
#include <cstdio>
#include <sstream>

#include "src/defense/blurnet.h"
#include "src/eval/harness.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace blurnet;

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_flag("variants", "baseline,tv1e-4,dw5", "comma-separated zoo variants");
  cli.add_flag("images", "6", "stop-sign eval images");
  cli.add_flag("targets", "3", "number of attack targets");
  cli.add_flag("iters", "100", "RP2 iterations");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help("defense_comparison").c_str());
    return 0;
  }

  std::vector<std::string> variants;
  {
    std::stringstream ss(cli.get_string("variants"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) variants.push_back(item);
    }
  }

  eval::ExperimentScale scale;
  scale.eval_images = cli.get_int("images");
  scale.num_targets = cli.get_int("targets");
  scale.rp2_iterations = cli.get_int("iters");

  defense::ModelZoo zoo(defense::default_zoo_config());
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  // One engine-backed harness serves every requested variant: each zoo model
  // is registered as a named engine variant, and all clean/adversarial
  // classification batches go through the batched serving path, exactly like
  // production traffic would see the models.
  const std::string base_name = variants.empty() ? "baseline" : variants.front();
  eval::Harness harness(zoo.get(base_name));
  const eval::WhiteboxSweep protocol{scale};

  util::Table table({"Variant", "Legit Acc.", "Avg ASR", "Worst ASR", "L2 Dissim"});
  for (const auto& name : variants) {
    if (name == base_name) {
      // The engine already serves these weights as "base": alias, don't
      // deep-clone a second replica set.
      harness.engine().alias_variant(name, serve::kBaseVariant);
      harness.adopt_variant(name);
    } else {
      harness.add_victim(name, zoo.get(name));
    }
    const double acc = harness.dataset_accuracy(name, zoo.dataset().test);
    const auto sweep = protocol.run(harness, name, acc, stop_set);
    table.add_row({name, util::Table::pct(sweep.legit_accuracy),
                   util::Table::pct(sweep.average_success),
                   util::Table::pct(sweep.worst_success),
                   util::Table::num(sweep.mean_l2)});
  }
  std::printf("white-box RP2 sweep (%d images, %d targets, %d iterations)\n\n%s",
              scale.eval_images, scale.num_targets, scale.rp2_iterations,
              table.to_string().c_str());
  return 0;
}
