#!/usr/bin/env python3
"""Regenerate the seed + regression corpus under fuzz/corpus/.

One subdirectory per harness (frame/, classify/, predictions/, stats/,
error/, model/, serialize/ — matching fuzz/fuzz_<name>.cpp and the driver
table in tests/fuzz_replay_test.cpp). Seeds cover the happy path of every
decoder plus the regression inputs for the hand-found PR 8 wire bugs:
overflowing n*c*h*w dimension products, wrapping count prefixes, oversized
length prefixes, and truncation at every interesting boundary.

Deterministic: running it twice produces byte-identical files. Run from the
repo root after changing the wire format:

    python3 tools/make_fuzz_corpus.py
"""
import os
import struct

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "fuzz", "corpus")

MAGIC = 0x544E4C42
VERSION = 1

OP_CLASSIFY = 0x01
OP_CLASSIFY_BATCH = 0x02
OP_STATS = 0x03
OP_PING = 0x04
OP_CLASSIFY_RESP = 0x81
OP_CLASSIFY_BATCH_RESP = 0x82
OP_STATS_RESP = 0x83
OP_PONG = 0x84
OP_ERROR = 0xFF


def u8(v): return struct.pack("<B", v)
def u16(v): return struct.pack("<H", v)
def u32(v): return struct.pack("<I", v)
def u64(v): return struct.pack("<Q", v)
def i64(v): return struct.pack("<q", v)
def f32(v): return struct.pack("<f", v)
def f64(v): return struct.pack("<d", v)
def wstr(s): return u16(len(s)) + s.encode()


def build_frame(opcode, payload, **kw):
    return (u32(kw.get("magic", MAGIC)) + u8(kw.get("version", VERSION)) + u8(opcode) +
            u16(kw.get("reserved", 0)) + u32(kw.get("request_id", 7)) +
            u32(kw.get("length", len(payload))) + payload)


def classify_payload(variant=b"base", max_batch=0, batch=None, c=3, h=4, w=4, pixels=None):
    body = wstr(variant.decode() if isinstance(variant, bytes) else variant) + u32(max_batch)
    n = 1
    if batch is not None:
        body += u32(batch)
        n = batch
    body += u16(c) + u16(h) + u16(w)
    if pixels is None:
        pixels = b"".join(f32(0.25 * i) for i in range(n * c * h * w))
    return body + pixels


def predictions_payload(batch=None, preds=1, k=3):
    body = b"" if batch is None else u32(batch)
    count = preds if batch is None else batch
    for i in range(count):
        body += u32(i % 43) + f32(0.9) + u32(k) + b"".join(f32(0.1 * j) for j in range(k))
    return body


def error_payload(code=2, message="queue full: request shed"):
    return u16(code) + wstr(message)


def stats_payload(variants=1, connections=1):
    body = b"".join(i64(v) for v in range(14))
    body += u32(variants)
    for i in range(variants):
        body += wstr(f"variant{i}") + b"".join(i64(j) for j in range(8))
        body += b"".join(f64(1.5 * j) for j in range(4))
    body += u32(connections)
    for i in range(connections):
        body += u64(i + 1) + b"".join(i64(j) for j in range(5))
    return body


def model_checkpoint(count=2, truncate=None, dims_len=None, data_len=None):
    body = u32(0x544E4C42) + u32(1) + u32(count)
    params = [("conv1.weight", [2, 3, 3, 3]), ("fc.bias", [4])]
    for name, dims in params[:count]:
        body += u32(len(name)) + name.encode()
        d = dims_len if dims_len is not None else len(dims)
        body += i64(d) + b"".join(i64(x) for x in dims)
        numel = 1
        for x in dims:
            numel *= x
        n = data_len if data_len is not None else numel
        body += i64(n) + b"".join(f32(0.01 * i) for i in range(numel))
        dims_len = data_len = None  # only distort the first record
    return body if truncate is None else body[:truncate]


def write(sub, name, data):
    path = os.path.join(ROOT, sub)
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, name), "wb") as f:
        f.write(data)


def main():
    # ---- frame/: framing-layer seeds (full frames, header attacks) ----------
    write("frame", "ping", build_frame(OP_PING, b""))
    write("frame", "classify_valid", build_frame(OP_CLASSIFY, classify_payload()))
    write("frame", "classify_batch_valid",
          build_frame(OP_CLASSIFY_BATCH, classify_payload(batch=2)))
    write("frame", "stats_response", build_frame(OP_STATS_RESP, stats_payload()))
    write("frame", "error_response", build_frame(OP_ERROR, error_payload()))
    write("frame", "two_frames", build_frame(OP_PING, b"") + build_frame(OP_STATS, b""))
    write("frame", "bad_magic", build_frame(OP_PING, b"", magic=0xDEADBEEF))
    write("frame", "bad_version", build_frame(OP_PING, b"", version=9))
    write("frame", "reserved_nonzero", build_frame(OP_PING, b"", reserved=1))
    write("frame", "unknown_opcode", build_frame(0x55, b""))
    # PR 8 regression: a length prefix far past max_frame_bytes must be
    # rejected at the header, never buffered.
    write("frame", "oversized_length", build_frame(OP_CLASSIFY, b"", length=0xFFFFFFFF))
    # PR 8 regression: truncation mid-header and mid-payload.
    whole = build_frame(OP_CLASSIFY, classify_payload())
    write("frame", "truncated_mid_header", whole[:9])
    write("frame", "truncated_mid_payload", whole[: 16 + 5])

    # ---- classify/: payload decoder (1 leading batch-flag byte) -------------
    write("classify", "single_valid", u8(0) + classify_payload())
    write("classify", "batch_valid", u8(1) + classify_payload(batch=2))
    write("classify", "zero_dim", u8(0) + classify_payload(c=0, pixels=b""))
    # PR 8 regression: n*c*h*w products that overflow int64 / wrap to match
    # the payload size must be rejected before any Tensor allocation.
    write("classify", "overflow_dims",
          u8(1) + wstr("base") + u32(0) + u32(0xFFFFFFFF) + u16(0xFFFF) + u16(0xFFFF) +
          u16(0xFFFF) + b"\x00" * 64)
    write("classify", "wrapping_count",
          u8(1) + wstr("base") + u32(0) + u32(0x40000000) + u16(2) + u16(2) + u16(2) +
          b"\x00" * 32)
    write("classify", "truncated_pixels", u8(0) + classify_payload()[:-7])
    write("classify", "trailing_garbage", u8(0) + classify_payload() + b"\xAA")
    write("classify", "huge_variant_name", u8(0) + u16(0xFFFF) + b"v" * 40)

    # ---- predictions/: payload decoder (1 leading batch-flag byte) ----------
    write("predictions", "single_valid", u8(0) + predictions_payload())
    write("predictions", "batch_valid", u8(1) + predictions_payload(batch=3))
    # PR 8 regression: wrapping count prefixes (count * 12 wraps a u32) must
    # be bounded against the payload bytes before reserve().
    write("predictions", "hostile_count", u8(1) + u32(0xFFFFFFFF) + b"\x00" * 16)
    write("predictions", "hostile_logit_count",
          u8(0) + u32(1) + f32(0.5) + u32(0x40000001) + b"\x00" * 8)
    write("predictions", "truncated", u8(1) + predictions_payload(batch=2)[:-3])

    # ---- stats/ -------------------------------------------------------------
    write("stats", "valid", stats_payload())
    write("stats", "empty_counts", stats_payload(variants=0, connections=0))
    write("stats", "hostile_variant_count",
          stats_payload(variants=0, connections=0)[:-8] + u32(0xFFFFFFFF) + u32(0))
    write("stats", "hostile_connection_count",
          stats_payload(variants=0, connections=0)[:-4] + u32(0xFFFFFFFF))
    write("stats", "truncated", stats_payload()[:-9])

    # ---- error/ -------------------------------------------------------------
    write("error", "overload", error_payload(code=2))
    write("error", "invalid_request", error_payload(code=1, message="bad shape"))
    write("error", "unknown_code", error_payload(code=99))
    write("error", "truncated", error_payload()[:-4])
    write("error", "empty", b"")

    # ---- model/: checkpoint reader ------------------------------------------
    write("model", "valid", model_checkpoint())
    write("model", "bad_magic", u32(0x12345678) + model_checkpoint()[4:])
    write("model", "bad_version", model_checkpoint()[:4] + u32(9) + model_checkpoint()[8:])
    write("model", "truncated", model_checkpoint(truncate=30))
    # Hostile counts: a count prefix promising far more records/elements than
    # the file holds must fail cleanly before allocation.
    write("model", "hostile_record_count", u32(0x544E4C42) + u32(1) + u32(0xFFFFFFFF))
    write("model", "hostile_dims_count", model_checkpoint(count=1, dims_len=2**60))
    write("model", "hostile_data_count", model_checkpoint(count=1, data_len=2**60))
    write("model", "negative_count", model_checkpoint(count=1, dims_len=-1))

    # ---- serialize/: BinaryReader op tape -----------------------------------
    write("serialize", "ops_mixed",
          u32(0) + u32(5) + u32(1) + i64(-3) + u32(3) + u32(4) + b"abcd" +
          u32(4) + i64(2) + f32(1.0) + f32(2.0) + u32(5) + i64(1) + i64(9))
    write("serialize", "hostile_string_len", u32(3) + u32(0xFFFFFFFF) + b"x")
    write("serialize", "hostile_array_len", u32(4) + i64(2**61) + b"\x00" * 8)
    write("serialize", "negative_array_len", u32(5) + i64(-5))
    write("serialize", "truncated_scalar", u32(1) + b"\x01\x02")
    write("serialize", "empty", b"")

    total = 0
    for sub in sorted(os.listdir(ROOT)):
        n = len(os.listdir(os.path.join(ROOT, sub)))
        total += n
        print(f"  {sub}/: {n} seeds")
    print(f"{total} corpus files under {os.path.normpath(ROOT)}")


if __name__ == "__main__":
    main()
