#!/usr/bin/env python3
"""Repo-specific lint pass (CI: the `lint` job; locally `python3 tools/lint.py`).

Checks the invariants this codebase actually depends on and that generic
linters cannot express:

  config-validate     every `*Config` struct that declares data members must
                      also declare `validate()` — configs are validated at the
                      subsystem boundary, never trusted implicitly.
  reserve-bounds      `.reserve(...)` in src/net decode paths must be preceded
                      by a bounds check against the remaining payload bytes
                      (or size from an already-materialized object): a length
                      prefix must never reach an allocator unchecked.
  nondeterminism      src/attack, src/serve, src/linalg, src/tensor are
                      seed-deterministic: no rand()/std::random_device/time()
                      /system_clock::now(). Wall-clock timing belongs in
                      util::Timer / steady_clock at the edges.
  detached-thread     no `.detach()` in src/serve + src/net — every thread is
                      joined so shutdown is provable (no use-after-free on
                      engine teardown).
  naked-new           no naked new/delete in src/serve + src/net — ownership
                      goes through containers and smart pointers.
  simd-confinement    raw SIMD intrinsics (_mm*/vfmaq_* calls, immintrin.h /
                      arm_neon.h includes) live only in the per-ISA kernel
                      translation units (*_kernels_avx2.cpp, *_kernels_neon.cpp)
                      — everything else goes through kernels/dispatch.h, which
                      is what keeps the scalar fallback path buildable and the
                      dispatch contract auditable.

Comments and string literals are stripped before matching, so prose like
"no new classify requests" never trips a rule. A finding can be suppressed
with `// lint:allow(<rule>)` on the same line — use sparingly and say why.

`--self-test` runs every rule against embedded known-bad snippets and fails
if any rule has gone blind; CI runs both modes.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories per rule family.
DETERMINISTIC_DIRS = ["src/attack", "src/serve", "src/linalg", "src/tensor"]
OWNERSHIP_DIRS = ["src/serve", "src/net"]
DECODE_DIRS = ["src/net"]

# How many stripped lines above a reserve() may hold its bounds check.
RESERVE_WINDOW = 8


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers in findings stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            # Blank the comment body; lint:allow() markers are looked up in
            # the raw source line, not the stripped one.
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i : j + 2]))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * max(0, j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        rel = self.path
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            pass
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def allowed(line: str, rule: str) -> bool:
    return f"lint:allow({rule})" in line


# ---------------------------------------------------------------------------
# config-validate


def check_config_validate(path: Path, text: str) -> list:
    """Every `struct FooConfig { ... }` with at least one data member must
    declare validate()."""
    findings = []
    stripped = strip_comments_and_strings(text)
    for m in re.finditer(r"\bstruct\s+(\w*Config)\s*(?::[^{]*)?\{", stripped):
        name = m.group(1)
        # Find the matching close brace.
        depth, i = 1, m.end()
        while i < len(stripped) and depth > 0:
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
            i += 1
        body = stripped[m.end() : i - 1]
        line = stripped.count("\n", 0, m.start()) + 1
        # A data member: a line ending in `;` that is neither a function
        # declaration/deleted op nor a using/typedef/friend/static-assert.
        has_member = False
        flat = re.sub(r"\{[^{}]*\}", "", body)  # drop nested-brace bodies
        for raw in flat.split("\n"):
            s = raw.strip()
            if not s.endswith(";"):
                continue
            if re.match(r"(using|typedef|friend|static_assert|public|private|protected)\b", s):
                continue
            if re.search(r"\)\s*(const\s*)?(noexcept\s*)?(=\s*(default|delete|0)\s*)?;$", s):
                continue  # function declaration
            has_member = True
            break
        if has_member and not re.search(r"\bvalidate\s*\(", body):
            src_line = text.split("\n")[line - 1] if line <= text.count("\n") + 1 else ""
            if allowed(src_line, "config-validate"):
                continue
            findings.append(
                Finding(
                    "config-validate",
                    path,
                    line,
                    f"struct {name} has data members but no validate() — "
                    "configs are checked at the subsystem boundary",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# reserve-bounds


def check_reserve_bounds(path: Path, text: str) -> list:
    """In src/net, `.reserve(arg)` must either take a size from a
    materialized object (.size()/.dim()) or follow a bounds check that
    mentions remaining payload bytes within RESERVE_WINDOW lines."""
    findings = []
    lines = strip_comments_and_strings(text).split("\n")
    raw_lines = text.split("\n")
    for idx, line in enumerate(lines):
        m = re.search(r"\.\s*reserve\s*\(([^;]*)\)", line)
        if not m:
            continue
        if allowed(raw_lines[idx], "reserve-bounds"):
            continue
        arg = m.group(1)
        if re.search(r"\.\s*(size|dim|length)\s*\(", arg):
            continue  # size of something already in memory — can't be a bomb
        window = lines[max(0, idx - RESERVE_WINDOW) : idx + 1]
        # Accept either an explicit bounds check against the remaining payload
        # or a size read off an already-materialized object in the window.
        evidence = r"\bremaining\s*\(|\bcheck_remaining\b|\brequire\b|\.\s*(size|dim|length)\s*\("
        if any(re.search(evidence, w) for w in window):
            continue
        findings.append(
            Finding(
                "reserve-bounds",
                path,
                idx + 1,
                f"reserve({arg.strip()}) without a bounds check against the "
                f"remaining payload bytes in the preceding {RESERVE_WINDOW} lines",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# nondeterminism / detached-thread / naked-new: simple banned patterns

BANNED = [
    # (rule, dirs, regex, message)
    (
        "nondeterminism",
        DETERMINISTIC_DIRS,
        re.compile(r"(?<![\w:])s?rand\s*\("),
        "rand()/srand() — use util::Rng with an explicit seed",
    ),
    (
        "nondeterminism",
        DETERMINISTIC_DIRS,
        re.compile(r"\bstd::random_device\b"),
        "std::random_device — seeds must come from config, not entropy",
    ),
    (
        "nondeterminism",
        DETERMINISTIC_DIRS,
        re.compile(r"(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
        "time() — wall clock reads make runs unreproducible",
    ),
    (
        "nondeterminism",
        DETERMINISTIC_DIRS,
        re.compile(r"\bsystem_clock::now\s*\(\s*\)"),
        "system_clock::now() — use steady_clock (util::Timer) for durations",
    ),
    (
        "detached-thread",
        OWNERSHIP_DIRS,
        re.compile(r"\.\s*detach\s*\(\s*\)"),
        "detached thread — every thread must be joined for provable shutdown",
    ),
    (
        "naked-new",
        OWNERSHIP_DIRS,
        re.compile(r"(?<![\w:])new\s+[A-Za-z_]"),
        "naked new — use std::make_unique/std::make_shared or a container",
    ),
    (
        "naked-new",
        OWNERSHIP_DIRS,
        re.compile(r"(?<![\w:])delete(\s*\[\s*\])?\s+[A-Za-z_*(]"),
        "naked delete — ownership goes through smart pointers",
    ),
]


def check_banned(path: Path, text: str, rel: str) -> list:
    findings = []
    lines = strip_comments_and_strings(text).split("\n")
    raw_lines = text.split("\n")
    for rule, dirs, pattern, message in BANNED:
        if not any(rel.startswith(d + "/") or rel == d for d in dirs):
            continue
        for idx, line in enumerate(lines):
            if pattern.search(line) and not allowed(raw_lines[idx], rule):
                findings.append(Finding(rule, path, idx + 1, message))
    return findings


# ---------------------------------------------------------------------------
# simd-confinement

# Files allowed to use raw intrinsics: the per-ISA kernel TUs.
SIMD_TU = re.compile(r"_kernels_(avx2|neon)\.cpp$")

# Intrinsic fingerprints: x86 _mm/_mm256 calls, NEON v*q_* calls, and the
# ISA headers themselves (an include anywhere else would let intrinsics
# leak past the dispatch layer unnoticed).
SIMD_PATTERNS = [
    re.compile(r"\b_mm\d*_\w+\s*\("),
    re.compile(r"\bv(?:fma|mla|ld1|st1|dup|min|max|add|mul|cvt|get|set)q?\w*_\w+\s*\("),
    re.compile(r"#\s*include\s*<(immintrin|arm_neon)\.h>"),
]


def check_simd_confinement(path: Path, text: str, rel: str) -> list:
    if SIMD_TU.search(rel):
        return []
    findings = []
    lines = strip_comments_and_strings(text).split("\n")
    raw_lines = text.split("\n")
    for idx, line in enumerate(lines):
        for pattern in SIMD_PATTERNS:
            if pattern.search(line) and not allowed(raw_lines[idx], "simd-confinement"):
                findings.append(
                    Finding(
                        "simd-confinement",
                        path,
                        idx + 1,
                        "raw SIMD intrinsic outside a *_kernels_{avx2,neon}.cpp "
                        "translation unit — route through kernels/dispatch.h",
                    )
                )
                break
    return findings


# ---------------------------------------------------------------------------
# driver


def lint_file(path: Path, rel: str, text: str) -> list:
    findings = []
    if rel.startswith("src/") and rel.endswith(".h"):
        findings += check_config_validate(path, text)
    if any(rel.startswith(d + "/") for d in DECODE_DIRS):
        findings += check_reserve_bounds(path, text)
    findings += check_banned(path, text, rel)
    findings += check_simd_confinement(path, text, rel)
    return findings


def lint_tree() -> list:
    findings = []
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.relative_to(REPO).as_posix()
        findings += lint_file(path, rel, path.read_text())
    return findings


# ---------------------------------------------------------------------------
# self-test: every rule must fire on a known-bad snippet and stay quiet on a
# known-good one.

SELF_TESTS = [
    # (name, virtual path, snippet, rule expected to fire; None = must be clean)
    (
        "config-without-validate",
        "src/fake/config.h",
        "struct BadConfig {\n  int epochs = 3;\n  double lr = 0.1;\n};\n",
        "config-validate",
    ),
    (
        "config-with-validate-is-clean",
        "src/fake/config.h",
        "struct GoodConfig {\n  int epochs = 3;\n  void validate() const;\n};\n",
        None,
    ),
    (
        "config-with-only-functions-is-clean",
        "src/fake/config.h",
        "struct FnConfig {\n  int total() const;\n};\n",
        None,
    ),
    (
        "unchecked-reserve",
        "src/net/bad.cpp",
        "void f(Reader& r) {\n  std::uint32_t n = r.read_u32();\n"
        "  std::vector<float> v;\n  v.reserve(n);\n}\n",
        "reserve-bounds",
    ),
    (
        "checked-reserve-is-clean",
        "src/net/good.cpp",
        "void f(Reader& r) {\n  std::uint32_t n = r.read_u32();\n"
        "  if (n > r.remaining() / 4) throw WireError(0);\n"
        "  std::vector<float> v;\n  v.reserve(n);\n}\n",
        None,
    ),
    (
        "materialized-reserve-is-clean",
        "src/net/good2.cpp",
        "void f(const Tensor& t) {\n  std::vector<float> v;\n"
        "  v.reserve(t.dim(0));\n}\n",
        None,
    ),
    (
        "rand-call",
        "src/serve/bad.cpp",
        "int f() { return rand(); }\n",
        "nondeterminism",
    ),
    (
        "random-device",
        "src/attack/bad.cpp",
        "std::uint64_t f() { std::random_device rd; return rd(); }\n",
        "nondeterminism",
    ),
    (
        "time-call",
        "src/tensor/bad.cpp",
        "long f() { return time(nullptr); }\n",
        "nondeterminism",
    ),
    (
        "system-clock",
        "src/linalg/bad.cpp",
        "auto f() { return std::chrono::system_clock::now(); }\n",
        "nondeterminism",
    ),
    (
        "steady-clock-is-clean",
        "src/serve/good.cpp",
        "auto f() { return std::chrono::steady_clock::now(); }\n",
        None,
    ),
    (
        "detached-thread",
        "src/net/bad2.cpp",
        "void f() { std::thread([] {}).detach(); }\n",
        "detached-thread",
    ),
    (
        "naked-new",
        "src/serve/bad2.cpp",
        "Widget* f() { return new Widget(); }\n",
        "naked-new",
    ),
    (
        "naked-delete",
        "src/serve/bad3.cpp",
        "void f(Widget* w) { delete w; }\n",
        "naked-new",
    ),
    (
        "comment-mention-is-clean",
        "src/serve/good2.cpp",
        "// no new classify requests are admitted after drain\n"
        "// callers should not detach() or delete anything here\n"
        "void f();\n",
        None,
    ),
    (
        "string-mention-is-clean",
        "src/net/good3.cpp",
        'const char* k = "use time() sparingly; never rand()";\n',
        None,
    ),
    (
        "allow-marker-suppresses",
        "src/serve/good3.cpp",
        "Widget* f() { return new Widget(); }  // lint:allow(naked-new) pool slab\n",
        None,
    ),
    (
        "avx2-intrinsic-outside-kernel-tu",
        "src/linalg/gemm.cpp",
        "void micro(float* c, __m256 a, __m256 b) {\n"
        "  _mm256_storeu_ps(c, _mm256_fmadd_ps(a, b, _mm256_loadu_ps(c)));\n}\n",
        "simd-confinement",
    ),
    (
        "immintrin-include-outside-kernel-tu",
        "src/signal/kernels.cpp",
        "#include <immintrin.h>\n",
        "simd-confinement",
    ),
    (
        "neon-intrinsic-outside-kernel-tu",
        "src/autograd/ops.cpp",
        "float32x4_t f(float32x4_t a, float32x4_t b) { return vminq_f32(a, b); }\n",
        "simd-confinement",
    ),
    (
        "intrinsics-in-kernel-tu-are-clean",
        "src/kernels/simd_kernels_avx2.cpp",
        "#include <immintrin.h>\n"
        "void micro(float* c, __m256 a, __m256 b) {\n"
        "  _mm256_storeu_ps(c, _mm256_fmadd_ps(a, b, _mm256_loadu_ps(c)));\n}\n",
        None,
    ),
    (
        "intrinsic-comment-mention-is-clean",
        "src/linalg/gemm.cpp",
        "// the avx2 TU accumulates with _mm256_fmadd_ps(a, b, c)\nvoid f();\n",
        None,
    ),
]


def self_test() -> int:
    failures = 0
    for name, rel, snippet, expected in SELF_TESTS:
        found = {f.rule for f in lint_file(Path(rel), rel, snippet)}
        if expected is None:
            if found:
                print(f"self-test FAILED: {name}: expected clean, got {sorted(found)}")
                failures += 1
        elif expected not in found:
            print(f"self-test FAILED: {name}: rule {expected} did not fire (got {sorted(found)})")
            failures += 1
    if failures == 0:
        print(f"self-test ok: {len(SELF_TESTS)} cases")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="check that every rule fires on known-bad code")
    args = parser.parse_args()
    if args.self_test:
        return 1 if self_test() else 0
    findings = lint_tree()
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
