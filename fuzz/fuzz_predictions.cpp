// libFuzzer harness for blurnet::fuzzing::drive_predictions (see drivers.h for the
// contract). Build with -DBLURNET_FUZZ=ON; clang links -fsanitize=fuzzer,
// other compilers get a corpus-file replay main().
#include "fuzz/drivers.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  blurnet::fuzzing::drive_predictions(data, size);
  return 0;
}

#include "fuzz/standalone_main.inc"
