// Shared fuzz drivers: the one-input entry points behind every harness.
//
// Each driver feeds attacker-controlled bytes into one decode surface and
// enforces the surface's contract: *either* a successful decode *or* the
// decoder's declared error type (net::WireError for the wire codec,
// std::runtime_error for the checkpoint reader) — never a crash, a sanitizer
// report, or an unbounded allocation. Any other exception escapes the driver,
// which libFuzzer (and the corpus-replay gtest) treat as a finding.
//
// The same functions back two builds:
//   * fuzz/fuzz_*.cpp wraps one driver each in LLVMFuzzerTestOneInput
//     (clang, -fsanitize=fuzzer; gcc builds get a file-replay main()), and
//   * tests/fuzz_replay_test.cpp replays every checked-in corpus file through
//     its driver in every CI configuration, gcc included.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/autograd/variable.h"
#include "src/net/frame.h"
#include "src/net/wire.h"
#include "src/nn/model_io.h"
#include "src/tensor/tensor.h"
#include "src/util/serialize.h"

namespace blurnet::fuzzing {

/// Route a complete frame's payload through the payload decoder its opcode
/// selects, the way the server/client dispatch would. WireError is the
/// decoders' declared failure mode and is swallowed.
inline void decode_payload(const net::Frame& frame) {
  try {
    switch (frame.opcode) {
      case net::Opcode::kClassify:
        net::decode_classify_request(frame.payload.data(), frame.payload.size(), false);
        break;
      case net::Opcode::kClassifyBatch:
        net::decode_classify_request(frame.payload.data(), frame.payload.size(), true);
        break;
      case net::Opcode::kClassifyResponse:
        net::decode_predictions(frame.payload.data(), frame.payload.size(), false);
        break;
      case net::Opcode::kClassifyBatchResponse:
        net::decode_predictions(frame.payload.data(), frame.payload.size(), true);
        break;
      case net::Opcode::kStatsResponse:
        net::decode_stats(frame.payload.data(), frame.payload.size());
        break;
      case net::Opcode::kErrorResponse:
        net::decode_error(frame.payload.data(), frame.payload.size());
        break;
      case net::Opcode::kStats:
      case net::Opcode::kPing:
      case net::Opcode::kPongResponse:
        break;  // empty payloads; nothing to decode
    }
  } catch (const net::WireError&) {
  }
}

/// FrameDecoder::feed/next, differentially: the whole input in one feed()
/// against the same bytes one byte at a time. Chunking is a transport
/// artifact, so the two runs must reassemble the same frames and agree on
/// whether the stream is malformed; a divergence throws std::logic_error.
inline void drive_frame_decoder(const std::uint8_t* data, std::size_t size) {
  struct Outcome {
    std::size_t frames = 0;
    bool wire_error = false;
  };
  const auto run = [&](std::size_t chunk) {
    Outcome outcome;
    // Small bound so hostile-length rejection is reachable with tiny inputs.
    net::FrameDecoder decoder(/*max_frame_bytes=*/std::size_t{1} << 16);
    try {
      for (std::size_t at = 0; at < size; at += chunk) {
        const std::size_t n = std::min(chunk, size - at);
        decoder.feed(data + at, n);
        net::Frame frame;
        while (decoder.next(frame)) {
          ++outcome.frames;
          decode_payload(frame);
        }
      }
    } catch (const net::WireError&) {
      outcome.wire_error = true;
    }
    return outcome;
  };
  if (size == 0) return;
  const Outcome whole = run(size);
  const Outcome bytewise = run(1);
  if (whole.frames != bytewise.frames || whole.wire_error != bytewise.wire_error) {
    throw std::logic_error(
        "frame decoder diverged across chunkings: whole={frames=" + std::to_string(whole.frames) +
        ", error=" + std::to_string(whole.wire_error) + "} bytewise={frames=" +
        std::to_string(bytewise.frames) + ", error=" + std::to_string(bytewise.wire_error) + "}");
  }
}

/// decode_classify_request. First input byte selects single vs batch form.
inline void drive_classify_request(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  const bool batch = (data[0] & 1) != 0;
  try {
    net::decode_classify_request(data + 1, size - 1, batch);
  } catch (const net::WireError&) {
  }
}

/// decode_predictions. First input byte selects single vs batch form.
inline void drive_predictions(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  const bool batch = (data[0] & 1) != 0;
  try {
    net::decode_predictions(data + 1, size - 1, batch);
  } catch (const net::WireError&) {
  }
}

inline void drive_stats(const std::uint8_t* data, std::size_t size) {
  try {
    net::decode_stats(data, size);
  } catch (const net::WireError&) {
  }
}

inline void drive_error(const std::uint8_t* data, std::size_t size) {
  try {
    net::decode_error(data, size);
  } catch (const net::WireError&) {
  }
}

/// nn::load_parameters over an in-memory checkpoint image, against a small
/// fixed parameter set (built once; reused across inputs).
inline void drive_model_load(const std::uint8_t* data, std::size_t size) {
  static std::vector<std::pair<std::string, autograd::Variable>>* params = [] {
    auto* p = new std::vector<std::pair<std::string, autograd::Variable>>();
    p->emplace_back("conv1.weight",
                    autograd::Variable::leaf(tensor::Tensor(tensor::Shape{2, 3, 3, 3})));
    p->emplace_back("fc.bias", autograd::Variable::leaf(tensor::Tensor(tensor::Shape{4})));
    return p;
  }();
  try {
    nn::load_parameters(data, size, *params);
  } catch (const std::runtime_error&) {
    // Bad magic/version, truncation, hostile counts, missing/mismatched
    // parameters: the reader's declared failure mode.
  }
}

/// util::BinaryReader: the input is an op tape — each iteration reads a u32
/// selector and performs the corresponding read. Every malformed length must
/// surface as std::runtime_error before any oversized allocation happens.
inline void drive_serialize_reader(const std::uint8_t* data, std::size_t size) {
  util::BinaryReader reader(data, size, "<fuzz input>");
  try {
    while (!reader.at_end()) {
      switch (reader.read_u32() % 6) {
        case 0: reader.read_u32(); break;
        case 1: reader.read_i64(); break;
        case 2: reader.read_f32(); break;
        case 3: reader.read_string(); break;
        case 4: reader.read_f32_array(); break;
        case 5: reader.read_i64_array(); break;
      }
    }
  } catch (const std::runtime_error&) {
  }
}

}  // namespace blurnet::fuzzing
