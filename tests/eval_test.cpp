#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/attack/adaptive.h"
#include "src/attack/masks.h"
#include "src/defense/input_transform.h"
#include "src/eval/harness.h"
#include "src/tensor/ops.h"
#include "tests/test_helpers.h"

namespace blurnet::eval {
namespace {

using blurnet::testing::tiny_trained_model;

ExperimentScale tiny_scale() {
  ExperimentScale scale;
  scale.eval_images = 3;
  scale.num_targets = 2;
  scale.rp2_iterations = 8;
  return scale;
}

TEST(Scale, EnvSwitches) {
  ::setenv("BLURNET_FAST", "1", 1);
  const auto fast = ExperimentScale::from_env();
  ::unsetenv("BLURNET_FAST");
  ::setenv("BLURNET_PAPER", "1", 1);
  const auto paper = ExperimentScale::from_env();
  ::unsetenv("BLURNET_PAPER");
  const auto normal = ExperimentScale::from_env();
  EXPECT_LT(fast.eval_images, normal.eval_images);
  EXPECT_EQ(paper.eval_images, 40);
  EXPECT_EQ(paper.num_targets, 17);
  EXPECT_EQ(paper.rp2_iterations, 300);
}

TEST(Scale, TargetClassesExcludeStopAndAreDistinct) {
  for (const int count : {2, 6, 17}) {
    ExperimentScale scale;
    scale.num_targets = count;
    const auto targets = scale.target_classes();
    EXPECT_EQ(static_cast<int>(targets.size()), count);
    std::set<int> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size());
    for (const int t : targets) {
      EXPECT_GE(t, 1);
      EXPECT_LE(t, 17);
    }
  }
}

TEST(Scale, TargetCountClampedToAvailable) {
  ExperimentScale scale;
  scale.num_targets = 40;
  EXPECT_EQ(scale.target_classes().size(), 17u);
}

TEST(PaperConfig, MatchesPaperHyperparameters) {
  const auto config = paper_rp2_config(tiny_scale());
  EXPECT_DOUBLE_EQ(config.lambda, 0.002);
  EXPECT_EQ(config.iterations, 8);
  EXPECT_EQ(config.norm, attack::PerturbationNorm::kL2);
  EXPECT_TRUE(config.shared_perturbation);
}

// ---- raw-model reference implementations ------------------------------------
// These replicate the pre-harness evaluation path — every forward pass on the
// raw nn::LisaCnn, no engine — and anchor the bitwise-equivalence tests: the
// engine-backed protocols must reproduce them exactly at any replica count.

SweepResult reference_whitebox(const nn::LisaCnn& model, double legit,
                               const data::StopSignSet& eval_set,
                               const ExperimentScale& scale) {
  const auto craft_set = attacker_craft_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  const auto eval_sticker = attack::sticker_mask(eval_set.masks);
  SweepResult result;
  result.legit_accuracy = legit;
  double sum_asr = 0.0, sum_l2 = 0.0;
  const auto targets = scale.target_classes();
  for (const int target : targets) {
    attack::Rp2Config config = paper_rp2_config(scale);
    config.target_class = target;
    config.seed = 1000 + static_cast<std::uint64_t>(target);
    const auto crafted = attack::rp2_attack(model, craft_set.images, craft_sticker, config);
    const auto adversarial =
        attack::apply_shared_sticker(eval_set.images, eval_sticker, crafted.shared_delta);
    const auto clean_pred = model.predict(eval_set.images);
    const auto adv_pred = model.predict(adversarial);
    PerTargetResult per;
    per.target = target;
    int altered = 0, hits = 0;
    for (std::size_t i = 0; i < clean_pred.size(); ++i) {
      if (clean_pred[i] != adv_pred[i]) ++altered;
      if (adv_pred[i] == target) ++hits;
    }
    const double count = static_cast<double>(clean_pred.size());
    per.success_rate = count > 0 ? altered / count : 0.0;
    per.targeted_rate = count > 0 ? hits / count : 0.0;
    per.l2_dissimilarity = tensor::l2_dissimilarity(adversarial, eval_set.images);
    result.per_target.push_back(per);
    sum_asr += per.success_rate;
    sum_l2 += per.l2_dissimilarity;
    result.worst_success = std::max(result.worst_success, per.success_rate);
  }
  if (!targets.empty()) {
    result.average_success = sum_asr / static_cast<double>(targets.size());
    result.mean_l2 = sum_l2 / static_cast<double>(targets.size());
  }
  return result;
}

TransferResult reference_transfer(const nn::LisaCnn& source, const nn::LisaCnn& victim,
                                  const data::StopSignSet& eval_set,
                                  const ExperimentScale& scale) {
  const auto sticker = attack::sticker_mask(eval_set.masks);
  const auto targets = scale.target_classes();
  TransferResult out;
  const auto clean_preds = victim.predict(eval_set.images);
  int correct = 0;
  for (const int p : clean_preds) {
    if (p == data::SignRenderer::stop_class_id()) ++correct;
  }
  out.clean_accuracy =
      clean_preds.empty()
          ? 0.0
          : static_cast<double>(correct) / static_cast<double>(clean_preds.size());
  const auto craft_set = attacker_craft_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  double sum_asr = 0.0;
  for (const int target : targets) {
    attack::Rp2Config config = paper_rp2_config(scale);
    config.target_class = target;
    config.seed = 2000 + static_cast<std::uint64_t>(target);
    const auto crafted = attack::rp2_attack(source, craft_set.images, craft_sticker, config);
    const auto adversarial =
        attack::apply_shared_sticker(eval_set.images, sticker, crafted.shared_delta);
    const auto victim_adv = victim.predict(adversarial);
    int altered = 0;
    for (std::size_t i = 0; i < victim_adv.size(); ++i) {
      if (victim_adv[i] != clean_preds[i]) ++altered;
    }
    sum_asr += victim_adv.empty() ? 0.0
                                  : static_cast<double>(altered) /
                                        static_cast<double>(victim_adv.size());
  }
  if (!targets.empty()) out.attack_success = sum_asr / static_cast<double>(targets.size());
  return out;
}

// Transformed-victim reference: the exact sweep protocol, but every forward
// runs on the raw model with the input transform applied inline — crafting
// through a hand-built BPDA handle, predictions through transform->predict.
// The engine-served transform variant must reproduce this bitwise.
SweepResult reference_whitebox_transformed(const nn::LisaCnn& model,
                                           const defense::InputTransform& transform,
                                           double legit, const data::StopSignSet& eval_set,
                                           const ExperimentScale& scale,
                                           const ConfigAdapter& adapt = nullptr) {
  const auto craft_set = attacker_craft_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  const auto eval_sticker = attack::sticker_mask(eval_set.masks);
  const auto predict = [&](const tensor::Tensor& images) {
    return model.predict(transform.apply(images));
  };
  const attack::VictimHandle handle(
      model, predict, [&](const tensor::Tensor& images) { return transform.apply(images); });
  SweepResult result;
  result.legit_accuracy = legit;
  double sum_asr = 0.0, sum_l2 = 0.0;
  const auto targets = scale.target_classes();
  for (const int target : targets) {
    attack::Rp2Config config = paper_rp2_config(scale);
    config.target_class = target;
    config.seed = 1000 + static_cast<std::uint64_t>(target);
    if (adapt) config = adapt(config);
    const auto crafted = attack::rp2_attack(handle, craft_set.images, craft_sticker, config);
    const auto adversarial =
        attack::apply_shared_sticker(eval_set.images, eval_sticker, crafted.shared_delta);
    const auto clean_pred = predict(eval_set.images);
    const auto adv_pred = predict(adversarial);
    PerTargetResult per;
    per.target = target;
    int altered = 0, hits = 0;
    for (std::size_t i = 0; i < clean_pred.size(); ++i) {
      if (clean_pred[i] != adv_pred[i]) ++altered;
      if (adv_pred[i] == target) ++hits;
    }
    const double count = static_cast<double>(clean_pred.size());
    per.success_rate = count > 0 ? altered / count : 0.0;
    per.targeted_rate = count > 0 ? hits / count : 0.0;
    per.l2_dissimilarity = tensor::l2_dissimilarity(adversarial, eval_set.images);
    result.per_target.push_back(per);
    sum_asr += per.success_rate;
    sum_l2 += per.l2_dissimilarity;
    result.worst_success = std::max(result.worst_success, per.success_rate);
  }
  if (!targets.empty()) {
    result.average_success = sum_asr / static_cast<double>(targets.size());
    result.mean_l2 = sum_l2 / static_cast<double>(targets.size());
  }
  return result;
}

void expect_sweeps_bitwise_equal(const SweepResult& a, const SweepResult& b,
                                 const std::string& context) {
  EXPECT_EQ(a.legit_accuracy, b.legit_accuracy) << context;
  EXPECT_EQ(a.average_success, b.average_success) << context;
  EXPECT_EQ(a.worst_success, b.worst_success) << context;
  EXPECT_EQ(a.mean_l2, b.mean_l2) << context;
  ASSERT_EQ(a.per_target.size(), b.per_target.size()) << context;
  for (std::size_t i = 0; i < a.per_target.size(); ++i) {
    EXPECT_EQ(a.per_target[i].target, b.per_target[i].target) << context;
    EXPECT_EQ(a.per_target[i].success_rate, b.per_target[i].success_rate) << context;
    EXPECT_EQ(a.per_target[i].targeted_rate, b.per_target[i].targeted_rate) << context;
    EXPECT_EQ(a.per_target[i].l2_dissimilarity, b.per_target[i].l2_dissimilarity) << context;
  }
}

// The acceptance invariant of the engine-backed redesign: the white-box sweep
// run through engine variants is bitwise identical to the raw single-model
// reference at every replica count — sharding the evaluation (and fanning the
// per-target crafting runs across replicas) is purely a throughput decision.
TEST(Harness, WhiteboxSweepBitwiseEqualsRawModelAcrossReplicaCounts) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto scale = tiny_scale();
  const auto reference = reference_whitebox(model, 0.9, stop_set, scale);

  for (const int replicas : {1, 2, 4}) {
    Harness harness(model, replicas);
    harness.adopt_variant(serve::kBaseVariant);
    const auto sweep =
        WhiteboxSweep{scale}.run(harness, serve::kBaseVariant, 0.9, stop_set);
    expect_sweeps_bitwise_equal(sweep, reference,
                                "replicas " + std::to_string(replicas));
    // Every evaluation forward pass was served by the engine.
    EXPECT_GT(harness.images_served(serve::kBaseVariant), 0)
        << "replicas " << replicas;
  }
}

// Satellite: crafted-on-source stickers evaluated through engine variants
// (apply_shared_sticker + transfer protocol) match the raw-model path
// bitwise, across replica counts {1, 2, 4}.
TEST(Harness, TransferMatrixBitwiseEqualsRawModelAcrossReplicaCounts) {
  const auto& source = tiny_trained_model();
  nn::LisaCnnConfig filtered = source.config();
  filtered.fixed_filter = {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox};
  const nn::LisaCnn victim = source.clone_with_config(filtered);

  const auto stop_set = data::stop_sign_eval_set(3);
  const auto scale = tiny_scale();
  const auto ref_self = reference_transfer(source, source, stop_set, scale);
  const auto ref_filtered = reference_transfer(source, victim, stop_set, scale);

  for (const int replicas : {1, 2, 4}) {
    Harness harness(source, replicas);
    harness.adopt_variant(serve::kBaseVariant);
    harness.add_variant_victim("filtered", filtered);
    const auto results = TransferMatrix{scale}.run(
        harness, serve::kBaseVariant, {std::string(serve::kBaseVariant), "filtered"},
        stop_set);
    ASSERT_EQ(results.size(), 2u);
    const std::string context = "replicas " + std::to_string(replicas);
    EXPECT_EQ(results[0].clean_accuracy, ref_self.clean_accuracy) << context;
    EXPECT_EQ(results[0].attack_success, ref_self.attack_success) << context;
    EXPECT_EQ(results[1].clean_accuracy, ref_filtered.clean_accuracy) << context;
    EXPECT_EQ(results[1].attack_success, ref_filtered.attack_success) << context;
  }
}

// The cross-victim scheduler invariant: enqueueing several victims' protocols
// on ONE scheduler (so their crafting lanes interleave on the pool) is
// bitwise identical to running each protocol by itself, at every replica
// count — and the per-victim progress counters come back complete. A
// pose-batched scale (eot_poses = 2) keeps the EOT pipeline under the same
// determinism contract.
TEST(Scheduler, MultiVictimRunBitwiseEqualsIndividualRunsAcrossReplicaCounts) {
  const auto& model = tiny_trained_model();
  nn::LisaCnnConfig filtered_config = model.config();
  filtered_config.fixed_filter = {nn::FilterPlacement::kAfterLayer1, 3,
                                  signal::KernelKind::kBox};
  const auto stop_set = data::stop_sign_eval_set(3);
  ExperimentScale scale = tiny_scale();
  scale.eot_poses = 2;
  const auto adapt = attack::low_frequency_adapter(8);

  // Individual protocol runs (single-job schedulers) as the reference.
  Harness reference(model);
  reference.adopt_variant(serve::kBaseVariant);
  reference.add_variant_victim("filtered", filtered_config);
  const auto ref_sweep =
      WhiteboxSweep{scale}.run(reference, serve::kBaseVariant, 0.9, stop_set);
  const auto ref_adaptive =
      AdaptiveSweep{scale, adapt}.run(reference, "filtered", 0.8, stop_set);
  const auto ref_transfer = TransferMatrix{scale}.run(
      reference, serve::kBaseVariant, {std::string(serve::kBaseVariant), "filtered"},
      stop_set);

  for (const int replicas : {1, 2, 4}) {
    const std::string context = "replicas " + std::to_string(replicas);
    Harness harness(model, replicas);
    harness.adopt_variant(serve::kBaseVariant);
    harness.add_variant_victim("filtered", filtered_config);

    SweepScheduler scheduler(harness);
    const auto sweep_job =
        scheduler.add(WhiteboxSweep{scale}, serve::kBaseVariant, 0.9, stop_set);
    const auto adaptive_job =
        scheduler.add(AdaptiveSweep{scale, adapt}, "filtered", 0.8, stop_set);
    const auto transfer_job = scheduler.add(
        TransferMatrix{scale}, serve::kBaseVariant,
        {std::string(serve::kBaseVariant), "filtered"}, stop_set);
    EXPECT_EQ(scheduler.job_count(), 3u);
    scheduler.run();

    expect_sweeps_bitwise_equal(scheduler.sweep_result(sweep_job), ref_sweep, context);
    expect_sweeps_bitwise_equal(scheduler.sweep_result(adaptive_job), ref_adaptive,
                                context);
    const auto& transfer = scheduler.transfer_result(transfer_job);
    ASSERT_EQ(transfer.size(), ref_transfer.size()) << context;
    for (std::size_t i = 0; i < transfer.size(); ++i) {
      EXPECT_EQ(transfer[i].clean_accuracy, ref_transfer[i].clean_accuracy) << context;
      EXPECT_EQ(transfer[i].attack_success, ref_transfer[i].attack_success) << context;
    }

    // Progress snapshot: both crafting victims accounted for, all tasks done,
    // lanes bounded by the replica count.
    const auto progress = scheduler.progress();
    ASSERT_EQ(progress.size(), 2u) << context;  // base (sweep+transfer), filtered
    for (const auto& entry : progress) {
      EXPECT_EQ(entry.targets_done, entry.targets_total) << context << " " << entry.victim;
      EXPECT_GT(entry.targets_total, 0) << context << " " << entry.victim;
      EXPECT_GE(entry.lanes, 1) << context << " " << entry.victim;
      EXPECT_LE(entry.lanes, replicas) << context << " " << entry.victim;
      EXPECT_GT(entry.images_served, 0) << context << " " << entry.victim;
    }
    // The base victim carries the white-box sweep AND the transfer crafting.
    EXPECT_EQ(progress[0].victim, serve::kBaseVariant) << context;
    EXPECT_EQ(progress[0].targets_total, 2 * scale.num_targets) << context;
    EXPECT_EQ(progress[1].victim, "filtered") << context;
    EXPECT_EQ(progress[1].targets_total, scale.num_targets) << context;
  }
}

TEST(Scheduler, LifecycleAndKindValidation) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  ExperimentScale scale = tiny_scale();
  scale.num_targets = 1;
  scale.rp2_iterations = 2;
  Harness harness(model);
  harness.adopt_variant(serve::kBaseVariant);

  SweepScheduler scheduler(harness);
  // Unknown victims are rejected at add() with the registered names listed.
  EXPECT_THROW(scheduler.add(WhiteboxSweep{scale}, "nope", 1.0, stop_set),
               std::invalid_argument);
  const auto job = scheduler.add(WhiteboxSweep{scale}, serve::kBaseVariant, 1.0, stop_set);
  // Results are gated until run() completes.
  EXPECT_THROW(scheduler.sweep_result(job), std::logic_error);
  scheduler.run();
  // Kind-checked accessors; double-run and post-run add are rejected.
  EXPECT_NO_THROW(scheduler.sweep_result(job));
  EXPECT_THROW(scheduler.transfer_result(job), std::invalid_argument);
  EXPECT_THROW(scheduler.sweep_result(job + 1), std::invalid_argument);
  EXPECT_THROW(scheduler.run(), std::logic_error);
  EXPECT_THROW(scheduler.add(WhiteboxSweep{scale}, serve::kBaseVariant, 1.0, stop_set),
               std::logic_error);
}

// The tentpole acceptance test: a victim served behind the engine's
// preprocess->forward pipeline runs WhiteboxSweep / AdaptiveSweep bitwise
// identical to the raw single-model reference (transform applied inline,
// BPDA crafting through a hand-built handle) at every replica count.
TEST(Harness, TransformedSweepsBitwiseEqualInlineReferenceAcrossReplicaCounts) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto scale = tiny_scale();
  const auto spec = defense::TransformSpec::squeeze(4);
  const defense::InputTransform transform(spec);
  const auto ref_whitebox =
      reference_whitebox_transformed(model, transform, 0.9, stop_set, scale);
  const auto ref_adaptive = reference_whitebox_transformed(model, transform, 0.9, stop_set,
                                                           scale, attack::bpda_adapter());
  // bpda is on by default, so the explicit adapter changes nothing — and the
  // adaptive protocol shares the whitebox seed schedule.
  expect_sweeps_bitwise_equal(ref_adaptive, ref_whitebox, "bpda adapter is the default");

  for (const int replicas : {1, 2, 4}) {
    const std::string context = "replicas " + std::to_string(replicas);
    Harness harness(model, replicas);
    harness.add_transform_victim("squeeze4", spec);

    // The victim handle carries the transform for BPDA crafting...
    const auto handle = harness.victim_handle("squeeze4");
    EXPECT_TRUE(handle.has_input_transform()) << context;
    const auto transformed = handle.transform_input(stop_set.images);
    const auto expected = transform.apply(stop_set.images);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
      ASSERT_EQ(transformed[i], expected[i]) << context << " index " << i;
    }

    // ...and both sweep protocols reproduce the inline reference bitwise.
    const auto whitebox = WhiteboxSweep{scale}.run(harness, "squeeze4", 0.9, stop_set);
    expect_sweeps_bitwise_equal(whitebox, ref_whitebox, context + " whitebox");
    const auto adaptive = AdaptiveSweep{scale, attack::bpda_adapter()}.run(
        harness, "squeeze4", 0.9, stop_set);
    expect_sweeps_bitwise_equal(adaptive, ref_adaptive, context + " adaptive");
    EXPECT_GT(harness.images_served("squeeze4"), 0) << context;
  }
}

// Transform off reproduces the historical path bitwise: a kNone-registered
// transform victim is structurally a plain weight-transfer variant (no
// preprocess stage, no BPDA node in the crafting graph), so its whitebox
// sweep equals the plain base sweep exactly.
TEST(Harness, NoneTransformVictimReproducesPlainWhiteboxBitwise) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto scale = tiny_scale();
  const auto reference = reference_whitebox(model, 0.9, stop_set, scale);

  Harness harness(model, /*replicas=*/2);
  harness.add_transform_victim("noop", defense::TransformSpec::none());
  EXPECT_FALSE(harness.victim_handle("noop").has_input_transform());
  // transform_input is the identity for transform-free victims: no copy.
  EXPECT_TRUE(harness.victim_handle("noop")
                  .transform_input(stop_set.images)
                  .shares_storage_with(stop_set.images));
  const auto sweep = WhiteboxSweep{scale}.run(harness, "noop", 0.9, stop_set);
  expect_sweeps_bitwise_equal(sweep, reference, "kNone transform victim");

  // The bpda knob itself: the adapters document the adaptive protocol.
  const auto base_config = paper_rp2_config(scale);
  EXPECT_TRUE(attack::bpda_config(base_config, true).bpda);
  EXPECT_FALSE(attack::bpda_config(base_config, false).bpda);
  EXPECT_FALSE(attack::bpda_adapter(false)(base_config).bpda);
}

TEST(Harness, AdaptiveSweepAppliesAdapter) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto scale = tiny_scale();
  Harness harness(model);
  harness.adopt_variant(serve::kBaseVariant);
  int adapter_calls = 0;
  AdaptiveSweep sweep{scale, [&adapter_calls](const attack::Rp2Config& c) {
                        ++adapter_calls;
                        attack::Rp2Config out = c;
                        out.iterations = 2;  // keep it cheap
                        return out;
                      }};
  sweep.run(harness, serve::kBaseVariant, 1.0, stop_set);
  EXPECT_EQ(adapter_calls, scale.num_targets);
}

TEST(Harness, VictimRegistryValidation) {
  const auto& model = tiny_trained_model();
  Harness harness(model);
  EXPECT_FALSE(harness.has_victim(serve::kBaseVariant));
  harness.adopt_variant(serve::kBaseVariant);
  EXPECT_TRUE(harness.has_victim(serve::kBaseVariant));
  // Unknown engine variants cannot be adopted; duplicates are rejected.
  EXPECT_THROW(harness.adopt_variant("nope"), std::invalid_argument);
  EXPECT_THROW(harness.adopt_variant(serve::kBaseVariant), std::invalid_argument);
  EXPECT_THROW(harness.add_victim(serve::kBaseVariant, model), std::invalid_argument);
  // predict() on an unregistered victim names the known ones.
  const auto stop_set = data::stop_sign_eval_set(1);
  try {
    harness.predict("missing", stop_set.images);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("base"), std::string::npos) << e.what();
  }
}

TEST(Harness, PredictMatchesRawModelAndCountsTraffic) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(4);
  Harness harness(model, /*replicas=*/2);
  harness.adopt_variant(serve::kBaseVariant);
  EXPECT_EQ(harness.replica_count(serve::kBaseVariant), 2);
  const auto via_harness = harness.predict(serve::kBaseVariant, stop_set.images);
  EXPECT_EQ(via_harness, model.predict(stop_set.images));
  EXPECT_EQ(harness.images_served(serve::kBaseVariant), 4);

  // A single CHW image is accepted everywhere a batch is — including through
  // a smoothing victim, which needs the NCHW normalization up front.
  tensor::Tensor image(tensor::Shape{3, 32, 32});
  std::copy(stop_set.images.data(), stop_set.images.data() + image.numel(), image.data());
  EXPECT_EQ(harness.predict(serve::kBaseVariant, image).size(), 1u);
  defense::SmoothingConfig smoothing;
  smoothing.sigma = 0.05;
  smoothing.samples = 2;
  eval::VictimSpec spec;
  spec.smoothing = smoothing;
  harness.add_victim("smoothed", model, spec);
  EXPECT_EQ(harness.predict("smoothed", image).size(), 1u);
}

TEST(Harness, VictimHandleSplitsGradientAndPredictionSides) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  Harness harness(model, /*replicas=*/2);
  harness.adopt_variant(serve::kBaseVariant);
  for (const int slot : {0, 1, 2, 3}) {
    const auto handle = harness.victim_handle(serve::kBaseVariant, slot);
    // Gradient side: a replica's deep clone, bitwise-equal to the source.
    EXPECT_EQ(handle.gradient_model().predict(stop_set.images),
              model.predict(stop_set.images))
        << "slot " << slot;
    // Prediction side: served by the engine.
    const auto before = harness.images_served(serve::kBaseVariant);
    EXPECT_EQ(handle.classify(stop_set.images), model.predict(stop_set.images))
        << "slot " << slot;
    EXPECT_EQ(harness.images_served(serve::kBaseVariant), before + 2);
  }
  EXPECT_THROW(harness.victim_handle(serve::kBaseVariant, -1), std::invalid_argument);
}

TEST(Results, WriteFileCreatesDirectoryAndContent) {
  const auto dir = std::filesystem::temp_directory_path() / "blurnet_results_test";
  std::filesystem::remove_all(dir);
  ::setenv("BLURNET_OUT_DIR", dir.string().c_str(), 1);
  EXPECT_EQ(results_dir(), dir.string());
  write_results_file("probe.csv", "a,b\n1,2\n");
  ::unsetenv("BLURNET_OUT_DIR");

  std::ifstream in(dir / "probe.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::filesystem::remove_all(dir);
}

TEST(Results, DefaultDirIsResults) {
  ::unsetenv("BLURNET_OUT_DIR");
  EXPECT_EQ(results_dir(), "results");
}

TEST(EvalStopSet, StickeredMasksAreSubsets) {
  ExperimentScale scale = tiny_scale();
  const auto set = make_eval_stop_set(scale);
  EXPECT_EQ(set.images.dim(0), scale.eval_images);
  EXPECT_EQ(set.masks.dim(0), scale.eval_images);
  EXPECT_GT(attack::mask_coverage(set.masks), 0.0);
}

}  // namespace
}  // namespace blurnet::eval
