#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "src/attack/masks.h"
#include "src/eval/experiments.h"
#include "tests/test_helpers.h"

namespace blurnet::eval {
namespace {

using blurnet::testing::tiny_trained_model;

ExperimentScale tiny_scale() {
  ExperimentScale scale;
  scale.eval_images = 3;
  scale.num_targets = 2;
  scale.rp2_iterations = 10;
  return scale;
}

TEST(Scale, EnvSwitches) {
  ::setenv("BLURNET_FAST", "1", 1);
  const auto fast = ExperimentScale::from_env();
  ::unsetenv("BLURNET_FAST");
  ::setenv("BLURNET_PAPER", "1", 1);
  const auto paper = ExperimentScale::from_env();
  ::unsetenv("BLURNET_PAPER");
  const auto normal = ExperimentScale::from_env();
  EXPECT_LT(fast.eval_images, normal.eval_images);
  EXPECT_EQ(paper.eval_images, 40);
  EXPECT_EQ(paper.num_targets, 17);
  EXPECT_EQ(paper.rp2_iterations, 300);
}

TEST(Scale, TargetClassesExcludeStopAndAreDistinct) {
  for (const int count : {2, 6, 17}) {
    ExperimentScale scale;
    scale.num_targets = count;
    const auto targets = scale.target_classes();
    EXPECT_EQ(static_cast<int>(targets.size()), count);
    std::set<int> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), targets.size());
    for (const int t : targets) {
      EXPECT_GE(t, 1);
      EXPECT_LE(t, 17);
    }
  }
}

TEST(Scale, TargetCountClampedToAvailable) {
  ExperimentScale scale;
  scale.num_targets = 40;
  EXPECT_EQ(scale.target_classes().size(), 17u);
}

TEST(PaperConfig, MatchesPaperHyperparameters) {
  const auto config = paper_rp2_config(tiny_scale());
  EXPECT_DOUBLE_EQ(config.lambda, 0.002);
  EXPECT_EQ(config.iterations, 10);
  EXPECT_EQ(config.norm, attack::PerturbationNorm::kL2);
  EXPECT_TRUE(config.shared_perturbation);
}

TEST(WhiteboxSweep, ProducesConsistentAggregates) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto scale = tiny_scale();
  const auto sweep = whitebox_sweep(model, 0.9, stop_set, scale);
  EXPECT_DOUBLE_EQ(sweep.legit_accuracy, 0.9);
  EXPECT_EQ(sweep.per_target.size(), 2u);
  // Aggregates must match per-target data.
  double sum = 0, worst = 0;
  for (const auto& per : sweep.per_target) {
    sum += per.success_rate;
    worst = std::max(worst, per.success_rate);
    EXPECT_GE(per.success_rate, 0.0);
    EXPECT_LE(per.success_rate, 1.0);
    EXPECT_GE(per.l2_dissimilarity, 0.0);
  }
  EXPECT_NEAR(sweep.average_success, sum / 2.0, 1e-9);
  EXPECT_NEAR(sweep.worst_success, worst, 1e-9);
}

TEST(WhiteboxSweep, AdapterIsApplied) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto scale = tiny_scale();
  int adapter_calls = 0;
  whitebox_sweep(model, 1.0, stop_set, scale,
                 [&adapter_calls](const attack::Rp2Config& c) {
                   ++adapter_calls;
                   attack::Rp2Config out = c;
                   out.iterations = 2;  // keep it cheap
                   return out;
                 });
  EXPECT_EQ(adapter_calls, scale.num_targets);
}

TEST(WhiteboxSweep, PredictorOverridesClassification) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto scale = tiny_scale();
  // A constant predictor means no prediction ever changes => ASR 0.
  const auto sweep = whitebox_sweep(
      model, 1.0, stop_set, scale, nullptr,
      [](const tensor::Tensor& x) {
        return std::vector<int>(static_cast<std::size_t>(x.dim(0)), 0);
      });
  EXPECT_DOUBLE_EQ(sweep.average_success, 0.0);
  EXPECT_DOUBLE_EQ(sweep.worst_success, 0.0);
}

TEST(Transfer, SelfTransferEqualsWhiteboxEffect) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto scale = tiny_scale();
  const auto result = transfer_attack(model, model, stop_set, scale);
  EXPECT_GE(result.clean_accuracy, 0.0);
  EXPECT_LE(result.clean_accuracy, 1.0);
  EXPECT_GE(result.attack_success, 0.0);
  EXPECT_LE(result.attack_success, 1.0);
}

TEST(Results, WriteFileCreatesDirectoryAndContent) {
  const auto dir = std::filesystem::temp_directory_path() / "blurnet_results_test";
  std::filesystem::remove_all(dir);
  ::setenv("BLURNET_OUT_DIR", dir.string().c_str(), 1);
  EXPECT_EQ(results_dir(), dir.string());
  write_results_file("probe.csv", "a,b\n1,2\n");
  ::unsetenv("BLURNET_OUT_DIR");

  std::ifstream in(dir / "probe.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::filesystem::remove_all(dir);
}

TEST(Results, DefaultDirIsResults) {
  ::unsetenv("BLURNET_OUT_DIR");
  EXPECT_EQ(results_dir(), "results");
}

TEST(EvalStopSet, StickeredMasksAreSubsets) {
  ExperimentScale scale = tiny_scale();
  const auto set = make_eval_stop_set(scale);
  EXPECT_EQ(set.images.dim(0), scale.eval_images);
  EXPECT_EQ(set.masks.dim(0), scale.eval_images);
  EXPECT_GT(attack::mask_coverage(set.masks), 0.0);
}

}  // namespace
}  // namespace blurnet::eval
