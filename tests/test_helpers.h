// Shared fixtures: a tiny synthetic dataset and a lightly trained classifier,
// built once per test binary (training even a tiny model takes seconds).
#pragma once

#include "src/data/dataset.h"
#include "src/defense/trainer.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::testing {

inline nn::LisaCnnConfig tiny_model_config() {
  nn::LisaCnnConfig config;
  config.conv1_filters = 4;
  config.conv2_filters = 8;
  config.conv3_filters = 12;
  return config;
}

inline const data::SynthLisa& tiny_dataset() {
  static const data::SynthLisa lisa = [] {
    data::SynthLisaOptions options;
    options.train_per_class = 12;
    options.test_per_class = 4;
    return data::make_synth_lisa(options);
  }();
  return lisa;
}

/// A classifier trained for a few epochs — accurate enough (>> chance) to
/// exercise attacks and defenses meaningfully, cheap enough for unit tests.
/// (The tiny dataset only yields ~7 batches/epoch, so the epoch count here is
/// what buys enough Adam steps to converge.)
inline const nn::LisaCnn& tiny_trained_model() {
  static const nn::LisaCnn model = [] {
    nn::LisaCnn m(tiny_model_config());
    defense::TrainConfig config;
    config.epochs = 18;
    config.batch_size = 16;
    defense::train_classifier(m, tiny_dataset().train, tiny_dataset().test, config);
    return m;
  }();
  return model;
}

}  // namespace blurnet::testing
