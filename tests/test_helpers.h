// Shared fixtures: a tiny synthetic dataset and a lightly trained classifier,
// built once per test binary (training even a tiny model takes seconds), plus
// helpers for sweeping the SIMD kernel dispatch targets.
#pragma once

#include <vector>

#include "src/data/dataset.h"
#include "src/defense/trainer.h"
#include "src/nn/lisa_cnn.h"
#include "src/util/cpu_caps.h"

namespace blurnet::testing {

/// Every dispatch target this host/binary can actually run (kScalar always
/// included), for KernelDispatch sweeps.
inline std::vector<util::KernelTarget> available_kernel_targets() {
  std::vector<util::KernelTarget> out;
  for (const auto t : {util::KernelTarget::kScalar, util::KernelTarget::kAvx2,
                       util::KernelTarget::kNeon}) {
    if (util::kernel_target_available(t)) out.push_back(t);
  }
  return out;
}

/// Forces a dispatch target for one scope; the destructor restores env/probe
/// resolution (so a BLURNET_FORCE_KERNEL CI run keeps its forced target).
class ScopedKernelTarget {
 public:
  explicit ScopedKernelTarget(util::KernelTarget t) { util::set_kernel_target(t); }
  ~ScopedKernelTarget() { util::reset_kernel_target(); }
  ScopedKernelTarget(const ScopedKernelTarget&) = delete;
  ScopedKernelTarget& operator=(const ScopedKernelTarget&) = delete;
};

inline nn::LisaCnnConfig tiny_model_config() {
  nn::LisaCnnConfig config;
  config.conv1_filters = 4;
  config.conv2_filters = 8;
  config.conv3_filters = 12;
  return config;
}

inline const data::SynthLisa& tiny_dataset() {
  static const data::SynthLisa lisa = [] {
    data::SynthLisaOptions options;
    options.train_per_class = 12;
    options.test_per_class = 4;
    return data::make_synth_lisa(options);
  }();
  return lisa;
}

/// A classifier trained for a few epochs — accurate enough (>> chance) to
/// exercise attacks and defenses meaningfully, cheap enough for unit tests.
/// (The tiny dataset only yields ~7 batches/epoch, so the epoch count here is
/// what buys enough Adam steps to converge.)
inline const nn::LisaCnn& tiny_trained_model() {
  static const nn::LisaCnn model = [] {
    nn::LisaCnn m(tiny_model_config());
    defense::TrainConfig config;
    config.epochs = 18;
    config.batch_size = 16;
    defense::train_classifier(m, tiny_dataset().train, tiny_dataset().test, config);
    return m;
  }();
  return model;
}

}  // namespace blurnet::testing
