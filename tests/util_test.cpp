#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/util/arena.h"
#include "src/util/cli.h"
#include "src/util/env.h"
#include "src/util/lockdep.h"
#include "src/util/parallel.h"
#include "src/util/ppm.h"
#include "src/util/rng.h"
#include "src/util/serialize.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace blurnet::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIndexUnbiasedCoverage) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) counts[static_cast<std::size_t>(rng.uniform_index(5))]++;
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  CliParser cli;
  cli.add_flag("count", "3", "a count");
  cli.add_flag("name", "x", "a name");
  cli.add_flag("fast", "false", "boolean");
  const char* argv[] = {"prog", "--count=5", "--fast", "pos1"};
  cli.parse(4, argv);
  EXPECT_EQ(cli.get_int("count"), 5);
  EXPECT_EQ(cli.get_string("name"), "x");
  EXPECT_TRUE(cli.get_bool("fast"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, SpaceSeparatedValue) {
  CliParser cli;
  cli.add_flag("lr", "0.1", "learning rate");
  const char* argv[] = {"prog", "--lr", "0.5"};
  cli.parse(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.5);
}

TEST(Cli, NoPrefixDisablesBool) {
  CliParser cli;
  cli.add_flag("verbose", "true", "verbosity");
  const char* argv[] = {"prog", "--no-verbose"};
  cli.parse(2, argv);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Table, RendersAlignedAndCsv) {
  Table table({"A", "Long header"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("| A "), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  const auto csv = table.to_csv();
  EXPECT_EQ(csv, "A,Long header\nx,1\nlonger,2\n");
}

TEST(Table, PctAndNumFormat) {
  EXPECT_EQ(Table::pct(0.175), "17.5%");
  EXPECT_EQ(Table::pct(0.9, 0), "90%");
  EXPECT_EQ(Table::num(0.2071, 3), "0.207");
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(Serialize, RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "blurnet_ser_test.bin";
  {
    BinaryWriter writer(path.string());
    writer.write_u32(42);
    writer.write_i64(-7);
    writer.write_f32(2.5f);
    writer.write_string("hello");
    const float data[] = {1.0f, 2.0f, 3.0f};
    writer.write_f32_array(data, 3);
    writer.close();
  }
  BinaryReader reader(path.string());
  EXPECT_EQ(reader.read_u32(), 42u);
  EXPECT_EQ(reader.read_i64(), -7);
  EXPECT_FLOAT_EQ(reader.read_f32(), 2.5f);
  EXPECT_EQ(reader.read_string(), "hello");
  const auto array = reader.read_f32_array();
  ASSERT_EQ(array.size(), 3u);
  EXPECT_FLOAT_EQ(array[2], 3.0f);
  EXPECT_TRUE(reader.at_end());
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/path.bin"), std::runtime_error);
}

TEST(Ppm, QuantizeClampsAndRoundTrips) {
  const float data[] = {-0.5f, 0.0f, 0.5f, 1.5f};  // 1 channel, 2x2
  const auto image = quantize_chw(data, 1, 2, 2);
  EXPECT_EQ(image.pixels[0], 0);
  EXPECT_EQ(image.pixels[1], 0);
  EXPECT_EQ(image.pixels[2], 128);
  EXPECT_EQ(image.pixels[3], 255);

  const auto path = std::filesystem::temp_directory_path() / "blurnet_ppm_test.pgm";
  write_pnm(path.string(), image);
  const auto loaded = read_pnm(path.string());
  EXPECT_EQ(loaded.width, 2);
  EXPECT_EQ(loaded.height, 2);
  EXPECT_EQ(loaded.channels, 1);
  EXPECT_EQ(loaded.pixels, image.pixels);
  std::filesystem::remove(path);
}

TEST(Parallel, CoversRangeOnceSerialAndParallel) {
  for (const int workers : {1, 4}) {
    set_parallel_workers(workers);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(1000, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
    }, /*min_chunk=*/16);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  reset_parallel_workers();
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SetWorkersRejectsNonPositive) {
  EXPECT_THROW(set_parallel_workers(0), std::invalid_argument);
  EXPECT_THROW(set_parallel_workers(-3), std::invalid_argument);
}

TEST(Parallel, NoArtificialWorkerCap) {
  // The seed clamped the worker count to 8; large overrides must stick.
  set_parallel_workers(33);
  EXPECT_EQ(parallel_workers(), 33);
  reset_parallel_workers();
}

TEST(Parallel, WorkerCountFromEnvironment) {
  // The env value is cached; reset_parallel_workers() re-reads it.
  ::setenv("BLURNET_WORKERS", "12", 1);
  reset_parallel_workers();
  EXPECT_EQ(parallel_workers(), 12);
  ::unsetenv("BLURNET_WORKERS");
  reset_parallel_workers();
  EXPECT_GE(parallel_workers(), 1);
}

TEST(Parallel, OverrideBeatsEnvironment) {
  ::setenv("BLURNET_WORKERS", "12", 1);
  set_parallel_workers(2);
  EXPECT_EQ(parallel_workers(), 2);
  ::unsetenv("BLURNET_WORKERS");
  reset_parallel_workers();
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool::instance().ensure_parallelism(4);
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::instance().run(64, [&](std::int64_t chunk) {
    hits[static_cast<std::size_t>(chunk)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedRunFallsBackToInline) {
  ThreadPool::instance().ensure_parallelism(4);
  std::atomic<int> total{0};
  ThreadPool::instance().run(4, [&](std::int64_t) {
    // A nested region must execute inline on this thread, not deadlock.
    ThreadPool::instance().run(8, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool::instance().ensure_parallelism(4);
  EXPECT_THROW(ThreadPool::instance().run(16, [&](std::int64_t chunk) {
    if (chunk == 3) throw std::runtime_error("boom");
  }), std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> total{0};
  ThreadPool::instance().run(8, [&](std::int64_t) { ++total; });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPoolTest, ResizeKeepsWorking) {
  auto& pool = ThreadPool::instance();
  for (const int parallelism : {1, 2, 6, 3}) {
    pool.ensure_parallelism(parallelism);
    EXPECT_EQ(pool.parallelism(), parallelism);
    std::atomic<int> total{0};
    pool.run(32, [&](std::int64_t) { ++total; });
    EXPECT_EQ(total.load(), 32);
  }
}

TEST(ThreadPoolTest, ConcurrentProducersAllComplete) {
  ThreadPool::instance().ensure_parallelism(4);
  std::vector<std::thread> producers;
  std::atomic<int> total{0};
  for (int t = 0; t < 6; ++t) {
    producers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        parallel_for(512, [&](std::int64_t lo, std::int64_t hi) {
          total += static_cast<int>(hi - lo);
        }, /*min_chunk=*/16);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(total.load(), 6 * 20 * 512);
}

TEST(Env, FlagParsing) {
  ::setenv("BLURNET_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("BLURNET_TEST_FLAG"));
  ::setenv("BLURNET_TEST_FLAG", "off", 1);
  EXPECT_FALSE(env_flag("BLURNET_TEST_FLAG"));
  ::unsetenv("BLURNET_TEST_FLAG");
  EXPECT_FALSE(env_flag("BLURNET_TEST_FLAG"));
  EXPECT_EQ(env_int("BLURNET_TEST_FLAG", 9), 9);
}

TEST(Arena, RespectsAlignment) {
  Arena arena(1024);
  for (const std::size_t align : {std::size_t(8), std::size_t(16), std::size_t(64),
                                  std::size_t(128)}) {
    for (const std::size_t bytes : {std::size_t(1), std::size_t(7), std::size_t(100)}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << bytes << " bytes at alignment " << align;
    }
  }
}

TEST(Arena, ResetReplaysIdenticalPointersWithoutHeapTraffic) {
  Arena arena;
  std::vector<void*> first;
  for (int i = 0; i < 32; ++i) first.push_back(arena.allocate(1000, 64));
  const std::size_t blocks = arena.block_count();
  const std::int64_t heap_before = scratch_heap_allocations();
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    // The first-fit walk replays the same sequence onto the same addresses —
    // the property the bitwise-determinism contract of the serving path
    // leans on — and a warmed arena never touches the heap again.
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(arena.allocate(1000, 64), first[static_cast<std::size_t>(i)])
          << "round " << round << " allocation " << i;
    }
  }
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(scratch_heap_allocations(), heap_before);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(1024);  // block size far below the request
  void* big = arena.allocate(1 << 16, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.capacity(), std::size_t(1) << 16);
  // The oversized block joins the chain and is reused after reset.
  arena.reset();
  EXPECT_EQ(arena.allocate(1 << 16, 64), big);
}

TEST(Arena, MarkRewindReleasesOnlyInnerAllocations) {
  Arena arena(512);
  void* outer = arena.allocate(100, 16);
  const Arena::Mark mark = arena.mark();
  const std::size_t used_at_mark = arena.used();
  void* inner1 = arena.allocate(200, 16);
  EXPECT_NE(inner1, outer);
  arena.rewind(mark);
  EXPECT_EQ(arena.used(), used_at_mark);
  // Inner memory is reusable, outer memory untouched.
  EXPECT_EQ(arena.allocate(200, 16), inner1);
}

TEST(ArenaScope, BindsAndRestoresThreadLocalArena) {
  EXPECT_EQ(current_arena(), nullptr);
  Arena outer_arena, inner_arena;
  {
    ArenaScope outer(outer_arena);
    EXPECT_EQ(current_arena(), &outer_arena);
    {
      ArenaScope inner(inner_arena);
      EXPECT_EQ(current_arena(), &inner_arena);
    }
    EXPECT_EQ(current_arena(), &outer_arena);
  }
  EXPECT_EQ(current_arena(), nullptr);
}

TEST(ArenaScope, ScopeExitRewindsItsOwnFrame) {
  Arena arena;
  ArenaScope outer_frame(arena);
  void* outer = scratch_alloc(64);
  const std::size_t used_before = arena.used();
  {
    ArenaScope inner_frame(arena);
    scratch_alloc(4096);
    EXPECT_GT(arena.used(), used_before);
  }
  EXPECT_EQ(arena.used(), used_before);  // inner frame fully reclaimed
  scratch_free(outer);                   // no-op for arena memory
  EXPECT_EQ(arena.used(), used_before);  // ...so usage is unchanged
}

TEST(ScratchAlloc, HeapFallbackIsCountedArenaPathIsNot) {
  // Unbound: every scratch_alloc is a counted heap allocation.
  const std::int64_t before = scratch_heap_allocations();
  void* heap_block = scratch_alloc(128);
  EXPECT_EQ(scratch_heap_allocations(), before + 1);
  scratch_free(heap_block);

  Arena arena;
  {
    ArenaScope scope(arena);
    scratch_alloc(128);  // warms the arena: one counted block growth
  }
  const std::int64_t warmed = scratch_heap_allocations();
  {
    ArenaScope scope(arena);
    for (int i = 0; i < 100; ++i) scratch_free(scratch_alloc(128));
  }
  // A warmed arena serves any number of scratch blocks heap-free.
  EXPECT_EQ(scratch_heap_allocations(), warmed);
}

#if BLURNET_LOCKDEP

// Handlers are plain function pointers, so captured reports go through a
// file-scope slot. Tests run single-threaded through these helpers.
std::vector<LockdepReport>& captured_reports() {
  static std::vector<LockdepReport> reports;
  return reports;
}

void capture_report(const LockdepReport& report) {
  captured_reports().push_back(report);
}

class LockdepCapture {
 public:
  LockdepCapture() : previous_(lockdep_set_handler(&capture_report)) {
    captured_reports().clear();
    lockdep_reset_edges();
  }
  ~LockdepCapture() {
    lockdep_set_handler(previous_);
    captured_reports().clear();
    lockdep_reset_edges();
  }

 private:
  LockdepHandler previous_;
};

TEST(Lockdep, SeededInversionIsDetectedWithBothStacks) {
  LockdepCapture capture;
  DebugMutex a BLURNET_LOCK_CLASS("lockdep_test::A");
  DebugMutex b BLURNET_LOCK_CLASS("lockdep_test::B");

  // Establish A -> B ...
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  ASSERT_TRUE(captured_reports().empty());

  // ... then take them in the reverse order: the cycle is reported on the
  // spot even though no thread is deadlocked.
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();

  ASSERT_EQ(captured_reports().size(), 1u);
  const LockdepReport& report = captured_reports().front();
  EXPECT_EQ(report.kind, "order-inversion");
  EXPECT_EQ(report.acquiring, "lockdep_test::A");
  EXPECT_EQ(report.held, "lockdep_test::B");
  // Both acquisition sites: the stack closing the cycle now, and the stack
  // recorded when the reverse edge was first taken.
  EXPECT_FALSE(report.current_stack.empty());
  EXPECT_FALSE(report.prior_stack.empty());
  EXPECT_NE(report.message.find("lockdep_test::A"), std::string::npos);
  EXPECT_NE(report.message.find("lockdep_test::B"), std::string::npos);
}

TEST(Lockdep, ConsistentHierarchyStaysQuiet) {
  LockdepCapture capture;
  DebugMutex outer BLURNET_LOCK_CLASS("lockdep_test::outer");
  DebugMutex inner BLURNET_LOCK_CLASS("lockdep_test::inner");

  auto take_in_order = [&] {
    for (int i = 0; i < 10; ++i) {
      std::lock_guard<DebugMutex> g_outer(outer);
      std::lock_guard<DebugMutex> g_inner(inner);
    }
  };
  take_in_order();
  std::thread other(take_in_order);
  other.join();

  EXPECT_TRUE(captured_reports().empty());
  // The whole exercise records exactly one class edge: outer -> inner.
  EXPECT_EQ(lockdep_edge_count(), 1u);
}

TEST(Lockdep, SameClassNestingIsARecursionHazard) {
  LockdepCapture capture;
  // Two *instances* of one class: there is no defined order between them, so
  // nesting them is reported even before any reverse path exists.
  DebugMutex first BLURNET_LOCK_CLASS("lockdep_test::peer");
  DebugMutex second BLURNET_LOCK_CLASS("lockdep_test::peer");

  first.lock();
  second.lock();
  second.unlock();
  first.unlock();

  ASSERT_EQ(captured_reports().size(), 1u);
  EXPECT_EQ(captured_reports().front().kind, "recursive-acquisition");
}

TEST(Lockdep, TryLockRecordsNoEdges) {
  LockdepCapture capture;
  DebugMutex a BLURNET_LOCK_CLASS("lockdep_test::try_a");
  DebugMutex b BLURNET_LOCK_CLASS("lockdep_test::try_b");

  a.lock();
  ASSERT_TRUE(b.try_lock());  // non-blocking: can never be the blocked edge
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockdep_edge_count(), 0u);

  // The reverse blocking order is therefore legal afterwards.
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();
  EXPECT_TRUE(captured_reports().empty());
}

// Regression (found by the ASan+UBSan CI job): exit() destroys thread_locals
// BEFORE static objects, and static objects lock DebugMutexes while tearing
// down — the global ThreadPool's stop_workers() does exactly that. When the
// lockdep held set was a thread_local std::vector, that late lock() pushed
// into a freed vector (heap-use-after-free after every suite had already
// printed PASSED). The held set is now trivially destructible, so locking
// after TLS teardown is safe; this static object re-creates the crash shape
// at every util_test exit and ASan arbitrates.
struct LocksDuringStaticDestruction {
  DebugMutex mutex;
  ~LocksDuringStaticDestruction() {
    mutex.lock();
    mutex.unlock();
  }
};

TEST(Lockdep, LockingDuringStaticDestructionIsSafe) {
  static LocksDuringStaticDestruction late_locker;
  // Touch it under a held lock too, so the held set is exercised both now
  // and in the destructor after this thread's TLS is gone.
  late_locker.mutex.lock();
  late_locker.mutex.unlock();
}

#else  // !BLURNET_LOCKDEP

TEST(Lockdep, ReleaseAliasIsPlainStdMutex) {
  // In Release the checker must vanish entirely: DebugMutex IS std::mutex
  // (an alias, not a wrapper), so it costs nothing and cannot diverge in
  // layout or semantics.
  static_assert(std::is_same_v<DebugMutex, std::mutex>);
  static_assert(std::is_same_v<DebugConditionVariable, std::condition_variable>);
  EXPECT_EQ(sizeof(DebugMutex), sizeof(std::mutex));
}

#endif  // BLURNET_LOCKDEP

}  // namespace
}  // namespace blurnet::util
