#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "src/signal/dct.h"
#include "src/signal/fft.h"
#include "src/signal/kernels.h"
#include "src/signal/spectrum.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "tests/test_helpers.h"

namespace blurnet::signal {
namespace {

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

// FFT vs naive DFT across power-of-two and Bluestein sizes.
class FftMatchesDft : public ::testing::TestWithParam<int> {};

TEST_P(FftMatchesDft, AllSizes) {
  const int n = GetParam();
  util::Rng rng(n);
  std::vector<Complex> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[static_cast<std::size_t>(i)].real(), slow[static_cast<std::size_t>(i)].real(), 1e-8);
    EXPECT_NEAR(fast[static_cast<std::size_t>(i)].imag(), slow[static_cast<std::size_t>(i)].imag(), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftMatchesDft,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 3, 5, 7, 12, 15, 33));

TEST(Fft, InverseRoundTrip) {
  util::Rng rng(77);
  for (const int n : {8, 13, 32}) {
    std::vector<Complex> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = Complex(rng.normal(), rng.normal());
    const auto back = ifft(fft(x));
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(back[static_cast<std::size_t>(i)].real(), x[static_cast<std::size_t>(i)].real(), 1e-9);
      EXPECT_NEAR(back[static_cast<std::size_t>(i)].imag(), x[static_cast<std::size_t>(i)].imag(), 1e-9);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  util::Rng rng(78);
  const int n = 64;
  std::vector<double> x(n);
  double time_energy = 0;
  for (auto& v : x) {
    v = rng.normal();
    time_energy += v * v;
  }
  const auto spectrum = fft_real(x);
  double freq_energy = 0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8);
}

TEST(Fft, DcBinIsSum) {
  const std::vector<double> x = {1, 2, 3, 4};
  const auto spectrum = fft_real(x);
  EXPECT_NEAR(spectrum[0].real(), 10.0, 1e-10);
  EXPECT_NEAR(spectrum[0].imag(), 0.0, 1e-10);
}

TEST(Fft2d, RoundTrip) {
  util::Rng rng(79);
  const int h = 8, w = 8;
  std::vector<Complex> x(static_cast<std::size_t>(h) * w);
  for (auto& v : x) v = Complex(rng.normal(), 0.0);
  const auto freq = fft2d(x, h, w, false);
  const auto back = fft2d(freq, h, w, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9);
  }
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Dct, RoundTrip1d) {
  util::Rng rng(80);
  for (const int n : {4, 16, 31}) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.normal();
    const auto back = idct1d(dct1d(x));
    for (int i = 0; i < n; ++i) EXPECT_NEAR(back[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Dct, EnergyPreserved) {
  util::Rng rng(81);
  std::vector<double> x(16);
  double energy = 0;
  for (auto& v : x) {
    v = rng.normal();
    energy += v * v;
  }
  double coeff_energy = 0;
  for (const double c : dct1d(x)) coeff_energy += c * c;
  EXPECT_NEAR(coeff_energy, energy, 1e-9);
}

TEST(Dct, ConstantSignalHasOnlyDc) {
  const std::vector<double> x(8, 3.0);
  const auto coeffs = dct1d(x);
  EXPECT_GT(std::fabs(coeffs[0]), 1.0);
  for (std::size_t i = 1; i < coeffs.size(); ++i) EXPECT_NEAR(coeffs[i], 0.0, 1e-10);
}

TEST(Dct, RoundTrip2d) {
  util::Rng rng(82);
  const int h = 6, w = 9;
  std::vector<double> x(static_cast<std::size_t>(h) * w);
  for (auto& v : x) v = rng.normal();
  const auto back = idct2d(dct2d(x, h, w), h, w);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Dct, LowpassProjectionIdempotent) {
  util::Rng rng(83);
  const auto x = tensor::Tensor::randn(tensor::Shape::nchw(1, 2, 8, 8), rng);
  const auto once = dct_lowpass_nchw(x, 4);
  const auto twice = dct_lowpass_nchw(once, 4);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(once[i], twice[i], 1e-5);
}

TEST(Dct, LowpassFullDimIsIdentity) {
  util::Rng rng(84);
  const auto x = tensor::Tensor::randn(tensor::Shape::nchw(1, 1, 8, 8), rng);
  const auto out = dct_lowpass_nchw(x, 8);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(out[i], x[i], 1e-5);
}

TEST(Dct, LowpassOutputIsLowFrequency) {
  util::Rng rng(85);
  const auto x = tensor::Tensor::randn(tensor::Shape::nchw(1, 1, 16, 16), rng);
  const auto filtered = dct_lowpass_nchw(x, 4);
  const auto plane = extract_plane(filtered, 0, 0);
  EXPECT_GT(dct_lowfreq_energy_fraction(plane, 16, 16, 4), 0.999);
}

TEST(Spectrum, FftShiftInvolutionEvenSize) {
  util::Rng rng(86);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.normal();
  const auto back = fftshift2d(fftshift2d(x, 8, 8), 8, 8);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(back[i], x[i]);
}

TEST(Spectrum, ConstantImageHasNoHighFrequency) {
  const std::vector<double> flat(32 * 32, 0.7);
  EXPECT_NEAR(high_frequency_energy_ratio(flat, 32, 32), 0.0, 1e-9);
}

TEST(Spectrum, CheckerboardIsAllHighFrequency) {
  std::vector<double> checker(16 * 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) checker[static_cast<std::size_t>(y) * 16 + x] = ((x + y) % 2) ? 1.0 : -1.0;
  EXPECT_GT(high_frequency_energy_ratio(checker, 16, 16), 0.95);
}

TEST(Spectrum, BlurReducesHighFrequency) {
  util::Rng rng(87);
  auto x = tensor::Tensor::randn(tensor::Shape::nchw(1, 1, 32, 32), rng);
  const auto kernel = make_blur_kernel(5);
  const auto blurred = filter2d_depthwise(x, kernel);
  const double hf_before = high_frequency_energy_ratio(extract_plane(x, 0, 0), 32, 32);
  const double hf_after = high_frequency_energy_ratio(extract_plane(blurred, 0, 0), 32, 32);
  EXPECT_LT(hf_after, 0.5 * hf_before);
}

TEST(Spectrum, SpectralDistanceZeroForIdentical) {
  util::Rng rng(88);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform();
  EXPECT_NEAR(spectral_distance(x, x, 8, 8), 0.0, 1e-12);
}

TEST(Spectrum, RadialProfileShapes) {
  const std::vector<double> flat(256, 1.0);
  const auto profile = radial_energy_profile(flat, 16, 16, 8);
  ASSERT_EQ(profile.size(), 8u);
  EXPECT_GT(profile[0], 0.0);           // DC bin carries all the energy
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(profile[i], 0.0, 1e-9);
}

TEST(Kernels, BlurKernelSumsToOne) {
  for (const int size : {3, 5, 7}) {
    for (const auto kind : {KernelKind::kBox, KernelKind::kGaussian}) {
      const auto kernel = make_blur_kernel(size, kind);
      EXPECT_NEAR(kernel.sum(), 1.0f, 1e-5);
    }
  }
}

TEST(Kernels, EvenSizeThrows) { EXPECT_THROW(make_blur_kernel(4), std::invalid_argument); }

TEST(Kernels, FilterPreservesConstant) {
  // Border windows are renormalized by the in-bounds kernel mass, so a blur
  // of a constant image is the constant everywhere — including corners and
  // edges, which plain zero padding would darken.
  auto x = tensor::Tensor::full(tensor::Shape::nchw(1, 1, 9, 9), 2.0f);
  for (const int size : {3, 5, 7}) {
    for (const auto kind : {KernelKind::kBox, KernelKind::kGaussian}) {
      const auto blurred = filter2d_depthwise(x, make_blur_kernel(size, kind));
      for (std::int64_t i = 0; i < blurred.numel(); ++i) {
        ASSERT_NEAR(blurred[i], 2.0f, 1e-5) << "size " << size << " index " << i;
      }
    }
  }
}

TEST(Kernels, ZeroSumKernelBorderNotAnnihilated) {
  // Border renormalization must not apply to ~zero-sum kernels (total mass
  // ~0): a Laplacian's border response would otherwise be scaled to zero.
  tensor::Tensor laplacian(tensor::Shape::mat(3, 3),
                           {0.0f, -1.0f, 0.0f, -1.0f, 4.0f, -1.0f, 0.0f, -1.0f, 0.0f});
  util::Rng rng(55);
  const auto x = tensor::Tensor::rand_uniform(tensor::Shape::nchw(1, 1, 7, 7), rng);
  const auto out = filter2d_depthwise(x, laplacian);
  // Corner (0,0): taps that land in bounds are centre 4*x00, right -x01,
  // down -x10 — the raw zero-padded correlation, left untouched.
  const float expected =
      4.0f * x.at4(0, 0, 0, 0) - x.at4(0, 0, 0, 1) - x.at4(0, 0, 1, 0);
  EXPECT_NEAR(out.at4(0, 0, 0, 0), expected, 1e-5);
}

TEST(Kernels, PerChannelFilterUsesDistinctKernels) {
  tensor::Tensor x = tensor::Tensor::full(tensor::Shape::nchw(1, 2, 5, 5), 1.0f);
  tensor::Tensor kernels(tensor::Shape{2, 1, 1});
  kernels[0] = 2.0f;  // channel 0 doubled
  kernels[1] = 0.5f;  // channel 1 halved
  const auto out = filter2d_per_channel(x, kernels);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 2, 2), 2.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 2, 2), 0.5f);
}

// The filter tap loop is kernel-dispatched, but every target replicates the
// scalar double-accumulator tap order, so filtering must be bitwise identical
// across all available dispatch targets — and across worker counts within
// each target.
TEST(KernelDispatch, FilterBitwiseIdenticalAcrossTargets) {
  util::Rng rng(77);
  // Width 13 with a 5x5 kernel leaves an interior of 9 — wide enough to hit
  // the SIMD body and a partial tail; 1 row exercises the all-border case.
  for (const auto hw : {std::pair<int, int>{13, 13}, {6, 31}, {1, 9}}) {
    const auto x = tensor::Tensor::randn(
        tensor::Shape::nchw(2, 3, hw.first, hw.second), rng);
    for (const int size : {3, 5}) {
      const auto kernel = make_blur_kernel(size, KernelKind::kGaussian);
      std::vector<float> scalar_out;
      for (const auto target : blurnet::testing::available_kernel_targets()) {
        blurnet::testing::ScopedKernelTarget scoped(target);
        const auto out = filter2d_depthwise(x, kernel);
        if (target == util::KernelTarget::kScalar) {
          scalar_out.assign(out.data(), out.data() + out.numel());
          continue;
        }
        for (std::int64_t i = 0; i < out.numel(); ++i) {
          ASSERT_EQ(out[i], scalar_out[static_cast<std::size_t>(i)])
              << util::kernel_target_name(target) << " " << hw.first << "x"
              << hw.second << " size " << size << " elem " << i;
        }
      }
    }
  }
}

TEST(KernelDispatch, FilterWorkerCountDeterminismPerTarget) {
  util::Rng rng(78);
  const auto x = tensor::Tensor::randn(tensor::Shape::nchw(3, 4, 11, 17), rng);
  const auto kernel = make_blur_kernel(3, KernelKind::kGaussian);
  for (const auto target : blurnet::testing::available_kernel_targets()) {
    blurnet::testing::ScopedKernelTarget scoped(target);
    util::set_parallel_workers(1);
    const auto baseline = filter2d_depthwise(x, kernel);
    for (const int workers : {2, 4}) {
      util::set_parallel_workers(workers);
      const auto out = filter2d_depthwise(x, kernel);
      for (std::int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_EQ(out[i], baseline[i])
            << util::kernel_target_name(target) << " workers=" << workers
            << " elem " << i;
      }
    }
    util::reset_parallel_workers();
  }
}

}  // namespace
}  // namespace blurnet::signal
