#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "src/autograd/ops.h"
#include "src/defense/input_transform.h"
#include "src/defense/model_zoo.h"
#include "src/defense/randomized_smoothing.h"
#include "src/defense/regularizers.h"
#include "src/defense/trainer.h"
#include "src/signal/kernels.h"
#include "src/signal/spectrum.h"
#include "tests/test_helpers.h"

namespace blurnet::defense {
namespace {

using autograd::Variable;
using blurnet::testing::tiny_dataset;
using blurnet::testing::tiny_model_config;
using blurnet::testing::tiny_trained_model;
using tensor::Shape;
using tensor::Tensor;

TEST(Regularizers, TikHfOperatorAnnihilatesConstants) {
  const Tensor l = tik_hf_operator(8);
  EXPECT_EQ(l.shape(), Shape::mat(8, 8));
  for (int r = 0; r < 8; ++r) {
    double row_sum = 0;
    for (int c = 0; c < 8; ++c) row_sum += l.at2(r, c);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);  // (I - L_avg) rows sum to zero
  }
}

TEST(Regularizers, TikPseudoOperatorShape) {
  const Tensor p = tik_pseudo_operator(8, 12);
  EXPECT_EQ(p.shape(), Shape::mat(8, 12));
  EXPECT_GT(p.abs_max(), 0.0f);
}

TEST(Regularizers, TermValuesAndKinds) {
  const auto& model = tiny_trained_model();
  const auto& lisa = tiny_dataset();
  const auto forward = model.forward(Variable::constant(lisa.test.images.reshape(
      lisa.test.images.shape())));
  for (const auto spec :
       {RegularizerSpec::tv(1e-3), RegularizerSpec::tik_hf(1e-3), RegularizerSpec::tik_pseudo(1e-3)}) {
    const auto term = regularization_term(spec, model, forward);
    ASSERT_TRUE(term.defined());
    EXPECT_GE(term.scalar_value(), 0.0f);
    EXPECT_GT(term.scalar_value(), 0.0f);
  }
  EXPECT_FALSE(regularization_term(RegularizerSpec::none(), model, forward).defined());
}

TEST(Regularizers, LinfRequiresDepthwiseLayer) {
  const auto& model = tiny_trained_model();
  const auto& lisa = tiny_dataset();
  const auto forward = model.forward(Variable::constant(lisa.test.images));
  EXPECT_THROW(regularization_term(RegularizerSpec::linf(0.1), model, forward),
               std::logic_error);
}

TEST(Regularizers, NormalizationIsScaleInvariant) {
  // Scaling the features must not change the normalized TV term (that is the
  // point of normalization: the network cannot cheat by shrinking amplitude).
  const auto& model = tiny_trained_model();
  const auto& lisa = tiny_dataset();
  auto forward = model.forward(Variable::constant(lisa.test.images));
  const auto spec = RegularizerSpec::tv(1.0);
  const float value = regularization_term(spec, model, forward).scalar_value();

  nn::ForwardResult scaled = forward;
  scaled.features_l1 = autograd::mul_scalar(forward.features_l1, 0.25f);
  const float scaled_value = regularization_term(spec, model, scaled).scalar_value();
  EXPECT_NEAR(value, scaled_value, 0.05f * std::max(1.0f, value));

  // Without normalization the term scales linearly.
  RegularizerSpec raw = spec;
  raw.normalize = false;
  const float raw_value = regularization_term(raw, model, forward).scalar_value();
  const float raw_scaled = regularization_term(raw, model, scaled).scalar_value();
  EXPECT_NEAR(raw_scaled, 0.25f * raw_value, 0.02f * raw_value);
}

TEST(Regularizers, ToStringNames) {
  EXPECT_EQ(to_string(RegularizerKind::kTv), "tv");
  EXPECT_EQ(to_string(RegularizerKind::kTikHf), "tik_hf");
  EXPECT_EQ(to_string(RegularizerKind::kNone), "none");
}

TEST(Trainer, LearnsAboveChance) {
  nn::LisaCnn model(tiny_model_config());
  TrainConfig config;
  config.epochs = 14;
  config.batch_size = 16;
  const auto stats = train_classifier(model, tiny_dataset().train, tiny_dataset().test, config);
  EXPECT_EQ(stats.epochs_run, 14);
  EXPECT_GT(stats.test_accuracy, 3.0 / 18.0);  // well above chance
  EXPECT_LT(stats.final_train_loss, 2.5);
}

TEST(Trainer, TvRegularizationReducesFeatureTv) {
  // Train with and without the (normalized) TV penalty: the TV-per-activation
  // of the first-layer maps must come out lower for the regularized model.
  nn::LisaCnn plain(tiny_model_config());
  nn::LisaCnn regularized(tiny_model_config());
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  train_classifier(plain, tiny_dataset().train, tiny_dataset().test, config);
  config.regularizer = RegularizerSpec::tv(3e-3);
  train_classifier(regularized, tiny_dataset().train, tiny_dataset().test, config);

  auto normalized_tv = [&](const nn::LisaCnn& model) {
    const auto forward = model.forward(Variable::constant(tiny_dataset().test.images));
    const auto& f = forward.features_l1.value();
    double scale = 0;
    for (std::int64_t i = 0; i < f.numel(); ++i) scale += std::fabs(f[i]);
    scale /= static_cast<double>(f.numel());
    return autograd::tv_loss(forward.features_l1).scalar_value() / (scale + 1e-9);
  };
  EXPECT_LT(normalized_tv(regularized), normalized_tv(plain));
}

TEST(Trainer, GaussianAugmentationRunsAndLearns) {
  nn::LisaCnn model(tiny_model_config());
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  config.gaussian_sigma = 0.1;
  const auto stats = train_classifier(model, tiny_dataset().train, tiny_dataset().test, config);
  EXPECT_GT(stats.test_accuracy, 3.0 / 18.0);
}

TEST(Trainer, AdversarialTrainingRunsAndLearns) {
  nn::LisaCnn model(tiny_model_config());
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.adversarial = true;
  config.adversarial_pgd.steps = 3;
  const auto stats = train_classifier(model, tiny_dataset().train, tiny_dataset().test, config);
  EXPECT_GT(stats.test_accuracy, 2.0 / 18.0);
}

TEST(Trainer, AccuracyHelperMatchesManualCount) {
  const auto& model = tiny_trained_model();
  const auto& test = tiny_dataset().test;
  const double accuracy = classifier_accuracy(model, test, 16);
  const auto preds = model.predict(test.images);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == test.labels[i]) ++correct;
  }
  EXPECT_NEAR(accuracy, static_cast<double>(correct) / static_cast<double>(preds.size()),
              1e-9);
}

TEST(Smoothing, CleanAccuracyCloseToBase) {
  const auto& model = tiny_trained_model();
  const auto& test = tiny_dataset().test;
  SmoothingConfig config;
  config.sigma = 0.05;
  config.samples = 20;
  const double smoothed = smoothed_accuracy(model, test.images, test.labels, config);
  const double plain = classifier_accuracy(model, test);
  EXPECT_NEAR(smoothed, plain, 0.25);
}

TEST(Smoothing, DeterministicGivenSeed) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  SmoothingConfig config;
  config.samples = 10;
  const auto a = smoothed_predict(model, stop_set.images, config);
  const auto b = smoothed_predict(model, stop_set.images, config);
  EXPECT_EQ(a, b);
}

TEST(Smoothing, HighNoiseDegradesGracefully) {
  const auto& model = tiny_trained_model();
  const auto& test = tiny_dataset().test;
  SmoothingConfig config;
  config.sigma = 1.5;  // absurd noise: accuracy should fall toward chance
  config.samples = 10;
  const double smoothed = smoothed_accuracy(model, test.images, test.labels, config);
  EXPECT_LT(smoothed, classifier_accuracy(model, test));
}

TEST(FixedBlur, ReducesFeatureHighFrequency) {
  // The architectural defense claim at unit scale: blurring L1 maps cuts
  // their high-frequency energy.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto maps =
      model.forward(Variable::constant(stop_set.images)).features_l1.value();
  const auto blurred = signal::filter2d_depthwise(maps, signal::make_blur_kernel(5));
  double hf_before = 0, hf_after = 0;
  const int h = static_cast<int>(maps.dim(2)), w = static_cast<int>(maps.dim(3));
  for (std::int64_t c = 0; c < maps.dim(1); ++c) {
    hf_before += signal::high_frequency_energy_ratio(signal::extract_plane(maps, 0, c), h, w);
    hf_after +=
        signal::high_frequency_energy_ratio(signal::extract_plane(blurred, 0, c), h, w);
  }
  EXPECT_LT(hf_after, hf_before);
}

TEST(InputTransform, SqueezeIsIdempotentAndQuantizesToLevels) {
  util::Rng rng(3);
  const Tensor x = Tensor::rand_uniform(Shape::nchw(2, 3, 8, 8), rng);
  for (const int bits : {1, 3, 5}) {
    const Tensor once = bit_depth_squeeze(x, bits);
    const Tensor twice = bit_depth_squeeze(once, bits);
    const float levels = static_cast<float>((1 << bits) - 1);
    for (std::int64_t i = 0; i < once.numel(); ++i) {
      // Idempotent: a squeezed image is a fixed point, bitwise.
      ASSERT_EQ(once[i], twice[i]) << "bits " << bits << " index " << i;
      // Every value sits exactly on one of the 2^bits quantization levels.
      const float scaled = once[i] * levels;
      ASSERT_EQ(scaled, std::round(scaled)) << "bits " << bits << " index " << i;
      ASSERT_GE(once[i], 0.0f);
      ASSERT_LE(once[i], 1.0f);
    }
  }
  // Out-of-range inputs are clamped before quantization.
  Tensor wild(Shape::nchw(1, 1, 1, 2));
  wild.data()[0] = -0.5f;
  wild.data()[1] = 1.5f;
  const Tensor squeezed = bit_depth_squeeze(wild, 4);
  EXPECT_EQ(squeezed[0], 0.0f);
  EXPECT_EQ(squeezed[1], 1.0f);
}

TEST(InputTransform, MedianKeepsConstantPlanesAndRemovesSalt) {
  // Replicate padding keeps every window an odd sample count of real pixels,
  // so a constant plane is bitwise unchanged right up to the border...
  Tensor flat(Shape::nchw(1, 1, 6, 6));
  for (std::int64_t i = 0; i < flat.numel(); ++i) flat.data()[i] = 0.37f;
  const Tensor filtered = median_filter_nchw(flat, 3);
  for (std::int64_t i = 0; i < filtered.numel(); ++i) EXPECT_EQ(filtered[i], 0.37f);

  // ...and a single salt pixel in the corner — where zero padding would let
  // it survive — is voted out by its replicated neighbours.
  Tensor salt = flat.clone();
  salt.data()[0] = 1.0f;  // corner pixel: 4 of the 9 window samples
  const Tensor cleaned = median_filter_nchw(salt, 3);
  for (std::int64_t i = 0; i < cleaned.numel(); ++i) EXPECT_EQ(cleaned[i], 0.37f);

  // kernel 1 is the identity (bitwise), and even kernels are rejected.
  util::Rng rng(5);
  const Tensor x = Tensor::rand_uniform(Shape::nchw(1, 2, 5, 5), rng);
  const Tensor identity = median_filter_nchw(x, 1);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(identity[i], x[i]);
  EXPECT_THROW(median_filter_nchw(x, 2), std::invalid_argument);
}

TEST(InputTransform, DctQuantRoundTripIsBoundedAndInRange) {
  util::Rng rng(7);
  const Tensor x = Tensor::rand_uniform(Shape::nchw(2, 3, 32, 32), rng);
  const Tensor high = dct_quantize_nchw(x, 95);
  const Tensor low = dct_quantize_nchw(x, 5);
  double high_err = 0, low_err = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_GE(high[i], 0.0f);
    ASSERT_LE(high[i], 1.0f);
    ASSERT_GE(low[i], 0.0f);
    ASSERT_LE(low[i], 1.0f);
    high_err = std::max(high_err, static_cast<double>(std::fabs(high[i] - x[i])));
    low_err += std::fabs(low[i] - x[i]);
  }
  // Near-lossless quality keeps every pixel close to the original; harsh
  // quantization must actually compress (change the image substantially).
  EXPECT_LT(high_err, 0.2);
  EXPECT_GT(low_err / static_cast<double>(x.numel()), 1e-3);
}

TEST(InputTransform, ApplyAcceptsChwAndMatchesBatchBitwise) {
  // Per-image semantics: transforming a CHW image alone equals transforming
  // it inside a batch — the engine's batch-split determinism relies on this.
  util::Rng rng(11);
  const Tensor batch = Tensor::rand_uniform(Shape::nchw(3, 3, 16, 16), rng);
  const std::int64_t stride = batch.dim(1) * batch.dim(2) * batch.dim(3);
  for (const auto& spec : standard_transforms()) {
    const InputTransform transform(spec);
    const Tensor whole = transform.apply(batch);
    for (std::int64_t i = 0; i < batch.dim(0); ++i) {
      Tensor image(tensor::Shape{batch.dim(1), batch.dim(2), batch.dim(3)});
      std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride, image.data());
      const Tensor single = transform.apply(image);
      EXPECT_EQ(single.shape(), image.shape()) << spec.name();
      for (std::int64_t k = 0; k < stride; ++k) {
        ASSERT_EQ(single[k], whole[i * stride + k]) << spec.name() << " image " << i;
      }
    }
  }
}

// The median-of-9 min/max network and the table-driven 8x8 DCT are
// kernel-dispatched; both reproduce the scalar paths exactly (the median
// network computes the exact 5th order statistic, the SIMD DCT keeps the
// scalar fold order), so the transforms must be bitwise identical across
// every available dispatch target.
TEST(KernelDispatch, InputTransformsBitwiseIdenticalAcrossTargets) {
  util::Rng rng(13);
  // 18x21: not a multiple of the 8-wide median vector width or the 8x8 DCT
  // block, so both partial tiles and the scalar tails get exercised.
  const Tensor x = Tensor::rand_uniform(Shape::nchw(2, 3, 18, 21), rng);
  const TransformSpec specs[] = {TransformSpec::median(3), TransformSpec::median(5),
                                 TransformSpec::dct_quant(50),
                                 TransformSpec::dct_quant(95)};
  for (const auto& spec : specs) {
    const InputTransform transform(spec);
    std::vector<float> scalar_out;
    for (const auto target : blurnet::testing::available_kernel_targets()) {
      blurnet::testing::ScopedKernelTarget scoped(target);
      const Tensor out = transform.apply(x);
      if (target == util::KernelTarget::kScalar) {
        scalar_out.assign(out.data(), out.data() + out.numel());
        continue;
      }
      for (std::int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_EQ(out[i], scalar_out[static_cast<std::size_t>(i)])
            << spec.name() << " on " << util::kernel_target_name(target)
            << " elem " << i;
      }
    }
  }
}

TEST(InputTransform, SpecNamesAndValidation) {
  EXPECT_EQ(TransformSpec::none().name(), "none");
  EXPECT_EQ(TransformSpec::squeeze(4).name(), "squeeze4");
  EXPECT_EQ(TransformSpec::median(3).name(), "median3");
  EXPECT_EQ(TransformSpec::dct_quant(50).name(), "dctq50");
  EXPECT_STREQ(to_string(TransformKind::kSqueeze), "squeeze");
  EXPECT_STREQ(to_string(TransformKind::kNone), "none");

  EXPECT_THROW(TransformSpec::squeeze(0).validate(), std::invalid_argument);
  EXPECT_THROW(TransformSpec::squeeze(9).validate(), std::invalid_argument);
  EXPECT_THROW(TransformSpec::median(4).validate(), std::invalid_argument);
  EXPECT_THROW(TransformSpec::median(-1).validate(), std::invalid_argument);
  EXPECT_THROW(TransformSpec::dct_quant(0).validate(), std::invalid_argument);
  EXPECT_THROW(TransformSpec::dct_quant(101).validate(), std::invalid_argument);
  EXPECT_NO_THROW(TransformSpec::none().validate());

  // kNone means "no preprocess stage": the factory hands back no transform at
  // all, so a kNone-registered variant is structurally the bare forward path.
  EXPECT_EQ(make_transform(TransformSpec::none()), nullptr);
  const TransformPtr median = make_transform(TransformSpec::median(5));
  ASSERT_NE(median, nullptr);
  EXPECT_EQ(median->name(), "median5");
  EXPECT_THROW(make_transform(TransformSpec::squeeze(12)), std::invalid_argument);
}

TEST(ModelZoo, TransformVariantsResolveToSpecs) {
  const auto names = ModelZoo::transform_variants();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    EXPECT_EQ(ModelZoo::transform_spec(name).name(), name);
  }
  EXPECT_EQ(ModelZoo::transform_spec("median3").kernel, 3);
  EXPECT_EQ(ModelZoo::transform_spec("squeeze4").bits, 4);
  EXPECT_EQ(ModelZoo::transform_spec("dctq50").quality, 50);
  try {
    ModelZoo::transform_spec("nonsense");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nonsense"), std::string::npos) << message;
    EXPECT_NE(message.find("median3"), std::string::npos) << message;  // lists the zoo
  }
}

TEST(ModelZoo, SpecsExistForAllVariants) {
  ModelZoo zoo(default_zoo_config());
  for (const auto& name : ModelZoo::known_variants()) {
    EXPECT_NO_THROW(zoo.spec(name)) << name;
  }
  EXPECT_THROW(zoo.spec("nonsense"), std::invalid_argument);
}

TEST(ModelZoo, TrainsCachesAndReloads) {
  const auto cache_dir =
      std::filesystem::temp_directory_path() / "blurnet_zoo_test_cache";
  std::filesystem::remove_all(cache_dir);

  ZooConfig config;
  config.dataset.train_per_class = 6;
  config.dataset.test_per_class = 3;
  config.epochs = 2;
  config.cache_dir = cache_dir.string();

  util::Rng rng(1);
  const auto probe = Tensor::randn(Shape::nchw(1, 3, 32, 32), rng);
  Tensor first_logits;
  {
    ModelZoo zoo(config);
    first_logits = zoo.get("baseline").logits(probe);
    EXPECT_GT(zoo.test_accuracy("baseline"), 1.5 / 18.0);
  }
  // A fresh zoo must load identical weights from the cache (no retraining).
  {
    ModelZoo zoo(config);
    const auto second_logits = zoo.get("baseline").logits(probe);
    for (std::int64_t i = 0; i < first_logits.numel(); ++i) {
      EXPECT_FLOAT_EQ(second_logits[i], first_logits[i]);
    }
  }
  std::filesystem::remove_all(cache_dir);
}

TEST(ModelZoo, EnvironmentScaling) {
  ::setenv("BLURNET_FAST", "1", 1);
  const auto fast = default_zoo_config();
  ::unsetenv("BLURNET_FAST");
  const auto normal = default_zoo_config();
  EXPECT_LT(fast.epochs, normal.epochs);
  EXPECT_LT(fast.dataset.train_per_class, normal.dataset.train_per_class);
}

}  // namespace
}  // namespace blurnet::defense
