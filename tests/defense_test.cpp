#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "src/autograd/ops.h"
#include "src/defense/model_zoo.h"
#include "src/defense/randomized_smoothing.h"
#include "src/defense/regularizers.h"
#include "src/defense/trainer.h"
#include "src/signal/kernels.h"
#include "src/signal/spectrum.h"
#include "tests/test_helpers.h"

namespace blurnet::defense {
namespace {

using autograd::Variable;
using blurnet::testing::tiny_dataset;
using blurnet::testing::tiny_model_config;
using blurnet::testing::tiny_trained_model;
using tensor::Shape;
using tensor::Tensor;

TEST(Regularizers, TikHfOperatorAnnihilatesConstants) {
  const Tensor l = tik_hf_operator(8);
  EXPECT_EQ(l.shape(), Shape::mat(8, 8));
  for (int r = 0; r < 8; ++r) {
    double row_sum = 0;
    for (int c = 0; c < 8; ++c) row_sum += l.at2(r, c);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);  // (I - L_avg) rows sum to zero
  }
}

TEST(Regularizers, TikPseudoOperatorShape) {
  const Tensor p = tik_pseudo_operator(8, 12);
  EXPECT_EQ(p.shape(), Shape::mat(8, 12));
  EXPECT_GT(p.abs_max(), 0.0f);
}

TEST(Regularizers, TermValuesAndKinds) {
  const auto& model = tiny_trained_model();
  const auto& lisa = tiny_dataset();
  const auto forward = model.forward(Variable::constant(lisa.test.images.reshape(
      lisa.test.images.shape())));
  for (const auto spec :
       {RegularizerSpec::tv(1e-3), RegularizerSpec::tik_hf(1e-3), RegularizerSpec::tik_pseudo(1e-3)}) {
    const auto term = regularization_term(spec, model, forward);
    ASSERT_TRUE(term.defined());
    EXPECT_GE(term.scalar_value(), 0.0f);
    EXPECT_GT(term.scalar_value(), 0.0f);
  }
  EXPECT_FALSE(regularization_term(RegularizerSpec::none(), model, forward).defined());
}

TEST(Regularizers, LinfRequiresDepthwiseLayer) {
  const auto& model = tiny_trained_model();
  const auto& lisa = tiny_dataset();
  const auto forward = model.forward(Variable::constant(lisa.test.images));
  EXPECT_THROW(regularization_term(RegularizerSpec::linf(0.1), model, forward),
               std::logic_error);
}

TEST(Regularizers, NormalizationIsScaleInvariant) {
  // Scaling the features must not change the normalized TV term (that is the
  // point of normalization: the network cannot cheat by shrinking amplitude).
  const auto& model = tiny_trained_model();
  const auto& lisa = tiny_dataset();
  auto forward = model.forward(Variable::constant(lisa.test.images));
  const auto spec = RegularizerSpec::tv(1.0);
  const float value = regularization_term(spec, model, forward).scalar_value();

  nn::ForwardResult scaled = forward;
  scaled.features_l1 = autograd::mul_scalar(forward.features_l1, 0.25f);
  const float scaled_value = regularization_term(spec, model, scaled).scalar_value();
  EXPECT_NEAR(value, scaled_value, 0.05f * std::max(1.0f, value));

  // Without normalization the term scales linearly.
  RegularizerSpec raw = spec;
  raw.normalize = false;
  const float raw_value = regularization_term(raw, model, forward).scalar_value();
  const float raw_scaled = regularization_term(raw, model, scaled).scalar_value();
  EXPECT_NEAR(raw_scaled, 0.25f * raw_value, 0.02f * raw_value);
}

TEST(Regularizers, ToStringNames) {
  EXPECT_EQ(to_string(RegularizerKind::kTv), "tv");
  EXPECT_EQ(to_string(RegularizerKind::kTikHf), "tik_hf");
  EXPECT_EQ(to_string(RegularizerKind::kNone), "none");
}

TEST(Trainer, LearnsAboveChance) {
  nn::LisaCnn model(tiny_model_config());
  TrainConfig config;
  config.epochs = 14;
  config.batch_size = 16;
  const auto stats = train_classifier(model, tiny_dataset().train, tiny_dataset().test, config);
  EXPECT_EQ(stats.epochs_run, 14);
  EXPECT_GT(stats.test_accuracy, 3.0 / 18.0);  // well above chance
  EXPECT_LT(stats.final_train_loss, 2.5);
}

TEST(Trainer, TvRegularizationReducesFeatureTv) {
  // Train with and without the (normalized) TV penalty: the TV-per-activation
  // of the first-layer maps must come out lower for the regularized model.
  nn::LisaCnn plain(tiny_model_config());
  nn::LisaCnn regularized(tiny_model_config());
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  train_classifier(plain, tiny_dataset().train, tiny_dataset().test, config);
  config.regularizer = RegularizerSpec::tv(3e-3);
  train_classifier(regularized, tiny_dataset().train, tiny_dataset().test, config);

  auto normalized_tv = [&](const nn::LisaCnn& model) {
    const auto forward = model.forward(Variable::constant(tiny_dataset().test.images));
    const auto& f = forward.features_l1.value();
    double scale = 0;
    for (std::int64_t i = 0; i < f.numel(); ++i) scale += std::fabs(f[i]);
    scale /= static_cast<double>(f.numel());
    return autograd::tv_loss(forward.features_l1).scalar_value() / (scale + 1e-9);
  };
  EXPECT_LT(normalized_tv(regularized), normalized_tv(plain));
}

TEST(Trainer, GaussianAugmentationRunsAndLearns) {
  nn::LisaCnn model(tiny_model_config());
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 16;
  config.gaussian_sigma = 0.1;
  const auto stats = train_classifier(model, tiny_dataset().train, tiny_dataset().test, config);
  EXPECT_GT(stats.test_accuracy, 3.0 / 18.0);
}

TEST(Trainer, AdversarialTrainingRunsAndLearns) {
  nn::LisaCnn model(tiny_model_config());
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.adversarial = true;
  config.adversarial_pgd.steps = 3;
  const auto stats = train_classifier(model, tiny_dataset().train, tiny_dataset().test, config);
  EXPECT_GT(stats.test_accuracy, 2.0 / 18.0);
}

TEST(Trainer, AccuracyHelperMatchesManualCount) {
  const auto& model = tiny_trained_model();
  const auto& test = tiny_dataset().test;
  const double accuracy = classifier_accuracy(model, test, 16);
  const auto preds = model.predict(test.images);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == test.labels[i]) ++correct;
  }
  EXPECT_NEAR(accuracy, static_cast<double>(correct) / static_cast<double>(preds.size()),
              1e-9);
}

TEST(Smoothing, CleanAccuracyCloseToBase) {
  const auto& model = tiny_trained_model();
  const auto& test = tiny_dataset().test;
  SmoothingConfig config;
  config.sigma = 0.05;
  config.samples = 20;
  const double smoothed = smoothed_accuracy(model, test.images, test.labels, config);
  const double plain = classifier_accuracy(model, test);
  EXPECT_NEAR(smoothed, plain, 0.25);
}

TEST(Smoothing, DeterministicGivenSeed) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  SmoothingConfig config;
  config.samples = 10;
  const auto a = smoothed_predict(model, stop_set.images, config);
  const auto b = smoothed_predict(model, stop_set.images, config);
  EXPECT_EQ(a, b);
}

TEST(Smoothing, HighNoiseDegradesGracefully) {
  const auto& model = tiny_trained_model();
  const auto& test = tiny_dataset().test;
  SmoothingConfig config;
  config.sigma = 1.5;  // absurd noise: accuracy should fall toward chance
  config.samples = 10;
  const double smoothed = smoothed_accuracy(model, test.images, test.labels, config);
  EXPECT_LT(smoothed, classifier_accuracy(model, test));
}

TEST(FixedBlur, ReducesFeatureHighFrequency) {
  // The architectural defense claim at unit scale: blurring L1 maps cuts
  // their high-frequency energy.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto maps =
      model.forward(Variable::constant(stop_set.images)).features_l1.value();
  const auto blurred = signal::filter2d_depthwise(maps, signal::make_blur_kernel(5));
  double hf_before = 0, hf_after = 0;
  const int h = static_cast<int>(maps.dim(2)), w = static_cast<int>(maps.dim(3));
  for (std::int64_t c = 0; c < maps.dim(1); ++c) {
    hf_before += signal::high_frequency_energy_ratio(signal::extract_plane(maps, 0, c), h, w);
    hf_after +=
        signal::high_frequency_energy_ratio(signal::extract_plane(blurred, 0, c), h, w);
  }
  EXPECT_LT(hf_after, hf_before);
}

TEST(ModelZoo, SpecsExistForAllVariants) {
  ModelZoo zoo(default_zoo_config());
  for (const auto& name : ModelZoo::known_variants()) {
    EXPECT_NO_THROW(zoo.spec(name)) << name;
  }
  EXPECT_THROW(zoo.spec("nonsense"), std::invalid_argument);
}

TEST(ModelZoo, TrainsCachesAndReloads) {
  const auto cache_dir =
      std::filesystem::temp_directory_path() / "blurnet_zoo_test_cache";
  std::filesystem::remove_all(cache_dir);

  ZooConfig config;
  config.dataset.train_per_class = 6;
  config.dataset.test_per_class = 3;
  config.epochs = 2;
  config.cache_dir = cache_dir.string();

  util::Rng rng(1);
  const auto probe = Tensor::randn(Shape::nchw(1, 3, 32, 32), rng);
  Tensor first_logits;
  {
    ModelZoo zoo(config);
    first_logits = zoo.get("baseline").logits(probe);
    EXPECT_GT(zoo.test_accuracy("baseline"), 1.5 / 18.0);
  }
  // A fresh zoo must load identical weights from the cache (no retraining).
  {
    ModelZoo zoo(config);
    const auto second_logits = zoo.get("baseline").logits(probe);
    for (std::int64_t i = 0; i < first_logits.numel(); ++i) {
      EXPECT_FLOAT_EQ(second_logits[i], first_logits[i]);
    }
  }
  std::filesystem::remove_all(cache_dir);
}

TEST(ModelZoo, EnvironmentScaling) {
  ::setenv("BLURNET_FAST", "1", 1);
  const auto fast = default_zoo_config();
  ::unsetenv("BLURNET_FAST");
  const auto normal = default_zoo_config();
  EXPECT_LT(fast.epochs, normal.epochs);
  EXPECT_LT(fast.dataset.train_per_class, normal.dataset.train_per_class);
}

}  // namespace
}  // namespace blurnet::defense
