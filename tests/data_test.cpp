#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/augment.h"
#include "src/data/dataset.h"
#include "src/data/sign_renderer.h"

namespace blurnet::data {
namespace {

TEST(SignRenderer, DeterministicGivenParams) {
  const SignRenderer renderer(32);
  RenderParams params;
  params.noise_seed = 42;
  const auto a = renderer.render(0, params);
  const auto b = renderer.render(0, params);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(SignRenderer, OutputInRangeAndShape) {
  const SignRenderer renderer(32);
  util::Rng rng(1);
  for (int cls = 0; cls < SignRenderer::kNumClasses; ++cls) {
    const auto image = renderer.render(cls, SignRenderer::sample_params(rng));
    EXPECT_EQ(image.shape(), (tensor::Shape{3, 32, 32}));
    EXPECT_GE(image.min(), 0.0f);
    EXPECT_LE(image.max(), 1.0f);
  }
}

TEST(SignRenderer, ClassesAreVisuallyDistinct) {
  // Same pose, no noise: every pair of classes must differ meaningfully.
  const SignRenderer renderer(32);
  RenderParams params;
  params.noise_std = 0.0;
  std::vector<tensor::Tensor> renders;
  for (int cls = 0; cls < SignRenderer::kNumClasses; ++cls) {
    renders.push_back(renderer.render(cls, params));
  }
  for (int a = 0; a < SignRenderer::kNumClasses; ++a) {
    for (int b = a + 1; b < SignRenderer::kNumClasses; ++b) {
      double diff = 0;
      for (std::int64_t i = 0; i < renders[0].numel(); ++i) {
        diff += std::fabs(renders[static_cast<std::size_t>(a)][i] -
                          renders[static_cast<std::size_t>(b)][i]);
      }
      EXPECT_GT(diff / renders[0].numel(), 0.005)
          << "classes " << a << " and " << b << " look identical";
    }
  }
}

TEST(SignRenderer, MaskCoversSignCenter) {
  const SignRenderer renderer(32);
  RenderParams params;
  const auto mask = renderer.sign_region_mask(0, params);
  EXPECT_EQ(mask.shape(), (tensor::Shape{1, 32, 32}));
  EXPECT_FLOAT_EQ(mask[16 * 32 + 16], 1.0f);  // centre inside the octagon
  EXPECT_FLOAT_EQ(mask[0], 0.0f);             // corner outside
  const float coverage = mask.sum() / static_cast<float>(mask.numel());
  EXPECT_GT(coverage, 0.2f);
  EXPECT_LT(coverage, 0.8f);
}

TEST(SignRenderer, InvalidClassThrows) {
  const SignRenderer renderer(32);
  RenderParams params;
  EXPECT_THROW(renderer.render(-1, params), std::invalid_argument);
  EXPECT_THROW(renderer.render(18, params), std::invalid_argument);
}

TEST(SignRenderer, ClassNamesCount) {
  EXPECT_EQ(SignRenderer::class_names().size(),
            static_cast<std::size_t>(SignRenderer::kNumClasses));
  EXPECT_EQ(SignRenderer::class_names()[0], "stop");
}

TEST(Dataset, SynthLisaSizesAndLabels) {
  SynthLisaOptions options;
  options.train_per_class = 3;
  options.test_per_class = 2;
  const auto lisa = make_synth_lisa(options);
  EXPECT_EQ(lisa.train.size(), 18 * 3);
  EXPECT_EQ(lisa.test.size(), 18 * 2);
  EXPECT_EQ(lisa.train.num_classes, 18);
  // Per-class counts.
  std::vector<int> counts(18, 0);
  for (const int label : lisa.train.labels) counts[static_cast<std::size_t>(label)]++;
  for (const int c : counts) EXPECT_EQ(c, 3);
}

TEST(Dataset, DeterministicGivenSeed) {
  SynthLisaOptions options;
  options.train_per_class = 2;
  options.test_per_class = 1;
  const auto a = make_synth_lisa(options);
  const auto b = make_synth_lisa(options);
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    ASSERT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  }
}

TEST(Dataset, TrainTestDisjointContent) {
  SynthLisaOptions options;
  options.train_per_class = 2;
  options.test_per_class = 2;
  const auto lisa = make_synth_lisa(options);
  // Different RNG streams: first train and first test image must differ.
  double diff = 0;
  const std::int64_t stride = 3 * 32 * 32;
  for (std::int64_t i = 0; i < stride; ++i) {
    diff += std::fabs(lisa.train.images[i] - lisa.test.images[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Dataset, SubsetSelectsRows) {
  SynthLisaOptions options;
  options.train_per_class = 2;
  options.test_per_class = 1;
  const auto lisa = make_synth_lisa(options);
  const auto subset = lisa.train.subset({0, 19});
  EXPECT_EQ(subset.size(), 2);
  EXPECT_EQ(subset.labels[0], lisa.train.labels[0]);
  EXPECT_EQ(subset.labels[1], lisa.train.labels[19]);
  EXPECT_THROW(lisa.train.subset({-1}), std::out_of_range);
}

TEST(Dataset, BatchesPartitionDataset) {
  SynthLisaOptions options;
  options.train_per_class = 2;
  options.test_per_class = 1;
  const auto lisa = make_synth_lisa(options);
  util::Rng rng(3);
  const auto batches = make_batches(lisa.train, 7, rng);
  std::int64_t total = 0;
  for (const auto& batch : batches) {
    EXPECT_EQ(batch.images.dim(0), static_cast<std::int64_t>(batch.labels.size()));
    EXPECT_LE(batch.images.dim(0), 7);
    total += batch.images.dim(0);
  }
  EXPECT_EQ(total, lisa.train.size());
}

TEST(Dataset, BatchesShuffleWithSeed) {
  SynthLisaOptions options;
  options.train_per_class = 4;
  options.test_per_class = 1;
  const auto lisa = make_synth_lisa(options);
  util::Rng rng_a(3), rng_b(4);
  const auto batches_a = make_batches(lisa.train, 16, rng_a);
  const auto batches_b = make_batches(lisa.train, 16, rng_b);
  EXPECT_NE(batches_a[0].labels, batches_b[0].labels);
}

TEST(StopSignSet, ShapesAndMasks) {
  const auto set = stop_sign_eval_set(5);
  EXPECT_EQ(set.images.shape(), tensor::Shape::nchw(5, 3, 32, 32));
  EXPECT_EQ(set.masks.shape(), tensor::Shape::nchw(5, 1, 32, 32));
  for (std::int64_t i = 0; i < 5; ++i) {
    float coverage = 0;
    for (std::int64_t j = 0; j < 32 * 32; ++j) coverage += set.masks[i * 32 * 32 + j];
    EXPECT_GT(coverage, 50.0f) << "sign region too small for image " << i;
  }
}

TEST(StopSignSet, PosesVary) {
  const auto set = stop_sign_eval_set(4);
  // Masks should differ between images (different scale/shift/rotation).
  double diff = 0;
  for (std::int64_t j = 0; j < 32 * 32; ++j) {
    diff += std::fabs(set.masks[j] - set.masks[32 * 32 + j]);
  }
  EXPECT_GT(diff, 5.0);
}

TEST(Augment, GaussianNoiseBoundedAndCentered) {
  auto x = tensor::Tensor::full(tensor::Shape::nchw(1, 3, 16, 16), 0.5f);
  util::Rng rng(5);
  const auto noisy = gaussian_noise(x, 0.1, rng);
  EXPECT_GE(noisy.min(), 0.0f);
  EXPECT_LE(noisy.max(), 1.0f);
  EXPECT_NEAR(noisy.mean(), 0.5f, 0.02f);
  double var = 0;
  for (std::int64_t i = 0; i < noisy.numel(); ++i) {
    var += (noisy[i] - 0.5) * (noisy[i] - 0.5);
  }
  EXPECT_NEAR(var / static_cast<double>(noisy.numel()), 0.01, 0.003);
}

TEST(Augment, BrightnessJitterPerImage) {
  auto x = tensor::Tensor::full(tensor::Shape::nchw(2, 1, 4, 4), 0.5f);
  util::Rng rng(6);
  const auto jittered = brightness_jitter(x, 0.3, rng);
  // Within an image the gain is constant; across images it differs.
  EXPECT_FLOAT_EQ(jittered[0], jittered[5]);
  EXPECT_NE(jittered[0], jittered[16]);
}

}  // namespace
}  // namespace blurnet::data
