// Corpus replay: every checked-in fuzz input runs through its driver in every
// build configuration — gcc included, where the libFuzzer harnesses cannot be
// built. The contract under test is the drivers' own (fuzz/drivers.h): a
// corpus input produces a successful decode or the decoder's declared error,
// never an uncaught exception, crash, or alloc bomb. New fuzzer-found crashes
// get minimized and checked in under fuzz/corpus/<driver>/, which makes this
// suite the regression lock for them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/drivers.h"

namespace blurnet {
namespace {

namespace fs = std::filesystem;

#ifndef BLURNET_FUZZ_CORPUS_DIR
#error "BLURNET_FUZZ_CORPUS_DIR must point at fuzz/corpus (set by CMakeLists.txt)"
#endif

using Driver = std::function<void(const std::uint8_t*, std::size_t)>;

struct Harness {
  const char* name;  // corpus subdirectory == fuzz_<name>.cpp
  Driver driver;
};

const Harness kHarnesses[] = {
    {"frame", fuzzing::drive_frame_decoder},
    {"classify", fuzzing::drive_classify_request},
    {"predictions", fuzzing::drive_predictions},
    {"stats", fuzzing::drive_stats},
    {"error", fuzzing::drive_error},
    {"model", fuzzing::drive_model_load},
    {"serialize", fuzzing::drive_serialize_reader},
};

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

TEST(FuzzReplay, CorpusDirectoriesMatchHarnesses) {
  // A renamed/added harness without a corpus directory (or vice versa) is a
  // silent coverage hole; make it loud.
  const fs::path root(BLURNET_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root)) << root;
  std::vector<std::string> expected;
  for (const Harness& harness : kHarnesses) expected.push_back(harness.name);
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    EXPECT_NE(std::find(expected.begin(), expected.end(), name), expected.end())
        << "corpus directory " << name << " has no matching driver in this test";
  }
}

TEST(FuzzReplay, EveryCorpusInputIsHandled) {
  const fs::path root(BLURNET_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root)) << root;
  std::size_t total = 0;
  for (const Harness& harness : kHarnesses) {
    const fs::path dir = root / harness.name;
    ASSERT_TRUE(fs::is_directory(dir)) << "missing corpus directory " << dir;
    std::size_t in_dir = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      SCOPED_TRACE("corpus input: " + entry.path().string());
      const std::vector<std::uint8_t> bytes = read_file(entry.path());
      EXPECT_NO_THROW(harness.driver(bytes.data(), bytes.size()));
      ++in_dir;
      ++total;
    }
    EXPECT_GE(in_dir, 5u) << "suspiciously thin corpus for " << harness.name
                          << " — did the corpus move or fail to check in?";
  }
  EXPECT_GE(total, 40u);
}

TEST(FuzzReplay, HostileLengthsRejectedWithoutAllocating) {
  // The headline alloc-bomb regressions, inline (corpus files also cover
  // them, but a named test documents the contract): counts promising
  // gigabytes against a few payload bytes must throw, not allocate.
  std::vector<std::pair<std::string, autograd::Variable>> params;
  params.emplace_back("w", autograd::Variable::leaf(tensor::Tensor(tensor::Shape{2, 2})));

  // Checkpoint whose f32-array length claims 2^60 elements.
  std::vector<std::uint8_t> bomb;
  const auto push32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bomb.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto push64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bomb.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  push32(0x544E4C42);  // magic
  push32(1);           // version
  push32(1);           // one record
  push32(1);           // name length
  bomb.push_back('w');
  push64(2);  // dims count
  push64(2);
  push64(2);
  push64(std::uint64_t{1} << 60);  // f32 count: ~4.6 exabytes
  EXPECT_THROW(nn::load_parameters(bomb.data(), bomb.size(), params), std::runtime_error);

  // String length prefix of 4 GB against a 1-byte body.
  util::BinaryReader reader("\xff\xff\xff\xffx", 5, "<test>");
  EXPECT_THROW(reader.read_string(), std::runtime_error);
}

}  // namespace
}  // namespace blurnet
