// End-to-end integration tests: the full train -> attack -> defend -> evaluate
// pipeline at miniature scale, exercising the same code paths as the bench
// binaries.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/defense/blurnet.h"
#include "src/eval/harness.h"
#include "src/signal/spectrum.h"
#include "tests/test_helpers.h"

namespace blurnet {
namespace {

using blurnet::testing::tiny_dataset;
using blurnet::testing::tiny_model_config;
using blurnet::testing::tiny_trained_model;

TEST(Integration, TrainAttackEvaluateRoundTrip) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(4);
  const auto sticker = attack::sticker_mask(stop_set.masks);

  attack::Rp2Config rp2;
  rp2.iterations = 30;
  rp2.target_class = 5;
  const auto result = attack::rp2_attack(model, stop_set.images, sticker, rp2);

  // The pipeline invariants that every bench relies on.
  EXPECT_EQ(result.adversarial.shape(), stop_set.images.shape());
  EXPECT_EQ(result.clean_pred.size(), 4u);
  EXPECT_EQ(result.adv_pred.size(), 4u);
  EXPECT_GE(result.l2_dissimilarity(stop_set.images), 0.0);
  EXPECT_LE(result.success_rate_altered(), 1.0);
}

TEST(Integration, FixedFilterWrapKeepsWeightsAndChangesFunction) {
  const auto& baseline = tiny_trained_model();
  nn::LisaCnnConfig config = baseline.config();
  config.fixed_filter = {nn::FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox};
  nn::LisaCnn filtered(config);
  filtered.copy_weights_from(baseline);

  // Same conv1 weights...
  const auto base_params = baseline.named_parameters();
  const auto filt_params = filtered.named_parameters();
  for (std::size_t i = 0; i < base_params.size(); ++i) {
    ASSERT_EQ(base_params[i].first, filt_params[i].first);
    for (std::int64_t j = 0; j < base_params[i].second.value().numel(); ++j) {
      ASSERT_FLOAT_EQ(base_params[i].second.value()[j], filt_params[i].second.value()[j]);
    }
  }
  // ...different function.
  const auto& test = tiny_dataset().test;
  const auto base_preds = baseline.predict(test.images);
  const auto filt_preds = filtered.predict(test.images);
  int differing = 0;
  for (std::size_t i = 0; i < base_preds.size(); ++i) {
    if (base_preds[i] != filt_preds[i]) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Integration, BlurredModelFeaturesAreSmoother) {
  // The architectural mechanism end-to-end: the filtered model's effective
  // L1 representation carries less high-frequency energy.
  const auto& baseline = tiny_trained_model();
  nn::LisaCnnConfig config = baseline.config();
  config.fixed_filter = {nn::FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox};
  nn::LisaCnn filtered(config);
  filtered.copy_weights_from(baseline);

  const auto stop_set = data::stop_sign_eval_set(2);
  const auto input = autograd::Variable::constant(stop_set.images);
  const auto raw = baseline.forward(input).features_l1_filtered.value();
  const auto blurred = filtered.forward(input).features_l1_filtered.value();
  const int h = static_cast<int>(raw.dim(2)), w = static_cast<int>(raw.dim(3));
  double hf_raw = 0, hf_blur = 0;
  for (std::int64_t c = 0; c < raw.dim(1); ++c) {
    hf_raw += signal::high_frequency_energy_ratio(signal::extract_plane(raw, 0, c), h, w);
    hf_blur += signal::high_frequency_energy_ratio(signal::extract_plane(blurred, 0, c), h, w);
  }
  EXPECT_LT(hf_blur, hf_raw);
}

TEST(Integration, WhiteboxSweepOnDefendedAndBaseline) {
  // Run the Table II protocol at miniature scale on baseline + one defended
  // model; verifies the full protocol path (not the paper's numbers).
  const auto& baseline = tiny_trained_model();
  nn::LisaCnn defended(tiny_model_config());
  defense::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.regularizer = defense::RegularizerSpec::tv(3e-5);
  defense::train_classifier(defended, tiny_dataset().train, tiny_dataset().test, train_config);

  eval::ExperimentScale scale;
  scale.eval_images = 3;
  scale.num_targets = 2;
  scale.rp2_iterations = 15;
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);

  eval::Harness harness(baseline);
  harness.adopt_variant(serve::kBaseVariant);
  harness.add_victim("defended-tv", defended);
  const eval::WhiteboxSweep protocol{scale};
  const auto base_sweep = protocol.run(harness, serve::kBaseVariant, 0.9, stop_set);
  const auto defended_sweep = protocol.run(harness, "defended-tv", 0.9, stop_set);
  EXPECT_GE(base_sweep.worst_success, base_sweep.average_success);
  EXPECT_GE(defended_sweep.worst_success, defended_sweep.average_success);
  // Every evaluation forward pass went through the engine.
  EXPECT_GT(harness.images_served(serve::kBaseVariant), 0);
  EXPECT_GT(harness.images_served("defended-tv"), 0);
}

TEST(Integration, AdaptiveAttackPathEndToEnd) {
  const auto& model = tiny_trained_model();
  eval::ExperimentScale scale;
  scale.eval_images = 2;
  scale.num_targets = 1;
  scale.rp2_iterations = 8;
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);
  eval::Harness harness(model);
  harness.adopt_variant(serve::kBaseVariant);
  const auto sweep = eval::AdaptiveSweep{scale, attack::low_frequency_adapter(8)}.run(
      harness, serve::kBaseVariant, 1.0, stop_set);
  EXPECT_EQ(sweep.per_target.size(), 1u);
}

TEST(Integration, SmoothedPredictorPluggedIntoSweep) {
  const auto& model = tiny_trained_model();
  eval::ExperimentScale scale;
  scale.eval_images = 2;
  scale.num_targets = 1;
  scale.rp2_iterations = 5;
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images);
  defense::SmoothingConfig smoothing;
  smoothing.sigma = 0.05;
  smoothing.samples = 8;
  eval::Harness harness(model);
  eval::VictimSpec spec;
  spec.smoothing = smoothing;
  harness.add_victim("smoothed", model, spec);
  const auto sweep =
      eval::WhiteboxSweep{scale}.run(harness, "smoothed", 1.0, stop_set);
  EXPECT_LE(sweep.worst_success, 1.0);
  // The smoothed victim's predictions are the same majority vote the raw
  // model computes — the Monte-Carlo noise depends only on the config seed
  // and every engine replica is a bitwise-identical clone.
  const auto via_engine = harness.predict("smoothed", stop_set.images);
  const auto via_model = defense::smoothed_predict(model, stop_set.images, smoothing);
  EXPECT_EQ(via_engine, via_model);
}

TEST(Integration, ModelCheckpointsSurviveArchitectureWrap) {
  // Save a trained model, load it into a filtered architecture, verify the
  // shared weights drive both (Table I's plumbing).
  const auto& baseline = tiny_trained_model();
  const auto path =
      (std::filesystem::temp_directory_path() / "blurnet_integration_ckpt.bin").string();
  baseline.save(path);

  nn::LisaCnnConfig config = baseline.config();
  config.fixed_filter = {nn::FilterPlacement::kInput, 3, signal::KernelKind::kBox};
  nn::LisaCnn wrapped(config);
  wrapped.load(path);

  util::Rng rng(9);
  const auto probe = tensor::Tensor::randn(tensor::Shape::nchw(1, 3, 32, 32), rng);
  // With a 1-pixel-identity-ish blur the functions differ, but both must be
  // finite and produce valid class indices.
  const auto pred = wrapped.predict(probe);
  ASSERT_EQ(pred.size(), 1u);
  EXPECT_GE(pred[0], 0);
  EXPECT_LT(pred[0], 18);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace blurnet
