#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/signal/dct.h"
#include "src/signal/kernels.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "tests/test_helpers.h"

namespace blurnet::autograd {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Variable, LeafAndConstant) {
  auto leaf = Variable::leaf(Tensor::scalar(2.0f));
  auto constant = Variable::constant(Tensor::scalar(3.0f));
  EXPECT_TRUE(leaf.requires_grad());
  EXPECT_FALSE(constant.requires_grad());
  EXPECT_FLOAT_EQ(leaf.scalar_value(), 2.0f);
}

TEST(Variable, ScalarValueThrowsOnNonScalar) {
  auto v = Variable::leaf(Tensor::zeros(Shape::vec(3)));
  EXPECT_THROW(v.scalar_value(), std::logic_error);
}

TEST(Variable, NoGradGuardDisablesGraphBuilding) {
  auto w = Variable::leaf(Tensor::scalar(2.0f), true);
  {
    // Under the guard, ops over requires-grad leaves must come out as plain
    // constants — this is what makes the conv2d inference fast path (and the
    // graph-free serving forward) reachable with trained parameters.
    NoGradGuard no_grad;
    EXPECT_FALSE(grad_enabled());
    auto y = mul(w, w);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_FLOAT_EQ(y.scalar_value(), 4.0f);
  }
  EXPECT_TRUE(grad_enabled());
  auto y = mul(w, w);
  EXPECT_TRUE(y.requires_grad());
}

TEST(Ops, Conv2dInferencePathMatchesGradPath) {
  util::Rng rng(21);
  const auto x = Tensor::randn(Shape::nchw(2, 3, 8, 8), rng);
  const auto w = Tensor::randn(Shape{4, 3, 3, 3}, rng, 0.0f, 0.2f);
  const auto b = Tensor::randn(Shape::vec(4), rng);
  const auto weights = Variable::leaf(w.clone(), true);
  const auto bias = Variable::leaf(b.clone(), true);
  const auto grad_path = conv2d(Variable::constant(x), weights, bias, 1, 1).value();
  Tensor fast_path;
  {
    NoGradGuard no_grad;
    fast_path = conv2d(Variable::constant(x), weights, bias, 1, 1).value();
  }
  for (std::int64_t i = 0; i < grad_path.numel(); ++i) {
    EXPECT_EQ(fast_path[i], grad_path[i]);  // bitwise: same arithmetic, reused scratch
  }
}

TEST(Backward, SimpleChain) {
  // y = (2x + 1)^2 summed; dy/dx = 2 * (2x+1) * 2.
  auto x = Variable::leaf(Tensor::from_vector({1.0f, -2.0f}));
  auto y = sum(mul(add_scalar(mul_scalar(x, 2.0f), 1.0f),
                   add_scalar(mul_scalar(x, 2.0f), 1.0f)));
  backward(y);
  EXPECT_FLOAT_EQ(y.scalar_value(), 9.0f + 9.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);   // 4*(2*1+1)
  EXPECT_FLOAT_EQ(x.grad()[1], -12.0f);  // 4*(2*-2+1)
}

TEST(Backward, GradientAccumulatesAcrossUses) {
  // y = x*x uses x twice; gradient is 2x.
  auto x = Variable::leaf(Tensor::from_vector({3.0f}));
  auto y = sum(mul(x, x));
  backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
}

TEST(Backward, NoGradIntoConstants) {
  auto x = Variable::leaf(Tensor::from_vector({1.0f}));
  auto c = Variable::constant(Tensor::from_vector({5.0f}));
  auto y = sum(mul(x, c));
  backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  EXPECT_FALSE(c.has_grad());
}

TEST(Backward, NonScalarRootThrows) {
  auto x = Variable::leaf(Tensor::zeros(Shape::vec(3)));
  auto y = mul_scalar(x, 2.0f);
  EXPECT_THROW(backward(y), std::invalid_argument);
}

TEST(Backward, InferenceBuildsNoGraph) {
  auto x = Variable::constant(Tensor::from_vector({1.0f, 2.0f}));
  auto y = relu(add_scalar(x, 1.0f));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.node()->parents().empty());
}

TEST(Backward, ZeroGradClears) {
  auto x = Variable::leaf(Tensor::from_vector({1.0f}));
  auto y = sum(mul_scalar(x, 3.0f));
  backward(y);
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Backward, DiamondGraphTopologicalOrder) {
  // y = a*b + a; both paths must be accumulated exactly once.
  auto a = Variable::leaf(Tensor::from_vector({2.0f}));
  auto b = Variable::leaf(Tensor::from_vector({5.0f}));
  auto y = sum(add(mul(a, b), a));
  backward(y);
  EXPECT_FLOAT_EQ(a.grad()[0], 6.0f);  // b + 1
  EXPECT_FLOAT_EQ(b.grad()[0], 2.0f);  // a
}

TEST(Ops, ReluForward) {
  auto x = Variable::constant(Tensor::from_vector({-1.0f, 2.0f}));
  const auto y = relu(x);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 2.0f);
}

TEST(Ops, DenseMatchesManual) {
  auto x = Variable::constant(Tensor(Shape::mat(1, 2), {1.0f, 2.0f}));
  auto w = Variable::constant(Tensor(Shape::mat(2, 2), {1.0f, 0.0f, 0.0f, 1.0f}));
  auto b = Variable::constant(Tensor::from_vector({0.5f, -0.5f}));
  const auto y = dense(x, w, b);
  EXPECT_FLOAT_EQ(y.value().at2(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.value().at2(0, 1), 1.5f);
}

TEST(Ops, DenseInferenceFastPathBitwiseEqualsGraphPath) {
  // The inference-only dense path (no graph node, constant result) must be
  // bitwise equal to the graph path, like the convolution scratch fast paths.
  util::Rng rng(11);
  const Tensor xv = Tensor::randn(Shape::mat(7, 33), rng);
  const Tensor wv = Tensor::randn(Shape::mat(33, 18), rng);
  const Tensor bv = Tensor::randn(Shape::vec(18), rng);

  // Graph path: a grad-requiring input forces the make_op route.
  auto x_graph = Variable::leaf(xv.clone(), /*requires_grad=*/true);
  const auto graph =
      dense(x_graph, Variable::constant(wv), Variable::constant(bv)).value();

  // Fast path: no gradients anywhere.
  NoGradGuard no_grad;
  const auto fast =
      dense(Variable::constant(xv), Variable::constant(wv), Variable::constant(bv)).value();
  ASSERT_EQ(fast.shape(), graph.shape());
  for (std::int64_t i = 0; i < fast.numel(); ++i) {
    ASSERT_EQ(fast[i], graph[i]) << "element " << i;
  }

  // Bias-free form stays bitwise equal too.
  Variable no_bias;
  const auto fast_nb = dense(Variable::constant(xv), Variable::constant(wv), no_bias).value();
  for (std::int64_t i = 0; i < fast_nb.numel(); ++i) {
    ASSERT_EQ(fast_nb[i], tensor::matmul(xv, wv)[i]) << "element " << i;
  }
}

TEST(Ops, FlattenInferenceFastPathSharesStorage) {
  util::Rng rng(13);
  const Tensor xv = Tensor::randn(Shape::nchw(2, 3, 4, 4), rng);
  {
    // Inference: flatten is a zero-copy reshape of the activations.
    NoGradGuard no_grad;
    const auto flat = flatten2d(Variable::constant(xv));
    EXPECT_EQ(flat.shape(), Shape::mat(2, 48));
    EXPECT_TRUE(flat.value().shares_storage_with(xv));
  }
  // Training: the graph path deep-copies so the backward reshape is safe.
  auto leaf = Variable::leaf(xv.clone(), /*requires_grad=*/true);
  const auto flat = flatten2d(leaf);
  EXPECT_FALSE(flat.value().shares_storage_with(leaf.value()));
  for (std::int64_t i = 0; i < flat.value().numel(); ++i) {
    ASSERT_EQ(flat.value()[i], xv[i]);
  }
}

TEST(Ops, Conv2dIdentityKernel) {
  // 1x1 kernel of value 1 == identity mapping.
  util::Rng rng(5);
  auto x = Variable::constant(Tensor::randn(Shape::nchw(1, 1, 4, 4), rng));
  auto w = Variable::constant(Tensor::full(Shape{1, 1, 1, 1}, 1.0f));
  const auto y = conv2d(x, w, Variable(), 1, 0);
  for (std::int64_t i = 0; i < x.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], x.value()[i]);
  }
}

TEST(Ops, Conv2dStrideAndPadShapes) {
  auto x = Variable::constant(Tensor::zeros(Shape::nchw(2, 3, 32, 32)));
  util::Rng rng(6);
  auto w = Variable::constant(Tensor::randn(Shape{8, 3, 5, 5}, rng));
  auto b = Variable::constant(Tensor::zeros(Shape::vec(8)));
  EXPECT_EQ(conv2d(x, w, b, 2, 2).shape(), Shape::nchw(2, 8, 16, 16));
  EXPECT_EQ(conv2d(x, w, b, 1, 2).shape(), Shape::nchw(2, 8, 32, 32));
}

TEST(Ops, DepthwiseIdentityKernelIsIdentity) {
  util::Rng rng(7);
  auto x = Variable::constant(Tensor::randn(Shape::nchw(2, 3, 6, 6), rng));
  Tensor kernel(Shape{3, 3, 3});
  for (int c = 0; c < 3; ++c) kernel[(c * 3 + 1) * 3 + 1] = 1.0f;  // centre taps
  const auto y = depthwise_conv2d_same(x, Variable::constant(kernel), Variable());
  for (std::int64_t i = 0; i < x.value().numel(); ++i) {
    EXPECT_NEAR(y.value()[i], x.value()[i], 1e-6);
  }
}

TEST(Ops, DepthwiseMatchesSignalFilterInterior) {
  // Depthwise conv with a shared box kernel == signal::filter2d_depthwise in
  // the interior. Borders differ by design: the autograd op zero-pads (it
  // must stay linear for gradcheck) while the signal filter renormalizes by
  // the in-bounds kernel mass.
  util::Rng rng(8);
  auto x = Tensor::randn(Shape::nchw(1, 2, 8, 8), rng);
  Tensor kernel_stack(Shape{2, 3, 3});
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < 9; ++i) kernel_stack[c * 9 + i] = 1.0f / 9.0f;
  const auto via_op = depthwise_conv2d_same(Variable::constant(x),
                                            Variable::constant(kernel_stack), Variable());
  const auto via_signal = signal::filter2d_depthwise(x, signal::make_blur_kernel(3));
  for (std::int64_t c = 0; c < 2; ++c)
    for (std::int64_t y = 1; y < 7; ++y)
      for (std::int64_t xx = 1; xx < 7; ++xx) {
        EXPECT_NEAR(via_op.value().at4(0, c, y, xx), via_signal.at4(0, c, y, xx), 1e-5);
      }
}

TEST(Ops, MaxPoolForward) {
  Tensor x(Shape::nchw(1, 1, 2, 2), {1.0f, 5.0f, 3.0f, 2.0f});
  const auto y = maxpool2d(Variable::constant(x), 2, 2);
  EXPECT_EQ(y.value().numel(), 1);
  EXPECT_FLOAT_EQ(y.value()[0], 5.0f);
}

TEST(Ops, SoftmaxCrossEntropyUniformLogits) {
  auto logits = Variable::constant(Tensor::zeros(Shape::mat(2, 4)));
  const auto loss = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.scalar_value(), std::log(4.0), 1e-5);
}

TEST(Ops, SoftmaxCrossEntropyLabelValidation) {
  auto logits = Variable::constant(Tensor::zeros(Shape::mat(1, 3)));
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Ops, TvLossOfConstantIsZero) {
  auto x = Variable::constant(Tensor::full(Shape::nchw(1, 2, 4, 4), 3.0f));
  EXPECT_FLOAT_EQ(tv_loss(x).scalar_value(), 0.0f);
}

TEST(Ops, TvLossKnownValue) {
  // Single 1x2 map [0, 1]: one horizontal difference of 1; N*C = 1.
  Tensor x(Shape::nchw(1, 1, 1, 2), {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(tv_loss(Variable::constant(x)).scalar_value(), 1.0f);
}

TEST(Ops, TvLossPenalizesCheckerboardOverSmooth) {
  Tensor smooth(Shape::nchw(1, 1, 4, 4));
  Tensor checker(Shape::nchw(1, 1, 4, 4));
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) {
      smooth[y * 4 + x] = static_cast<float>(x) / 4.0f;
      checker[y * 4 + x] = ((x + y) % 2) ? 1.0f : 0.0f;
    }
  EXPECT_GT(tv_loss(Variable::constant(checker)).scalar_value(),
            tv_loss(Variable::constant(smooth)).scalar_value());
}

TEST(Ops, TikhonovRowsZeroForConstantColumns) {
  // L_hf annihilates constants, so constant feature maps give zero penalty.
  auto x = Variable::constant(Tensor::full(Shape::nchw(1, 1, 8, 8), 2.0f));
  Tensor l_hf(Shape::mat(8, 8));
  // I - moving average (window 3, clamped) — reuse defense helper semantics
  // via direct construction here to keep the test self-contained.
  for (int r = 0; r < 8; ++r) {
    int lo = std::max(0, r - 1), hi = std::min(7, r + 1);
    if (r == 0) hi = 2;
    if (r == 7) lo = 5;
    const float inv = 1.0f / 3.0f;
    for (int c = lo; c <= hi; ++c) l_hf.at2(r, c) -= inv;
    l_hf.at2(r, r) += 1.0f;
  }
  EXPECT_NEAR(tikhonov_rows(x, l_hf).scalar_value(), 0.0f, 1e-8);
}

TEST(Ops, TikhonovElementwiseKnownValue) {
  // P = 2 everywhere, F = 3 everywhere, 1 map of 2x2: ||P.F||^2 = 4*36; /NK=1.
  auto x = Variable::constant(Tensor::full(Shape::nchw(1, 1, 2, 2), 3.0f));
  const Tensor p = Tensor::full(Shape::mat(2, 2), 2.0f);
  EXPECT_FLOAT_EQ(tikhonov_elementwise(x, p).scalar_value(), 144.0f);
}

TEST(Ops, LinfPerChannelSumsChannelMaxima) {
  Tensor w(Shape{2, 2, 2}, {0.1f, -0.9f, 0.2f, 0.3f, 0.0f, 0.5f, -0.6f, 0.4f});
  EXPECT_FLOAT_EQ(linf_per_channel(Variable::constant(w)).scalar_value(), 0.9f + 0.6f);
}

TEST(Ops, L2NormAndL1Norm) {
  auto x = Variable::constant(Tensor::from_vector({3.0f, -4.0f}));
  EXPECT_FLOAT_EQ(l2_norm(x).scalar_value(), 5.0f);
  EXPECT_FLOAT_EQ(l1_norm(x).scalar_value(), 7.0f);
}

TEST(Ops, AffineWarpIdentity) {
  util::Rng rng(9);
  auto x = Variable::constant(Tensor::randn(Shape::nchw(1, 2, 6, 6), rng));
  const auto y = affine_warp(x, Affine2D::identity());
  for (std::int64_t i = 0; i < x.value().numel(); ++i) {
    EXPECT_NEAR(y.value()[i], x.value()[i], 1e-6);
  }
}

TEST(Ops, AffineWarpTranslationShiftsPixels) {
  Tensor x = Tensor::zeros(Shape::nchw(1, 1, 5, 5));
  x.at4(0, 0, 2, 2) = 1.0f;
  Affine2D shift;  // output (x,y) samples input (x-1, y): move content right
  shift.tx = -1.0;
  const auto y = affine_warp(Variable::constant(x), shift);
  EXPECT_FLOAT_EQ(y.value().at4(0, 0, 2, 3), 1.0f);
  EXPECT_FLOAT_EQ(y.value().at4(0, 0, 2, 2), 0.0f);
}

TEST(Ops, AffineWarpRotationAboutCenterKeepsCenter) {
  Tensor x = Tensor::zeros(Shape::nchw(1, 1, 9, 9));
  x.at4(0, 0, 4, 4) = 1.0f;
  const auto t = Affine2D::rotation_scale_about_center(0.7, 1.0, 0.0, 0.0, 9, 9);
  const auto y = affine_warp(Variable::constant(x), t);
  EXPECT_NEAR(y.value().at4(0, 0, 4, 4), 1.0f, 1e-5);
}

TEST(Ops, DctLowpassOpMatchesSignal) {
  util::Rng rng(10);
  const auto x = Tensor::randn(Shape::nchw(1, 1, 8, 8), rng);
  const auto via_op = dct_lowpass(Variable::constant(x), 3).value();
  const auto via_signal = signal::dct_lowpass_nchw(x, 3);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(via_op[i], via_signal[i], 1e-6);
}

TEST(Ops, NpsZeroOnPaletteColors) {
  // A perturbation exactly at a printable colour has zero NPS.
  Tensor palette(Shape::mat(2, 3), {0.0f, 0.0f, 0.0f, 1.0f, 1.0f, 1.0f});
  Tensor x = Tensor::zeros(Shape::nchw(1, 3, 2, 2));  // all-black == palette[0]
  EXPECT_NEAR(nps_loss(Variable::constant(x), palette).scalar_value(), 0.0f, 1e-7);
}

TEST(Ops, NpsPositiveOffPalette) {
  Tensor palette(Shape::mat(2, 3), {0.0f, 0.0f, 0.0f, 1.0f, 1.0f, 1.0f});
  Tensor x = Tensor::full(Shape::nchw(1, 3, 1, 1), 0.5f);
  EXPECT_GT(nps_loss(Variable::constant(x), palette).scalar_value(), 0.0f);
}

TEST(Ops, AffineWarpPerSampleTransformsWarpRowsIndependently) {
  // Row 0 shifts its content right, row 1 left: each row obeys its own pose.
  Tensor x = Tensor::zeros(Shape::nchw(2, 1, 5, 5));
  x.at4(0, 0, 2, 2) = 1.0f;
  x.at4(1, 0, 2, 2) = 1.0f;
  Affine2D right, left;  // inverse-warp convention: output samples input
  right.tx = -1.0;
  left.tx = 1.0;
  const auto y = affine_warp(Variable::constant(x), {right, left});
  EXPECT_FLOAT_EQ(y.value().at4(0, 0, 2, 3), 1.0f);
  EXPECT_FLOAT_EQ(y.value().at4(1, 0, 2, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.value().at4(0, 0, 2, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.value().at4(1, 0, 2, 3), 0.0f);
}

TEST(Ops, AffineWarpBatchOfEqualTransformsBitwiseEqualsSingle) {
  // The single-transform overload and n copies of the same transform must be
  // the same float program — exactly, in both the forward and the gradient.
  util::Rng rng(21);
  const Tensor x0 = Tensor::randn(Shape::nchw(3, 2, 7, 7), rng);
  const auto t = Affine2D::rotation_scale_about_center(0.35, 0.9, 1.2, -0.7, 7, 7);

  auto x_single = Variable::leaf(x0.clone());
  auto x_batch = Variable::leaf(x0.clone());
  const auto y_single = affine_warp(x_single, t);
  const auto y_batch = affine_warp(x_batch, std::vector<Affine2D>(3, t));
  for (std::int64_t i = 0; i < y_single.value().numel(); ++i) {
    ASSERT_EQ(y_single.value()[i], y_batch.value()[i]) << "forward diverged at " << i;
  }
  backward(sum_squares(y_single));
  backward(sum_squares(y_batch));
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    ASSERT_EQ(x_single.grad()[i], x_batch.grad()[i]) << "gradient diverged at " << i;
  }
}

TEST(Ops, AffineWarpOutOfBoundsTapsReadAndPropagateZero) {
  // A shift larger than the image: every output pixel samples outside, so the
  // forward is exactly zero and no gradient flows back into the input.
  util::Rng rng(22);
  auto x = Variable::leaf(Tensor::randn(Shape::nchw(1, 1, 4, 4), rng));
  Affine2D far_shift;
  far_shift.tx = 10.0;
  far_shift.ty = -10.0;
  const auto y = affine_warp(x, far_shift);
  for (std::int64_t i = 0; i < y.value().numel(); ++i) EXPECT_EQ(y.value()[i], 0.0f);
  backward(sum(y));
  for (std::int64_t i = 0; i < x.value().numel(); ++i) EXPECT_EQ(x.grad()[i], 0.0f);
}

TEST(Ops, AffineWarpTransformCountMismatchThrows) {
  auto x = Variable::constant(Tensor::zeros(Shape::nchw(2, 1, 4, 4)));
  EXPECT_THROW(affine_warp(x, std::vector<Affine2D>(3)), std::invalid_argument);
  EXPECT_THROW(affine_warp(x, std::vector<Affine2D>{}), std::invalid_argument);
}

TEST(Ops, RepeatBatchTilesPoseMajorAndSumsGrad) {
  // Layout contract the EOT pipeline relies on: copy j of the whole batch
  // occupies rows [j*n, (j+1)*n).
  Tensor x0(Shape::nchw(2, 1, 1, 2), {1.0f, 2.0f, 3.0f, 4.0f});
  auto x = Variable::leaf(x0.clone());
  auto tiled = repeat_batch(x, 3);
  EXPECT_EQ(tiled.shape(), Shape::nchw(6, 1, 1, 2));
  for (int j = 0; j < 3; ++j) {
    for (std::int64_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(tiled.value()[j * 4 + i], x0[i]) << "copy " << j << " element " << i;
    }
  }
  backward(sum(tiled));
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 3.0f);

  EXPECT_THROW(repeat_batch(x, 0), std::invalid_argument);
  EXPECT_THROW(repeat_batch(Variable::constant(Tensor::zeros(Shape::vec(3))), 2),
               std::invalid_argument);
}

TEST(Ops, BroadcastBatchTilesAndSumsGrad) {
  auto x = Variable::leaf(Tensor::full(Shape::nchw(1, 1, 2, 2), 1.5f));
  auto tiled = broadcast_batch(x, 3);
  EXPECT_EQ(tiled.shape(), Shape::nchw(3, 1, 2, 2));
  for (std::int64_t i = 0; i < tiled.value().numel(); ++i) {
    EXPECT_FLOAT_EQ(tiled.value()[i], 1.5f);
  }
  auto loss = sum(tiled);
  backward(loss);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 3.0f);
}

TEST(Ops, FlattenShapes) {
  auto x = Variable::constant(Tensor::zeros(Shape::nchw(2, 3, 4, 4)));
  EXPECT_EQ(flatten2d(x).shape(), Shape::mat(2, 48));
}

// The affine-warp row kernel and the depthwise tap loop are dispatched, but
// every target replicates the scalar op order (including how out-of-bounds
// taps are skipped), so the forwards must be bitwise identical across all
// available targets.
TEST(KernelDispatch, AffineWarpForwardBitwiseIdenticalAcrossTargets) {
  util::Rng rng(91);
  // 17-wide hits the 4-lane SIMD body plus a tail; the rotation pushes taps
  // out of bounds along every edge, and the far shift makes all taps OOB.
  auto x = Variable::constant(Tensor::randn(Shape::nchw(2, 2, 9, 17), rng));
  Affine2D rot = Affine2D::rotation_scale_about_center(0.35, 1.2, 0.7, -0.4, 9, 17);
  Affine2D far_shift;
  far_shift.tx = 40.0;
  std::vector<Affine2D> transforms{rot, far_shift};
  for (const Affine2D& t : transforms) {
    std::vector<float> scalar_out;
    for (const auto target : blurnet::testing::available_kernel_targets()) {
      blurnet::testing::ScopedKernelTarget scoped(target);
      const auto y = affine_warp(x, t);
      if (target == util::KernelTarget::kScalar) {
        scalar_out.assign(y.value().data(), y.value().data() + y.value().numel());
        continue;
      }
      for (std::int64_t i = 0; i < y.value().numel(); ++i) {
        ASSERT_EQ(y.value()[i], scalar_out[static_cast<std::size_t>(i)])
            << util::kernel_target_name(target) << " elem " << i;
      }
    }
  }
}

TEST(KernelDispatch, DepthwiseInferenceBitwiseIdenticalAcrossTargets) {
  util::Rng rng(92);
  auto x = Variable::constant(Tensor::randn(Shape::nchw(2, 3, 8, 21), rng));
  Tensor kernel(Shape{3, 3, 3});
  for (std::int64_t i = 0; i < kernel.numel(); ++i)
    kernel[i] = static_cast<float>(rng.normal());
  std::vector<float> scalar_out;
  for (const auto target : blurnet::testing::available_kernel_targets()) {
    blurnet::testing::ScopedKernelTarget scoped(target);
    NoGradGuard no_grad;  // reach the dispatched inference fast path
    const auto y = depthwise_conv2d_same(x, Variable::constant(kernel), Variable());
    if (target == util::KernelTarget::kScalar) {
      scalar_out.assign(y.value().data(), y.value().data() + y.value().numel());
      continue;
    }
    for (std::int64_t i = 0; i < y.value().numel(); ++i) {
      ASSERT_EQ(y.value()[i], scalar_out[static_cast<std::size_t>(i)])
          << util::kernel_target_name(target) << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace blurnet::autograd
