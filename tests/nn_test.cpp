#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "src/nn/init.h"
#include "src/nn/lisa_cnn.h"
#include "src/nn/model_io.h"
#include "src/nn/optim.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace blurnet::nn {
namespace {

using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

LisaCnnConfig tiny_config() {
  LisaCnnConfig config;
  config.conv1_filters = 4;
  config.conv2_filters = 6;
  config.conv3_filters = 8;
  return config;
}

TEST(Init, HeNormalVariance) {
  util::Rng rng(1);
  const Tensor w = he_normal(Shape::vec(20000), 50, rng);
  double sum_sq = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) sum_sq += static_cast<double>(w[i]) * w[i];
  EXPECT_NEAR(sum_sq / static_cast<double>(w.numel()), 2.0 / 50.0, 0.005);
}

TEST(Init, XavierUniformBounds) {
  util::Rng rng(2);
  const Tensor w = xavier_uniform(Shape::vec(1000), 30, 70, rng);
  const double bound = std::sqrt(6.0 / 100.0);
  EXPECT_LE(w.max(), bound);
  EXPECT_GE(w.min(), -bound);
}

TEST(Init, IdentityDepthwiseCentreTap) {
  util::Rng rng(3);
  const Tensor w = identity_depthwise(3, 5, 0.0, rng);
  EXPECT_EQ(w.shape(), (Shape{3, 5, 5}));
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(w[(c * 5 + 2) * 5 + 2], 1.0f);
    EXPECT_FLOAT_EQ(w[(c * 5 + 0) * 5 + 0], 0.0f);
  }
}

TEST(LisaCnn, ForwardShapes) {
  const LisaCnn model(tiny_config());
  util::Rng rng(4);
  const auto x = Variable::constant(Tensor::randn(Shape::nchw(2, 3, 32, 32), rng));
  const auto out = model.forward(x);
  EXPECT_EQ(out.logits.shape(), Shape::mat(2, 18));
  EXPECT_EQ(out.features_l1.shape(), Shape::nchw(2, 4, 32, 32));
  EXPECT_EQ(out.features_l2.shape(), Shape::nchw(2, 6, 16, 16));
  EXPECT_EQ(out.features_l3.shape(), Shape::nchw(2, 8, 8, 8));
}

TEST(LisaCnn, DeterministicInit) {
  const LisaCnn a(tiny_config());
  const LisaCnn b(tiny_config());
  util::Rng rng(5);
  const auto x = Tensor::randn(Shape::nchw(1, 3, 32, 32), rng);
  const auto la = a.logits(x);
  const auto lb = b.logits(x);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_FLOAT_EQ(la[i], lb[i]);
}

TEST(LisaCnn, ParameterInventory) {
  LisaCnnConfig config = tiny_config();
  const LisaCnn plain(config);
  EXPECT_EQ(plain.parameters().size(), 8u);
  EXPECT_FALSE(plain.depthwise_weights().defined());

  config.learnable_depthwise_kernel = 3;
  const LisaCnn with_dw(config);
  EXPECT_EQ(with_dw.parameters().size(), 9u);
  EXPECT_TRUE(with_dw.depthwise_weights().defined());
  EXPECT_EQ(with_dw.depthwise_weights().shape(), (Shape{4, 3, 3}));
}

TEST(LisaCnn, CloneIsDeepAndBitwise) {
  LisaCnn original(tiny_config());
  const LisaCnn copy = original.clone();
  util::Rng rng(13);
  const auto x = Tensor::randn(Shape::nchw(2, 3, 32, 32), rng);
  const auto la = original.logits(x);
  const auto lb = copy.logits(x);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);

  // Deep: mutating the original's weights must not move the clone.
  auto params = original.parameters();
  params[0].mutable_value() = tensor::mul_scalar(params[0].value(), 2.0f);
  const auto after = copy.logits(x);
  for (std::int64_t i = 0; i < lb.numel(); ++i) EXPECT_EQ(after[i], lb[i]);
}

TEST(LisaCnn, CloneWithConfigTransfersWeightsIntoFilteredArchitecture) {
  LisaCnnConfig config = tiny_config();
  const LisaCnn base(config);
  config.fixed_filter = {FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox};
  const LisaCnn transferred = base.clone_with_config(config);
  EXPECT_EQ(transferred.config().fixed_filter.kernel, 5);
  // Identical to the manual copy_weights_from transfer (Table I protocol).
  LisaCnn manual(config);
  manual.copy_weights_from(base);
  util::Rng rng(14);
  const auto x = Tensor::randn(Shape::nchw(1, 3, 32, 32), rng);
  const auto la = transferred.logits(x);
  const auto lb = manual.logits(x);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(LisaCnn, FixedFilterChangesOutputs) {
  LisaCnnConfig config = tiny_config();
  const LisaCnn base(config);
  config.fixed_filter = {FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox};
  LisaCnn filtered(config);
  filtered.copy_weights_from(base);
  util::Rng rng(6);
  const auto x = Tensor::randn(Shape::nchw(1, 3, 32, 32), rng);
  const auto la = base.logits(x);
  const auto lb = filtered.logits(x);
  double diff = 0;
  for (std::int64_t i = 0; i < la.numel(); ++i) diff += std::fabs(la[i] - lb[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(LisaCnn, FilteredFeaturesExposeFilterEffect) {
  LisaCnnConfig config = tiny_config();
  config.fixed_filter = {FilterPlacement::kAfterLayer1, 5, signal::KernelKind::kBox};
  const LisaCnn model(config);
  util::Rng rng(7);
  const auto x = Variable::constant(Tensor::randn(Shape::nchw(1, 3, 32, 32), rng));
  const auto out = model.forward(x);
  // Raw and filtered L1 maps must differ (the blur is between them).
  double diff = 0;
  for (std::int64_t i = 0; i < out.features_l1.value().numel(); ++i) {
    diff += std::fabs(out.features_l1.value()[i] - out.features_l1_filtered.value()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(LisaCnn, InvalidFixedFilterThrows) {
  LisaCnnConfig config = tiny_config();
  config.fixed_filter = {FilterPlacement::kInput, 4, signal::KernelKind::kBox};
  EXPECT_THROW(LisaCnn{config}, std::invalid_argument);
}

TEST(LisaCnn, SaveLoadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "blurnet_model_test.bin").string();
  const LisaCnn original(tiny_config());
  original.save(path);
  LisaCnnConfig config = tiny_config();
  config.init_seed = 999;  // different init; load must overwrite
  LisaCnn restored(config);
  restored.load(path);
  util::Rng rng(8);
  const auto x = Tensor::randn(Shape::nchw(1, 3, 32, 32), rng);
  const auto la = original.logits(x);
  const auto lb = restored.logits(x);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_FLOAT_EQ(la[i], lb[i]);
  std::filesystem::remove(path);
}

TEST(LisaCnn, LoadMissingParameterThrows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "blurnet_model_partial.bin").string();
  const LisaCnn plain(tiny_config());
  plain.save(path);
  LisaCnnConfig config = tiny_config();
  config.learnable_depthwise_kernel = 3;  // has depthwise.w, file does not
  LisaCnn with_dw(config);
  EXPECT_THROW(with_dw.load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(LisaCnn, PredictMatchesArgmaxOfLogits) {
  const LisaCnn model(tiny_config());
  util::Rng rng(9);
  const auto x = Tensor::randn(Shape::nchw(3, 3, 32, 32), rng);
  const auto logits = model.logits(x);
  const auto preds = model.predict(x);
  for (std::int64_t i = 0; i < 3; ++i) {
    int best = 0;
    for (std::int64_t j = 1; j < 18; ++j) {
      if (logits.at2(i, j) > logits.at2(i, best)) best = static_cast<int>(j);
    }
    EXPECT_EQ(preds[static_cast<std::size_t>(i)], best);
  }
}

// Optimizers minimize a simple convex quadratic sum((x - t)^2).
class OptimizerConvergence : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergence, ReachesTarget) {
  const Tensor target = Tensor::from_vector({1.0f, -2.0f, 0.5f});
  auto x = Variable::leaf(Tensor::zeros(Shape::vec(3)));
  std::unique_ptr<Optimizer> optimizer;
  if (GetParam() == "sgd") {
    optimizer = std::make_unique<Sgd>(std::vector<Variable>{x}, 0.1);
  } else if (GetParam() == "sgd_momentum") {
    optimizer = std::make_unique<Sgd>(std::vector<Variable>{x}, 0.05, 0.9);
  } else {
    optimizer = std::make_unique<Adam>(std::vector<Variable>{x}, 0.1);
  }
  for (int step = 0; step < 300; ++step) {
    auto diff = autograd::sub(x, Variable::constant(target));
    auto loss = autograd::sum_squares(diff);
    optimizer->zero_grad();
    autograd::backward(loss);
    optimizer->step();
  }
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(x.value()[i], target[i], 0.05);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerConvergence,
                         ::testing::Values("sgd", "sgd_momentum", "adam"));

TEST(Adam, ResetStateClearsMoments) {
  auto x = Variable::leaf(Tensor::from_vector({5.0f}));
  Adam adam({x}, 0.5);
  auto loss = autograd::sum_squares(x);
  autograd::backward(loss);
  adam.step();
  const float after_one = x.value()[0];
  adam.reset_state();
  adam.zero_grad();
  auto loss2 = autograd::sum_squares(x);
  autograd::backward(loss2);
  adam.step();
  // After reset the first-step bias correction applies again: the update is
  // lr-sized, same magnitude behaviour as a fresh optimizer.
  EXPECT_LT(x.value()[0], after_one);
}

TEST(ModelIo, SaveLoadNamedParameters) {
  const auto path =
      (std::filesystem::temp_directory_path() / "blurnet_params_test.bin").string();
  util::Rng rng(10);
  auto w = Variable::leaf(Tensor::randn(Shape::mat(3, 3), rng));
  std::vector<std::pair<std::string, Variable>> params = {{"w", w}};
  save_parameters(path, params);

  auto w2 = Variable::leaf(Tensor::zeros(Shape::mat(3, 3)));
  std::vector<std::pair<std::string, Variable>> loaded = {{"w", w2}};
  load_parameters(path, loaded);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(w2.value()[i], w.value()[i]);
  std::filesystem::remove(path);
}

TEST(ModelIo, ShapeMismatchThrows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "blurnet_params_mismatch.bin").string();
  auto w = Variable::leaf(Tensor::zeros(Shape::mat(2, 2)));
  std::vector<std::pair<std::string, Variable>> params = {{"w", w}};
  save_parameters(path, params);
  auto wrong = Variable::leaf(Tensor::zeros(Shape::mat(3, 3)));
  std::vector<std::pair<std::string, Variable>> loaded = {{"w", wrong}};
  EXPECT_THROW(load_parameters(path, loaded), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace blurnet::nn
