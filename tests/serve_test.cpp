#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "src/serve/engine.h"
#include "src/tensor/ops.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace blurnet::serve {
namespace {

nn::LisaCnnConfig small_model_config() {
  nn::LisaCnnConfig config;
  config.conv1_filters = 8;
  config.conv2_filters = 16;
  config.conv3_filters = 32;
  return config;
}

EngineConfig small_engine_config() {
  EngineConfig config;
  config.model = small_model_config();
  config.defense = {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox};
  return config;
}

tensor::Tensor random_batch(std::int64_t n, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  return tensor::Tensor::rand_uniform(tensor::Shape::nchw(n, 3, 32, 32), rng);
}

tensor::Tensor single_image(const tensor::Tensor& batch, std::int64_t i) {
  const std::int64_t stride = batch.dim(1) * batch.dim(2) * batch.dim(3);
  tensor::Tensor image(tensor::Shape{batch.dim(1), batch.dim(2), batch.dim(3)});
  std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride, image.data());
  return image;
}

TEST(Engine, BatchMatchesSingleImageBitwise) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(8);
  const auto batched = engine.classify(batch);
  ASSERT_EQ(batched.size(), 8u);
  for (std::int64_t i = 0; i < 8; ++i) {
    const auto single = engine.classify(single_image(batch, i));
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].label, batched[static_cast<std::size_t>(i)].label);
    ASSERT_EQ(single[0].logits.size(), batched[static_cast<std::size_t>(i)].logits.size());
    for (std::size_t k = 0; k < single[0].logits.size(); ++k) {
      // Bitwise agreement: batching must be purely a throughput decision.
      EXPECT_EQ(single[0].logits[k], batched[static_cast<std::size_t>(i)].logits[k]);
    }
  }
}

TEST(Engine, DeterministicForAnyWorkerCount) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(6, 7);
  const auto reference = engine.classify_defended(batch);
  for (const int workers : {1, 2, 5, 16}) {
    util::set_parallel_workers(workers);
    const auto result = engine.classify_defended(batch);
    ASSERT_EQ(result.size(), reference.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].label, reference[i].label);
      for (std::size_t k = 0; k < result[i].logits.size(); ++k) {
        EXPECT_EQ(result[i].logits[k], reference[i].logits[k]) << "workers " << workers;
      }
    }
  }
  util::reset_parallel_workers();
}

TEST(Engine, ConcurrentClassifyFromManyThreads) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(4, 11);
  const auto reference = engine.classify(batch);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        const auto result = engine.classify(batch);
        for (std::size_t i = 0; i < result.size(); ++i) {
          if (result[i].label != reference[i].label ||
              result[i].logits != reference[i].logits) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Engine, SubmitCoalescesAndMatchesClassify) {
  InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(16, 13);
  const auto reference = engine.classify(batch);

  std::vector<std::future<Prediction>> futures;
  for (std::int64_t i = 0; i < 16; ++i) {
    futures.push_back(engine.submit(single_image(batch, i)));
  }
  for (std::int64_t i = 0; i < 16; ++i) {
    const auto prediction = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(prediction.label, reference[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(prediction.logits, reference[static_cast<std::size_t>(i)].logits);
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, 16);  // at least some coalescing is permitted
  EXPECT_GE(stats.largest_batch, 1);
  EXPECT_GE(stats.images, 16);
}

TEST(Engine, OversizedBatchIsSlicedBitwiseEqual) {
  // classify() bounds each forward pass by max_batch; slicing must not change
  // any per-image result.
  EngineConfig config = small_engine_config();
  config.max_batch = 4;
  const InferenceEngine sliced(config);
  const InferenceEngine whole(small_engine_config());  // max_batch 64
  const auto batch = random_batch(11, 37);
  const auto a = sliced.classify(batch);
  const auto b = whole.classify(batch);
  ASSERT_EQ(a.size(), 11u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].logits, b[i].logits);
  }
}

TEST(Engine, DefendedRouteUsesFilteredModel) {
  const InferenceEngine engine(small_engine_config());
  ASSERT_TRUE(engine.defense_enabled());
  EXPECT_EQ(engine.defended_model().config().fixed_filter.kernel, 3);
  EXPECT_EQ(engine.model().config().fixed_filter.kernel, 0);

  // The blur on the first-layer maps must actually change the logits.
  const auto batch = random_batch(2, 17);
  const auto plain = engine.classify(batch);
  const auto defended = engine.classify_defended(batch);
  bool any_difference = false;
  for (std::size_t k = 0; k < plain[0].logits.size(); ++k) {
    if (plain[0].logits[k] != defended[0].logits[k]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Engine, DisabledDefenseRoutesToBaseModel) {
  EngineConfig config;
  config.model = small_model_config();
  config.defense = {};  // kNone
  const InferenceEngine engine(config);
  EXPECT_FALSE(engine.defense_enabled());
  const auto batch = random_batch(2, 19);
  const auto plain = engine.classify(batch);
  const auto defended = engine.classify_defended(batch);
  EXPECT_EQ(plain[0].logits, defended[0].logits);
}

TEST(Engine, SubmitThroughDefendedRouteMatchesClassifyDefended) {
  InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(3, 23);
  const auto reference = engine.classify_defended(batch);
  std::vector<std::future<Prediction>> futures;
  for (std::int64_t i = 0; i < 3; ++i) {
    futures.push_back(engine.submit(single_image(batch, i), /*defended=*/true));
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().logits,
              reference[static_cast<std::size_t>(i)].logits);
  }
}

TEST(Engine, RejectsWrongInputShape) {
  const InferenceEngine engine(small_engine_config());
  util::Rng rng(29);
  EXPECT_THROW(engine.classify(tensor::Tensor::zeros(tensor::Shape::mat(4, 4))),
               std::invalid_argument);
  EXPECT_THROW(engine.classify(tensor::Tensor::zeros(tensor::Shape::nchw(1, 3, 16, 16))),
               std::invalid_argument);
}

TEST(Engine, ConfidenceIsSoftmaxOfPredictedLabel) {
  const InferenceEngine engine(small_engine_config());
  const auto prediction = engine.classify(random_batch(1, 31))[0];
  EXPECT_GE(prediction.confidence, 1.0f / 18.0f - 1e-6f);  // at least uniform mass
  EXPECT_LE(prediction.confidence, 1.0f);
  EXPECT_EQ(prediction.logits.size(), 18u);
}

}  // namespace
}  // namespace blurnet::serve
