#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/defense/input_transform.h"
#include "src/serve/engine.h"
#include "src/serve/loadgen.h"
#include "src/serve/qos.h"
#include "src/tensor/ops.h"
#include "src/util/arena.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace blurnet::serve {
namespace {

nn::LisaCnnConfig small_model_config() {
  nn::LisaCnnConfig config;
  config.conv1_filters = 8;
  config.conv2_filters = 16;
  config.conv3_filters = 32;
  return config;
}

EngineConfig small_engine_config(int replicas = 1) {
  EngineConfig config;
  config.model = small_model_config();
  config.defense = {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox};
  config.replicas = replicas;
  return config;
}

tensor::Tensor random_batch(std::int64_t n, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  return tensor::Tensor::rand_uniform(tensor::Shape::nchw(n, 3, 32, 32), rng);
}

tensor::Tensor single_image(const tensor::Tensor& batch, std::int64_t i) {
  const std::int64_t stride = batch.dim(1) * batch.dim(2) * batch.dim(3);
  tensor::Tensor image(tensor::Shape{batch.dim(1), batch.dim(2), batch.dim(3)});
  std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride, image.data());
  return image;
}

void expect_bitwise_equal(const Prediction& a, const Prediction& b,
                          const std::string& context) {
  EXPECT_EQ(a.label, b.label) << context;
  ASSERT_EQ(a.logits.size(), b.logits.size()) << context;
  for (std::size_t k = 0; k < a.logits.size(); ++k) {
    EXPECT_EQ(a.logits[k], b.logits[k]) << context << " logit " << k;
  }
}

TEST(Engine, RegistersBaseAndDefendedVariants) {
  const InferenceEngine engine(small_engine_config(2));
  EXPECT_TRUE(engine.has_variant(kBaseVariant));
  EXPECT_TRUE(engine.has_variant(kDefendedVariant));
  EXPECT_FALSE(engine.has_variant("nope"));
  const auto names = engine.variant_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], kBaseVariant);
  EXPECT_EQ(names[1], kDefendedVariant);
  EXPECT_EQ(engine.replica_count(kBaseVariant), 2);
  EXPECT_EQ(engine.replica_count(kDefendedVariant), 2);
}

TEST(Engine, BatchMatchesSingleImageBitwise) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(8);
  const auto batched = engine.classify(batch);
  ASSERT_EQ(batched.size(), 8u);
  for (std::int64_t i = 0; i < 8; ++i) {
    const auto single = engine.classify(single_image(batch, i));
    ASSERT_EQ(single.size(), 1u);
    // Bitwise agreement: batching must be purely a throughput decision.
    expect_bitwise_equal(single[0], batched[static_cast<std::size_t>(i)],
                         "image " + std::to_string(i));
  }
}

TEST(Engine, DeterministicForAnyWorkerCount) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(6, 7);
  const auto reference = engine.classify(batch, Options{kDefendedVariant});
  for (const int workers : {1, 2, 5, 16}) {
    util::set_parallel_workers(workers);
    const auto result = engine.classify(batch, Options{kDefendedVariant});
    ASSERT_EQ(result.size(), reference.size());
    for (std::size_t i = 0; i < result.size(); ++i) {
      expect_bitwise_equal(result[i], reference[i], "workers " + std::to_string(workers));
    }
  }
  util::reset_parallel_workers();
}

TEST(Engine, ConcurrentClassifySpreadsAcrossReplicas) {
  const InferenceEngine engine(small_engine_config(2));
  const auto batch = random_batch(4, 11);
  const auto reference = engine.classify(batch);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        const auto result = engine.classify(batch);
        for (std::size_t i = 0; i < result.size(); ++i) {
          if (result[i].label != reference[i].label ||
              result[i].logits != reference[i].logits) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  // The router balanced the 41 calls over both base replicas: each served
  // some, and together they served everything.
  const auto stats = engine.stats();
  ASSERT_EQ(stats.variants[0].variant, kBaseVariant);
  ASSERT_EQ(stats.variants[0].replicas.size(), 2u);
  std::int64_t base_images = 0;
  for (const auto& rs : stats.variants[0].replicas) {
    // The first two routed calls always land on different replicas (the
    // round-robin cursor advances past a freshly-picked replica), so both
    // must have served.
    EXPECT_GT(rs.images, 0);
    base_images += rs.images;
  }
  EXPECT_EQ(base_images, 41 * 4);
}

TEST(Engine, SubmitCoalescesAndMatchesClassify) {
  InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(16, 13);
  const auto reference = engine.classify(batch);

  std::vector<std::future<Prediction>> futures;
  for (std::int64_t i = 0; i < 16; ++i) {
    futures.push_back(engine.submit(single_image(batch, i)));
  }
  for (std::int64_t i = 0; i < 16; ++i) {
    expect_bitwise_equal(futures[static_cast<std::size_t>(i)].get(),
                         reference[static_cast<std::size_t>(i)],
                         "queued image " + std::to_string(i));
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, 16);  // at least some coalescing is permitted
  EXPECT_GE(stats.largest_batch, 1);
  EXPECT_GE(stats.images, 16);
}

TEST(Engine, OversizedBatchIsSlicedBitwiseEqual) {
  // classify() bounds each forward pass by max_batch; slicing must not change
  // any per-image result, whether the cap comes from the engine or the call.
  EngineConfig config = small_engine_config();
  config.max_batch = 4;
  const InferenceEngine sliced(config);
  const InferenceEngine whole(small_engine_config());  // max_batch 64
  const auto batch = random_batch(11, 37);
  const auto a = sliced.classify(batch);
  const auto b = whole.classify(batch);
  const auto c = whole.classify(batch, Options{kBaseVariant, /*max_batch=*/3});
  ASSERT_EQ(a.size(), 11u);
  ASSERT_EQ(c.size(), 11u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bitwise_equal(a[i], b[i], "engine-cap slice, image " + std::to_string(i));
    expect_bitwise_equal(c[i], b[i], "per-call-cap slice, image " + std::to_string(i));
  }
}

TEST(Engine, DefendedVariantUsesFilteredModel) {
  const InferenceEngine engine(small_engine_config());
  ASSERT_TRUE(engine.defense_enabled());
  EXPECT_EQ(engine.variant(kDefendedVariant).config().fixed_filter.kernel, 3);
  EXPECT_EQ(engine.variant(kBaseVariant).config().fixed_filter.kernel, 0);
  EXPECT_EQ(engine.model().config().fixed_filter.kernel, 0);

  // The blur on the first-layer maps must actually change the logits.
  const auto batch = random_batch(2, 17);
  const auto plain = engine.classify(batch);
  const auto defended = engine.classify(batch, Options{kDefendedVariant});
  bool any_difference = false;
  for (std::size_t k = 0; k < plain[0].logits.size(); ++k) {
    if (plain[0].logits[k] != defended[0].logits[k]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Engine, DisabledDefenseServesBaseWeightsAsDefended) {
  EngineConfig config;
  config.model = small_model_config();
  config.defense = {};  // kNone
  const InferenceEngine engine(config);
  EXPECT_FALSE(engine.defense_enabled());
  // "defended" aliases the base shard: same replicas, no extra weight clones,
  // and stats report a single variant entry.
  EXPECT_TRUE(engine.has_variant(kDefendedVariant));
  EXPECT_EQ(engine.replica_count(kDefendedVariant), engine.replica_count(kBaseVariant));
  EXPECT_EQ(engine.stats().variants.size(), 1u);
  const auto batch = random_batch(2, 19);
  const auto plain = engine.classify(batch);
  const auto defended = engine.classify(batch, Options{kDefendedVariant});
  EXPECT_EQ(plain[0].logits, defended[0].logits);
}

TEST(Engine, SubmitThroughDefendedVariantMatchesClassify) {
  InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(3, 23);
  const auto reference = engine.classify(batch, Options{kDefendedVariant});
  std::vector<std::future<Prediction>> futures;
  for (std::int64_t i = 0; i < 3; ++i) {
    futures.push_back(engine.submit(single_image(batch, i), Options{kDefendedVariant}));
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    expect_bitwise_equal(futures[static_cast<std::size_t>(i)].get(),
                         reference[static_cast<std::size_t>(i)],
                         "queued defended image " + std::to_string(i));
  }
}

// The router satellite: concurrent submit() across replica counts must be
// bitwise-equal to single-replica single-image classification, regardless of
// which replica a request lands on or how batches were coalesced, and the
// per-replica counters must account for every request exactly.
TEST(Engine, ConcurrentSubmitBitwiseEqualAcrossReplicaCounts) {
  const auto batch = random_batch(24, 41);
  const InferenceEngine reference_engine(small_engine_config(1));
  std::vector<Prediction> reference_base, reference_defended;
  for (std::int64_t i = 0; i < 24; ++i) {
    reference_base.push_back(reference_engine.classify(single_image(batch, i))[0]);
    reference_defended.push_back(
        reference_engine.classify(single_image(batch, i), Options{kDefendedVariant})[0]);
  }

  for (const int replicas : {1, 2, 4}) {
    InferenceEngine engine(small_engine_config(replicas));
    std::vector<std::future<Prediction>> base_futures(24), defended_futures(24);
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&, t] {
        // Interleave variants so coalescing and routing orders differ between
        // runs — the results must not.
        for (std::int64_t i = t; i < 24; i += 4) {
          base_futures[static_cast<std::size_t>(i)] = engine.submit(single_image(batch, i));
          defended_futures[static_cast<std::size_t>(i)] =
              engine.submit(single_image(batch, i), Options{kDefendedVariant});
        }
      });
    }
    for (auto& producer : producers) producer.join();
    for (std::int64_t i = 0; i < 24; ++i) {
      expect_bitwise_equal(base_futures[static_cast<std::size_t>(i)].get(),
                           reference_base[static_cast<std::size_t>(i)],
                           "replicas " + std::to_string(replicas) + " base image " +
                               std::to_string(i));
      expect_bitwise_equal(defended_futures[static_cast<std::size_t>(i)].get(),
                           reference_defended[static_cast<std::size_t>(i)],
                           "replicas " + std::to_string(replicas) + " defended image " +
                               std::to_string(i));
    }

    // Per-replica stats account for every queued request and sum to totals.
    const auto stats = engine.stats();
    EXPECT_EQ(stats.requests, 48);
    EXPECT_EQ(stats.images, 48);
    std::int64_t replica_requests = 0, replica_images = 0, replica_batches = 0;
    for (const auto& vs : stats.variants) {
      EXPECT_EQ(vs.replicas.size(), static_cast<std::size_t>(replicas));
      std::int64_t variant_requests = 0;
      for (const auto& rs : vs.replicas) {
        replica_requests += rs.requests;
        replica_images += rs.images;
        replica_batches += rs.batches;
        variant_requests += rs.requests;
        EXPECT_LE(rs.largest_batch, stats.largest_batch);
      }
      EXPECT_EQ(variant_requests, 24) << "variant " << vs.variant;
    }
    EXPECT_EQ(replica_requests, stats.requests);
    EXPECT_EQ(replica_images, stats.images);
    EXPECT_EQ(replica_batches, stats.batches);
  }
}

TEST(Engine, RegisterCustomVariantServesTransferredWeights) {
  InferenceEngine engine(small_engine_config());
  nn::LisaCnnConfig blur7 = small_model_config();
  blur7.fixed_filter = {nn::FilterPlacement::kAfterLayer1, 7, signal::KernelKind::kBox};
  engine.register_variant("blur7", blur7, /*replicas=*/2);
  EXPECT_TRUE(engine.has_variant("blur7"));
  EXPECT_EQ(engine.replica_count("blur7"), 2);
  EXPECT_EQ(engine.variant("blur7").config().fixed_filter.kernel, 7);

  // The variant serves the base weights behind the 7x7 filter: identical to a
  // hand-built transfer of the same weights into the same architecture.
  const auto batch = random_batch(3, 43);
  const nn::LisaCnn expected = engine.model().clone_with_config(blur7);
  const auto via_engine = engine.classify(batch, Options{"blur7"});
  const auto expected_logits = expected.logits(batch);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t k = 0; k < expected_logits.dim(1); ++k) {
      EXPECT_EQ(via_engine[static_cast<std::size_t>(i)].logits[static_cast<std::size_t>(k)],
                expected_logits.at2(i, k));
    }
  }

  // Queued traffic reaches registered variants too.
  auto future = engine.submit(single_image(batch, 0), Options{"blur7"});
  expect_bitwise_equal(future.get(), via_engine[0], "queued blur7");

  EXPECT_THROW(engine.register_variant("blur7", blur7), std::invalid_argument);
  EXPECT_THROW(engine.register_variant("", blur7), std::invalid_argument);
}

TEST(Engine, RegisterModelServesForeignWeights) {
  // A differently-trained (here: differently-initialized) model served as a
  // variant next to the base: replicas clone the *source*, not the base.
  InferenceEngine engine(small_engine_config());
  nn::LisaCnnConfig other_config = small_model_config();
  other_config.init_seed = 99;
  const nn::LisaCnn other(other_config);
  engine.register_model("other", other, /*replicas=*/2);
  EXPECT_TRUE(engine.has_variant("other"));
  EXPECT_EQ(engine.replica_count("other"), 2);

  const auto batch = random_batch(3, 61);
  const auto via_engine = engine.classify(batch, Options{"other"});
  const auto expected = other.logits(batch);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t k = 0; k < expected.dim(1); ++k) {
      EXPECT_EQ(via_engine[static_cast<std::size_t>(i)].logits[static_cast<std::size_t>(k)],
                expected.at2(i, k));
    }
  }
  // The foreign weights are NOT the base weights.
  EXPECT_NE(via_engine[0].logits, engine.classify(batch)[0].logits);
  // And the shard is not refreshable from the base model.
  EXPECT_THROW(engine.refresh_variant("other"), std::logic_error);
  EXPECT_THROW(engine.register_model("other", other), std::invalid_argument);
}

TEST(Engine, AliasVariantSharesShardWithoutNewReplicas) {
  InferenceEngine engine(small_engine_config(2));
  engine.alias_variant("canary", kBaseVariant);
  EXPECT_TRUE(engine.has_variant("canary"));
  EXPECT_EQ(engine.replica_count("canary"), 2);
  // Same shard: traffic through either name lands on the same counters, and
  // stats() reports one variant entry per shard (no duplicate for aliases).
  const auto batch = random_batch(3, 59);
  const auto via_alias = engine.classify(batch, Options{"canary"});
  EXPECT_EQ(via_alias[0].logits, engine.classify(batch)[0].logits);
  EXPECT_EQ(engine.images_served("canary"), engine.images_served(kBaseVariant));
  EXPECT_EQ(engine.stats().variants.size(), 2u);  // base + defended shards only
  EXPECT_THROW(engine.alias_variant("canary", kBaseVariant), std::invalid_argument);
  EXPECT_THROW(engine.alias_variant("x", "no-such-variant"), std::invalid_argument);
  EXPECT_THROW(engine.alias_variant("", kBaseVariant), std::invalid_argument);
}

TEST(Engine, ReplicaModelExposesBitwiseIdenticalClones) {
  InferenceEngine engine(small_engine_config(3));
  const auto batch = random_batch(2, 67);
  const auto reference = engine.model().logits(batch);
  for (int r = 0; r < 3; ++r) {
    const nn::LisaCnn& replica = engine.replica_model(kBaseVariant, r);
    const auto logits = replica.logits(batch);
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      ASSERT_EQ(logits[i], reference[i]) << "replica " << r;
    }
    // Distinct replicas own distinct parameter storage (no shared autograd
    // state between fan-out slots).
    if (r > 0) {
      EXPECT_FALSE(replica.parameters()[0].value().shares_storage_with(
          engine.replica_model(kBaseVariant, 0).parameters()[0].value()));
    }
  }
  EXPECT_THROW(engine.replica_model(kBaseVariant, 3), std::invalid_argument);
  EXPECT_THROW(engine.replica_model(kBaseVariant, -1), std::invalid_argument);
}

TEST(Engine, ClassifyLogitsMatchesClassify) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(5, 71);
  const auto predictions = engine.classify(batch, Options{kDefendedVariant});
  const auto logits = engine.classify_logits(batch, Options{kDefendedVariant});
  ASSERT_EQ(logits.dim(0), 5);
  ASSERT_EQ(logits.dim(1), 18);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t k = 0; k < 18; ++k) {
      EXPECT_EQ(logits.at2(i, k),
                predictions[static_cast<std::size_t>(i)].logits[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Engine, VariantStatsSnapshotCountsServedImages) {
  const InferenceEngine engine(small_engine_config(2));
  EXPECT_EQ(engine.images_served(kBaseVariant), 0);
  engine.classify(random_batch(7, 73));
  engine.classify(random_batch(2, 73), Options{kDefendedVariant});
  const auto base_stats = engine.variant_stats(kBaseVariant);
  EXPECT_EQ(base_stats.variant, kBaseVariant);
  ASSERT_EQ(base_stats.replicas.size(), 2u);
  std::int64_t total = 0;
  for (const auto& rs : base_stats.replicas) total += rs.images;
  EXPECT_EQ(total, 7);
  EXPECT_EQ(engine.images_served(kBaseVariant), 7);
  EXPECT_EQ(engine.images_served(kDefendedVariant), 2);
  EXPECT_THROW(engine.variant_stats("nope"), std::invalid_argument);
}

TEST(Engine, RefreshVariantPicksUpRetrainedBaseWeights) {
  InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(2, 47);
  const auto before = engine.classify(batch);

  // "Retrain" the adopted base model: the engine shares its parameter
  // handles, but the serving replicas hold deep clones — they must not move
  // until refresh_variant() re-transfers the weights.
  auto params = engine.model().parameters();
  params[0].mutable_value() = tensor::mul_scalar(params[0].value(), 0.5f);
  const auto stale = engine.classify(batch);
  EXPECT_EQ(stale[0].logits, before[0].logits);

  engine.refresh_variant(kBaseVariant);
  engine.refresh_variant(kDefendedVariant);
  const auto refreshed = engine.classify(batch);
  EXPECT_NE(refreshed[0].logits, before[0].logits);
  // And the refreshed replicas serve exactly the mutated weights.
  const auto expected = engine.model().logits(batch);
  for (std::int64_t k = 0; k < expected.dim(1); ++k) {
    EXPECT_EQ(refreshed[0].logits[static_cast<std::size_t>(k)], expected.at2(0, k));
  }
}

TEST(Engine, UnknownVariantThrowsDescriptively) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(1, 53);
  try {
    engine.classify(batch, Options{"no-such-variant"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-variant"), std::string::npos) << message;
    EXPECT_NE(message.find("base"), std::string::npos) << message;
  }
}

TEST(Engine, RejectsMalformedInputsWithDescriptiveErrors) {
  InferenceEngine engine(small_engine_config());
  const auto check = [](const auto& fn, const std::string& fragment) {
    try {
      fn();
      FAIL() << "expected std::invalid_argument mentioning \"" << fragment << "\"";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  // Wrong rank: neither CHW nor NCHW.
  check([&] { engine.classify(tensor::Tensor::zeros(tensor::Shape::mat(4, 4))); }, "rank");
  // Wrong channel count.
  check([&] { engine.classify(tensor::Tensor::zeros(tensor::Shape::nchw(1, 4, 32, 32))); },
        "channels");
  // Wrong spatial dims.
  check([&] { engine.classify(tensor::Tensor::zeros(tensor::Shape::nchw(1, 3, 16, 16))); },
        "spatial");
  // Empty batch.
  check([&] { engine.classify(tensor::Tensor::zeros(tensor::Shape::nchw(0, 3, 32, 32))); },
        "no images");
  // submit() rejects whole batches and bad shapes the same way.
  check([&] { engine.submit(tensor::Tensor::zeros(tensor::Shape::nchw(2, 3, 32, 32))); },
        "single image");
  check([&] { engine.submit(tensor::Tensor::zeros(tensor::Shape::nchw(1, 3, 8, 8))); },
        "spatial");
  // Negative per-call max_batch.
  check([&] { engine.classify(random_batch(1), Options{kBaseVariant, -1}); }, "max_batch");
}

TEST(Engine, ConfigValidationRejectsNonPositiveKnobs) {
  const auto check = [](EngineConfig config, const std::string& fragment) {
    try {
      config.validate();
      FAIL() << "expected std::invalid_argument mentioning \"" << fragment << "\"";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
    // The constructor runs the same validation before building any model.
    EXPECT_THROW(InferenceEngine{config}, std::invalid_argument);
  };
  EngineConfig bad_batch = small_engine_config();
  bad_batch.max_batch = 0;
  check(bad_batch, "max_batch");
  EngineConfig bad_replicas = small_engine_config();
  bad_replicas.replicas = -2;
  check(bad_replicas, "replicas");
  EXPECT_NO_THROW(small_engine_config().validate());
}

TEST(Engine, TransformVariantRunsPreprocessThenForward) {
  InferenceEngine engine(small_engine_config());
  const auto spec = defense::TransformSpec::median(3);
  engine.register_transform_variant("median3", spec, /*replicas=*/2);
  EXPECT_TRUE(engine.has_variant("median3"));
  EXPECT_EQ(engine.replica_count("median3"), 2);
  ASSERT_NE(engine.variant_transform("median3"), nullptr);
  EXPECT_EQ(engine.variant_transform("median3")->name(), "median3");
  EXPECT_EQ(engine.variant_kind("median3"), "transform-wrapped weight-transfer (median3)");
  EXPECT_EQ(engine.variant_kind(kBaseVariant), "weight-transfer");
  EXPECT_EQ(engine.variant_transform(kBaseVariant), nullptr);

  // The two-stage pipeline equals a hand-run transform followed by the base
  // forward — bitwise, since both run the exact same kernels.
  const auto batch = random_batch(5, 83);
  const defense::InputTransform reference_transform(spec);
  const auto expected = engine.model().logits(reference_transform.apply(batch));
  const auto via_engine = engine.classify(batch, Options{"median3"});
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t k = 0; k < expected.dim(1); ++k) {
      EXPECT_EQ(via_engine[static_cast<std::size_t>(i)].logits[static_cast<std::size_t>(k)],
                expected.at2(i, k));
    }
  }
  // And the transform must actually change the prediction inputs.
  EXPECT_NE(via_engine[0].logits, engine.classify(batch)[0].logits);
  EXPECT_THROW(engine.register_transform_variant("median3", spec), std::invalid_argument);
  EXPECT_THROW(engine.register_transform_variant("bad", defense::TransformSpec::median(2)),
               std::invalid_argument);
}

// The tentpole determinism proof: a transformed variant's per-image results
// are bitwise identical for any replica count, batch split, or queue
// coalescing — the preprocess stage rides inside the replica, so sharding
// stays a pure throughput decision.
TEST(Engine, TransformVariantBitwiseAcrossReplicaCountsAndBatchSplits) {
  const auto spec = defense::TransformSpec::dct_quant(50);
  const auto batch = random_batch(12, 89);

  std::vector<Prediction> reference;
  {
    InferenceEngine engine(small_engine_config(1));
    engine.register_transform_variant("dctq50", spec);
    for (std::int64_t i = 0; i < 12; ++i) {
      reference.push_back(engine.classify(single_image(batch, i), Options{"dctq50"})[0]);
    }
  }

  for (const int replicas : {1, 2, 4}) {
    InferenceEngine engine(small_engine_config(replicas));
    engine.register_transform_variant("dctq50", spec);
    const std::string context = "replicas " + std::to_string(replicas);

    // Whole batch, and a forced 5-image slicing of the same batch.
    const auto whole = engine.classify(batch, Options{"dctq50"});
    const auto sliced = engine.classify(batch, Options{"dctq50", /*max_batch=*/5});
    ASSERT_EQ(whole.size(), 12u);
    for (std::int64_t i = 0; i < 12; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      expect_bitwise_equal(whole[idx], reference[idx],
                           context + " whole-batch image " + std::to_string(i));
      expect_bitwise_equal(sliced[idx], reference[idx],
                           context + " sliced image " + std::to_string(i));
    }

    // The coalescing submit() path from concurrent producers.
    std::vector<std::future<Prediction>> futures(12);
    std::vector<std::thread> producers;
    for (int t = 0; t < 3; ++t) {
      producers.emplace_back([&, t] {
        for (std::int64_t i = t; i < 12; i += 3) {
          futures[static_cast<std::size_t>(i)] =
              engine.submit(single_image(batch, i), Options{"dctq50"});
        }
      });
    }
    for (auto& producer : producers) producer.join();
    for (std::int64_t i = 0; i < 12; ++i) {
      expect_bitwise_equal(futures[static_cast<std::size_t>(i)].get(),
                           reference[static_cast<std::size_t>(i)],
                           context + " queued image " + std::to_string(i));
    }
  }
}

TEST(Engine, NoneTransformVariantIsBitwiseThePlainPath) {
  // A kNone registration attaches no preprocess stage at all, so the variant
  // is structurally a plain weight-transfer shard — the "transform off"
  // anchor the BPDA-off attack equivalence builds on.
  InferenceEngine engine(small_engine_config());
  engine.register_transform_variant("noop", defense::TransformSpec::none());
  EXPECT_EQ(engine.variant_transform("noop"), nullptr);
  EXPECT_EQ(engine.variant_kind("noop"), "weight-transfer");
  const auto batch = random_batch(4, 97);
  const auto plain = engine.classify(batch);
  const auto noop = engine.classify(batch, Options{"noop"});
  for (std::size_t i = 0; i < plain.size(); ++i) {
    expect_bitwise_equal(noop[i], plain[i], "noop image " + std::to_string(i));
  }
  // refresh works: it is an ordinary from-base shard.
  EXPECT_NO_THROW(engine.refresh_variant("noop"));
}

TEST(Engine, TransformModelServesForeignWeightsBehindPreprocess) {
  InferenceEngine engine(small_engine_config());
  nn::LisaCnnConfig other_config = small_model_config();
  other_config.init_seed = 123;
  const nn::LisaCnn other(other_config);
  const auto spec = defense::TransformSpec::squeeze(4);
  engine.register_transform_model("other_sq", other, spec, /*replicas=*/2);
  EXPECT_EQ(engine.variant_kind("other_sq"), "transform-wrapped foreign-model (squeeze4)");

  const auto batch = random_batch(3, 101);
  const defense::InputTransform transform(spec);
  const auto expected = other.logits(transform.apply(batch));
  const auto via_engine = engine.classify(batch, Options{"other_sq"});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t k = 0; k < expected.dim(1); ++k) {
      EXPECT_EQ(via_engine[static_cast<std::size_t>(i)].logits[static_cast<std::size_t>(k)],
                expected.at2(i, k));
    }
  }
}

TEST(Engine, RefreshVariantErrorsNameTheVariantAndItsKind) {
  InferenceEngine engine(small_engine_config());
  const nn::LisaCnn other(small_model_config());
  engine.register_model("foreign", other);
  engine.register_transform_model("foreign_med", other, defense::TransformSpec::median(3));
  engine.register_transform_variant("base_med", defense::TransformSpec::median(3));

  const auto check = [&](const std::string& name, const std::string& kind) {
    try {
      engine.refresh_variant(name);
      FAIL() << "expected std::logic_error for " << name;
    } catch (const std::logic_error& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find(name), std::string::npos) << message;
      EXPECT_NE(message.find(kind), std::string::npos) << message;
    }
  };
  check("foreign", "foreign-model");
  check("foreign_med", "transform-wrapped foreign-model (median3)");

  // A transform-wrapped *base* variant refreshes fine: weights re-transfer,
  // the preprocess stage is kept.
  const auto batch = random_batch(2, 103);
  const auto before = engine.classify(batch, Options{"base_med"});
  auto params = engine.model().parameters();
  params[0].mutable_value() = tensor::mul_scalar(params[0].value(), 0.5f);
  engine.refresh_variant("base_med");
  const auto refreshed = engine.classify(batch, Options{"base_med"});
  EXPECT_NE(refreshed[0].logits, before[0].logits);
  const defense::InputTransform transform(defense::TransformSpec::median(3));
  const auto expected = engine.model().logits(transform.apply(batch));
  for (std::int64_t k = 0; k < expected.dim(1); ++k) {
    EXPECT_EQ(refreshed[0].logits[static_cast<std::size_t>(k)], expected.at2(0, k));
  }
}

TEST(Engine, ConfidenceIsSoftmaxOfPredictedLabel) {
  const InferenceEngine engine(small_engine_config());
  const auto prediction = engine.classify(random_batch(1, 31))[0];
  EXPECT_GE(prediction.confidence, 1.0f / 18.0f - 1e-6f);  // at least uniform mass
  EXPECT_LE(prediction.confidence, 1.0f);
  EXPECT_EQ(prediction.logits.size(), 18u);
}

// ---- bounded queues & overload policies -------------------------------------

/// Preprocess stage whose apply() blocks until released — the deterministic
/// way to hold a variant's worker mid-batch and fill its bounded queue.
class GateTransform : public defense::InputTransform {
 public:
  GateTransform() : InputTransform(defense::TransformSpec::none(), "gate") {}

  tensor::Tensor apply(const tensor::Tensor& images) const override {
    entered_.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
    return images.clone();
  }

  /// Spin until `n` apply() calls have started (i.e. a worker holds a batch).
  void wait_entered(int n) const {
    while (entered_.load() < n) std::this_thread::yield();
  }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::atomic<int> entered_{0};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool open_ = false;
};

TEST(EngineConfig, ValidatesQueueAndOverloadKnobs) {
  EngineConfig config = small_engine_config();
  config.queue_capacity = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_THROW(InferenceEngine{config}, std::invalid_argument);
  config.queue_capacity = -3;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = small_engine_config();
  config.block_timeout_ms = -1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  // The nonsensical combination: a reject-policy engine never waits.
  config = small_engine_config();
  config.overload_policy = OverloadPolicy::kReject;
  config.block_timeout_ms = 100;
  try {
    config.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("block_timeout_ms"), std::string::npos) << message;
    EXPECT_NE(message.find("kBlock"), std::string::npos) << message;
  }

  // The same timeout is fine under kBlock.
  config.overload_policy = OverloadPolicy::kBlock;
  EXPECT_NO_THROW(config.validate());
  config.block_timeout_ms = 0;
  EXPECT_NO_THROW(config.validate());
}

TEST(Engine, RejectPolicyShedsWhenQueueIsFullAndServesAfterDraining) {
  EngineConfig config = small_engine_config();
  config.queue_capacity = 2;
  config.overload_policy = OverloadPolicy::kReject;
  InferenceEngine engine(config);
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);

  const auto batch = random_batch(8, 71);
  const Options options{"gated"};
  std::vector<std::future<Prediction>> futures;
  // First submit: its worker takes it and parks inside the gate.
  futures.push_back(engine.submit(single_image(batch, 0), options));
  gate->wait_entered(1);
  // Two more fill the queue to capacity...
  futures.push_back(engine.submit(single_image(batch, 1), options));
  futures.push_back(engine.submit(single_image(batch, 2), options));
  // ...and the next one is shed.
  EXPECT_THROW(engine.submit(single_image(batch, 3), options), OverloadError);

  VariantStats stats = engine.variant_stats("gated");
  EXPECT_EQ(stats.queue_depth, 2);
  EXPECT_EQ(stats.queue_peak, 2);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.blocked, 0);

  // Release the gate: every admitted request resolves, bitwise equal to the
  // synchronous path, and the drained engine serves new traffic again.
  gate->open();
  const auto expected = engine.classify(batch, options);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_bitwise_equal(futures[i].get(), expected[i], "admitted " + std::to_string(i));
  }
  auto after = engine.submit(single_image(batch, 3), options);
  expect_bitwise_equal(after.get(), expected[3], "post-drain");
  stats = engine.variant_stats("gated");
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.rejected, 1);  // sheds are not forgotten
  EXPECT_EQ(stats.latency.count, 4);  // 3 admitted + 1 post-drain
  EXPECT_GT(stats.latency.p99_us, 0.0);
}

TEST(Engine, BlockPolicyBackpressuresUntilASlotFrees) {
  EngineConfig config = small_engine_config();
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  InferenceEngine engine(config);
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);

  const auto batch = random_batch(4, 73);
  const Options options{"gated"};
  auto first = engine.submit(single_image(batch, 0), options);
  gate->wait_entered(1);                                        // worker parked
  auto second = engine.submit(single_image(batch, 1), options);  // queue now full

  std::atomic<bool> third_submitted{false};
  std::future<Prediction> third;
  std::thread submitter([&] {
    third = engine.submit(single_image(batch, 2), options);  // must block
    third_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_submitted.load());  // still backpressured

  gate->open();  // worker drains; the blocked submit admits and resolves
  submitter.join();
  EXPECT_TRUE(third_submitted.load());

  const auto expected = engine.classify(batch, options);
  expect_bitwise_equal(first.get(), expected[0], "first");
  expect_bitwise_equal(second.get(), expected[1], "second");
  expect_bitwise_equal(third.get(), expected[2], "third");
  const VariantStats stats = engine.variant_stats("gated");
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.blocked, 1);
  EXPECT_EQ(stats.queue_peak, 1);
}

TEST(Engine, BlockPolicyTimeoutShedsWithOverloadError) {
  EngineConfig config = small_engine_config();
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  config.block_timeout_ms = 40;
  InferenceEngine engine(config);
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);

  const auto batch = random_batch(3, 77);
  const Options options{"gated"};
  auto first = engine.submit(single_image(batch, 0), options);
  gate->wait_entered(1);
  auto second = engine.submit(single_image(batch, 1), options);  // fills the queue
  try {
    engine.submit(single_image(batch, 2), options);
    FAIL() << "expected OverloadError after the block timeout";
  } catch (const OverloadError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("timed out"), std::string::npos) << message;
  }
  const VariantStats stats = engine.variant_stats("gated");
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_GE(stats.blocked, 1);
  gate->open();
  first.get();
  second.get();
}

/// A gate that admits one apply() per release(): lets a test free exactly one
/// queue slot at a time and watch who gets it.
class StepGate : public defense::InputTransform {
 public:
  StepGate() : InputTransform(defense::TransformSpec::none(), "step-gate") {}

  tensor::Tensor apply(const tensor::Tensor& images) const override {
    entered_.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return tokens_ > 0; });
    --tokens_;
    return images.clone();
  }

  /// Spin until `n` apply() calls have started (a worker holds a batch).
  void wait_entered(int n) const {
    while (entered_.load() < n) std::this_thread::yield();
  }

  void release(int n = 1) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tokens_ += n;
    }
    cv_.notify_all();
  }

 private:
  mutable std::atomic<int> entered_{0};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable int tokens_ = 0;
};

TEST(Engine, BlockAdmissionIsFifo) {
  // One replica, a one-slot queue, and a gate that serves one image per
  // release: freeing a single slot must admit the *longest-waiting* blocked
  // submitter, not whichever thread the scheduler happens to wake.
  EngineConfig config = small_engine_config();
  config.queue_capacity = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  InferenceEngine engine(config);
  auto gate = std::make_shared<StepGate>();
  engine.register_pipeline_variant("gated", gate);

  const auto batch = random_batch(4, 83);
  Options options{"gated"};
  options.max_batch = 1;  // one image per coalesced batch: slots free one at a time

  auto leader = engine.submit(single_image(batch, 0), options);
  gate->wait_entered(1);                                         // worker parks in the gate
  auto filler = engine.submit(single_image(batch, 1), options);  // queue now full

  auto blocked_count = [&] { return engine.variant_stats("gated").blocked; };
  std::atomic<bool> first_admitted{false}, second_admitted{false};
  std::future<Prediction> first_waiter, second_waiter;
  std::thread first_thread([&] {
    first_waiter = engine.submit(single_image(batch, 2), options);
    first_admitted.store(true);
  });
  while (blocked_count() < 1) std::this_thread::yield();  // first waiter is in line
  std::thread second_thread([&] {
    second_waiter = engine.submit(single_image(batch, 3), options);
    second_admitted.store(true);
  });
  while (blocked_count() < 2) std::this_thread::yield();  // second waiter queued behind

  // Serve the leader: the worker then pops the filler, freeing exactly one
  // slot. FIFO admission means the first waiter takes it — deterministically.
  gate->release();
  while (!first_admitted.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_admitted.load()) << "slot went to the later arrival";

  // Serve the filler: the next freed slot admits the second waiter.
  gate->release();
  second_thread.join();
  EXPECT_TRUE(second_admitted.load());
  first_thread.join();

  gate->release(100);  // let the waiters' requests and the check below through
  const auto expected = engine.classify(batch, options);
  expect_bitwise_equal(leader.get(), expected[0], "leader");
  expect_bitwise_equal(filler.get(), expected[1], "filler");
  expect_bitwise_equal(first_waiter.get(), expected[2], "first waiter");
  expect_bitwise_equal(second_waiter.get(), expected[3], "second waiter");
  EXPECT_GE(engine.variant_stats("gated").blocked, 2);
}

TEST(Engine, SubmitIsBitwiseDeterministicAcrossQueueCapacities) {
  const auto batch = random_batch(12, 79);
  const InferenceEngine reference(small_engine_config());
  const auto expected = reference.classify(batch);

  for (const int capacity : {1, 2, 8, 1024}) {
    for (const int replicas : {1, 3}) {
      EngineConfig config = small_engine_config(replicas);
      config.queue_capacity = capacity;
      // Backpressure, never shed: every request is served no matter how
      // small the queue, so the comparison covers all 12 images.
      config.overload_policy = OverloadPolicy::kBlock;
      InferenceEngine engine(config);
      std::vector<std::future<Prediction>> futures;
      for (std::int64_t i = 0; i < batch.dim(0); ++i) {
        futures.push_back(engine.submit(single_image(batch, i)));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        expect_bitwise_equal(futures[i].get(), expected[i],
                             "capacity " + std::to_string(capacity) + " replicas " +
                                 std::to_string(replicas) + " image " + std::to_string(i));
      }
    }
  }
}

// ---- request arena: allocation-free steady state ----------------------------

TEST(Engine, ArenaForwardPathMatchesUnscopedHeapPathBitwise) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(6, 83);
  // classify() runs inside an arena frame; calling the model directly on this
  // thread (no frame bound) takes the heap path. The arena must only move
  // bytes, never change arithmetic.
  const auto via_engine = engine.classify(batch);
  const auto expected = engine.variant(kBaseVariant).logits(batch);
  for (std::int64_t i = 0; i < batch.dim(0); ++i) {
    for (std::int64_t k = 0; k < expected.dim(1); ++k) {
      EXPECT_EQ(via_engine[static_cast<std::size_t>(i)].logits[static_cast<std::size_t>(k)],
                expected.at2(i, k));
    }
  }
}

TEST(Engine, SteadyStateClassifyPerformsZeroScratchHeapAllocations) {
  const InferenceEngine engine(small_engine_config());
  const auto batch = random_batch(16, 89);
  // Warm-up: grows the caller thread's arena (and the conv scratch) to the
  // batch's high-water mark.
  for (int i = 0; i < 3; ++i) engine.classify(batch);

  const std::int64_t before = util::scratch_heap_allocations();
  const auto warm = engine.classify(batch);
  const auto again = engine.classify(batch);
  // Zero scratch-layer heap traffic: every tensor and autograd node of the
  // forward chain came out of the warmed arena.
  EXPECT_EQ(util::scratch_heap_allocations(), before);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_bitwise_equal(warm[i], again[i], "warm repeat " + std::to_string(i));
  }
}

TEST(Engine, SteadyStateSubmitForwardPathIsAllocationFree) {
  EngineConfig config = small_engine_config();
  InferenceEngine engine(config);
  const auto batch = random_batch(8, 97);
  std::vector<tensor::Tensor> images;
  for (std::int64_t i = 0; i < batch.dim(0); ++i) images.push_back(single_image(batch, i));
  // max_batch 1 pins every coalesced batch to one image, so the worker
  // arena's high-water mark is timing-independent and warm-up is exact.
  Options options;
  options.max_batch = 1;
  const auto submit_all = [&] {
    std::vector<std::future<Prediction>> futures;
    for (const auto& image : images) futures.push_back(engine.submit(image, options));
    std::vector<Prediction> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };
  // Warm-up: spawns the worker and grows its arena to steady state.
  for (int i = 0; i < 3; ++i) submit_all();

  const std::int64_t before = util::scratch_heap_allocations();
  const auto warm = submit_all();
  // The worker-side forward path is allocation-free; the only scratch-layer
  // heap events are the admission-side image clones (one per request), whose
  // storage must outlive submit() and so cannot live in any frame.
  EXPECT_EQ(util::scratch_heap_allocations(), before + batch.dim(0));
  const auto expected = engine.classify(batch);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_bitwise_equal(warm[i], expected[i], "submit steady " + std::to_string(i));
  }
}

// ---- latency ring -----------------------------------------------------------

TEST(LatencyRing, NearestRankQuantilesOverKnownSamples) {
  LatencyRing ring(256);
  for (int v = 1; v <= 100; ++v) ring.record(static_cast<double>(v));
  const LatencySnapshot snap = ring.snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.window, 100);
  EXPECT_DOUBLE_EQ(snap.mean_us, 50.5);
  EXPECT_DOUBLE_EQ(snap.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(snap.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(snap.p999_us, 100.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 100.0);
}

TEST(LatencyRing, WindowKeepsTheLatestSamples) {
  LatencyRing ring(10);
  for (int v = 1; v <= 25; ++v) ring.record(static_cast<double>(v));
  const LatencySnapshot snap = ring.snapshot();
  EXPECT_EQ(snap.count, 25);
  EXPECT_EQ(snap.window, 10);
  EXPECT_DOUBLE_EQ(snap.max_us, 25.0);
  // Window is exactly {16..25}.
  EXPECT_DOUBLE_EQ(snap.p50_us, 20.0);
  EXPECT_DOUBLE_EQ(snap.mean_us, 20.5);
}

TEST(LatencyRing, EmptyAndInvalid) {
  EXPECT_THROW(LatencyRing(0), std::invalid_argument);
  LatencyRing ring(4);
  const LatencySnapshot snap = ring.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.window, 0);
  EXPECT_DOUBLE_EQ(snap.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(latency_quantile({}, 0.5), 0.0);
  EXPECT_THROW(latency_quantile({1.0}, 1.5), std::invalid_argument);
  EXPECT_DOUBLE_EQ(latency_quantile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(latency_quantile({3.0, 1.0, 2.0}, 1.0), 3.0);
}

// ---- load generator ---------------------------------------------------------

TEST(LoadGen, ValidatesConfig) {
  InferenceEngine engine(small_engine_config());
  LoadConfig config;
  config.offered_rps = 0.0;
  EXPECT_THROW(LoadGenerator(engine, config), std::invalid_argument);
  config = {};
  config.requests = 0;
  EXPECT_THROW(LoadGenerator(engine, config), std::invalid_argument);
  config = {};
  config.arrival = ArrivalProcess::kOnOff;
  config.on_fraction = 1.5;
  EXPECT_THROW(LoadGenerator(engine, config), std::invalid_argument);
  config.on_fraction = 0.5;
  config.burst_cycle_s = 0.0;
  EXPECT_THROW(LoadGenerator(engine, config), std::invalid_argument);
  config = {};
  config.mix = {{kBaseVariant, 1.0}, {kBaseVariant, 2.0}};
  EXPECT_THROW(LoadGenerator(engine, config), std::invalid_argument);
  config = {};
  config.mix = {{"nope", 1.0}};
  LoadGenerator generator(engine, config);  // builds fine...
  EXPECT_THROW(generator.run(single_image(random_batch(1), 0)),
               std::invalid_argument);  // ...fails fast against this engine
}

TEST(LoadGen, ScheduleIsDeterministicPerSeed) {
  InferenceEngine engine(small_engine_config());
  LoadConfig config;
  config.requests = 200;
  config.seed = 1234;
  config.mix = {{kBaseVariant, 3.0}, {kDefendedVariant, 1.0}};
  const LoadGenerator a(engine, config), b(engine, config);
  // Same seed ⇒ bitwise-identical arrivals and routing.
  ASSERT_EQ(a.arrival_offsets().size(), 200u);
  EXPECT_EQ(a.arrival_offsets(), b.arrival_offsets());
  EXPECT_EQ(a.variant_schedule(), b.variant_schedule());

  config.seed = 1235;
  const LoadGenerator c(engine, config);
  EXPECT_NE(a.arrival_offsets(), c.arrival_offsets());

  // Arrivals are sorted and the mix is honored in rough proportion.
  double previous = 0.0;
  for (const double offset : a.arrival_offsets()) {
    EXPECT_GE(offset, previous);
    previous = offset;
  }
  std::size_t to_base = 0;
  for (const std::size_t m : a.variant_schedule()) {
    if (m == 0) ++to_base;
  }
  EXPECT_GT(to_base, 120u);  // ~150 expected of 200 at weight 3:1
  EXPECT_LT(to_base, 180u);
}

TEST(LoadGen, UniformPacingAndOnOffWindows) {
  InferenceEngine engine(small_engine_config());
  LoadConfig config;
  config.arrival = ArrivalProcess::kUniform;
  config.offered_rps = 50.0;
  config.requests = 10;
  const LoadGenerator uniform(engine, config);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(uniform.arrival_offsets()[i], static_cast<double>(i) / 50.0);
  }

  config.arrival = ArrivalProcess::kOnOff;
  config.offered_rps = 500.0;
  config.requests = 400;
  config.on_fraction = 0.25;
  config.burst_cycle_s = 0.1;
  const LoadGenerator bursty(engine, config);
  const double on_len = 0.25 * 0.1;
  for (const double offset : bursty.arrival_offsets()) {
    const double in_cycle = std::fmod(offset, 0.1);
    // Every arrival lands inside its cycle's on-window.
    EXPECT_LE(in_cycle, on_len + 1e-9) << "offset " << offset;
  }
}

TEST(LoadGen, ReplayAccountsForEveryScheduledRequest) {
  EngineConfig engine_config = small_engine_config();
  InferenceEngine engine(engine_config);
  LoadConfig config;
  config.offered_rps = 2000.0;  // fast: ~25 ms of schedule
  config.requests = 50;
  config.seed = 7;
  config.mix = {{kBaseVariant, 1.0}, {kDefendedVariant, 1.0}};
  LoadGenerator generator(engine, config);
  const LoadReport report = generator.run(single_image(random_batch(1, 41), 0));

  EXPECT_EQ(report.offered, 50);
  EXPECT_EQ(report.served + report.rejected + report.failed, 50);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.rejected, 0);  // default queue capacity is ample
  EXPECT_GT(report.achieved_rps, 0.0);
  EXPECT_GT(report.duration_s, 0.0);
  EXPECT_EQ(report.latency.count, report.served);
  EXPECT_GT(report.latency.p99_us, 0.0);
  EXPECT_GE(report.latency.p99_us, report.latency.p50_us);

  ASSERT_EQ(report.variants.size(), 2u);
  std::int64_t offered_sum = 0, served_sum = 0;
  for (std::size_t m = 0; m < report.variants.size(); ++m) {
    const auto& vs = report.variants[m];
    // Offered counts are exactly the schedule's routing counts.
    std::int64_t scheduled = 0;
    for (const std::size_t idx : generator.variant_schedule()) {
      if (idx == m) ++scheduled;
    }
    EXPECT_EQ(vs.offered, scheduled) << vs.variant;
    EXPECT_EQ(vs.served, vs.offered) << vs.variant;
    offered_sum += vs.offered;
    served_sum += vs.served;
  }
  EXPECT_EQ(offered_sum, 50);
  EXPECT_EQ(served_sum, report.served);

  // Engine-side latency rings saw the same traffic.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 50);
  EXPECT_EQ(stats.rejected, 0);
}

}  // namespace
}  // namespace blurnet::serve
