// Finite-difference validation of every backward closure in the autograd
// engine. Each case builds a scalar loss from a single leaf and compares the
// analytic gradient against central differences.
//
// Inputs are shifted away from non-differentiable points (ReLU kinks, abs at
// 0, argmax ties) so the checks are well-posed.
#include <gtest/gtest.h>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/defense/regularizers.h"
#include "src/util/rng.h"

namespace blurnet::autograd {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor smooth_random(Shape shape, std::uint64_t seed, float offset = 0.6f) {
  util::Rng rng(seed);
  Tensor t = Tensor::randn(std::move(shape), rng, 0.0f, 0.5f);
  // Shift away from 0 so |x|, relu, sign subgradients are stable under the
  // finite-difference probe.
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    p[i] += (p[i] >= 0 ? offset : -offset);
  }
  return t;
}

void expect_gradcheck(const std::function<Variable(const Variable&)>& fn, const Tensor& x,
                      double rtol = 5e-2) {
  const auto result = gradcheck(fn, x, 1e-3, rtol);
  EXPECT_TRUE(result.passed) << "max_rel_error=" << result.max_rel_error
                             << " max_abs_error=" << result.max_abs_error;
}

TEST(GradCheck, AddMulChain) {
  expect_gradcheck(
      [](const Variable& x) {
        return sum(mul(add_scalar(x, 0.3f), mul_scalar(x, 1.7f)));
      },
      smooth_random(Shape::vec(6), 1));
}

TEST(GradCheck, Sigmoid) {
  expect_gradcheck([](const Variable& x) { return sum(sigmoid(x)); },
                   smooth_random(Shape::vec(5), 2));
}

TEST(GradCheck, Tanh) {
  expect_gradcheck([](const Variable& x) { return sum(tanh_op(x)); },
                   smooth_random(Shape::vec(5), 3));
}

TEST(GradCheck, Relu) {
  expect_gradcheck([](const Variable& x) { return sum(relu(x)); },
                   smooth_random(Shape::vec(8), 4));
}

TEST(GradCheck, Mean) {
  expect_gradcheck([](const Variable& x) { return mean(x); }, smooth_random(Shape::vec(7), 5));
}

TEST(GradCheck, SumSquares) {
  expect_gradcheck([](const Variable& x) { return sum_squares(x); },
                   smooth_random(Shape::vec(6), 6));
}

TEST(GradCheck, L1Norm) {
  expect_gradcheck([](const Variable& x) { return l1_norm(x); },
                   smooth_random(Shape::vec(6), 7));
}

TEST(GradCheck, L2Norm) {
  expect_gradcheck([](const Variable& x) { return l2_norm(x); },
                   smooth_random(Shape::vec(6), 8));
}

TEST(GradCheck, MatmulLeft) {
  util::Rng rng(9);
  const Tensor b = Tensor::randn(Shape::mat(4, 3), rng);
  expect_gradcheck(
      [&b](const Variable& x) { return sum_squares(matmul(x, Variable::constant(b))); },
      smooth_random(Shape::mat(2, 4), 10));
}

TEST(GradCheck, MatmulRight) {
  util::Rng rng(11);
  const Tensor a = Tensor::randn(Shape::mat(3, 4), rng);
  expect_gradcheck(
      [&a](const Variable& x) { return sum_squares(matmul(Variable::constant(a), x)); },
      smooth_random(Shape::mat(4, 2), 12));
}

TEST(GradCheck, DenseAllInputs) {
  util::Rng rng(13);
  const Tensor x0 = Tensor::randn(Shape::mat(3, 4), rng);
  const Tensor w0 = Tensor::randn(Shape::mat(4, 5), rng);
  const Tensor b0 = Tensor::randn(Shape::vec(5), rng);
  // w.r.t. x
  expect_gradcheck(
      [&](const Variable& x) {
        return sum_squares(dense(x, Variable::constant(w0), Variable::constant(b0)));
      },
      x0);
  // w.r.t. w
  expect_gradcheck(
      [&](const Variable& w) {
        return sum_squares(dense(Variable::constant(x0), w, Variable::constant(b0)));
      },
      w0);
  // w.r.t. b
  expect_gradcheck(
      [&](const Variable& b) {
        return sum_squares(dense(Variable::constant(x0), Variable::constant(w0), b));
      },
      b0);
}

// Conv2d gradients over stride/pad configurations.
class Conv2dGradCheck : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Conv2dGradCheck, InputWeightBias) {
  const auto [kernel, stride, pad] = GetParam();
  util::Rng rng(20 + kernel + stride * 3 + pad * 7);
  // Small tensors and modest weight scale keep the float32 forward-pass
  // noise well below the finite-difference signal.
  const Tensor x0 = Tensor::randn(Shape::nchw(1, 2, 6, 6), rng, 0.0f, 0.5f);
  const Tensor w0 = Tensor::randn(Shape{2, 2, kernel, kernel}, rng, 0.0f, 0.2f);
  const Tensor b0 = Tensor::randn(Shape::vec(2), rng, 0.0f, 0.2f);
  expect_gradcheck(
      [&](const Variable& x) {
        return sum_squares(
            conv2d(x, Variable::constant(w0), Variable::constant(b0), stride, pad));
      },
      x0);
  expect_gradcheck(
      [&](const Variable& w) {
        return sum_squares(
            conv2d(Variable::constant(x0), w, Variable::constant(b0), stride, pad));
      },
      w0);
  expect_gradcheck(
      [&](const Variable& b) {
        return sum_squares(
            conv2d(Variable::constant(x0), Variable::constant(w0), b, stride, pad));
      },
      b0);
}

INSTANTIATE_TEST_SUITE_P(Configs, Conv2dGradCheck,
                         ::testing::Values(std::tuple{3, 1, 1}, std::tuple{3, 2, 1},
                                           std::tuple{5, 1, 2}, std::tuple{5, 2, 2},
                                           std::tuple{1, 1, 0}));

TEST(GradCheck, DepthwiseConvInputAndWeights) {
  util::Rng rng(30);
  const Tensor x0 = Tensor::randn(Shape::nchw(1, 3, 6, 6), rng);
  const Tensor w0 = Tensor::randn(Shape{3, 3, 3}, rng, 0.0f, 0.4f);
  expect_gradcheck(
      [&](const Variable& x) {
        return sum_squares(depthwise_conv2d_same(x, Variable::constant(w0), Variable()));
      },
      x0);
  expect_gradcheck(
      [&](const Variable& w) {
        return sum_squares(depthwise_conv2d_same(Variable::constant(x0), w, Variable()));
      },
      w0);
}

TEST(GradCheck, MaxPool) {
  // Distinct values avoid argmax ties under the probe.
  Tensor x0(Shape::nchw(1, 1, 4, 4));
  for (std::int64_t i = 0; i < 16; ++i) x0[i] = static_cast<float>(i) * 0.37f;
  expect_gradcheck([](const Variable& x) { return sum_squares(maxpool2d(x, 2, 2)); }, x0);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  util::Rng rng(31);
  const Tensor logits0 = Tensor::randn(Shape::mat(3, 5), rng);
  const std::vector<int> labels = {0, 2, 4};
  expect_gradcheck(
      [&labels](const Variable& logits) { return softmax_cross_entropy(logits, labels); },
      logits0);
}

TEST(GradCheck, TvLoss) {
  expect_gradcheck([](const Variable& x) { return tv_loss(x); },
                   smooth_random(Shape::nchw(1, 2, 4, 4), 32));
}

TEST(GradCheck, TikhonovRows) {
  const Tensor l_hf = defense::tik_hf_operator(5);
  expect_gradcheck([&l_hf](const Variable& x) { return tikhonov_rows(x, l_hf); },
                   smooth_random(Shape::nchw(1, 2, 5, 5), 33));
}

TEST(GradCheck, TikhonovElementwise) {
  const Tensor p = defense::tik_pseudo_operator(5, 5);
  expect_gradcheck([&p](const Variable& x) { return tikhonov_elementwise(x, p); },
                   smooth_random(Shape::nchw(1, 2, 5, 5), 34));
}

TEST(GradCheck, LinfPerChannel) {
  // Distinct magnitudes keep the per-channel argmax stable under probing.
  Tensor w0(Shape{2, 2, 2}, {0.9f, 0.1f, -0.2f, 0.3f, 0.1f, -0.8f, 0.2f, 0.4f});
  expect_gradcheck([](const Variable& w) { return linf_per_channel(w); }, w0);
}

TEST(GradCheck, AffineWarp) {
  const auto transform = Affine2D::rotation_scale_about_center(0.3, 0.9, 0.5, -0.3, 6, 6);
  expect_gradcheck(
      [&transform](const Variable& x) { return sum_squares(affine_warp(x, transform)); },
      smooth_random(Shape::nchw(1, 2, 6, 6), 35));
}

TEST(GradCheck, AffineWarpPerSampleTransforms) {
  // Every batch row warps under its own pose (the pose-batched EOT layout),
  // including one pose whose shift pushes part of the sample out of bounds —
  // the dropped taps must show up as exact zeros in the analytic gradient.
  const std::vector<Affine2D> transforms = {
      Affine2D::rotation_scale_about_center(0.4, 1.05, -0.6, 0.2, 6, 6),
      Affine2D::rotation_scale_about_center(-0.2, 0.8, 3.5, -3.5, 6, 6),
      Affine2D::identity(),
  };
  expect_gradcheck(
      [&transforms](const Variable& x) { return sum_squares(affine_warp(x, transforms)); },
      smooth_random(Shape::nchw(3, 2, 6, 6), 41));
}

TEST(GradCheck, RepeatBatch) {
  expect_gradcheck(
      [](const Variable& x) { return sum_squares(repeat_batch(x, 3)); },
      smooth_random(Shape::nchw(2, 2, 3, 3), 42));
}

TEST(GradCheck, DctLowpass) {
  expect_gradcheck([](const Variable& x) { return sum_squares(dct_lowpass(x, 3)); },
                   smooth_random(Shape::nchw(1, 1, 6, 6), 36));
}

TEST(GradCheck, NpsLoss) {
  Tensor palette(Shape::mat(3, 3),
                 {0.05f, 0.05f, 0.05f, 0.95f, 0.95f, 0.95f, 0.8f, 0.1f, 0.1f});
  // Keep pixel values away from exact palette colours (abs kinks).
  util::Rng rng(37);
  Tensor x0 = Tensor::rand_uniform(Shape::nchw(1, 3, 3, 3), rng, 0.3f, 0.7f);
  expect_gradcheck([&palette](const Variable& x) { return nps_loss(x, palette); }, x0,
                   /*tolerance=*/8e-2);
}

TEST(GradCheck, BroadcastBatch) {
  expect_gradcheck(
      [](const Variable& x) { return sum_squares(broadcast_batch(x, 4)); },
      smooth_random(Shape::nchw(1, 2, 3, 3), 38));
}

TEST(GradCheck, ComposedNetworkSlice) {
  // conv -> relu -> depthwise -> flatten -> dense -> CE: an end-to-end slice
  // of the real classifier graph, checked w.r.t. the *input* (the gradient
  // the RP2 attack consumes).
  util::Rng rng(39);
  const Tensor conv_w = Tensor::randn(Shape{2, 1, 3, 3}, rng, 0.0f, 0.4f);
  const Tensor conv_b = Tensor::randn(Shape::vec(2), rng, 0.0f, 0.2f);
  const Tensor dw_w = Tensor::randn(Shape{2, 3, 3}, rng, 0.0f, 0.3f);
  const Tensor fc_w = Tensor::randn(Shape::mat(2 * 25, 3), rng, 0.0f, 0.3f);
  const Tensor fc_b = Tensor::randn(Shape::vec(3), rng, 0.0f, 0.2f);
  const std::vector<int> labels = {1};
  expect_gradcheck(
      [&](const Variable& x) {
        auto h = relu(conv2d(x, Variable::constant(conv_w), Variable::constant(conv_b), 1, 1));
        h = depthwise_conv2d_same(h, Variable::constant(dw_w), Variable());
        auto logits = dense(flatten2d(h), Variable::constant(fc_w), Variable::constant(fc_b));
        return softmax_cross_entropy(logits, labels);
      },
      smooth_random(Shape::nchw(1, 1, 5, 5), 40), /*tolerance=*/8e-2);
}

}  // namespace
}  // namespace blurnet::autograd
