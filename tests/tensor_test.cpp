#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace blurnet::tensor {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
  const auto strides = s.strides();
  EXPECT_EQ(strides, (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(Shape, ScalarHasNumelOne) {
  EXPECT_EQ(Shape::scalar().numel(), 1);
  EXPECT_EQ(Shape::scalar().rank(), 0);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::full(Shape::vec(4), 2.0f);
  Tensor shared = a;
  Tensor deep = a.clone();
  a[0] = 7.0f;
  EXPECT_TRUE(shared.shares_storage_with(a));
  EXPECT_FALSE(deep.shares_storage_with(a));
  EXPECT_EQ(shared[0], 7.0f);
  EXPECT_EQ(deep[0], 2.0f);
}

TEST(Tensor, ReshapeSharesStorageAndChecksNumel) {
  Tensor a = Tensor::ones(Shape{2, 6});
  Tensor b = a.reshape(Shape{3, 4});
  EXPECT_TRUE(b.shares_storage_with(a));
  EXPECT_THROW(a.reshape(Shape{5, 5}), std::invalid_argument);
}

TEST(Tensor, ValueConstructorChecksSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({1.0f, -3.0f, 2.0f});
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(14.0), 1e-6);
}

TEST(TensorOps, ElementwiseArithmetic) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_FLOAT_EQ(add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(sub(a, b)[0], -3.0f);
  EXPECT_FLOAT_EQ(mul(a, b)[2], 18.0f);
  EXPECT_FLOAT_EQ(div(b, a)[1], 2.5f);
  EXPECT_FLOAT_EQ(add_scalar(a, 1.0f)[0], 2.0f);
  EXPECT_FLOAT_EQ(mul_scalar(a, -2.0f)[2], -6.0f);
}

TEST(TensorOps, ShapeMismatchThrows) {
  const Tensor a = Tensor::from_vector({1, 2});
  const Tensor b = Tensor::from_vector({1, 2, 3});
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(TensorOps, UnaryFunctions) {
  const Tensor a = Tensor::from_vector({-2.0f, 0.0f, 3.0f});
  EXPECT_FLOAT_EQ(abs(a)[0], 2.0f);
  EXPECT_FLOAT_EQ(sign(a)[0], -1.0f);
  EXPECT_FLOAT_EQ(sign(a)[1], 0.0f);
  EXPECT_FLOAT_EQ(relu(a)[0], 0.0f);
  EXPECT_FLOAT_EQ(relu(a)[2], 3.0f);
  EXPECT_FLOAT_EQ(relu_mask(a)[2], 1.0f);
  EXPECT_FLOAT_EQ(square(a)[2], 9.0f);
  EXPECT_FLOAT_EQ(clamp(a, -1.0f, 1.0f)[0], -1.0f);
  EXPECT_FLOAT_EQ(maximum(a, Tensor::zeros(a.shape()))[0], 0.0f);
}

TEST(TensorOps, MatmulMatchesManual) {
  // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
  const Tensor a(Shape::mat(2, 2), {1, 2, 3, 4});
  const Tensor b(Shape::mat(2, 2), {5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 50.0f);
}

TEST(TensorOps, MatmulVariantsAgree) {
  util::Rng rng(3);
  const Tensor a = Tensor::randn(Shape::mat(4, 6), rng);
  const Tensor b = Tensor::randn(Shape::mat(6, 5), rng);
  const Tensor reference = matmul(a, b);
  const Tensor via_tn = matmul_tn(transpose2d(a), b);
  const Tensor via_nt = matmul_nt(a, transpose2d(b));
  for (std::int64_t i = 0; i < reference.numel(); ++i) {
    EXPECT_NEAR(reference[i], via_tn[i], 1e-4);
    EXPECT_NEAR(reference[i], via_nt[i], 1e-4);
  }
}

TEST(TensorOps, PadUnpadRoundTrip) {
  util::Rng rng(5);
  const Tensor x = Tensor::randn(Shape::nchw(2, 3, 4, 5), rng);
  const Tensor padded = pad2d(x, 2, 1);
  EXPECT_EQ(padded.dim(2), 8);
  EXPECT_EQ(padded.dim(3), 7);
  EXPECT_FLOAT_EQ(padded.at4(0, 0, 0, 0), 0.0f);
  const Tensor back = unpad2d(padded, 2, 1);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(back[i], x[i]);
}

TEST(TensorOps, Im2ColKnownValues) {
  // 1x1x3x3 image, 2x2 kernel, stride 1 -> 4 patches of 4 values.
  Tensor x(Shape::nchw(1, 1, 3, 3), {0, 1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor cols = im2col(x, 2, 2, 1, 1);
  EXPECT_EQ(cols.shape(), (Shape{1, 4, 4}));
  // First row of cols = top-left value of each patch: 0,1,3,4.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  EXPECT_FLOAT_EQ(cols[1], 1.0f);
  EXPECT_FLOAT_EQ(cols[2], 3.0f);
  EXPECT_FLOAT_EQ(cols[3], 4.0f);
}

TEST(TensorOps, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the adjoint property
  // the conv2d backward pass relies on.
  util::Rng rng(7);
  const Tensor x = Tensor::randn(Shape::nchw(2, 3, 6, 6), rng);
  const Tensor cols = im2col(x, 3, 3, 2, 2);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor x_back = col2im(y, 2, 3, 6, 6, 3, 3, 2, 2);
  EXPECT_NEAR(dot(cols, y), dot(x, x_back), 1e-3);
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  util::Rng rng(9);
  const Tensor logits = Tensor::randn(Shape::mat(4, 7), rng, 0.0f, 3.0f);
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t i = 0; i < 4; ++i) {
    double row_sum = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      row_sum += probs.at2(i, j);
      EXPECT_GT(probs.at2(i, j), 0.0f);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(TensorOps, LogSoftmaxMatchesLogOfSoftmax) {
  util::Rng rng(11);
  const Tensor logits = Tensor::randn(Shape::mat(3, 5), rng, 0.0f, 2.0f);
  const Tensor log_probs = log_softmax_rows(logits);
  const Tensor probs = softmax_rows(logits);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(log_probs[i], std::log(probs[i]), 1e-4);
  }
}

TEST(TensorOps, ArgmaxRows) {
  const Tensor logits(Shape::mat(2, 3), {0.1f, 0.9f, 0.3f, 2.0f, -1.0f, 0.0f});
  const auto preds = argmax_rows(logits);
  EXPECT_EQ(preds, (std::vector<int>{1, 0}));
}

TEST(TensorOps, ReduceNhwComputesPerChannelSums) {
  Tensor x(Shape::nchw(2, 2, 1, 2), {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor sums = reduce_nhw(x);
  EXPECT_FLOAT_EQ(sums[0], 1 + 2 + 5 + 6);
  EXPECT_FLOAT_EQ(sums[1], 3 + 4 + 7 + 8);
}

TEST(TensorOps, BroadcastBias) {
  Tensor x = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
  const Tensor bias = Tensor::from_vector({1.0f, -1.0f});
  const Tensor out = broadcast_bias_nchw(x, bias);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), -1.0f);
}

TEST(TensorOps, L2Dissimilarity) {
  const Tensor natural = Tensor::from_vector({3.0f, 4.0f});  // norm 5
  const Tensor adv = Tensor::from_vector({3.0f, 5.0f});      // diff norm 1
  EXPECT_NEAR(l2_dissimilarity(adv, natural), 0.2, 1e-6);
  EXPECT_NEAR(l2_dissimilarity(natural, natural), 0.0, 1e-9);
}

TEST(TensorOps, ConvOutSize) {
  EXPECT_EQ(conv_out_size(32, 5, 1), 28);
  EXPECT_EQ(conv_out_size(32, 5, 2), 14);
  EXPECT_EQ(conv_out_size(8, 3, 2), 3);
}

// Property sweep: im2col/col2im adjointness across kernel/stride combos.
class Im2ColAdjoint : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Im2ColAdjoint, HoldsForAllConfigs) {
  const auto [kernel, stride] = GetParam();
  util::Rng rng(100 + kernel * 10 + stride);
  const Tensor x = Tensor::randn(Shape::nchw(1, 2, 9, 9), rng);
  const Tensor cols = im2col(x, kernel, kernel, stride, stride);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor x_back = col2im(y, 1, 2, 9, 9, kernel, kernel, stride, stride);
  EXPECT_NEAR(dot(cols, y), dot(x, x_back), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(KernelsAndStrides, Im2ColAdjoint,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace blurnet::tensor
