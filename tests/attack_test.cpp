#include <gtest/gtest.h>

#include "src/attack/adaptive.h"
#include "src/attack/masks.h"
#include "src/attack/nps.h"
#include "src/attack/pgd.h"
#include "src/attack/rp2.h"
#include "src/tensor/ops.h"
#include "src/signal/dct.h"
#include "src/signal/spectrum.h"
#include "tests/test_helpers.h"

namespace blurnet::attack {
namespace {

using blurnet::testing::tiny_trained_model;

TEST(Masks, StickerInsideSignRegion) {
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto sticker = sticker_mask(stop_set.masks);
  EXPECT_EQ(sticker.shape(), stop_set.masks.shape());
  for (std::int64_t i = 0; i < sticker.numel(); ++i) {
    EXPECT_LE(sticker[i], stop_set.masks[i]);  // sticker ⊆ sign region
  }
  EXPECT_GT(mask_coverage(sticker), 0.005);
  EXPECT_LT(mask_coverage(sticker), 0.25);
}

TEST(Masks, TwoSeparateBars) {
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  // Count rows containing mask pixels; two bars => the set of active rows has
  // a gap.
  std::vector<int> active_rows;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (sticker[y * 32 + x] > 0.5f) {
        active_rows.push_back(y);
        break;
      }
    }
  }
  ASSERT_GE(active_rows.size(), 2u);
  bool has_gap = false;
  for (std::size_t i = 1; i < active_rows.size(); ++i) {
    if (active_rows[i] - active_rows[i - 1] > 1) has_gap = true;
  }
  EXPECT_TRUE(has_gap);
}

TEST(Masks, ExpandChannelsReplicates) {
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto expanded = expand_mask_channels(stop_set.masks, 3);
  EXPECT_EQ(expanded.shape(), tensor::Shape::nchw(1, 3, 32, 32));
  for (std::int64_t i = 0; i < 32 * 32; ++i) {
    EXPECT_FLOAT_EQ(expanded[i], expanded[32 * 32 + i]);
  }
}

TEST(Nps, PaletteShapeAndRange) {
  const auto palette = printable_palette();
  EXPECT_EQ(palette.rank(), 2);
  EXPECT_EQ(palette.dim(1), 3);
  EXPECT_GE(palette.min(), 0.0f);
  EXPECT_LE(palette.max(), 1.0f);
}

TEST(AttackResult, MetricArithmetic) {
  AttackResult result;
  result.clean_pred = {0, 0, 1, 2};
  result.adv_pred = {5, 0, 5, 2};
  EXPECT_DOUBLE_EQ(result.success_rate_altered(), 0.5);
  EXPECT_DOUBLE_EQ(result.success_rate_targeted(5), 0.5);
  EXPECT_DOUBLE_EQ(result.success_rate_targeted(7), 0.0);
}

TEST(Rp2, PerturbationRespectsMask) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 15;
  config.target_class = 5;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  // Outside the sticker mask the perturbation must be exactly zero.
  const auto mask3 = expand_mask_channels(sticker, 3);
  for (std::int64_t i = 0; i < result.perturbation.numel(); ++i) {
    if (mask3[i] < 0.5f) {
      EXPECT_FLOAT_EQ(result.perturbation[i], 0.0f) << "leak outside mask at " << i;
    }
  }
}

TEST(Rp2, AdversarialStaysInImageRange) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 15;
  config.target_class = 3;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
}

TEST(Rp2, ReducesTargetLossVsRandomSticker) {
  // The optimized sticker must raise the target-class probability above what
  // an unoptimized (zero) sticker achieves. Per-image mode without EOT
  // isolates the optimization property from cross-image generalization.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  const int target = 9;
  Rp2Config config;
  config.iterations = 120;
  config.target_class = target;
  config.shared_perturbation = false;
  config.use_eot = false;
  config.seed = 11;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);

  auto mean_target_prob = [&](const tensor::Tensor& images) {
    const auto probs = tensor::softmax_rows(model.logits(images));
    double acc = 0;
    for (std::int64_t i = 0; i < probs.dim(0); ++i) acc += probs.at2(i, target);
    return acc / static_cast<double>(probs.dim(0));
  };
  EXPECT_GT(mean_target_prob(result.adversarial), mean_target_prob(stop_set.images));
}

TEST(Rp2, SharedDeltaReproducesAdversarialExamples) {
  // In shared mode the result must expose the raw sticker, and re-applying it
  // through apply_shared_sticker must reproduce the adversarial batch.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 10;
  config.target_class = 2;
  config.shared_perturbation = true;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  ASSERT_EQ(result.shared_delta.shape(), tensor::Shape::nchw(1, 3, 32, 32));
  const auto reapplied =
      apply_shared_sticker(stop_set.images, sticker, result.shared_delta);
  for (std::int64_t i = 0; i < reapplied.numel(); ++i) {
    ASSERT_NEAR(reapplied[i], result.adversarial[i], 1e-6);
  }
}

TEST(Rp2, SharedStickerTransfersToNewInstances) {
  // The physical-attack evaluation step: the crafted sticker applied to a
  // held-out set stays inside each instance's own mask and image range.
  const auto& model = tiny_trained_model();
  const auto craft = data::stop_sign_eval_set(2, 32, 101);
  const auto eval = data::stop_sign_eval_set(3, 32, 202);
  Rp2Config config;
  config.iterations = 10;
  config.target_class = 4;
  const auto crafted = rp2_attack(model, craft.images, sticker_mask(craft.masks), config);
  const auto eval_sticker = sticker_mask(eval.masks);
  const auto adversarial = apply_shared_sticker(eval.images, eval_sticker, crafted.shared_delta);
  EXPECT_GE(adversarial.min(), 0.0f);
  EXPECT_LE(adversarial.max(), 1.0f);
  const auto mask3 = expand_mask_channels(eval_sticker, 3);
  for (std::int64_t i = 0; i < adversarial.numel(); ++i) {
    if (mask3[i] < 0.5f) {
      ASSERT_FLOAT_EQ(adversarial[i], eval.images[i]) << "sticker leaked outside mask";
    }
  }
}

TEST(Rp2, PerImageModeGivesIndependentPerturbations) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 20;
  config.target_class = 2;
  config.shared_perturbation = false;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  EXPECT_EQ(result.adversarial.dim(0), 2);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
}

TEST(Rp2, LowFrequencyPerturbationIsLowFrequency) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 25;
  config.target_class = 7;
  const auto adaptive = low_frequency_config(config, 8);
  EXPECT_EQ(adaptive.dct_mask_dim, 8);
  const auto result = rp2_attack(model, stop_set.images, sticker, adaptive);
  // Energy of the perturbation must be concentrated in the low 8x8 DCT block.
  const auto plane = signal::extract_plane(result.perturbation, 0, 0);
  double energy = 0;
  for (const double v : plane) energy += v * v;
  if (energy > 1e-9) {
    EXPECT_GT(signal::dct_lowfreq_energy_fraction(plane, 32, 32, 8), 0.85);
  }
}

TEST(Adaptive, ConfigConstructorsSetFields) {
  Rp2Config base;
  const auto tv = tv_aware_config(base, 2.0);
  EXPECT_EQ(tv.feature_reg.kind, FeatureRegTerm::Kind::kTv);
  EXPECT_DOUBLE_EQ(tv.feature_reg.weight, 2.0);

  const tensor::Tensor l_hf = tensor::Tensor::ones(tensor::Shape::mat(4, 4));
  const auto hf = tik_hf_aware_config(base, l_hf);
  EXPECT_EQ(hf.feature_reg.kind, FeatureRegTerm::Kind::kTikRows);
  EXPECT_EQ(hf.feature_reg.row_operator.numel(), 16);

  const auto pseudo = tik_pseudo_aware_config(base, l_hf);
  EXPECT_EQ(pseudo.feature_reg.kind, FeatureRegTerm::Kind::kTikElementwise);
}

TEST(Rp2, RegularizerAwareAttackRuns) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config base;
  base.iterations = 10;
  base.target_class = 4;
  const auto result = rp2_attack(model, stop_set.images, sticker, tv_aware_config(base));
  EXPECT_EQ(result.adv_pred.size(), 1u);
}

TEST(Pgd, RespectsEpsilonBall) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const std::vector<int> labels(3, 0);
  PgdConfig config;
  config.epsilon = 8.0 / 255.0;
  config.steps = 5;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  EXPECT_LE(result.perturbation.abs_max(), static_cast<float>(config.epsilon) + 1e-5f);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
}

TEST(Pgd, IncreasesTrueLabelLoss) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(4);
  const std::vector<int> labels(4, 0);
  PgdConfig config;
  config.steps = 8;
  config.random_start = false;
  const auto result = pgd_attack(model, stop_set.images, labels, config);

  auto mean_true_prob = [&](const tensor::Tensor& images) {
    const auto probs = tensor::softmax_rows(model.logits(images));
    double acc = 0;
    for (std::int64_t i = 0; i < probs.dim(0); ++i) acc += probs.at2(i, 0);
    return acc / static_cast<double>(probs.dim(0));
  };
  EXPECT_LT(mean_true_prob(result.adversarial), mean_true_prob(stop_set.images) + 1e-6);
}

TEST(Pgd, UnrestrictedAdversaryBreaksTinyModel) {
  // Table IV's premise at unit-test scale: PGD with a generous budget flips
  // most predictions of an undefended model.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(6);
  const std::vector<int> labels(6, 0);
  PgdConfig config;
  config.epsilon = 16.0 / 255.0;
  config.steps = 20;
  config.step_size = 0.02;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  EXPECT_GE(result.success_rate_altered(), 0.5);
}

TEST(Fgsm, SingleStepMatchesEpsilonBudget) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const std::vector<int> labels(2, 0);
  const auto result = fgsm_attack(model, stop_set.images, labels, 0.05);
  EXPECT_LE(result.perturbation.abs_max(), 0.05f + 1e-5f);
}

TEST(Pgd, TargetedModeDrivesTowardTarget) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const std::vector<int> labels(3, 0);
  PgdConfig config;
  config.targeted = true;
  config.target_class = 6;
  config.epsilon = 16.0 / 255.0;
  config.steps = 15;
  config.step_size = 0.02;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  auto target_prob = [&](const tensor::Tensor& images) {
    const auto probs = tensor::softmax_rows(model.logits(images));
    double acc = 0;
    for (std::int64_t i = 0; i < probs.dim(0); ++i) acc += probs.at2(i, 6);
    return acc;
  };
  EXPECT_GT(target_prob(result.adversarial), target_prob(stop_set.images));
}

}  // namespace
}  // namespace blurnet::attack
