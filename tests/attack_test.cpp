#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/attack/adaptive.h"
#include "src/attack/eot.h"
#include "src/attack/masks.h"
#include "src/attack/nps.h"
#include "src/attack/pgd.h"
#include "src/attack/rp2.h"
#include "src/autograd/ops.h"
#include "src/nn/optim.h"
#include "src/tensor/ops.h"
#include "src/signal/dct.h"
#include "src/signal/spectrum.h"
#include "src/util/rng.h"
#include "tests/test_helpers.h"

namespace blurnet::attack {
namespace {

using blurnet::testing::tiny_trained_model;

TEST(Masks, StickerInsideSignRegion) {
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto sticker = sticker_mask(stop_set.masks);
  EXPECT_EQ(sticker.shape(), stop_set.masks.shape());
  for (std::int64_t i = 0; i < sticker.numel(); ++i) {
    EXPECT_LE(sticker[i], stop_set.masks[i]);  // sticker ⊆ sign region
  }
  EXPECT_GT(mask_coverage(sticker), 0.005);
  EXPECT_LT(mask_coverage(sticker), 0.25);
}

TEST(Masks, TwoSeparateBars) {
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  // Count rows containing mask pixels; two bars => the set of active rows has
  // a gap.
  std::vector<int> active_rows;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (sticker[y * 32 + x] > 0.5f) {
        active_rows.push_back(y);
        break;
      }
    }
  }
  ASSERT_GE(active_rows.size(), 2u);
  bool has_gap = false;
  for (std::size_t i = 1; i < active_rows.size(); ++i) {
    if (active_rows[i] - active_rows[i - 1] > 1) has_gap = true;
  }
  EXPECT_TRUE(has_gap);
}

TEST(Masks, ExpandChannelsReplicates) {
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto expanded = expand_mask_channels(stop_set.masks, 3);
  EXPECT_EQ(expanded.shape(), tensor::Shape::nchw(1, 3, 32, 32));
  for (std::int64_t i = 0; i < 32 * 32; ++i) {
    EXPECT_FLOAT_EQ(expanded[i], expanded[32 * 32 + i]);
  }
}

TEST(Nps, PaletteShapeAndRange) {
  const auto palette = printable_palette();
  EXPECT_EQ(palette.rank(), 2);
  EXPECT_EQ(palette.dim(1), 3);
  EXPECT_GE(palette.min(), 0.0f);
  EXPECT_LE(palette.max(), 1.0f);
}

TEST(AttackResult, MetricArithmetic) {
  AttackResult result;
  result.clean_pred = {0, 0, 1, 2};
  result.adv_pred = {5, 0, 5, 2};
  EXPECT_DOUBLE_EQ(result.success_rate_altered(), 0.5);
  EXPECT_DOUBLE_EQ(result.success_rate_targeted(5), 0.5);
  EXPECT_DOUBLE_EQ(result.success_rate_targeted(7), 0.0);
}

// ---- frozen pre-pose-batching reference -------------------------------------
// A faithful copy of the single-pose rp2_attack loop as it existed before the
// pose-batched EOT refactor: one util::Rng(config.seed) stream drawing
// rotation, scale, shift-x, shift-y per iteration, one affine_warp of the
// whole batch per step. The refactored attack with eot_poses = 1 must
// reproduce it bitwise. (No DCT/NPS-free shortcuts — only the feature
// regularizer, unused by these configs, is omitted.)
AttackResult reference_rp2_single_pose(const nn::LisaCnn& model, const tensor::Tensor& images,
                                       const tensor::Tensor& masks, const Rp2Config& config) {
  using autograd::Variable;
  using tensor::Tensor;
  const std::int64_t n = images.dim(0), c = images.dim(1);
  const int h = static_cast<int>(images.dim(2));
  const int w = static_cast<int>(images.dim(3));
  const Tensor mask_c = expand_mask_channels(masks, c);
  const Tensor palette = printable_palette();
  util::Rng rng(config.seed);

  const tensor::Shape delta_shape = config.shared_perturbation
                                        ? tensor::Shape::nchw(1, c, h, w)
                                        : images.shape();
  Variable delta = Variable::leaf(Tensor::zeros(delta_shape), /*requires_grad=*/true);
  nn::Adam optimizer({delta}, config.learning_rate);

  const std::vector<int> targets(static_cast<std::size_t>(n), config.target_class);
  double final_loss = 0.0;

  for (int iter = 0; iter < config.iterations; ++iter) {
    Variable delta_batch =
        config.shared_perturbation ? autograd::broadcast_batch(delta, n) : delta;
    Variable masked = autograd::mul_const(delta_batch, mask_c);
    if (config.dct_mask_dim > 0) {
      masked = autograd::dct_lowpass(masked, config.dct_mask_dim);
    }

    Variable applied = masked;
    if (config.use_eot) {
      // The old loop drew these inside the argument list of
      // rotation_scale_about_center, which the repo's GCC toolchain
      // evaluates right to left; sequencing the draws in that order keeps
      // this reference equal to the shipped pre-refactor binaries while
      // staying well-defined on every compiler.
      const double dy = rng.uniform(-config.max_shift, config.max_shift);
      const double dx = rng.uniform(-config.max_shift, config.max_shift);
      const double scale = rng.uniform(config.min_scale, config.max_scale);
      const double rotation = rng.uniform(-config.max_rotation, config.max_rotation);
      const auto transform =
          autograd::Affine2D::rotation_scale_about_center(rotation, scale, dx, dy, h, w);
      applied = autograd::affine_warp(masked, transform);
    }
    Variable x_adv = autograd::add_const(applied, images);

    const auto fwd = model.forward(x_adv);
    Variable loss = autograd::softmax_cross_entropy(fwd.logits, targets);
    Variable norm_term = config.norm == PerturbationNorm::kL2 ? autograd::l2_norm(masked)
                                                              : autograd::l1_norm(masked);
    loss = autograd::add(loss, autograd::mul_scalar(norm_term,
                                                    static_cast<float>(config.lambda)));
    if (config.nps_weight > 0.0 && c == 3) {
      loss = autograd::add(loss, autograd::mul_scalar(autograd::nps_loss(masked, palette),
                                                      static_cast<float>(config.nps_weight)));
    }
    optimizer.zero_grad();
    autograd::backward(loss);
    optimizer.step();
    final_loss = loss.scalar_value();
    delta.mutable_value() = tensor::clamp(delta.value(), -1.0f, 1.0f);
  }

  Tensor delta_final = delta.value();
  AttackResult result;
  if (config.shared_perturbation) {
    result.shared_delta = config.dct_mask_dim > 0
                              ? signal::dct_lowpass_nchw(delta_final, config.dct_mask_dim)
                              : delta_final.clone();
    Tensor tiled(images.shape());
    const std::int64_t stride = delta_final.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy(delta_final.data(), delta_final.data() + stride, tiled.data() + i * stride);
    }
    delta_final = tiled;
  }
  Tensor masked_final = tensor::mul(delta_final, mask_c);
  if (config.dct_mask_dim > 0) {
    masked_final = signal::dct_lowpass_nchw(masked_final, config.dct_mask_dim);
  }
  result.adversarial = tensor::clamp(tensor::add(images, masked_final), 0.0f, 1.0f);
  result.perturbation = tensor::sub(result.adversarial, images);
  result.clean_pred = model.predict(images);
  result.adv_pred = model.predict(result.adversarial);
  result.final_loss = final_loss;
  return result;
}

void expect_results_bitwise_equal(const AttackResult& a, const AttackResult& b) {
  ASSERT_EQ(a.adversarial.numel(), b.adversarial.numel());
  for (std::int64_t i = 0; i < a.adversarial.numel(); ++i) {
    ASSERT_EQ(a.adversarial[i], b.adversarial[i]) << "adversarial diverged at " << i;
  }
  for (std::int64_t i = 0; i < a.perturbation.numel(); ++i) {
    ASSERT_EQ(a.perturbation[i], b.perturbation[i]) << "perturbation diverged at " << i;
  }
  ASSERT_EQ(a.shared_delta.numel(), b.shared_delta.numel());
  for (std::int64_t i = 0; i < a.shared_delta.numel(); ++i) {
    ASSERT_EQ(a.shared_delta[i], b.shared_delta[i]) << "shared_delta diverged at " << i;
  }
  EXPECT_EQ(a.clean_pred, b.clean_pred);
  EXPECT_EQ(a.adv_pred, b.adv_pred);
  EXPECT_EQ(a.final_loss, b.final_loss);
}

// The K = 1 regression the refactor is pinned to: pose-batched rp2_attack at
// eot_poses = 1 is bitwise identical to the pre-refactor single-pose path,
// in shared and per-image mode, with and without the DCT projection.
TEST(Rp2, EotSinglePoseBitwiseMatchesPreRefactorPath) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);

  Rp2Config shared;
  shared.iterations = 12;
  shared.target_class = 5;
  ASSERT_EQ(shared.eot_poses, 1);
  expect_results_bitwise_equal(
      rp2_attack(model, stop_set.images, sticker, shared),
      reference_rp2_single_pose(model, stop_set.images, sticker, shared));

  Rp2Config per_image = shared;
  per_image.shared_perturbation = false;
  per_image.seed = 77;
  expect_results_bitwise_equal(
      rp2_attack(model, stop_set.images, sticker, per_image),
      reference_rp2_single_pose(model, stop_set.images, sticker, per_image));

  Rp2Config low_freq = shared;
  low_freq.dct_mask_dim = 8;
  expect_results_bitwise_equal(
      rp2_attack(model, stop_set.images, sticker, low_freq),
      reference_rp2_single_pose(model, stop_set.images, sticker, low_freq));
}

// ---- EOT pose sampler determinism -------------------------------------------

void expect_poses_equal(const autograd::Affine2D& a, const autograd::Affine2D& b) {
  EXPECT_EQ(a.m00, b.m00);
  EXPECT_EQ(a.m01, b.m01);
  EXPECT_EQ(a.m10, b.m10);
  EXPECT_EQ(a.m11, b.m11);
  EXPECT_EQ(a.tx, b.tx);
  EXPECT_EQ(a.ty, b.ty);
}

TEST(EotSampler, SlotStreamsAreIndependentOfPoseCount) {
  // Slot k's pose sequence depends only on (seed, k): sampling with a larger
  // K must not perturb the poses any existing slot produces. In particular
  // slot 0 with any K replays the K = 1 (historical single-pose) sequence.
  const EotPoseRange range{};
  EotSampler k1(42, 1, range);
  EotSampler k3(42, 3, range);
  EotSampler k8(42, 8, range);
  for (int step = 0; step < 5; ++step) {
    const auto p1 = k1.sample_step(32, 32);
    const auto p3 = k3.sample_step(32, 32);
    const auto p8 = k8.sample_step(32, 32);
    ASSERT_EQ(p1.size(), 1u);
    ASSERT_EQ(p3.size(), 3u);
    ASSERT_EQ(p8.size(), 8u);
    expect_poses_equal(p1[0], p3[0]);
    expect_poses_equal(p1[0], p8[0]);
    expect_poses_equal(p3[1], p8[1]);
    expect_poses_equal(p3[2], p8[2]);
  }
}

TEST(EotSampler, SlotZeroReplaysHistoricalSinglePoseStream) {
  // The exact draw contract the K = 1 regression rests on: slot 0 consumes
  // util::Rng(seed) as (shift-y, shift-x, scale, rotation) per step — the
  // effective order of the pre-refactor loop (see eot.h).
  const EotPoseRange range{};
  EotSampler sampler(7, 1, range);
  util::Rng rng(7);
  for (int step = 0; step < 4; ++step) {
    const auto pose = sampler.sample_step(32, 32)[0];
    const double dy = rng.uniform(-range.max_shift, range.max_shift);
    const double dx = rng.uniform(-range.max_shift, range.max_shift);
    const double scale = rng.uniform(range.min_scale, range.max_scale);
    const double rotation = rng.uniform(-range.max_rotation, range.max_rotation);
    const auto expected =
        autograd::Affine2D::rotation_scale_about_center(rotation, scale, dx, dy, 32, 32);
    expect_poses_equal(pose, expected);
  }
}

TEST(EotSampler, RejectsInvalidConfiguration) {
  EXPECT_THROW(EotSampler(1, 0, EotPoseRange{}), std::invalid_argument);
  EotPoseRange inverted;
  inverted.min_scale = 1.2;
  inverted.max_scale = 0.8;
  EXPECT_THROW(EotSampler(1, 2, inverted), std::invalid_argument);
}

// ---- pose-batched attacks ---------------------------------------------------

TEST(Rp2, PoseBatchedAttackRespectsMaskAndRange) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 10;
  config.target_class = 3;
  config.eot_poses = 4;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  ASSERT_EQ(result.shared_delta.shape(), tensor::Shape::nchw(1, 3, 32, 32));
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  const auto mask3 = expand_mask_channels(sticker, 3);
  for (std::int64_t i = 0; i < result.perturbation.numel(); ++i) {
    if (mask3[i] < 0.5f) {
      ASSERT_FLOAT_EQ(result.perturbation[i], 0.0f) << "leak outside mask at " << i;
    }
  }
}

TEST(Rp2, ConfigValidationRejectsBadFields) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  auto expect_rejected = [&](const Rp2Config& config, const std::string& needle) {
    try {
      rp2_attack(model, stop_set.images, sticker, config);
      FAIL() << "expected std::invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  Rp2Config config;
  config.iterations = 0;
  expect_rejected(config, "iterations");
  config = {};
  config.learning_rate = -0.1;
  expect_rejected(config, "learning_rate");
  config = {};
  config.eot_poses = 0;
  expect_rejected(config, "eot_poses");
  config = {};
  config.min_scale = 1.5;
  config.max_scale = 0.5;
  expect_rejected(config, "min_scale");
  config = {};
  config.max_rotation = -0.1;
  expect_rejected(config, "max_rotation");
  config = {};
  config.max_shift = -1.0;
  expect_rejected(config, "max_shift");
  config = {};
  config.dct_mask_dim = -1;
  expect_rejected(config, "dct_mask_dim");
}

TEST(Adaptive, EotPosesAdapterSetsPoseCount) {
  Rp2Config base;
  EXPECT_EQ(eot_poses_config(base, 8).eot_poses, 8);
  const auto adapter = compose(low_frequency_adapter(8), eot_poses_adapter(4));
  const auto adapted = adapter(base);
  EXPECT_EQ(adapted.dct_mask_dim, 8);
  EXPECT_EQ(adapted.eot_poses, 4);
  // Null sides are identity.
  EXPECT_EQ(compose(nullptr, eot_poses_adapter(2))(base).eot_poses, 2);
  EXPECT_EQ(compose(eot_poses_adapter(3), nullptr)(base).eot_poses, 3);
}

TEST(Pgd, ConfigValidationRejectsBadFields) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const std::vector<int> labels(1, 0);
  auto expect_rejected = [&](const PgdConfig& config, const std::string& needle) {
    try {
      pgd_attack(model, stop_set.images, labels, config);
      FAIL() << "expected std::invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  PgdConfig config;
  config.steps = 0;
  expect_rejected(config, "steps");
  config = {};
  config.step_size = 0.0;
  expect_rejected(config, "step_size");
  config = {};
  config.epsilon = -0.5;
  expect_rejected(config, "epsilon");
  config = {};
  config.eot_poses = -2;
  expect_rejected(config, "eot_poses");
  config = {};
  config.min_scale = 2.0;
  config.max_scale = 1.0;
  expect_rejected(config, "min_scale");
}

TEST(Pgd, PoseBatchedEotStaysInEpsilonBall) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const std::vector<int> labels(2, 0);
  PgdConfig config;
  config.epsilon = 8.0 / 255.0;
  config.steps = 5;
  config.eot_poses = 3;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  EXPECT_LE(result.perturbation.abs_max(), static_cast<float>(config.epsilon) + 1e-5f);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST(Rp2, PerturbationRespectsMask) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 15;
  config.target_class = 5;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  // Outside the sticker mask the perturbation must be exactly zero.
  const auto mask3 = expand_mask_channels(sticker, 3);
  for (std::int64_t i = 0; i < result.perturbation.numel(); ++i) {
    if (mask3[i] < 0.5f) {
      EXPECT_FLOAT_EQ(result.perturbation[i], 0.0f) << "leak outside mask at " << i;
    }
  }
}

TEST(Rp2, AdversarialStaysInImageRange) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 15;
  config.target_class = 3;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
}

TEST(Rp2, ReducesTargetLossVsRandomSticker) {
  // The optimized sticker must raise the target-class probability above what
  // an unoptimized (zero) sticker achieves. Per-image mode without EOT
  // isolates the optimization property from cross-image generalization.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  const int target = 9;
  Rp2Config config;
  config.iterations = 120;
  config.target_class = target;
  config.shared_perturbation = false;
  config.use_eot = false;
  config.seed = 11;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);

  auto mean_target_prob = [&](const tensor::Tensor& images) {
    const auto probs = tensor::softmax_rows(model.logits(images));
    double acc = 0;
    for (std::int64_t i = 0; i < probs.dim(0); ++i) acc += probs.at2(i, target);
    return acc / static_cast<double>(probs.dim(0));
  };
  EXPECT_GT(mean_target_prob(result.adversarial), mean_target_prob(stop_set.images));
}

TEST(Rp2, SharedDeltaReproducesAdversarialExamples) {
  // In shared mode the result must expose the raw sticker, and re-applying it
  // through apply_shared_sticker must reproduce the adversarial batch.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 10;
  config.target_class = 2;
  config.shared_perturbation = true;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  ASSERT_EQ(result.shared_delta.shape(), tensor::Shape::nchw(1, 3, 32, 32));
  const auto reapplied =
      apply_shared_sticker(stop_set.images, sticker, result.shared_delta);
  for (std::int64_t i = 0; i < reapplied.numel(); ++i) {
    ASSERT_NEAR(reapplied[i], result.adversarial[i], 1e-6);
  }
}

TEST(Rp2, SharedStickerTransfersToNewInstances) {
  // The physical-attack evaluation step: the crafted sticker applied to a
  // held-out set stays inside each instance's own mask and image range.
  const auto& model = tiny_trained_model();
  const auto craft = data::stop_sign_eval_set(2, 32, 101);
  const auto eval = data::stop_sign_eval_set(3, 32, 202);
  Rp2Config config;
  config.iterations = 10;
  config.target_class = 4;
  const auto crafted = rp2_attack(model, craft.images, sticker_mask(craft.masks), config);
  const auto eval_sticker = sticker_mask(eval.masks);
  const auto adversarial = apply_shared_sticker(eval.images, eval_sticker, crafted.shared_delta);
  EXPECT_GE(adversarial.min(), 0.0f);
  EXPECT_LE(adversarial.max(), 1.0f);
  const auto mask3 = expand_mask_channels(eval_sticker, 3);
  for (std::int64_t i = 0; i < adversarial.numel(); ++i) {
    if (mask3[i] < 0.5f) {
      ASSERT_FLOAT_EQ(adversarial[i], eval.images[i]) << "sticker leaked outside mask";
    }
  }
}

TEST(Rp2, PerImageModeGivesIndependentPerturbations) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 20;
  config.target_class = 2;
  config.shared_perturbation = false;
  const auto result = rp2_attack(model, stop_set.images, sticker, config);
  EXPECT_EQ(result.adversarial.dim(0), 2);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
}

TEST(Rp2, LowFrequencyPerturbationIsLowFrequency) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config config;
  config.iterations = 25;
  config.target_class = 7;
  const auto adaptive = low_frequency_config(config, 8);
  EXPECT_EQ(adaptive.dct_mask_dim, 8);
  const auto result = rp2_attack(model, stop_set.images, sticker, adaptive);
  // Energy of the perturbation must be concentrated in the low 8x8 DCT block.
  const auto plane = signal::extract_plane(result.perturbation, 0, 0);
  double energy = 0;
  for (const double v : plane) energy += v * v;
  if (energy > 1e-9) {
    EXPECT_GT(signal::dct_lowfreq_energy_fraction(plane, 32, 32, 8), 0.85);
  }
}

TEST(Adaptive, ConfigConstructorsSetFields) {
  Rp2Config base;
  const auto tv = tv_aware_config(base, 2.0);
  EXPECT_EQ(tv.feature_reg.kind, FeatureRegTerm::Kind::kTv);
  EXPECT_DOUBLE_EQ(tv.feature_reg.weight, 2.0);

  const tensor::Tensor l_hf = tensor::Tensor::ones(tensor::Shape::mat(4, 4));
  const auto hf = tik_hf_aware_config(base, l_hf);
  EXPECT_EQ(hf.feature_reg.kind, FeatureRegTerm::Kind::kTikRows);
  EXPECT_EQ(hf.feature_reg.row_operator.numel(), 16);

  const auto pseudo = tik_pseudo_aware_config(base, l_hf);
  EXPECT_EQ(pseudo.feature_reg.kind, FeatureRegTerm::Kind::kTikElementwise);
}

TEST(Rp2, RegularizerAwareAttackRuns) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(1);
  const auto sticker = sticker_mask(stop_set.masks);
  Rp2Config base;
  base.iterations = 10;
  base.target_class = 4;
  const auto result = rp2_attack(model, stop_set.images, sticker, tv_aware_config(base));
  EXPECT_EQ(result.adv_pred.size(), 1u);
}

TEST(Pgd, RespectsEpsilonBall) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const std::vector<int> labels(3, 0);
  PgdConfig config;
  config.epsilon = 8.0 / 255.0;
  config.steps = 5;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  EXPECT_LE(result.perturbation.abs_max(), static_cast<float>(config.epsilon) + 1e-5f);
  EXPECT_GE(result.adversarial.min(), 0.0f);
  EXPECT_LE(result.adversarial.max(), 1.0f);
}

TEST(Pgd, IncreasesTrueLabelLoss) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(4);
  const std::vector<int> labels(4, 0);
  PgdConfig config;
  config.steps = 8;
  config.random_start = false;
  const auto result = pgd_attack(model, stop_set.images, labels, config);

  auto mean_true_prob = [&](const tensor::Tensor& images) {
    const auto probs = tensor::softmax_rows(model.logits(images));
    double acc = 0;
    for (std::int64_t i = 0; i < probs.dim(0); ++i) acc += probs.at2(i, 0);
    return acc / static_cast<double>(probs.dim(0));
  };
  EXPECT_LT(mean_true_prob(result.adversarial), mean_true_prob(stop_set.images) + 1e-6);
}

TEST(Pgd, UnrestrictedAdversaryBreaksTinyModel) {
  // Table IV's premise at unit-test scale: PGD with a generous budget flips
  // most predictions of an undefended model.
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(6);
  const std::vector<int> labels(6, 0);
  PgdConfig config;
  config.epsilon = 16.0 / 255.0;
  config.steps = 20;
  config.step_size = 0.02;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  EXPECT_GE(result.success_rate_altered(), 0.5);
}

TEST(Fgsm, SingleStepMatchesEpsilonBudget) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(2);
  const std::vector<int> labels(2, 0);
  const auto result = fgsm_attack(model, stop_set.images, labels, 0.05);
  EXPECT_LE(result.perturbation.abs_max(), 0.05f + 1e-5f);
}

TEST(Pgd, TargetedModeDrivesTowardTarget) {
  const auto& model = tiny_trained_model();
  const auto stop_set = data::stop_sign_eval_set(3);
  const std::vector<int> labels(3, 0);
  PgdConfig config;
  config.targeted = true;
  config.target_class = 6;
  config.epsilon = 16.0 / 255.0;
  config.steps = 15;
  config.step_size = 0.02;
  const auto result = pgd_attack(model, stop_set.images, labels, config);
  auto target_prob = [&](const tensor::Tensor& images) {
    const auto probs = tensor::softmax_rows(model.logits(images));
    double acc = 0;
    for (std::int64_t i = 0; i < probs.dim(0); ++i) acc += probs.at2(i, 6);
    return acc;
  };
  EXPECT_GT(target_prob(result.adversarial), target_prob(stop_set.images));
}

}  // namespace
}  // namespace blurnet::attack
