#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/matrix.h"
#include "src/linalg/operators.h"
#include "src/linalg/svd.h"
#include "src/util/rng.h"

namespace blurnet::linalg {
namespace {

Matrix random_matrix(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at(r, c) = rng.normal();
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  double out = 0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out = std::max(out, std::fabs(a.at(r, c) - b.at(r, c)));
  return out;
}

TEST(Matrix, MultiplyIdentity) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix i = Matrix::identity(4);
  EXPECT_LT(max_abs_diff(a * i, a), 1e-12);
  EXPECT_LT(max_abs_diff(i * a, a), 1e-12);
}

TEST(Matrix, TransposeInvolution) {
  util::Rng rng(2);
  const Matrix a = random_matrix(3, 5, rng);
  EXPECT_LT(max_abs_diff(a.transpose().transpose(), a), 1e-15);
}

TEST(Matrix, ApplyVector) {
  Matrix m(2, 2, {1, 2, 3, 4});
  const auto y = m.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_NO_THROW(a + b);
  EXPECT_THROW(a.apply({1.0, 2.0}), std::invalid_argument);
}

// SVD reconstruction across shapes (property sweep).
class SvdReconstruction : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdReconstruction, UsvtEqualsA) {
  const auto [rows, cols] = GetParam();
  util::Rng rng(10 + rows * 7 + cols);
  const Matrix a = random_matrix(rows, cols, rng);
  const SvdResult decomposition = svd(a);
  // Reconstruct A = U diag(sigma) V^T.
  Matrix reconstructed(rows, cols);
  for (std::size_t k = 0; k < decomposition.sigma.size(); ++k) {
    const double s = decomposition.sigma[k];
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) {
        reconstructed.at(r, c) +=
            s * decomposition.u.at(r, static_cast<int>(k)) * decomposition.v.at(c, static_cast<int>(k));
      }
  }
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-8);
  // Singular values descending and non-negative.
  for (std::size_t k = 1; k < decomposition.sigma.size(); ++k) {
    EXPECT_LE(decomposition.sigma[k], decomposition.sigma[k - 1] + 1e-12);
    EXPECT_GE(decomposition.sigma[k], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdReconstruction,
                         ::testing::Values(std::pair{3, 3}, std::pair{5, 3}, std::pair{4, 6},
                                           std::pair{8, 8}, std::pair{15, 16}));

TEST(Svd, OrthonormalColumns) {
  util::Rng rng(21);
  const Matrix a = random_matrix(6, 4, rng);
  const auto decomposition = svd(a);
  const Matrix utu = decomposition.u.transpose() * decomposition.u;
  const Matrix vtv = decomposition.v.transpose() * decomposition.v;
  EXPECT_LT(max_abs_diff(utu, Matrix::identity(4)), 1e-8);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(4)), 1e-8);
}

TEST(Pinv, MoorePenroseConditions) {
  util::Rng rng(31);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix p = pinv(a);
  EXPECT_EQ(p.rows(), 3);
  EXPECT_EQ(p.cols(), 5);
  // A P A = A and P A P = P.
  EXPECT_LT(max_abs_diff(a * p * a, a), 1e-7);
  EXPECT_LT(max_abs_diff(p * a * p, p), 1e-7);
  // A P and P A symmetric.
  const Matrix ap = a * p;
  const Matrix pa = p * a;
  EXPECT_LT(max_abs_diff(ap, ap.transpose()), 1e-7);
  EXPECT_LT(max_abs_diff(pa, pa.transpose()), 1e-7);
}

TEST(Pinv, InvertsNonsingularSquare) {
  Matrix a(2, 2, {2, 0, 0, 4});
  const Matrix p = pinv(a);
  EXPECT_NEAR(p.at(0, 0), 0.5, 1e-10);
  EXPECT_NEAR(p.at(1, 1), 0.25, 1e-10);
}

TEST(Operators, MovingAverageRowsSumToOne) {
  for (const int window : {3, 5}) {
    const Matrix l = moving_average_matrix(8, window);
    for (int r = 0; r < 8; ++r) {
      double row_sum = 0;
      for (int c = 0; c < 8; ++c) row_sum += l.at(r, c);
      EXPECT_NEAR(row_sum, 1.0, 1e-12);
    }
  }
}

TEST(Operators, MovingAverageSmoothsConstant) {
  const Matrix l = moving_average_matrix(6, 3);
  const auto y = l.apply({2, 2, 2, 2, 2, 2});
  for (const double v : y) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(Operators, HighFrequencyAnnihilatesConstants) {
  // L_hf = I - L_avg must map constant vectors to ~0 (constants are the
  // lowest-frequency signal) and pass sign-alternating ones through.
  const Matrix l_hf = high_frequency_operator(8, 3);
  const auto on_constant = l_hf.apply(std::vector<double>(8, 3.0));
  for (const double v : on_constant) EXPECT_NEAR(v, 0.0, 1e-12);

  std::vector<double> alternating(8);
  for (int i = 0; i < 8; ++i) alternating[static_cast<std::size_t>(i)] = (i % 2) ? 1.0 : -1.0;
  const auto on_alternating = l_hf.apply(alternating);
  double energy = 0;
  for (const double v : on_alternating) energy += v * v;
  EXPECT_GT(energy, 1.0);  // high-frequency content passes through
}

TEST(Operators, DifferenceMatrixComputesDifferences) {
  const Matrix d = difference_matrix(4);
  EXPECT_EQ(d.rows(), 3);
  EXPECT_EQ(d.cols(), 4);
  const auto y = d.apply({1.0, 3.0, 6.0, 10.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(Operators, DifferencePinvIsSmoothing) {
  // L_diff+ approximates integration: applying it to a high-frequency
  // alternating signal must shrink its energy (it is a low-pass operator).
  const int n = 12;
  const Matrix p = difference_pinv(n);
  EXPECT_EQ(p.rows(), n);
  EXPECT_EQ(p.cols(), n - 1);
  std::vector<double> alternating(static_cast<std::size_t>(n - 1));
  double in_energy = 0;
  for (int i = 0; i < n - 1; ++i) {
    alternating[static_cast<std::size_t>(i)] = (i % 2) ? 1.0 : -1.0;
    in_energy += 1.0;
  }
  const auto smoothed = p.apply(alternating);
  double out_energy = 0;
  for (const double v : smoothed) out_energy += v * v;
  EXPECT_LT(out_energy, in_energy);
}

TEST(Operators, DctMatrixOrthonormal) {
  const Matrix d = dct_matrix(8);
  const Matrix should_be_identity = d * d.transpose();
  double max_diff = 0;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      max_diff = std::max(max_diff,
                          std::fabs(should_be_identity.at(r, c) - (r == c ? 1.0 : 0.0)));
    }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(Operators, KernelsNormalized) {
  for (const int width : {3, 5, 7}) {
    double box_sum = 0, gauss_sum = 0;
    for (const double t : box_kernel_1d(width)) box_sum += t;
    for (const double t : gaussian_kernel_1d(width)) gauss_sum += t;
    EXPECT_NEAR(box_sum, 1.0, 1e-12);
    EXPECT_NEAR(gauss_sum, 1.0, 1e-12);
  }
}

TEST(Operators, GaussianPeaksAtCenter) {
  const auto taps = gaussian_kernel_1d(5);
  EXPECT_GT(taps[2], taps[1]);
  EXPECT_GT(taps[1], taps[0]);
  EXPECT_NEAR(taps[0], taps[4], 1e-12);
}

TEST(Operators, InvalidArgumentsThrow) {
  EXPECT_THROW(moving_average_matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(moving_average_matrix(8, 4), std::invalid_argument);
  EXPECT_THROW(difference_matrix(1), std::invalid_argument);
  EXPECT_THROW(box_kernel_1d(0), std::invalid_argument);
}

}  // namespace
}  // namespace blurnet::linalg
