#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/kernels/dispatch.h"
#include "src/linalg/gemm.h"
#include "src/linalg/matrix.h"
#include "src/linalg/operators.h"
#include "src/linalg/svd.h"
#include "src/tensor/ops.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "tests/test_helpers.h"

namespace blurnet::linalg {
namespace {

Matrix random_matrix(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at(r, c) = rng.normal();
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  double out = 0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out = std::max(out, std::fabs(a.at(r, c) - b.at(r, c)));
  return out;
}

TEST(Matrix, MultiplyIdentity) {
  util::Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix i = Matrix::identity(4);
  EXPECT_LT(max_abs_diff(a * i, a), 1e-12);
  EXPECT_LT(max_abs_diff(i * a, a), 1e-12);
}

TEST(Matrix, TransposeInvolution) {
  util::Rng rng(2);
  const Matrix a = random_matrix(3, 5, rng);
  EXPECT_LT(max_abs_diff(a.transpose().transpose(), a), 1e-15);
}

TEST(Matrix, ApplyVector) {
  Matrix m(2, 2, {1, 2, 3, 4});
  const auto y = m.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_NO_THROW(a + b);
  EXPECT_THROW(a.apply({1.0, 2.0}), std::invalid_argument);
}

// SVD reconstruction across shapes (property sweep).
class SvdReconstruction : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdReconstruction, UsvtEqualsA) {
  const auto [rows, cols] = GetParam();
  util::Rng rng(10 + rows * 7 + cols);
  const Matrix a = random_matrix(rows, cols, rng);
  const SvdResult decomposition = svd(a);
  // Reconstruct A = U diag(sigma) V^T.
  Matrix reconstructed(rows, cols);
  for (std::size_t k = 0; k < decomposition.sigma.size(); ++k) {
    const double s = decomposition.sigma[k];
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) {
        reconstructed.at(r, c) +=
            s * decomposition.u.at(r, static_cast<int>(k)) * decomposition.v.at(c, static_cast<int>(k));
      }
  }
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-8);
  // Singular values descending and non-negative.
  for (std::size_t k = 1; k < decomposition.sigma.size(); ++k) {
    EXPECT_LE(decomposition.sigma[k], decomposition.sigma[k - 1] + 1e-12);
    EXPECT_GE(decomposition.sigma[k], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdReconstruction,
                         ::testing::Values(std::pair{3, 3}, std::pair{5, 3}, std::pair{4, 6},
                                           std::pair{8, 8}, std::pair{15, 16}));

TEST(Svd, OrthonormalColumns) {
  util::Rng rng(21);
  const Matrix a = random_matrix(6, 4, rng);
  const auto decomposition = svd(a);
  const Matrix utu = decomposition.u.transpose() * decomposition.u;
  const Matrix vtv = decomposition.v.transpose() * decomposition.v;
  EXPECT_LT(max_abs_diff(utu, Matrix::identity(4)), 1e-8);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(4)), 1e-8);
}

TEST(Pinv, MoorePenroseConditions) {
  util::Rng rng(31);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix p = pinv(a);
  EXPECT_EQ(p.rows(), 3);
  EXPECT_EQ(p.cols(), 5);
  // A P A = A and P A P = P.
  EXPECT_LT(max_abs_diff(a * p * a, a), 1e-7);
  EXPECT_LT(max_abs_diff(p * a * p, p), 1e-7);
  // A P and P A symmetric.
  const Matrix ap = a * p;
  const Matrix pa = p * a;
  EXPECT_LT(max_abs_diff(ap, ap.transpose()), 1e-7);
  EXPECT_LT(max_abs_diff(pa, pa.transpose()), 1e-7);
}

TEST(Pinv, InvertsNonsingularSquare) {
  Matrix a(2, 2, {2, 0, 0, 4});
  const Matrix p = pinv(a);
  EXPECT_NEAR(p.at(0, 0), 0.5, 1e-10);
  EXPECT_NEAR(p.at(1, 1), 0.25, 1e-10);
}

TEST(Operators, MovingAverageRowsSumToOne) {
  for (const int window : {3, 5}) {
    const Matrix l = moving_average_matrix(8, window);
    for (int r = 0; r < 8; ++r) {
      double row_sum = 0;
      for (int c = 0; c < 8; ++c) row_sum += l.at(r, c);
      EXPECT_NEAR(row_sum, 1.0, 1e-12);
    }
  }
}

TEST(Operators, MovingAverageSmoothsConstant) {
  const Matrix l = moving_average_matrix(6, 3);
  const auto y = l.apply({2, 2, 2, 2, 2, 2});
  for (const double v : y) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(Operators, HighFrequencyAnnihilatesConstants) {
  // L_hf = I - L_avg must map constant vectors to ~0 (constants are the
  // lowest-frequency signal) and pass sign-alternating ones through.
  const Matrix l_hf = high_frequency_operator(8, 3);
  const auto on_constant = l_hf.apply(std::vector<double>(8, 3.0));
  for (const double v : on_constant) EXPECT_NEAR(v, 0.0, 1e-12);

  std::vector<double> alternating(8);
  for (int i = 0; i < 8; ++i) alternating[static_cast<std::size_t>(i)] = (i % 2) ? 1.0 : -1.0;
  const auto on_alternating = l_hf.apply(alternating);
  double energy = 0;
  for (const double v : on_alternating) energy += v * v;
  EXPECT_GT(energy, 1.0);  // high-frequency content passes through
}

TEST(Operators, DifferenceMatrixComputesDifferences) {
  const Matrix d = difference_matrix(4);
  EXPECT_EQ(d.rows(), 3);
  EXPECT_EQ(d.cols(), 4);
  const auto y = d.apply({1.0, 3.0, 6.0, 10.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(Operators, DifferencePinvIsSmoothing) {
  // L_diff+ approximates integration: applying it to a high-frequency
  // alternating signal must shrink its energy (it is a low-pass operator).
  const int n = 12;
  const Matrix p = difference_pinv(n);
  EXPECT_EQ(p.rows(), n);
  EXPECT_EQ(p.cols(), n - 1);
  std::vector<double> alternating(static_cast<std::size_t>(n - 1));
  double in_energy = 0;
  for (int i = 0; i < n - 1; ++i) {
    alternating[static_cast<std::size_t>(i)] = (i % 2) ? 1.0 : -1.0;
    in_energy += 1.0;
  }
  const auto smoothed = p.apply(alternating);
  double out_energy = 0;
  for (const double v : smoothed) out_energy += v * v;
  EXPECT_LT(out_energy, in_energy);
}

TEST(Operators, DctMatrixOrthonormal) {
  const Matrix d = dct_matrix(8);
  const Matrix should_be_identity = d * d.transpose();
  double max_diff = 0;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      max_diff = std::max(max_diff,
                          std::fabs(should_be_identity.at(r, c) - (r == c ? 1.0 : 0.0)));
    }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(Operators, KernelsNormalized) {
  for (const int width : {3, 5, 7}) {
    double box_sum = 0, gauss_sum = 0;
    for (const double t : box_kernel_1d(width)) box_sum += t;
    for (const double t : gaussian_kernel_1d(width)) gauss_sum += t;
    EXPECT_NEAR(box_sum, 1.0, 1e-12);
    EXPECT_NEAR(gauss_sum, 1.0, 1e-12);
  }
}

TEST(Operators, GaussianPeaksAtCenter) {
  const auto taps = gaussian_kernel_1d(5);
  EXPECT_GT(taps[2], taps[1]);
  EXPECT_GT(taps[1], taps[0]);
  EXPECT_NEAR(taps[0], taps[4], 1e-12);
}

TEST(Operators, InvalidArgumentsThrow) {
  EXPECT_THROW(moving_average_matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(moving_average_matrix(8, 4), std::invalid_argument);
  EXPECT_THROW(difference_matrix(1), std::invalid_argument);
  EXPECT_THROW(box_kernel_1d(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Packed microkernel GEMM (src/linalg/gemm.h): the single kernel behind
// tensor::matmul{,_tn,_nt} and every convolution GEMM.
// ---------------------------------------------------------------------------

using tensor::Shape;
using tensor::Tensor;

Tensor random_tensor(std::int64_t rows, std::int64_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::randn(Shape::mat(rows, cols), rng);
}

// Shape sweep chosen to land on every partial-tile edge of the blocking:
// kMr=4 / kNr=8 register tiles, kMc=32 row panels, kKc=256 k-blocks.
std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> gemm_shapes() {
  return {
      {1, 1, 1},                          // single element
      {1, 1, 7},   {3, 1, 5},             // n = 1 column-vector results
      {1, 9, 4},                          // m = 1 row-vector result
      {4, 8, 1},   {5, 9, 1},             // k = 1 outer products
      {4, 8, 16},                         // exact tiles everywhere
      {5, 9, 17},  {7, 13, 31},           // all dims off-tile
      {33, 11, 19},                       // m crosses the kMc panel edge
      {70, 23, 300},                      // two+ panels, k crosses kKc
      {8, 40, 260},                       // k just past the kKc boundary
  };
}

// Every trans variant must match the matching serial naive reference
// elementwise and exactly: sgemm_reference for the scalar target (separate
// mul+add roundings), sgemm_reference_fused for the fused avx2/neon
// microtiles. The shared accumulation contract (ascending k, split at kKc)
// makes the comparison exact, not approximate, under every target.
void expect_gemm_matches_reference(const char* label) {
  const bool fused =
      kernels::gemm_microkernel(util::active_kernel_target()).fused;
  for (const auto& [m, n, k] : gemm_shapes()) {
    const Tensor a = random_tensor(m, k, static_cast<std::uint64_t>(m * 100 + k));
    const Tensor at = tensor::transpose2d(a);
    const Tensor b = random_tensor(k, n, static_cast<std::uint64_t>(n * 100 + k + 1));
    const Tensor bt = tensor::transpose2d(b);
    for (const bool accumulate : {false, true}) {
      auto run_pair = [&](Trans ta, Trans tb, const float* pa, std::int64_t lda,
                          const float* pb, std::int64_t ldb, const char* tag) {
        Tensor got(Shape::mat(m, n));
        Tensor want(Shape::mat(m, n));
        if (accumulate) {  // non-trivial starting C
          for (std::int64_t i = 0; i < m * n; ++i) {
            got[i] = want[i] = static_cast<float>(i % 17) - 8.0f;
          }
        }
        sgemm(ta, tb, m, n, k, pa, lda, pb, ldb, got.data(), n, accumulate);
        if (fused) {
          sgemm_reference_fused(ta, tb, m, n, k, pa, lda, pb, ldb, want.data(),
                                n, accumulate);
        } else {
          sgemm_reference(ta, tb, m, n, k, pa, lda, pb, ldb, want.data(), n,
                          accumulate);
        }
        for (std::int64_t i = 0; i < m * n; ++i) {
          ASSERT_EQ(got[i], want[i])
              << label << " " << tag << " shape (" << m << "," << n << "," << k
              << ") acc=" << accumulate << " elem " << i;
        }
      };
      run_pair(Trans::kNo, Trans::kNo, a.data(), k, b.data(), n, "NN");
      run_pair(Trans::kNo, Trans::kYes, a.data(), k, bt.data(), k, "NT");
      run_pair(Trans::kYes, Trans::kNo, at.data(), m, b.data(), n, "TN");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Gemm, MicrokernelMatchesReferenceAcrossShapes) {
  expect_gemm_matches_reference("native");
}

TEST(Gemm, EmptyProblemsAreWellDefined) {
  // m == 0 / n == 0: no-op on a zero-area C. k == 0: C is zeroed unless
  // accumulating.
  std::vector<float> a(8, 1.0f), b(8, 1.0f);
  sgemm(Trans::kNo, Trans::kNo, 0, 4, 2, a.data(), 2, b.data(), 4, nullptr, 4, false);
  sgemm(Trans::kNo, Trans::kNo, 4, 0, 2, a.data(), 2, b.data(), 0, nullptr, 0, false);
  std::vector<float> c(6, 3.0f);
  sgemm(Trans::kNo, Trans::kNo, 2, 3, 0, a.data(), 0, b.data(), 3, c.data(), 3, true);
  for (const float v : c) EXPECT_EQ(v, 3.0f);
  sgemm(Trans::kNo, Trans::kNo, 2, 3, 0, a.data(), 0, b.data(), 3, c.data(), 3, false);
  for (const float v : c) EXPECT_EQ(v, 0.0f);
}

// Regression for the old `if (aik == 0.0f) continue;` shortcut: 0 * NaN and
// 0 * Inf must produce NaN, in every variant, in both kernels.
TEST(Gemm, NanAndInfPropagateThroughZeroRows) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const float poison : {nan, inf}) {
    // a's row is all zeros; b carries the poison. A zero-skip kernel would
    // return 0 here, IEEE demands NaN.
    const Tensor a(Shape::mat(1, 2), {0.0f, 0.0f});
    const Tensor b(Shape::mat(2, 1), {poison, 1.0f});
    const Tensor nn = tensor::matmul(a, b);
    EXPECT_TRUE(std::isnan(nn[0])) << "matmul, poison=" << poison;
    const Tensor tn = tensor::matmul_tn(tensor::transpose2d(a), b);
    EXPECT_TRUE(std::isnan(tn[0])) << "matmul_tn, poison=" << poison;
    const Tensor nt = tensor::matmul_nt(a, tensor::transpose2d(b));
    EXPECT_TRUE(std::isnan(nt[0])) << "matmul_nt, poison=" << poison;

    // Accumulate variants (the conv backward path) must poison C too.
    float c_acc = 5.0f;
    sgemm(Trans::kNo, Trans::kNo, 1, 1, 2, a.data(), 2, b.data(), 1, &c_acc, 1, true);
    EXPECT_TRUE(std::isnan(c_acc)) << "sgemm accumulate, poison=" << poison;
    float c_ref = 5.0f;
    sgemm_reference(Trans::kNo, Trans::kNo, 1, 1, 2, a.data(), 2, b.data(), 1,
                    &c_ref, 1, true);
    EXPECT_TRUE(std::isnan(c_ref)) << "reference accumulate, poison=" << poison;
  }
}

// The packing step normalizes operand layout before any arithmetic, so a
// materialized transpose and the trans entry point are the *same* float
// program: bitwise-equal results, not merely close (the old kernels
// accumulated NT in double but NN/TN in float and failed this).
TEST(Gemm, TransposeIdentityIsBitwise) {
  const std::int64_t m = 33, n = 21, k = 270;  // off-tile everywhere, k > kKc
  const Tensor a = random_tensor(m, k, 7);
  const Tensor b = random_tensor(k, n, 8);
  const Tensor reference = tensor::matmul(a, b);
  const Tensor via_nt = tensor::matmul_nt(a, tensor::transpose2d(b));
  const Tensor via_tn = tensor::matmul_tn(tensor::transpose2d(a), b);
  for (std::int64_t i = 0; i < reference.numel(); ++i) {
    ASSERT_EQ(reference[i], via_nt[i]) << "matmul vs matmul_nt, elem " << i;
    ASSERT_EQ(reference[i], via_tn[i]) << "matmul vs matmul_tn, elem " << i;
  }
}

// Chunk boundaries depend only on (m, kMc, the dispatch target), so any
// BLURNET_WORKERS value must produce bit-identical output — the same
// determinism contract the serving engine proves across replica counts.
void expect_gemm_worker_count_determinism(const char* label) {
  const std::int64_t m = 70, n = 45, k = 300;
  const Tensor a = random_tensor(m, k, 11);
  const Tensor b = random_tensor(k, n, 12);
  util::set_parallel_workers(1);
  const Tensor nn1 = tensor::matmul(a, b);
  const Tensor tn1 = tensor::matmul_tn(tensor::transpose2d(a), b);
  const Tensor nt1 = tensor::matmul_nt(a, tensor::transpose2d(b));
  for (const int workers : {2, 4}) {
    util::set_parallel_workers(workers);
    const Tensor nn = tensor::matmul(a, b);
    const Tensor tn = tensor::matmul_tn(tensor::transpose2d(a), b);
    const Tensor nt = tensor::matmul_nt(a, tensor::transpose2d(b));
    for (std::int64_t i = 0; i < nn1.numel(); ++i) {
      ASSERT_EQ(nn1[i], nn[i]) << label << " NN, workers=" << workers << " elem " << i;
      ASSERT_EQ(tn1[i], tn[i]) << label << " TN, workers=" << workers << " elem " << i;
      ASSERT_EQ(nt1[i], nt[i]) << label << " NT, workers=" << workers << " elem " << i;
    }
    if (::testing::Test::HasFatalFailure()) break;
  }
  util::reset_parallel_workers();
}

TEST(Gemm, BitwiseDeterministicAcrossWorkerCounts) {
  expect_gemm_worker_count_determinism("native");
}

// Autograd gradcheck routed through the microkernel, at shapes that hit
// partial register tiles on both sides of matmul's backward (which uses the
// NT and TN variants).
TEST(Gemm, GradcheckThroughMicrokernel) {
  using autograd::Variable;
  util::Rng rng(13);
  const Tensor a0 = Tensor::randn(Shape::mat(5, 9), rng, 0.0f, 0.5f);
  const Tensor b0 = Tensor::randn(Shape::mat(9, 7), rng, 0.0f, 0.5f);
  const Variable b_const = Variable::constant(b0);
  const auto left = autograd::gradcheck(
      [&](const Variable& x) { return autograd::sum_squares(autograd::matmul(x, b_const)); },
      a0);
  EXPECT_TRUE(left.passed) << "max_rel_error=" << left.max_rel_error;
  const Variable a_const = Variable::constant(a0);
  const auto right = autograd::gradcheck(
      [&](const Variable& x) { return autograd::sum_squares(autograd::matmul(a_const, x)); },
      b0);
  EXPECT_TRUE(right.passed) << "max_rel_error=" << right.max_rel_error;
}

// ---------------------------------------------------------------------------
// Kernel dispatch (src/kernels/dispatch.h): re-run the GEMM exactness and
// determinism contracts under every forced target available on this host.
// ---------------------------------------------------------------------------

using blurnet::testing::available_kernel_targets;
using blurnet::testing::ScopedKernelTarget;

TEST(KernelDispatch, GemmMatchesMatchingReferenceUnderEveryTarget) {
  for (const auto target : available_kernel_targets()) {
    ScopedKernelTarget guard(target);
    expect_gemm_matches_reference(util::kernel_target_name(target));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(KernelDispatch, GemmWorkerCountDeterminismUnderEveryTarget) {
  for (const auto target : available_kernel_targets()) {
    ScopedKernelTarget guard(target);
    expect_gemm_worker_count_determinism(util::kernel_target_name(target));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(KernelDispatch, GemmNanAndInfPropagateUnderEveryTarget) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const auto target : available_kernel_targets()) {
    ScopedKernelTarget guard(target);
    for (const float poison : {nan, inf}) {
      const Tensor a(Shape::mat(1, 2), {0.0f, 0.0f});
      const Tensor b(Shape::mat(2, 1), {poison, 1.0f});
      const Tensor nn = tensor::matmul(a, b);
      EXPECT_TRUE(std::isnan(nn[0]))
          << util::kernel_target_name(target) << ", poison=" << poison;
    }
  }
}

// The documented cross-target contract: fused targets may differ from the
// scalar fold only in accumulation rounding. A standard forward-error bound
// for a length-k float fold is ~k*eps*sum|a||b| per element; the difference
// of two such folds stays within twice that. Anything larger would mean a
// dispatch bug (wrong tap, wrong tile edge), not rounding.
TEST(KernelDispatch, FusedTargetsStayWithinFoldErrorBoundOfScalar) {
  const std::int64_t m = 33, n = 21, k = 300;
  const Tensor a = random_tensor(m, k, 41);
  const Tensor b = random_tensor(k, n, 42);
  Tensor scalar_ref(Shape::mat(m, n));
  sgemm_reference(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n,
                  scalar_ref.data(), n, false);
  for (const auto target : available_kernel_targets()) {
    ScopedKernelTarget guard(target);
    Tensor got(Shape::mat(m, n));
    sgemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n,
          got.data(), n, false);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double abs_sum = 0.0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          abs_sum += std::fabs(static_cast<double>(a[i * k + kk])) *
                     std::fabs(static_cast<double>(b[kk * n + j]));
        }
        const double bound = 4.0 * static_cast<double>(k) *
                             std::numeric_limits<float>::epsilon() * abs_sum;
        ASSERT_NEAR(got[i * n + j], scalar_ref[i * n + j], bound)
            << util::kernel_target_name(target) << " elem (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace blurnet::linalg
