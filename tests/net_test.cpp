#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/defense/input_transform.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/serve/engine.h"
#include "src/serve/loadgen.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace blurnet::net {
namespace {

nn::LisaCnnConfig small_model_config() {
  nn::LisaCnnConfig config;
  config.conv1_filters = 8;
  config.conv2_filters = 16;
  config.conv3_filters = 32;
  return config;
}

serve::EngineConfig small_engine_config(int replicas = 1) {
  serve::EngineConfig config;
  config.model = small_model_config();
  config.defense = {nn::FilterPlacement::kAfterLayer1, 3, signal::KernelKind::kBox};
  config.replicas = replicas;
  return config;
}

tensor::Tensor random_batch(std::int64_t n, std::uint64_t seed = 5) {
  util::Rng rng(seed);
  return tensor::Tensor::rand_uniform(tensor::Shape::nchw(n, 3, 32, 32), rng);
}

tensor::Tensor single_image(const tensor::Tensor& batch, std::int64_t i) {
  const std::int64_t stride = batch.dim(1) * batch.dim(2) * batch.dim(3);
  tensor::Tensor image(tensor::Shape{batch.dim(1), batch.dim(2), batch.dim(3)});
  std::copy(batch.data() + i * stride, batch.data() + (i + 1) * stride, image.data());
  return image;
}

void expect_bitwise_equal(const serve::Prediction& a, const serve::Prediction& b,
                          const std::string& context) {
  EXPECT_EQ(a.label, b.label) << context;
  ASSERT_EQ(a.logits.size(), b.logits.size()) << context;
  for (std::size_t k = 0; k < a.logits.size(); ++k) {
    EXPECT_EQ(a.logits[k], b.logits[k]) << context << " logit " << k;
  }
}

/// A preprocess gate: apply() blocks until open(). Lets shutdown tests hold a
/// request in flight deterministically.
class GateTransform : public defense::InputTransform {
 public:
  GateTransform() : InputTransform(defense::TransformSpec::none(), "gate") {}

  tensor::Tensor apply(const tensor::Tensor& images) const override {
    entered_.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
    return images.clone();
  }

  void wait_entered(int n) const {
    while (entered_.load() < n) std::this_thread::yield();
  }

  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::atomic<int> entered_{0};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool open_ = false;
};

// ---- framing ---------------------------------------------------------------

TEST(Frame, RoundTripsOneByteAtATime) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
  const auto bytes = encode_frame(Opcode::kClassify, 0xDEADBEEF, payload);
  FrameDecoder decoder;
  Frame frame;
  // Feed the stream a single byte at a time: the decoder must never yield a
  // frame early and must yield exactly one at the end.
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    EXPECT_FALSE(decoder.next(frame)) << "frame yielded " << (bytes.size() - 1 - i)
                                      << " bytes early";
  }
  decoder.feed(&bytes.back(), 1);
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.opcode, Opcode::kClassify);
  EXPECT_EQ(frame.request_id, 0xDEADBEEFu);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, YieldsMultipleFramesFromOneFeed) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, Opcode::kPing, 1, {});
  append_frame(stream, Opcode::kStats, 2, {});
  append_frame(stream, Opcode::kClassify, 3, {9, 9});
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.opcode, Opcode::kPing);
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.opcode, Opcode::kStats);
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.opcode, Opcode::kClassify);
  EXPECT_EQ(frame.payload.size(), 2u);
  EXPECT_FALSE(decoder.next(frame));
}

TEST(Frame, RejectsBadMagicVersionOpcodeAndReserved) {
  const auto good = encode_frame(Opcode::kPing, 1, {});
  Frame frame;
  {
    auto bytes = good;
    bytes[0] ^= 0xFF;  // corrupt the magic
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_THROW(decoder.next(frame), WireError);
  }
  {
    auto bytes = good;
    bytes[4] = 99;  // unsupported version
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_THROW(decoder.next(frame), WireError);
  }
  {
    auto bytes = good;
    bytes[5] = 0x7E;  // unknown opcode
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_THROW(decoder.next(frame), WireError);
  }
  {
    auto bytes = good;
    bytes[6] = 1;  // reserved bytes must be zero
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_THROW(decoder.next(frame), WireError);
  }
}

TEST(Frame, RejectsOversizedLengthPrefixBeforeBuffering) {
  // A hostile length prefix must be rejected from the header alone — the
  // decoder may never wait for (or allocate) the claimed payload.
  auto bytes = encode_frame(Opcode::kClassify, 7, {1, 2, 3});
  bytes[12] = 0xFF;
  bytes[13] = 0xFF;
  bytes[14] = 0xFF;
  bytes[15] = 0x7F;  // claims ~2 GiB
  FrameDecoder decoder;  // default 16 MiB bound
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  try {
    decoder.next(frame);
    FAIL() << "expected WireError for the oversized length prefix";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("frame bound"), std::string::npos) << e.what();
  }
}

TEST(Frame, DecoderRejectsUnusableFrameBound) {
  EXPECT_THROW(FrameDecoder(kHeaderBytes - 1), std::invalid_argument);
}

// ---- payload codecs --------------------------------------------------------

TEST(Wire, ClassifyRequestRoundTripsBitwise) {
  ClassifyRequest request;
  request.variant = "defended";
  request.max_batch = 17;
  request.images = random_batch(3, 21);
  const auto bytes = encode_classify_request(request, /*batch=*/true);
  const ClassifyRequest decoded = decode_classify_request(bytes.data(), bytes.size(), true);
  EXPECT_EQ(decoded.variant, "defended");
  EXPECT_EQ(decoded.max_batch, 17);
  ASSERT_EQ(decoded.images.rank(), 4);
  ASSERT_EQ(decoded.images.numel(), request.images.numel());
  for (std::int64_t i = 0; i < request.images.numel(); ++i) {
    EXPECT_EQ(decoded.images.data()[i], request.images.data()[i]) << "pixel " << i;
  }

  ClassifyRequest one;
  one.images = single_image(request.images, 1);
  const auto single_bytes = encode_classify_request(one, /*batch=*/false);
  const ClassifyRequest single_decoded =
      decode_classify_request(single_bytes.data(), single_bytes.size(), false);
  ASSERT_EQ(single_decoded.images.rank(), 3);
  for (std::int64_t i = 0; i < one.images.numel(); ++i) {
    EXPECT_EQ(single_decoded.images.data()[i], one.images.data()[i]) << "pixel " << i;
  }
}

TEST(Wire, ClassifyRequestDecodesFromMisalignedBuffer) {
  // The wire format gives no alignment guarantees: a payload sliced out of a
  // TCP stream can start at any byte offset, so the f32 read path must go
  // through memcpy, never a reinterpret_cast load. Shift the payload to an
  // odd address and expect a bitwise-identical decode (ASan/UBSan builds turn
  // an aligned-load shortcut here into a hard failure).
  ClassifyRequest request;
  request.variant = "defended";
  request.images = random_batch(2, 9);
  const auto bytes = encode_classify_request(request, /*batch=*/true);

  std::vector<std::uint8_t> shifted(bytes.size() + 1);
  shifted[0] = 0xA5;
  std::copy(bytes.begin(), bytes.end(), shifted.begin() + 1);
  const std::uint8_t* misaligned = shifted.data() + 1;
  ASSERT_NE(reinterpret_cast<std::uintptr_t>(misaligned) % alignof(float), 0u);

  const ClassifyRequest decoded = decode_classify_request(misaligned, bytes.size(), true);
  EXPECT_EQ(decoded.variant, "defended");
  ASSERT_EQ(decoded.images.numel(), request.images.numel());
  for (std::int64_t i = 0; i < request.images.numel(); ++i) {
    EXPECT_EQ(decoded.images.data()[i], request.images.data()[i]) << "pixel " << i;
  }
}

TEST(Wire, ClassifyRequestRejectsTruncationAndTrailingBytes) {
  ClassifyRequest request;
  request.images = single_image(random_batch(1, 23), 0);
  auto bytes = encode_classify_request(request, false);
  const auto truncated_size = bytes.size() - 7;
  EXPECT_THROW(decode_classify_request(bytes.data(), truncated_size, false), WireError);
  bytes.push_back(0);  // trailing garbage after a complete payload
  EXPECT_THROW(decode_classify_request(bytes.data(), bytes.size(), false), WireError);
}

TEST(Wire, ClassifyRequestRejectsOverflowingDims) {
  // n*c*h*w = 2^62 elements: the byte count wraps mod 2^64 to 0, which would
  // match an empty payload and drive a gigantic Tensor allocation if the
  // decoder multiplied blindly. It must reject from the dims alone.
  WireWriter w;
  w.put_string(serve::kBaseVariant);
  w.put_u32(0);        // max_batch
  w.put_u32(131072);   // n = 2^17
  w.put_u16(0x8000);   // c = 2^15
  w.put_u16(0x8000);   // h
  w.put_u16(0x8000);   // w
  const auto& bytes = w.bytes();
  EXPECT_THROW(decode_classify_request(bytes.data(), bytes.size(), true), WireError);

  // Non-wrapping but still absurd: a huge batch count over a tiny payload.
  WireWriter big;
  big.put_string(serve::kBaseVariant);
  big.put_u32(0);
  big.put_u32(0xFFFFFFFFu);
  big.put_u16(3);
  big.put_u16(32);
  big.put_u16(32);
  big.bytes().resize(big.bytes().size() + 64, 0);  // 16 pixels of payload
  EXPECT_THROW(decode_classify_request(big.bytes().data(), big.bytes().size(), true),
               WireError);
}

TEST(Wire, PredictionsRejectHostileCountsBeforeAllocating) {
  {
    WireWriter w;
    w.put_u32(0xFFFFFFFFu);  // prediction count with no bytes behind it
    const auto& bytes = w.bytes();
    EXPECT_THROW(decode_predictions(bytes.data(), bytes.size(), true), WireError);
  }
  {
    WireWriter w;  // one prediction claiming 2^32-1 logits
    w.put_u32(3);            // label
    w.put_f32(1.0f);         // confidence
    w.put_u32(0xFFFFFFFFu);  // logit count
    const auto& bytes = w.bytes();
    EXPECT_THROW(decode_predictions(bytes.data(), bytes.size(), false), WireError);
  }
  {
    WireWriter w;  // stats snapshot claiming 2^32-1 variant entries
    for (int i = 0; i < 14; ++i) w.put_i64(0);  // scalar counters
    w.put_u32(0xFFFFFFFFu);
    const auto& bytes = w.bytes();
    EXPECT_THROW(decode_stats(bytes.data(), bytes.size()), WireError);
  }
}

TEST(Wire, PredictionsRoundTripBitwise) {
  std::vector<serve::Prediction> predictions(2);
  predictions[0].label = 3;
  predictions[0].confidence = 0.625f;
  predictions[0].logits = {-1.5f, 0.0f, 3.25f, 7.125f};
  predictions[1].label = 0;
  predictions[1].confidence = 1.0f;
  predictions[1].logits = {42.0f, -0.0f, 1e-30f, 2e30f};
  const auto bytes = encode_predictions(predictions, /*batch=*/true);
  const auto decoded = decode_predictions(bytes.data(), bytes.size(), true);
  ASSERT_EQ(decoded.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    expect_bitwise_equal(decoded[i], predictions[i], "prediction " + std::to_string(i));
    EXPECT_EQ(decoded[i].confidence, predictions[i].confidence);
  }
}

TEST(Wire, ErrorFramesRethrowAsTypedExceptions) {
  const auto round_trip = [](ErrorCode code) {
    const auto bytes = encode_error({code, "boom"});
    return decode_error(bytes.data(), bytes.size());
  };
  EXPECT_THROW(throw_error(round_trip(ErrorCode::kOverload)), serve::OverloadError);
  EXPECT_THROW(throw_error(round_trip(ErrorCode::kInvalidRequest)), std::invalid_argument);
  EXPECT_THROW(throw_error(round_trip(ErrorCode::kShuttingDown)), ShuttingDownError);
  EXPECT_THROW(throw_error(round_trip(ErrorCode::kInternal)), RemoteError);
}

TEST(Wire, StatsRoundTrip) {
  ServerStats stats;
  stats.accepted = 5;
  stats.open_connections = 2;
  stats.frames_in = 100;
  stats.classify = 60;
  stats.overloads = 3;
  WireVariantStats variant;
  variant.variant = "base";
  variant.replicas = 2;
  variant.requests = 58;
  variant.latency_p99_us = 1234.5;
  stats.variants.push_back(variant);
  WireConnectionStats connection;
  connection.id = 9;
  connection.bytes_in = 4096;
  stats.connections.push_back(connection);

  const auto bytes = encode_stats(stats);
  const ServerStats decoded = decode_stats(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.accepted, 5);
  EXPECT_EQ(decoded.open_connections, 2);
  EXPECT_EQ(decoded.frames_in, 100);
  EXPECT_EQ(decoded.classify, 60);
  EXPECT_EQ(decoded.overloads, 3);
  ASSERT_EQ(decoded.variants.size(), 1u);
  EXPECT_EQ(decoded.variants[0].variant, "base");
  EXPECT_EQ(decoded.variants[0].replicas, 2);
  EXPECT_EQ(decoded.variants[0].requests, 58);
  EXPECT_EQ(decoded.variants[0].latency_p99_us, 1234.5);
  ASSERT_EQ(decoded.connections.size(), 1u);
  EXPECT_EQ(decoded.connections[0].id, 9u);
  EXPECT_EQ(decoded.connections[0].bytes_in, 4096);
}

// ---- server + client over loopback -----------------------------------------

TEST(Server, PingStatsAndCounters) {
  serve::InferenceEngine engine(small_engine_config());
  Server server(engine, {});
  ASSERT_GT(server.port(), 0);

  Client client("127.0.0.1", server.port());
  client.ping();
  client.ping();
  const ServerStats stats = client.stats();
  EXPECT_EQ(stats.accepted, 1);
  EXPECT_EQ(stats.open_connections, 1);
  EXPECT_EQ(stats.ping, 2);
  EXPECT_EQ(stats.stats, 1);
  EXPECT_EQ(stats.protocol_errors, 0);
  // The Stats opcode reports every registered variant by name.
  ASSERT_EQ(stats.variants.size(), 2u);
  EXPECT_EQ(stats.variants[0].variant, serve::kBaseVariant);
  EXPECT_EQ(stats.variants[1].variant, serve::kDefendedVariant);
  EXPECT_EQ(stats.variants[0].replicas, 1);
  server.stop();
}

TEST(Server, LoopbackClassifyMatchesInProcessBitwise) {
  const auto batch = random_batch(6, 31);
  for (const int replicas : {1, 2, 4}) {
    serve::InferenceEngine engine(small_engine_config(replicas));
    const auto expected_base = engine.classify(batch);
    const auto expected_defended = engine.classify(batch, serve::Options{serve::kDefendedVariant});
    Server server(engine, {});

    // Two connections, pipelined sends interleaving variants and single/batch
    // opcodes: the loopback path must reproduce in-process classify() bit for
    // bit regardless of replica count, connection or interleaving.
    Client first("127.0.0.1", server.port());
    Client second("127.0.0.1", server.port());
    std::vector<std::uint32_t> first_ids, second_ids;
    for (std::int64_t i = 0; i < 6; ++i) {
      first_ids.push_back(first.send_classify(single_image(batch, i)));
      second_ids.push_back(
          second.send_classify(single_image(batch, i), serve::kDefendedVariant));
    }
    const std::uint32_t batch_id = first.send_classify_batch(batch, serve::kDefendedVariant);

    for (std::int64_t i = 5; i >= 0; --i) {  // receive out of submission order
      const auto context = "replicas " + std::to_string(replicas) + " image " + std::to_string(i);
      expect_bitwise_equal(first.receive_classify(first_ids[static_cast<std::size_t>(i)]),
                           expected_base[static_cast<std::size_t>(i)], "base " + context);
      expect_bitwise_equal(second.receive_classify(second_ids[static_cast<std::size_t>(i)]),
                           expected_defended[static_cast<std::size_t>(i)],
                           "defended " + context);
    }
    const auto batch_result = first.receive_classify_batch(batch_id);
    ASSERT_EQ(batch_result.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      expect_bitwise_equal(batch_result[i], expected_defended[i],
                           "batch image " + std::to_string(i));
    }
    server.stop();
  }
}

TEST(Server, UnknownVariantErrorListsRegisteredVariants) {
  serve::InferenceEngine engine(small_engine_config());
  Server server(engine, {});
  Client client("127.0.0.1", server.port());
  const auto image = single_image(random_batch(1, 37), 0);
  try {
    client.classify(image, "nope");
    FAIL() << "expected std::invalid_argument for the unknown variant";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("\"nope\""), std::string::npos) << message;
    EXPECT_NE(message.find("\"base\""), std::string::npos) << message;
    EXPECT_NE(message.find("\"defended\""), std::string::npos) << message;
  }
  // The connection survives a validation failure.
  EXPECT_EQ(client.classify(image).label, engine.classify(image)[0].label);
  server.stop();
}

TEST(Server, OverloadComesBackAsOverloadError) {
  serve::EngineConfig config = small_engine_config();
  config.queue_capacity = 1;
  config.overload_policy = serve::OverloadPolicy::kReject;
  serve::InferenceEngine engine(config);
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);
  Server server(engine, {});
  Client client("127.0.0.1", server.port());

  const auto batch = random_batch(4, 41);
  // First request: its worker takes it and parks inside the gate. Second
  // fills the one-slot queue. The rest must shed server-side and come back as
  // kOverload error frames.
  std::vector<std::uint32_t> ids;
  ids.push_back(client.send_classify(single_image(batch, 0), "gated"));
  gate->wait_entered(1);
  ids.push_back(client.send_classify(single_image(batch, 1), "gated"));
  // The server admits pipelined frames in order; wait until the queue really
  // holds the second request before sending the ones that must shed.
  while (engine.variant_stats("gated").queue_depth < 1) std::this_thread::yield();
  ids.push_back(client.send_classify(single_image(batch, 2), "gated"));
  ids.push_back(client.send_classify(single_image(batch, 3), "gated"));

  int served = 0, shed = 0;
  // Collect the sheds first: error frames do not wait on the gate.
  for (std::size_t i = 2; i < ids.size(); ++i) {
    try {
      client.receive_classify(ids[i]);
      ++served;
    } catch (const serve::OverloadError&) {
      ++shed;
    }
  }
  EXPECT_EQ(shed, 2);
  gate->open();
  for (std::size_t i = 0; i < 2; ++i) {
    client.receive_classify(ids[i]);
    ++served;
  }
  EXPECT_EQ(served, 2);
  EXPECT_GE(server.stats().overloads, 2);
  server.stop();
}

TEST(Server, RejectsUnboundedBlockingEngine) {
  serve::EngineConfig config = small_engine_config();
  config.overload_policy = serve::OverloadPolicy::kBlock;
  config.block_timeout_ms = 0;  // engine-legal, but a submitter could block forever
  serve::InferenceEngine engine(config);
  EXPECT_THROW(Server(engine, {}), std::invalid_argument);
}

TEST(Server, EventLoopStaysResponsiveWhileBlockAdmissionWaits) {
  serve::EngineConfig config = small_engine_config();
  config.queue_capacity = 1;
  config.overload_policy = serve::OverloadPolicy::kBlock;
  config.block_timeout_ms = 10000;
  serve::InferenceEngine engine(config);
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);
  Server server(engine, {});

  // Fill the gated variant: one request parked inside the gate, one in the
  // single queue slot, and a third whose admission must wait for space.
  Client blocked("127.0.0.1", server.port());
  const auto batch = random_batch(3, 67);
  std::vector<std::uint32_t> ids;
  ids.push_back(blocked.send_classify(single_image(batch, 0), "gated"));
  gate->wait_entered(1);
  ids.push_back(blocked.send_classify(single_image(batch, 1), "gated"));
  while (engine.variant_stats("gated").queue_depth < 1) std::this_thread::yield();
  ids.push_back(blocked.send_classify(single_image(batch, 2), "gated"));
  while (engine.variant_stats("gated").blocked < 1) std::this_thread::yield();

  // The blocked submit() stalls only its own connection's submitter thread;
  // the event loop must keep serving other connections meanwhile.
  Client probe("127.0.0.1", server.port());
  const auto t0 = std::chrono::steady_clock::now();
  probe.ping();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 2000) << "ping stalled behind a blocking admission";

  gate->open();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_bitwise_equal(blocked.receive_classify(ids[i]),
                         engine.classify(single_image(batch, static_cast<std::int64_t>(i)),
                                         serve::Options{"gated"})[0],
                         "blocked-admission image " + std::to_string(i));
  }
  server.stop();
}

TEST(Server, ReadBackpressureBoundsPipelinedRequests) {
  serve::InferenceEngine engine(small_engine_config());
  ServerConfig config;
  config.max_inflight_requests = 4;  // pause reads past 4 unanswered requests
  config.max_outbox_bytes = 1;       // and while any reply bytes await flushing
  Server server(engine, config);
  Client client("127.0.0.1", server.port());

  // Pipeline far more requests than the pipeline bound: the loop pauses and
  // resumes reading as replies drain, and every request is still served in
  // order, bitwise equal to the in-process path.
  const auto batch = random_batch(24, 71);
  const auto expected = engine.classify(batch);
  std::vector<std::uint32_t> ids;
  for (std::int64_t i = 0; i < 24; ++i) {
    ids.push_back(client.send_classify(single_image(batch, i)));
  }
  for (std::int64_t i = 0; i < 24; ++i) {
    expect_bitwise_equal(client.receive_classify(ids[static_cast<std::size_t>(i)]),
                         expected[static_cast<std::size_t>(i)],
                         "backpressured image " + std::to_string(i));
  }
  server.stop();
}

TEST(Server, MidFrameDisconnectLeavesServerServing) {
  serve::InferenceEngine engine(small_engine_config());
  Server server(engine, {});
  {
    // A peer that sends half a header and vanishes.
    Socket raw = tcp_connect("127.0.0.1", server.port());
    const auto frame = encode_frame(Opcode::kPing, 1, {});
    write_all(raw.fd(), frame.data(), kHeaderBytes / 2);
    raw.close();
  }
  {
    // A peer that sends a full header and half the payload, then vanishes.
    Socket raw = tcp_connect("127.0.0.1", server.port());
    ClassifyRequest request;
    request.images = single_image(random_batch(1, 43), 0);
    const auto frame = encode_frame(Opcode::kClassify, 2,
                                    encode_classify_request(request, false));
    write_all(raw.fd(), frame.data(), frame.size() / 2);
    raw.close();
  }
  // The server keeps serving fresh connections afterwards.
  Client client("127.0.0.1", server.port());
  const auto image = single_image(random_batch(1, 47), 0);
  expect_bitwise_equal(client.classify(image), engine.classify(image)[0], "after disconnects");
  EXPECT_EQ(server.stats().protocol_errors, 0);  // disconnects are not protocol errors
  server.stop();
}

TEST(Server, MalformedMagicGetsErrorFrameThenClose) {
  serve::InferenceEngine engine(small_engine_config());
  Server server(engine, {});
  Socket raw = tcp_connect("127.0.0.1", server.port());
  std::vector<std::uint8_t> garbage(32, 0xAB);
  write_all(raw.fd(), garbage.data(), garbage.size());

  // The server answers with a connection-fatal error frame (request id 0),
  // then closes. Read until EOF and decode what came back.
  FrameDecoder decoder;
  std::uint8_t chunk[4096];
  for (;;) {
    const std::size_t got = read_some(raw.fd(), chunk, sizeof(chunk));
    if (got == 0) break;
    decoder.feed(chunk, got);
  }
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.opcode, Opcode::kErrorResponse);
  EXPECT_EQ(frame.request_id, 0u);
  const ErrorFrame error = decode_error(frame.payload.data(), frame.payload.size());
  EXPECT_EQ(error.code, ErrorCode::kInvalidRequest);
  EXPECT_NE(error.message.find("magic"), std::string::npos) << error.message;
  EXPECT_EQ(server.stats().protocol_errors, 1);
  server.stop();
}

TEST(Server, GracefulStopDrainsInFlightAndRefusesNewWork) {
  serve::EngineConfig config = small_engine_config();
  serve::InferenceEngine engine(config);
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);
  Server server(engine, {});
  Client client("127.0.0.1", server.port());

  const auto batch = random_batch(2, 53);
  const std::uint32_t in_flight = client.send_classify(single_image(batch, 0), "gated");
  gate->wait_entered(1);  // the request is inside the engine, held by the gate

  std::thread stopper([&] { server.stop(); });
  while (!server.draining()) std::this_thread::yield();

  // New classify work during the drain is refused with a typed frame.
  const std::uint32_t refused = client.send_classify(single_image(batch, 1), "gated");
  EXPECT_THROW(client.receive_classify(refused), ShuttingDownError);
  EXPECT_GE(server.stats().shutdown_rejected, 1);

  // Releasing the gate lets the in-flight request finish; its response is
  // flushed before the server closes the connection.
  gate->open();
  const serve::Prediction prediction = client.receive_classify(in_flight);
  stopper.join();
  expect_bitwise_equal(prediction, engine.classify(single_image(batch, 0),
                                                   serve::Options{"gated"})[0],
                       "drained in-flight request");
}

TEST(Server, StopTimeoutAbandonsStuckRequests) {
  serve::InferenceEngine engine(small_engine_config());
  auto gate = std::make_shared<GateTransform>();
  engine.register_pipeline_variant("gated", gate);
  ServerConfig config;
  config.drain_timeout_ms = 150;
  Server server(engine, config);
  auto client = std::make_unique<Client>("127.0.0.1", server.port());

  const auto image = single_image(random_batch(1, 59), 0);
  const std::uint32_t stuck = client->send_classify(image, "gated");
  gate->wait_entered(1);  // the gate never opens before stop(): request is stuck

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();  // must time out past the stuck request, not hang
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 100);
  EXPECT_LT(elapsed.count(), 5000) << "stop() should be bounded by drain_timeout_ms";

  // The abandoned request never gets a response; the client sees the close.
  EXPECT_THROW(client->receive_classify(stuck), SocketError);
  client.reset();
  gate->open();  // unwedge the engine worker so its destructor can join
}

TEST(Server, ValidatesConfig) {
  serve::InferenceEngine engine(small_engine_config());
  ServerConfig config;
  config.drain_timeout_ms = 0;
  EXPECT_THROW(Server(engine, config), std::invalid_argument);
  config = {};
  config.backlog = 0;
  EXPECT_THROW(Server(engine, config), std::invalid_argument);
  config = {};
  config.max_frame_bytes = 4;
  EXPECT_THROW(Server(engine, config), std::invalid_argument);
  config = {};
  config.max_outbox_bytes = 0;
  EXPECT_THROW(Server(engine, config), std::invalid_argument);
  config = {};
  config.max_inflight_requests = 0;
  EXPECT_THROW(Server(engine, config), std::invalid_argument);
  config = {};
  config.host = "not-a-host-name";
  EXPECT_THROW(Server(engine, config), SocketError);
}

// ---- load generator over the socket transport ------------------------------

TEST(LoadGenerator, SocketTransportMatchesScheduleAndServes) {
  serve::InferenceEngine engine(small_engine_config(2));
  Server server(engine, {});

  serve::LoadConfig load;
  load.offered_rps = 400.0;
  load.requests = 60;
  load.seed = 7;
  load.mix = {{serve::kBaseVariant, 1.0}, {serve::kDefendedVariant, 1.0}};
  serve::LoadGenerator generator(engine, load);

  serve::SocketTransport transport;
  transport.port = server.port();
  transport.connections = 3;
  const auto image = single_image(random_batch(1, 61), 0);
  const serve::LoadReport report = generator.run_socket(transport, image);

  EXPECT_EQ(report.offered, 60);
  EXPECT_EQ(report.served, 60);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.latency.p50_us, 0.0);
  std::int64_t per_variant_offered = 0;
  for (const auto& variant : report.variants) per_variant_offered += variant.offered;
  EXPECT_EQ(per_variant_offered, 60);

  // All traffic arrived through the socket front-end, spread over the lanes.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.classify, 60);
  EXPECT_EQ(stats.overloads, 0);
  server.stop();

  EXPECT_THROW((serve::SocketTransport{"", 1, 1}.validate()), std::invalid_argument);
  EXPECT_THROW((serve::SocketTransport{"127.0.0.1", 1, 0}.validate()), std::invalid_argument);
}

}  // namespace
}  // namespace blurnet::net
