#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/kernels/dispatch.h"
#include "src/util/cpu_caps.h"
#include "src/util/rng.h"
#include "tests/test_helpers.h"

namespace blurnet::util {
namespace {

using blurnet::testing::ScopedKernelTarget;
using blurnet::testing::available_kernel_targets;

TEST(CpuCaps, ProbeIsConsistentAndCached) {
  const CpuCaps& caps = cpu_caps();
  // Probe-once: repeated calls hand back the same cached struct.
  EXPECT_EQ(&caps, &cpu_caps());
  // Availability must mirror the probe exactly; scalar is unconditional.
  EXPECT_TRUE(kernel_target_available(KernelTarget::kScalar));
  EXPECT_EQ(kernel_target_available(KernelTarget::kAvx2), caps.avx2_fma);
  EXPECT_EQ(kernel_target_available(KernelTarget::kNeon), caps.neon);
  // AVX2 and NEON binaries are different architectures; at most one is up.
  EXPECT_FALSE(caps.avx2_fma && caps.neon);
}

TEST(CpuCaps, ActiveTargetIsAvailableAndStable) {
  const KernelTarget active = active_kernel_target();
  EXPECT_TRUE(kernel_target_available(active));
  EXPECT_EQ(active, active_kernel_target());  // cached resolution
}

TEST(CpuCaps, NamesRoundTripThroughParse) {
  for (const auto target : {KernelTarget::kScalar, KernelTarget::kAvx2,
                            KernelTarget::kNeon}) {
    EXPECT_EQ(parse_kernel_target(kernel_target_name(target)), target);
  }
}

TEST(CpuCaps, ParseRejectsUnknownSpellingsDescriptively) {
  for (const char* bad : {"bogus", "", "AVX2", "sse2", "scalar "}) {
    try {
      parse_kernel_target(bad);
      FAIL() << "expected invalid_argument for '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      // The message must teach the accepted spellings.
      const std::string what = e.what();
      EXPECT_NE(what.find("scalar"), std::string::npos) << what;
      EXPECT_NE(what.find("avx2"), std::string::npos) << what;
      EXPECT_NE(what.find("neon"), std::string::npos) << what;
    }
  }
}

TEST(CpuCaps, SetKernelTargetRejectsUnavailableTargets) {
  for (const auto target : {KernelTarget::kAvx2, KernelTarget::kNeon}) {
    if (kernel_target_available(target)) continue;
    EXPECT_THROW(set_kernel_target(target), std::invalid_argument);
  }
  // An unavailable-target throw must not poison the cached resolution.
  EXPECT_TRUE(kernel_target_available(active_kernel_target()));
}

TEST(CpuCaps, SetAndResetKernelTargetRoundTrip) {
  const KernelTarget before = active_kernel_target();
  {
    ScopedKernelTarget scoped(KernelTarget::kScalar);
    EXPECT_EQ(active_kernel_target(), KernelTarget::kScalar);
  }
  EXPECT_EQ(active_kernel_target(), before);
}

TEST(KernelTable, GemmMicrokernelDescriptorsAreSane) {
  for (const auto target : available_kernel_targets()) {
    const kernels::GemmMicrokernel& mk = kernels::gemm_microkernel(target);
    EXPECT_NE(mk.fn, nullptr) << kernel_target_name(target);
    EXPECT_GE(mk.mr, 1) << kernel_target_name(target);
    EXPECT_LE(mk.mr, kernels::kGemmMaxMr) << kernel_target_name(target);
    if (target == KernelTarget::kScalar) {
      EXPECT_FALSE(mk.fused);
      EXPECT_EQ(mk.mr, 4);
    } else {
      EXPECT_TRUE(mk.fused);  // SIMD targets accumulate with hardware FMA
    }
  }
  // tap/warp dispatch can never come back null; callers rely on it.
  for (const auto target : available_kernel_targets()) {
    EXPECT_NE(kernels::tap_row(target), nullptr);
    EXPECT_NE(kernels::warp_row(target), nullptr);
  }
}

// Direct unit check of the tap-row kernels: every target must reproduce the
// scalar double-accumulator tap fold bitwise, including the non-multiple-of-
// vector-width tail.
TEST(KernelTable, TapRowMatchesScalarBitwise) {
  util::Rng rng(101);
  const int kh = 3, kw = 5;
  // Counts straddle the 4-wide AVX2 body: 1..3 all-tail, 11 body+tail.
  for (const std::int64_t count : {std::int64_t{1}, std::int64_t{3},
                                   std::int64_t{8}, std::int64_t{11}}) {
    const std::int64_t stride = count + kw - 1;
    std::vector<float> src(static_cast<std::size_t>(stride * kh));
    std::vector<float> ker(static_cast<std::size_t>(kh * kw));
    for (auto& v : src) v = static_cast<float>(rng.normal());
    for (auto& v : ker) v = static_cast<float>(rng.normal());
    std::vector<float> expected(static_cast<std::size_t>(count));
    kernels::tap_row(KernelTarget::kScalar)(src.data(), stride, ker.data(), kh,
                                            kw, expected.data(), count);
    for (const auto target : available_kernel_targets()) {
      if (target == KernelTarget::kScalar) continue;
      std::vector<float> got(static_cast<std::size_t>(count), -999.0f);
      kernels::tap_row(target)(src.data(), stride, ker.data(), kh, kw,
                               got.data(), count);
      for (std::int64_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  expected[static_cast<std::size_t>(i)])
            << kernel_target_name(target) << " count " << count << " elem " << i;
      }
    }
  }
}

// Direct unit check of the median3 row kernels against nth_element: the
// min/max network must produce the exact 5th order statistic.
TEST(KernelTable, Median3RowMatchesNthElement) {
  util::Rng rng(103);
  for (const std::int64_t count : {std::int64_t{1}, std::int64_t{7},
                                   std::int64_t{8}, std::int64_t{21}}) {
    std::vector<float> r0, r1, r2;
    for (std::int64_t i = 0; i < count + 2; ++i) {
      r0.push_back(static_cast<float>(rng.normal()));
      r1.push_back(static_cast<float>(rng.normal()));
      r2.push_back(static_cast<float>(rng.normal()));
    }
    std::vector<float> expected(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      std::vector<float> window;
      for (int d = 0; d < 3; ++d) {
        window.push_back(r0[static_cast<std::size_t>(i + d)]);
        window.push_back(r1[static_cast<std::size_t>(i + d)]);
        window.push_back(r2[static_cast<std::size_t>(i + d)]);
      }
      std::nth_element(window.begin(), window.begin() + 4, window.end());
      expected[static_cast<std::size_t>(i)] = window[4];
    }
    for (const auto target : available_kernel_targets()) {
      const kernels::Median3RowFn fn = kernels::median3_row(target);
      if (fn == nullptr) continue;  // target keeps the nth_element path
      std::vector<float> got(static_cast<std::size_t>(count), -999.0f);
      fn(r0.data(), r1.data(), r2.data(), got.data(), count);
      for (std::int64_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)],
                  expected[static_cast<std::size_t>(i)])
            << kernel_target_name(target) << " count " << count << " elem " << i;
      }
    }
  }
}

// Direct unit check of the dispatched 8x8 DCT pair: forward matches the
// dispatched-off scalar path bitwise is covered in defense_test; here we
// check the algebraic contract — inverse(forward(x)) ~= x.
TEST(KernelTable, Dct8x8RoundTripsWhereSpecialized) {
  util::Rng rng(107);
  double block[64];
  for (double& v : block) v = rng.normal();
  for (const auto target : available_kernel_targets()) {
    const kernels::Dct8x8Fn fwd = kernels::dct8x8(target, /*inverse=*/false);
    const kernels::Dct8x8Fn inv = kernels::dct8x8(target, /*inverse=*/true);
    if (fwd == nullptr || inv == nullptr) {
      // Specializations ship in pairs; a lone direction would leave the
      // caller mixing dispatched and generic halves.
      EXPECT_EQ(fwd, inv) << kernel_target_name(target);
      continue;
    }
    double coeff[64], rebuilt[64];
    fwd(block, coeff);
    inv(coeff, rebuilt);
    for (int i = 0; i < 64; ++i) {
      ASSERT_NEAR(rebuilt[i], block[i], 1e-12)
          << kernel_target_name(target) << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace blurnet::util
