// Differentiable operations. Each op returns a Variable whose backward
// closure pushes gradients into its parents; all closures are checked against
// central finite differences in tests/autograd_gradcheck_test.cpp.
#pragma once

#include <vector>

#include "src/autograd/variable.h"

namespace blurnet::autograd {

// ---- arithmetic -------------------------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);  // elementwise
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);
Variable neg(const Variable& a);
/// Elementwise product with a constant tensor (no gradient into the constant).
Variable mul_const(const Variable& a, const tensor::Tensor& c);
Variable add_const(const Variable& a, const tensor::Tensor& c);
/// Straight-through estimator (BPDA): the op's value is `forward_value`
/// verbatim — bitwise, not a float re-derivation — while the backward pass
/// hands the incoming gradient to `a` unchanged, as if the op were the
/// identity. Used to differentiate "through" non-differentiable input
/// transforms: forward_value = transform(a.value()).
Variable straight_through(const Variable& a, const tensor::Tensor& forward_value);

// ---- shape ------------------------------------------------------------------
Variable reshape(const Variable& a, tensor::Shape new_shape);
/// Flatten an NCHW batch to [N, C*H*W].
Variable flatten2d(const Variable& a);
/// Tile a [1,C,H,W] tensor to [n,C,H,W]; gradient sums over the batch. Used
/// by the shared-sticker RP2 mode (one physical perturbation, many views).
Variable broadcast_batch(const Variable& a, std::int64_t n);
/// Tile a whole [N,C,H,W] batch k times to [N*k,C,H,W] in pose-major blocks:
/// out[j*N + i] = a[i] for j in [0,k). The gradient sums the k copies back
/// (ascending j, so accumulation order is fixed). Used by the pose-batched
/// EOT pipeline: one graph forwards every (image, pose) pair at once.
Variable repeat_batch(const Variable& a, std::int64_t k);

// ---- activations ------------------------------------------------------------
Variable relu(const Variable& a);
Variable sigmoid(const Variable& a);
Variable tanh_op(const Variable& a);

// ---- linear layers ----------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);
/// y = x·W + b with x [m,k], W [k,n], b [n] (b may be undefined).
Variable dense(const Variable& x, const Variable& w, const Variable& b);

// ---- convolutions -----------------------------------------------------------
/// Standard convolution: x NCHW, w [F,C,kh,kw], b [F] (optional, may be
/// undefined). Symmetric zero padding `pad`, square stride.
Variable conv2d(const Variable& x, const Variable& w, const Variable& b, int stride,
                int pad);
/// Depthwise convolution with same padding, stride 1: w [C,kh,kw], optional
/// b [C]. Each channel filtered independently — the paper's filter layer.
Variable depthwise_conv2d_same(const Variable& x, const Variable& w, const Variable& b);
/// Max-pooling (square kernel/stride).
Variable maxpool2d(const Variable& x, int kernel, int stride);

// ---- reductions & norms -------------------------------------------------------
Variable sum(const Variable& a);
Variable mean(const Variable& a);
Variable sum_squares(const Variable& a);
Variable l1_norm(const Variable& a);
/// Euclidean norm with safe gradient at 0.
Variable l2_norm(const Variable& a);

// ---- losses -------------------------------------------------------------------
/// Mean softmax cross-entropy over the batch; logits [N,K], labels size N.
Variable softmax_cross_entropy(const Variable& logits, const std::vector<int>& labels);

/// Total-variation penalty of NCHW feature maps, Eq. (3)/(4) of the paper:
/// (1/(N*C)) * sum_{n,c} TV(F[n,c,:,:]).
Variable tv_loss(const Variable& x);

/// Tikhonov penalty with a row operator (paper §IV-C, "Tik_hf"):
/// (1/(N*C)) * sum_{n,c} ||L · F[n,c,:,:]||_F^2, L applied along the H axis.
Variable tikhonov_rows(const Variable& x, const tensor::Tensor& l_operator);

/// Tikhonov penalty with an elementwise operator (paper §IV-C, "Tik_pseudo"):
/// (1/(N*C)) * sum_{n,c} ||P ⊙ F[n,c,:,:]||_F^2.
Variable tikhonov_elementwise(const Variable& x, const tensor::Tensor& p_operator);

/// Sum over channels of the L∞ norm of each depthwise kernel (Eq. (2)):
/// sum_c max_{i,j} |W[c,i,j]| (subgradient routed to the arg-max entry).
Variable linf_per_channel(const Variable& w);

// ---- attack-specific ops --------------------------------------------------------
/// 2-D affine transform (inverse-warp convention), bilinear sampling with
/// zeros outside. Differentiable w.r.t. the input image batch.
struct Affine2D {
  // Maps *output* pixel coordinates to *input* coordinates:
  //   in_x = m00*x + m01*y + tx,  in_y = m10*x + m11*y + ty
  double m00 = 1, m01 = 0, tx = 0;
  double m10 = 0, m11 = 1, ty = 0;

  static Affine2D identity() { return {}; }
  /// Rotation (radians) + isotropic scale + translation about the centre of
  /// an h×w image (builds the inverse map of the forward transform).
  static Affine2D rotation_scale_about_center(double angle_rad, double scale, double dx,
                                              double dy, int height, int width);
};
Variable affine_warp(const Variable& x, const Affine2D& transform);
/// Per-sample variant: transforms[i] warps batch row i (transforms.size()
/// must equal the batch dimension). The bilinear taps and their gradients are
/// computed exactly as in the single-transform overload, which is equivalent
/// to passing n copies of one transform — bitwise, not approximately.
Variable affine_warp(const Variable& x, const std::vector<Affine2D>& transforms);

/// Project each channel plane onto its lowest dim×dim DCT-II coefficients
/// (paper Eq. (8): IDCT(M_dim · DCT(·))). Linear and self-adjoint.
Variable dct_lowpass(const Variable& x, int dim);

/// Non-printability score (Sharif et al.; paper §II-B). `palette` is [P,3]
/// printable RGB triples; for each pixel triple v the term is
/// prod_j (||v − palette_j||_1 / 3), and the loss is the mean over pixels.
/// x must be [N,3,H,W].
Variable nps_loss(const Variable& x, const tensor::Tensor& palette);

}  // namespace blurnet::autograd
