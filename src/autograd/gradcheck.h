// Central-finite-difference gradient checking used by the property tests to
// validate every backward closure in ops.cpp.
#pragma once

#include <functional>

#include "src/autograd/variable.h"

namespace blurnet::autograd {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool passed = false;
};

/// Compare the analytic gradient of `fn` (a scalar-valued function of a
/// single leaf) against central differences. `fn` must rebuild the graph on
/// every call from the provided leaf. An element passes when
///   |analytic - numeric| <= atol + rtol * max(|analytic|, |numeric|)
/// (the atol floor absorbs float32 forward-pass noise in the numeric probe).
GradCheckResult gradcheck(const std::function<Variable(const Variable&)>& fn,
                          const tensor::Tensor& input, double epsilon = 1e-3,
                          double rtol = 5e-2, double atol = 1.5e-2);

}  // namespace blurnet::autograd
