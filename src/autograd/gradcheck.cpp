#include "src/autograd/gradcheck.h"

#include <cmath>

namespace blurnet::autograd {

GradCheckResult gradcheck(const std::function<Variable(const Variable&)>& fn,
                          const tensor::Tensor& input, double epsilon, double rtol,
                          double atol) {
  // Analytic gradient.
  Variable leaf = Variable::leaf(input.clone(), /*requires_grad=*/true);
  Variable loss = fn(leaf);
  backward(loss);
  const tensor::Tensor analytic = leaf.grad().clone();

  GradCheckResult result;
  result.passed = true;
  tensor::Tensor probe = input.clone();
  for (std::int64_t i = 0; i < probe.numel(); ++i) {
    const float original = probe[i];
    probe[i] = original + static_cast<float>(epsilon);
    const double up = Variable(fn(Variable::leaf(probe.clone(), false))).scalar_value();
    probe[i] = original - static_cast<float>(epsilon);
    const double down = Variable(fn(Variable::leaf(probe.clone(), false))).scalar_value();
    probe[i] = original;
    const double numeric = (up - down) / (2.0 * epsilon);
    const double abs_err = std::fabs(numeric - analytic[i]);
    const double scale = std::max(std::fabs(numeric), std::fabs(static_cast<double>(analytic[i])));
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / std::max(scale, 1e-4));
    if (abs_err > atol + rtol * scale) result.passed = false;
  }
  return result;
}

}  // namespace blurnet::autograd
