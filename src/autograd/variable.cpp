#include "src/autograd/variable.h"

#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "src/util/arena.h"

namespace blurnet::autograd {

namespace {
thread_local bool t_grad_enabled = true;
}

bool grad_enabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) { t_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

tensor::Tensor& Node::grad() {
  if (!grad_allocated_) {
    grad_ = tensor::Tensor(value_.shape());
    grad_allocated_ = true;
  }
  return grad_;
}

void Node::zero_grad() {
  if (grad_allocated_) grad_.zero();
}

void Node::accumulate_grad(const tensor::Tensor& g) {
  grad().add_(g);
}

Variable Variable::leaf(tensor::Tensor value, bool requires_grad) {
  // Leaves are parameters and attacked inputs — long-lived by nature, so they
  // always live on the heap, never in a request arena.
  return Variable(std::make_shared<Node>(std::move(value), requires_grad, "leaf"));
}

Variable Variable::constant(tensor::Tensor value) {
  // Constants are the nodes the inference fast paths churn through on every
  // forward; allocate_shared through the scratch layer puts the node and its
  // control block in the request arena when one is bound (zero heap
  // allocations on a warm serving thread), and on the heap otherwise.
  return Variable(std::allocate_shared<Node>(util::ScratchAllocator<Node>(),
                                             std::move(value), false, "const"));
}

float Variable::scalar_value() const {
  if (node_->value().numel() != 1) {
    throw std::logic_error("Variable::scalar_value on non-scalar " +
                           node_->value().shape().to_string());
  }
  return node_->value()[0];
}

Variable make_op(const std::string& name, tensor::Tensor value,
                 std::vector<Variable> parents, std::function<void(Node&)> backward_fn) {
  bool any_requires = false;
  if (grad_enabled()) {
    for (const auto& p : parents) {
      if (p.defined() && p.requires_grad()) {
        any_requires = true;
        break;
      }
    }
  }
  auto node = std::allocate_shared<Node>(util::ScratchAllocator<Node>(),
                                         std::move(value), any_requires, name);
  if (any_requires) {
    for (const auto& p : parents) {
      if (p.defined()) node->parents().push_back(p.node());
    }
    node->set_backward(std::move(backward_fn));
  }
  return Variable(std::move(node));
}

void backward(const Variable& root) {
  if (!root.defined()) throw std::invalid_argument("backward: undefined root");
  if (root.value().numel() != 1) {
    throw std::invalid_argument("backward: root must be scalar, got " +
                                root.value().shape().to_string());
  }
  if (!root.requires_grad()) return;  // nothing depends on a parameter

  // Iterative post-order DFS to get a topological order (parents before
  // children in `order`, so we propagate in reverse).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents().size()) {
      Node* parent = node->parents()[next_child].get();
      ++next_child;
      if (parent->requires_grad() && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root.node()->grad().fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn() && node->has_grad()) {
      node->backward_fn()(*node);
    }
  }
}

}  // namespace blurnet::autograd
