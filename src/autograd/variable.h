// Reverse-mode automatic differentiation.
//
// A Variable is a cheap handle to a graph Node holding the forward value,
// (lazily allocated) gradient buffer, parent edges and a backward closure.
// Graphs are built implicitly by the ops in src/autograd/ops.h; calling
// backward() on a scalar root runs a topological sweep that accumulates
// gradients into every node with requires_grad().
//
// When no input of an op requires gradients the op does not retain parents or
// a closure, so inference-only forwards build no graph and cost nothing extra.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace blurnet::autograd {

class Node;
using NodePtr = std::shared_ptr<Node>;

class Node {
 public:
  Node(tensor::Tensor value, bool requires_grad, std::string op_name)
      : value_(std::move(value)), requires_grad_(requires_grad), op_(std::move(op_name)) {}

  const tensor::Tensor& value() const { return value_; }
  tensor::Tensor& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  const std::string& op() const { return op_; }

  /// Gradient buffer, allocated (zeroed) on first access.
  tensor::Tensor& grad();
  bool has_grad() const { return grad_allocated_; }
  void zero_grad();

  /// Accumulate a gradient contribution (allocates if needed).
  void accumulate_grad(const tensor::Tensor& g);

  // Graph wiring (used by op constructors and the backward sweep).
  std::vector<NodePtr>& parents() { return parents_; }
  void set_backward(std::function<void(Node&)> fn) { backward_fn_ = std::move(fn); }
  const std::function<void(Node&)>& backward_fn() const { return backward_fn_; }

 private:
  tensor::Tensor value_;
  tensor::Tensor grad_;
  bool grad_allocated_ = false;
  bool requires_grad_ = false;
  std::string op_;
  std::vector<NodePtr> parents_;
  std::function<void(Node&)> backward_fn_;
};

class Variable {
 public:
  Variable() = default;

  /// Leaf node (parameter or attacked input).
  static Variable leaf(tensor::Tensor value, bool requires_grad = true);
  /// Constant (no gradient ever flows into it).
  static Variable constant(tensor::Tensor value);

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const { return node_->value(); }
  tensor::Tensor& mutable_value() { return node_->mutable_value(); }
  tensor::Tensor& grad() { return node_->grad(); }
  bool has_grad() const { return node_->has_grad(); }
  void zero_grad() { node_->zero_grad(); }
  bool requires_grad() const { return node_ && node_->requires_grad(); }

  const tensor::Shape& shape() const { return node_->value().shape(); }

  /// Scalar convenience: value of a 1-element tensor.
  float scalar_value() const;

  NodePtr node() const { return node_; }
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

 private:
  NodePtr node_;
};

/// Thread-local gradient mode. While disabled, make_op produces plain
/// constants — no parents, no closure — even when inputs are requires_grad
/// leaves, so inference over trained parameters builds no graph and ops may
/// take allocation-free fast paths. Enabled by default.
bool grad_enabled();

/// RAII scope that disables gradient tracking on this thread (used by
/// LisaCnn::logits and the serving engine).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Run the backward sweep from a scalar root (seeds d(root)/d(root) = 1).
void backward(const Variable& root);

/// Construct an op node: value, parents, and a closure that pushes this
/// node's grad into its parents. The closure is only retained when at least
/// one parent requires gradients.
Variable make_op(const std::string& name, tensor::Tensor value,
                 std::vector<Variable> parents, std::function<void(Node&)> backward_fn);

}  // namespace blurnet::autograd
