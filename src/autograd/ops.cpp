#include "src/autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/kernels/dispatch.h"
#include "src/linalg/gemm.h"
#include "src/signal/dct.h"
#include "src/tensor/ops.h"
#include "src/util/parallel.h"

namespace blurnet::autograd {

namespace {

using tensor::Shape;
using tensor::Tensor;

void require_same_shape(const Variable& a, const Variable& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " + b.shape().to_string());
  }
}

// Per-thread scratch reused across inference-only convolution calls (conv2d
// and the depthwise kernel share the padded buffer sequentially). The padded
// input and im2col matrix are the two big per-forward allocations; serving
// runs the same shapes over and over, so keeping the buffers warm per thread
// removes the allocator from the hot path. The GEMM pack panels live in
// matching per-thread scratch inside linalg::sgemm, so the whole forward is
// allocation-free once a serving thread is warm. Gradient-tracking calls
// cannot use this: their column matrix must outlive the forward for the
// backward GEMMs.
struct ConvScratch {
  std::vector<float> padded;
  std::vector<float> cols;
};

ConvScratch& conv_scratch() {
  thread_local ConvScratch scratch;
  return scratch;
}

}  // namespace

// ---- arithmetic -------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  require_same_shape(a, b, "add");
  Tensor out = tensor::add(a.value(), b.value());
  return make_op("add", std::move(out), {a, b}, [a, b](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(node.grad());
    if (b.requires_grad()) b.node()->accumulate_grad(node.grad());
  });
}

Variable sub(const Variable& a, const Variable& b) {
  require_same_shape(a, b, "sub");
  Tensor out = tensor::sub(a.value(), b.value());
  return make_op("sub", std::move(out), {a, b}, [a, b](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(node.grad());
    if (b.requires_grad()) b.node()->grad().add_scaled_(node.grad(), -1.0f);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  require_same_shape(a, b, "mul");
  Tensor out = tensor::mul(a.value(), b.value());
  return make_op("mul", std::move(out), {a, b}, [a, b](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(tensor::mul(node.grad(), b.value()));
    if (b.requires_grad()) b.node()->accumulate_grad(tensor::mul(node.grad(), a.value()));
  });
}

Variable add_scalar(const Variable& a, float s) {
  Tensor out = tensor::add_scalar(a.value(), s);
  return make_op("add_scalar", std::move(out), {a}, [a](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(node.grad());
  });
}

Variable mul_scalar(const Variable& a, float s) {
  Tensor out = tensor::mul_scalar(a.value(), s);
  return make_op("mul_scalar", std::move(out), {a}, [a, s](Node& node) mutable {
    if (a.requires_grad()) a.node()->grad().add_scaled_(node.grad(), s);
  });
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.0f); }

Variable mul_const(const Variable& a, const Tensor& c) {
  if (a.value().numel() != c.numel()) {
    throw std::invalid_argument("mul_const: shape mismatch");
  }
  Tensor out = tensor::mul(a.value(), c);
  const Tensor c_copy = c;  // shares storage; constant by convention
  return make_op("mul_const", std::move(out), {a}, [a, c_copy](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(tensor::mul(node.grad(), c_copy));
  });
}

Variable add_const(const Variable& a, const Tensor& c) {
  if (a.value().numel() != c.numel()) {
    throw std::invalid_argument("add_const: shape mismatch");
  }
  Tensor out = tensor::add(a.value(), c);
  return make_op("add_const", std::move(out), {a}, [a](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(node.grad());
  });
}

Variable straight_through(const Variable& a, const Tensor& forward_value) {
  if (a.value().numel() != forward_value.numel()) {
    throw std::invalid_argument("straight_through: shape mismatch");
  }
  // Clone: the caller's tensor must not alias the graph node's value.
  Tensor out = forward_value.clone();
  return make_op("straight_through", std::move(out), {a}, [a](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(node.grad());
  });
}

// ---- shape ------------------------------------------------------------------

Variable reshape(const Variable& a, Shape new_shape) {
  Tensor out = a.value().clone().reshape(new_shape);
  const Shape old_shape = a.shape();
  return make_op("reshape", std::move(out), {a}, [a, old_shape](Node& node) mutable {
    if (a.requires_grad()) a.node()->accumulate_grad(node.grad().reshape(old_shape));
  });
}

Variable flatten2d(const Variable& a) {
  if (a.shape().rank() != 4) throw std::invalid_argument("flatten2d: expected NCHW");
  const auto n = a.shape()[0];
  const Shape flat = Shape::mat(n, a.value().numel() / n);
  if (!grad_enabled() || !a.requires_grad()) {
    // Inference fast path, mirroring the convolution scratch reuse: reshape
    // shares storage, so the classifier head reads the conv output in place
    // instead of deep-copying the whole feature batch every forward.
    return Variable::constant(a.value().reshape(flat));
  }
  return reshape(a, flat);
}

Variable broadcast_batch(const Variable& a, std::int64_t n) {
  if (a.shape().rank() != 4 || a.shape()[0] != 1) {
    throw std::invalid_argument("broadcast_batch: expected [1,C,H,W]");
  }
  const std::int64_t stride = a.value().numel();
  Tensor out(Shape::nchw(n, a.shape()[1], a.shape()[2], a.shape()[3]));
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy(a.value().data(), a.value().data() + stride, out.data() + i * stride);
  }
  return make_op("broadcast_batch", std::move(out), {a}, [a, n, stride](Node& node) mutable {
    if (!a.requires_grad()) return;
    Tensor da(a.value().shape());
    const float* g = node.grad().data();
    float* d = da.data();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < stride; ++j) d[j] += g[i * stride + j];
    }
    a.node()->accumulate_grad(da);
  });
}

Variable repeat_batch(const Variable& a, std::int64_t k) {
  if (a.shape().rank() != 4) throw std::invalid_argument("repeat_batch: expected NCHW");
  if (k < 1) throw std::invalid_argument("repeat_batch: k must be >= 1");
  const std::int64_t stride = a.value().numel();
  Tensor out(Shape::nchw(a.shape()[0] * k, a.shape()[1], a.shape()[2], a.shape()[3]));
  for (std::int64_t j = 0; j < k; ++j) {
    std::copy(a.value().data(), a.value().data() + stride, out.data() + j * stride);
  }
  return make_op("repeat_batch", std::move(out), {a}, [a, k, stride](Node& node) mutable {
    if (!a.requires_grad()) return;
    Tensor da(a.value().shape());
    const float* g = node.grad().data();
    float* d = da.data();
    for (std::int64_t j = 0; j < k; ++j) {
      for (std::int64_t i = 0; i < stride; ++i) d[i] += g[j * stride + i];
    }
    a.node()->accumulate_grad(da);
  });
}

// ---- activations ------------------------------------------------------------

Variable relu(const Variable& a) {
  Tensor out = tensor::relu(a.value());
  if (!grad_enabled() || !a.requires_grad()) {
    // Inference fast path, matching conv2d/dense/flatten2d: skip make_op so
    // the serving forward builds neither a parents vector nor a closure.
    return Variable::constant(std::move(out));
  }
  return make_op("relu", std::move(out), {a}, [a](Node& node) mutable {
    if (!a.requires_grad()) return;
    const Tensor mask = tensor::relu_mask(a.value());
    a.node()->accumulate_grad(tensor::mul(node.grad(), mask));
  });
}

Variable sigmoid(const Variable& a) {
  Tensor out = tensor::apply(a.value(), [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  const Tensor out_copy = out;
  return make_op("sigmoid", std::move(out), {a}, [a, out_copy](Node& node) mutable {
    if (!a.requires_grad()) return;
    Tensor d(out_copy.shape());
    const float* o = out_copy.data();
    const float* g = node.grad().data();
    float* pd = d.data();
    for (std::int64_t i = 0; i < d.numel(); ++i) pd[i] = g[i] * o[i] * (1.0f - o[i]);
    a.node()->accumulate_grad(d);
  });
}

Variable tanh_op(const Variable& a) {
  Tensor out = tensor::apply(a.value(), [](float x) { return std::tanh(x); });
  const Tensor out_copy = out;
  return make_op("tanh", std::move(out), {a}, [a, out_copy](Node& node) mutable {
    if (!a.requires_grad()) return;
    Tensor d(out_copy.shape());
    const float* o = out_copy.data();
    const float* g = node.grad().data();
    float* pd = d.data();
    for (std::int64_t i = 0; i < d.numel(); ++i) pd[i] = g[i] * (1.0f - o[i] * o[i]);
    a.node()->accumulate_grad(d);
  });
}

// ---- linear layers ----------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = tensor::matmul(a.value(), b.value());
  return make_op("matmul", std::move(out), {a, b}, [a, b](Node& node) mutable {
    if (a.requires_grad()) {
      a.node()->accumulate_grad(tensor::matmul_nt(node.grad(), b.value()));
    }
    if (b.requires_grad()) {
      b.node()->accumulate_grad(tensor::matmul_tn(a.value(), node.grad()));
    }
  });
}

Variable dense(const Variable& x, const Variable& w, const Variable& b) {
  const bool needs_grad =
      grad_enabled() && (x.requires_grad() || w.requires_grad() ||
                         (b.defined() && b.requires_grad()));
  // One arithmetic path for both modes, so the inference result is bitwise
  // equal to the graph path by construction.
  auto compute = [&] {
    Tensor out = tensor::matmul(x.value(), w.value());
    if (b.defined()) {
      const std::int64_t m = out.dim(0), n = out.dim(1);
      if (b.value().numel() != n) throw std::invalid_argument("dense: bias size mismatch");
      for (std::int64_t i = 0; i < m; ++i) {
        float* row = out.data() + i * n;
        const float* bias = b.value().data();
        for (std::int64_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    }
    return out;
  };
  if (!needs_grad) {
    // Inference-only path mirroring the conv2d/depthwise fast paths: no graph
    // node is built and the closure never retains x/w/b. Paired with
    // flatten2d's zero-copy fast path, the classifier head adds no autograd
    // allocations to a serving forward.
    return Variable::constant(compute());
  }

  return make_op("dense", compute(), {x, w, b}, [x, w, b](Node& node) mutable {
    const Tensor& g = node.grad();
    if (x.requires_grad()) x.node()->accumulate_grad(tensor::matmul_nt(g, w.value()));
    if (w.requires_grad()) w.node()->accumulate_grad(tensor::matmul_tn(x.value(), g));
    if (b.defined() && b.requires_grad()) {
      const std::int64_t m = g.dim(0), n = g.dim(1);
      Tensor db(Shape::vec(n));
      for (std::int64_t i = 0; i < m; ++i) {
        const float* row = g.data() + i * n;
        for (std::int64_t j = 0; j < n; ++j) db[j] += row[j];
      }
      b.node()->accumulate_grad(db);
    }
  });
}

// ---- convolutions -----------------------------------------------------------

Variable conv2d(const Variable& x, const Variable& w, const Variable& b, int stride,
                int pad) {
  if (x.shape().rank() != 4 || w.shape().rank() != 4) {
    throw std::invalid_argument("conv2d: x must be NCHW, w must be [F,C,kh,kw]");
  }
  const std::int64_t n = x.shape()[0], c = x.shape()[1];
  const std::int64_t f = w.shape()[0];
  const int kh = static_cast<int>(w.shape()[2]);
  const int kw = static_cast<int>(w.shape()[3]);
  if (w.shape()[1] != c) throw std::invalid_argument("conv2d: channel mismatch");
  if (b.defined() && b.value().numel() != f) {
    throw std::invalid_argument("conv2d: bias size mismatch");
  }

  const std::int64_t h = x.shape()[2], wdim = x.shape()[3];
  const std::int64_t hp = h + 2 * pad, wp = wdim + 2 * pad;
  const std::int64_t oh = tensor::conv_out_size(hp, kh, stride);
  const std::int64_t ow = tensor::conv_out_size(wp, kw, stride);
  const std::int64_t patch = c * kh * kw;

  const bool needs_grad =
      grad_enabled() && (x.requires_grad() || w.requires_grad() ||
                         (b.defined() && b.requires_grad()));
  const float* wdata = w.value().data();

  auto add_bias = [&](Tensor& out) {
    if (!b.defined()) return;
    const float* bias = b.value().data();
    for (std::int64_t in = 0; in < n; ++in)
      for (std::int64_t ic = 0; ic < f; ++ic) {
        float* plane = out.data() + (in * f + ic) * oh * ow;
        for (std::int64_t i = 0; i < oh * ow; ++i) plane[i] += bias[ic];
      }
  };
  auto gemm_batch = [&](const float* cols_data, Tensor& out) {
    util::parallel_for(n, [&](std::int64_t n0, std::int64_t n1) {
      for (std::int64_t in = n0; in < n1; ++in) {
        linalg::sgemm_nn(f, oh * ow, patch, wdata, cols_data + in * patch * oh * ow,
                         out.data() + in * f * oh * ow, /*accumulate=*/false);
      }
    }, /*min_chunk=*/1);
  };

  if (!needs_grad) {
    // Inference-only path: no graph is built and the backward GEMMs never
    // run, so the padded/column buffers can live in per-thread scratch
    // instead of being allocated (and retained by the closure) per call.
    auto& scratch = conv_scratch();
    const float* padded = x.value().data();
    if (pad > 0) {
      scratch.padded.resize(static_cast<std::size_t>(n * c * hp * wp));
      tensor::pad2d_into(x.value(), pad, pad, scratch.padded.data());
      padded = scratch.padded.data();
    }
    scratch.cols.resize(static_cast<std::size_t>(n * patch * oh * ow));
    tensor::im2col_into(padded, n, c, hp, wp, kh, kw, stride, stride, scratch.cols.data());
    Tensor out(Shape::nchw(n, f, oh, ow));
    gemm_batch(scratch.cols.data(), out);
    add_bias(out);
    return Variable::constant(std::move(out));
  }

  const Tensor xp = tensor::pad2d(x.value(), pad, pad);
  const Tensor cols = tensor::im2col(xp, kh, kw, stride, stride);  // [n, patch, oh*ow]
  Tensor out(Shape::nchw(n, f, oh, ow));
  gemm_batch(cols.data(), out);
  add_bias(out);

  return make_op(
      "conv2d", std::move(out), {x, w, b},
      [x, w, b, cols, n, c, f, kh, kw, stride, pad, hp, wp, oh, ow, patch](Node& node) mutable {
        const Tensor& g = node.grad();  // [n, f, oh, ow]
        if (w.requires_grad()) {
          // dW[f, patch] accumulates G_in * Cols_in^T across the batch.
          Tensor dw(w.value().shape());
          float* dwp = dw.data();
          for (std::int64_t in = 0; in < n; ++in) {
            linalg::sgemm_nt(f, patch, oh * ow, g.data() + in * f * oh * ow,
                             cols.data() + in * patch * oh * ow, dwp,
                             /*accumulate=*/true);
          }
          w.node()->accumulate_grad(dw);
        }
        if (b.defined() && b.requires_grad()) {
          b.node()->accumulate_grad(tensor::reduce_nhw(g));
        }
        if (x.requires_grad()) {
          Tensor dcols(Shape{n, patch, oh * ow});
          const float* wdata2 = w.value().data();
          util::parallel_for(n, [&](std::int64_t n0, std::int64_t n1) {
            for (std::int64_t in = n0; in < n1; ++in) {
              // dCols_in[patch, oh*ow] = W^T * G_in, W stored [f, patch].
              linalg::sgemm_tn(patch, oh * ow, f, wdata2,
                               g.data() + in * f * oh * ow,
                               dcols.data() + in * patch * oh * ow,
                               /*accumulate=*/false);
            }
          }, /*min_chunk=*/1);
          Tensor dxp = tensor::col2im(dcols, n, c, hp, wp, kh, kw, stride, stride);
          x.node()->accumulate_grad(tensor::unpad2d(dxp, pad, pad));
        }
      });
}

Variable depthwise_conv2d_same(const Variable& x, const Variable& w, const Variable& b) {
  if (x.shape().rank() != 4 || w.shape().rank() != 3) {
    throw std::invalid_argument("depthwise_conv2d_same: x NCHW, w [C,kh,kw]");
  }
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2],
                     wdim = x.shape()[3];
  if (w.shape()[0] != c) throw std::invalid_argument("depthwise_conv2d_same: channel mismatch");
  if (b.defined() && b.value().numel() != c) {
    throw std::invalid_argument("depthwise_conv2d_same: bias size mismatch");
  }
  const int kh = static_cast<int>(w.shape()[1]);
  const int kw = static_cast<int>(w.shape()[2]);
  const int ph = kh / 2, pw = kw / 2;

  const bool needs_grad =
      grad_enabled() && (x.requires_grad() || w.requires_grad() ||
                         (b.defined() && b.requires_grad()));
  if (!needs_grad) {
    // Inference-only path, mirroring the conv2d fast path: pad the input into
    // per-thread scratch once so the tap loops need no border checks. The
    // padding contributes exact ±0.0 terms, which leave every partial sum
    // bitwise unchanged, so this path matches the checked path bit for bit.
    const std::int64_t hp = h + 2 * ph, wp = wdim + 2 * pw;
    auto& scratch = conv_scratch();
    scratch.padded.resize(static_cast<std::size_t>(n * c * hp * wp));
    tensor::pad2d_into(x.value(), ph, pw, scratch.padded.data());
    const float* padded = scratch.padded.data();
    Tensor out(x.shape());
    const float* wv = w.value().data();
    // The per-row tap loop is kernel-dispatched; every target keeps the
    // double accumulator and ascending (fy, fx) tap order, so results are
    // bitwise identical across targets (and to the checked path).
    const kernels::TapRowFn taps =
        kernels::tap_row(util::active_kernel_target());
    util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
      for (std::int64_t p = p0; p < p1; ++p) {
        const std::int64_t ic = p % c;
        const float* src = padded + p * hp * wp;
        const float* ker = wv + ic * kh * kw;
        float* dst = out.data() + p * h * wdim;
        for (std::int64_t y = 0; y < h; ++y) {
          taps(src + y * wp, wp, ker, kh, kw, dst + y * wdim, wdim);
        }
      }
    }, /*min_chunk=*/1);
    if (b.defined()) out = tensor::broadcast_bias_nchw(out, b.value());
    return Variable::constant(std::move(out));
  }

  Tensor out(x.shape());
  const float* xv = x.value().data();
  const float* wv = w.value().data();
  util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t ic = p % c;
      const float* src = xv + p * h * wdim;
      const float* ker = wv + ic * kh * kw;
      float* dst = out.data() + p * h * wdim;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t xx = 0; xx < wdim; ++xx) {
          double acc = 0.0;
          for (int fy = 0; fy < kh; ++fy) {
            const std::int64_t sy = y + fy - ph;
            if (sy < 0 || sy >= h) continue;
            for (int fx = 0; fx < kw; ++fx) {
              const std::int64_t sx = xx + fx - pw;
              if (sx < 0 || sx >= wdim) continue;
              acc += static_cast<double>(ker[fy * kw + fx]) * src[sy * wdim + sx];
            }
          }
          dst[y * wdim + xx] = static_cast<float>(acc);
        }
      }
    }
  }, /*min_chunk=*/1);
  if (b.defined()) {
    out = tensor::broadcast_bias_nchw(out, b.value());
  }

  return make_op(
      "depthwise_conv2d", std::move(out), {x, w, b},
      [x, w, b, n, c, h, wdim, kh, kw, ph, pw](Node& node) mutable {
        const Tensor& g = node.grad();
        if (b.defined() && b.requires_grad()) {
          b.node()->accumulate_grad(tensor::reduce_nhw(g));
        }
        if (w.requires_grad()) {
          Tensor dw(w.value().shape());
          const float* xv = x.value().data();
          for (std::int64_t p = 0; p < n * c; ++p) {
            const std::int64_t ic = p % c;
            const float* src = xv + p * h * wdim;
            const float* gp = g.data() + p * h * wdim;
            float* dker = dw.data() + ic * kh * kw;
            for (int fy = 0; fy < kh; ++fy) {
              for (int fx = 0; fx < kw; ++fx) {
                double acc = 0.0;
                for (std::int64_t y = 0; y < h; ++y) {
                  const std::int64_t sy = y + fy - ph;
                  if (sy < 0 || sy >= h) continue;
                  for (std::int64_t xx = 0; xx < wdim; ++xx) {
                    const std::int64_t sx = xx + fx - pw;
                    if (sx < 0 || sx >= wdim) continue;
                    acc += static_cast<double>(gp[y * wdim + xx]) * src[sy * wdim + sx];
                  }
                }
                dker[fy * kw + fx] += static_cast<float>(acc);
              }
            }
          }
          w.node()->accumulate_grad(dw);
        }
        if (x.requires_grad()) {
          Tensor dx(x.value().shape());
          const float* wv = w.value().data();
          util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
              const std::int64_t ic = p % c;
              const float* ker = wv + ic * kh * kw;
              const float* gp = g.data() + p * h * wdim;
              float* dst = dx.data() + p * h * wdim;
              // Correlation adjoint: scatter each output grad through the kernel.
              for (std::int64_t y = 0; y < h; ++y) {
                for (std::int64_t xx = 0; xx < wdim; ++xx) {
                  const float gv = gp[y * wdim + xx];
                  if (gv == 0.0f) continue;
                  for (int fy = 0; fy < kh; ++fy) {
                    const std::int64_t sy = y + fy - ph;
                    if (sy < 0 || sy >= h) continue;
                    for (int fx = 0; fx < kw; ++fx) {
                      const std::int64_t sx = xx + fx - pw;
                      if (sx < 0 || sx >= wdim) continue;
                      dst[sy * wdim + sx] += ker[fy * kw + fx] * gv;
                    }
                  }
                }
              }
            }
          }, /*min_chunk=*/1);
          x.node()->accumulate_grad(dx);
        }
      });
}

Variable maxpool2d(const Variable& x, int kernel, int stride) {
  if (x.shape().rank() != 4) throw std::invalid_argument("maxpool2d: expected NCHW");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  const std::int64_t oh = tensor::conv_out_size(h, kernel, stride);
  const std::int64_t ow = tensor::conv_out_size(w, kernel, stride);
  Tensor out(Shape::nchw(n, c, oh, ow));
  auto indices = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(out.numel()));
  const float* xv = x.value().data();
  for (std::int64_t p = 0; p < n * c; ++p) {
    const float* src = xv + p * h * w;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int64_t best = (oy * stride) * w + ox * stride;
        float best_v = src[best];
        for (int fy = 0; fy < kernel; ++fy) {
          for (int fx = 0; fx < kernel; ++fx) {
            const std::int64_t idx = (oy * stride + fy) * w + ox * stride + fx;
            if (src[idx] > best_v) {
              best_v = src[idx];
              best = idx;
            }
          }
        }
        const std::int64_t flat = (p * oh + oy) * ow + ox;
        out[flat] = best_v;
        (*indices)[static_cast<std::size_t>(flat)] = p * h * w + best;
      }
    }
  }
  return make_op("maxpool2d", std::move(out), {x}, [x, indices](Node& node) mutable {
    if (!x.requires_grad()) return;
    Tensor dx(x.value().shape());
    const float* g = node.grad().data();
    for (std::size_t i = 0; i < indices->size(); ++i) {
      dx[(*indices)[i]] += g[i];
    }
    x.node()->accumulate_grad(dx);
  });
}

// ---- reductions & norms -------------------------------------------------------

Variable sum(const Variable& a) {
  Tensor out = Tensor::scalar(a.value().sum());
  return make_op("sum", std::move(out), {a}, [a](Node& node) mutable {
    if (!a.requires_grad()) return;
    const float g = node.grad()[0];
    a.node()->accumulate_grad(Tensor::full(a.value().shape(), g));
  });
}

Variable mean(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  Tensor out = Tensor::scalar(a.value().mean());
  return make_op("mean", std::move(out), {a}, [a, inv](Node& node) mutable {
    if (!a.requires_grad()) return;
    const float g = node.grad()[0] * inv;
    a.node()->accumulate_grad(Tensor::full(a.value().shape(), g));
  });
}

Variable sum_squares(const Variable& a) {
  double acc = 0.0;
  const float* p = a.value().data();
  for (std::int64_t i = 0; i < a.value().numel(); ++i) acc += static_cast<double>(p[i]) * p[i];
  Tensor out = Tensor::scalar(static_cast<float>(acc));
  return make_op("sum_squares", std::move(out), {a}, [a](Node& node) mutable {
    if (!a.requires_grad()) return;
    const float g = node.grad()[0];
    a.node()->grad().add_scaled_(a.value(), 2.0f * g);
  });
}

Variable l1_norm(const Variable& a) {
  double acc = 0.0;
  const float* p = a.value().data();
  for (std::int64_t i = 0; i < a.value().numel(); ++i) acc += std::fabs(p[i]);
  Tensor out = Tensor::scalar(static_cast<float>(acc));
  return make_op("l1_norm", std::move(out), {a}, [a](Node& node) mutable {
    if (!a.requires_grad()) return;
    const float g = node.grad()[0];
    a.node()->accumulate_grad(tensor::mul_scalar(tensor::sign(a.value()), g));
  });
}

Variable l2_norm(const Variable& a) {
  const double norm = a.value().l2_norm();
  Tensor out = Tensor::scalar(static_cast<float>(norm));
  return make_op("l2_norm", std::move(out), {a}, [a, norm](Node& node) mutable {
    if (!a.requires_grad()) return;
    const float g = node.grad()[0];
    const float scale = g / static_cast<float>(std::max(norm, 1e-12));
    a.node()->grad().add_scaled_(a.value(), scale);
  });
}

// ---- losses -------------------------------------------------------------------

Variable softmax_cross_entropy(const Variable& logits, const std::vector<int>& labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: logits must be [N,K]");
  }
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  for (int label : labels) {
    if (label < 0 || label >= k) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
  }
  const Tensor log_probs = tensor::log_softmax_rows(logits.value());
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    loss -= log_probs[i * k + labels[static_cast<std::size_t>(i)]];
  }
  loss /= static_cast<double>(n);
  Tensor out = Tensor::scalar(static_cast<float>(loss));
  const auto labels_copy = std::make_shared<std::vector<int>>(labels);
  return make_op("softmax_ce", std::move(out), {logits},
                 [logits, labels_copy, n, k](Node& node) mutable {
                   if (!logits.requires_grad()) return;
                   const float g = node.grad()[0] / static_cast<float>(n);
                   Tensor probs = tensor::softmax_rows(logits.value());
                   for (std::int64_t i = 0; i < n; ++i) {
                     probs[i * k + (*labels_copy)[static_cast<std::size_t>(i)]] -= 1.0f;
                   }
                   probs.scale_(g);
                   logits.node()->accumulate_grad(probs);
                 });
}

Variable tv_loss(const Variable& x) {
  if (x.shape().rank() != 4) throw std::invalid_argument("tv_loss: expected NCHW");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  const float scale = 1.0f / static_cast<float>(n * c);
  const float* xv = x.value().data();
  double acc = 0.0;
  for (std::int64_t p = 0; p < n * c; ++p) {
    const float* plane = xv + p * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t xx = 0; xx < w; ++xx) {
        if (y + 1 < h) acc += std::fabs(plane[(y + 1) * w + xx] - plane[y * w + xx]);
        if (xx + 1 < w) acc += std::fabs(plane[y * w + xx + 1] - plane[y * w + xx]);
      }
    }
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc) * scale);
  return make_op("tv_loss", std::move(out), {x}, [x, n, c, h, w, scale](Node& node) mutable {
    if (!x.requires_grad()) return;
    const float g = node.grad()[0] * scale;
    Tensor dx(x.value().shape());
    const float* xv2 = x.value().data();
    for (std::int64_t p = 0; p < n * c; ++p) {
      const float* plane = xv2 + p * h * w;
      float* dplane = dx.data() + p * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t xx = 0; xx < w; ++xx) {
          if (y + 1 < h) {
            const float d = plane[(y + 1) * w + xx] - plane[y * w + xx];
            const float s = g * (d > 0 ? 1.0f : (d < 0 ? -1.0f : 0.0f));
            dplane[(y + 1) * w + xx] += s;
            dplane[y * w + xx] -= s;
          }
          if (xx + 1 < w) {
            const float d = plane[y * w + xx + 1] - plane[y * w + xx];
            const float s = g * (d > 0 ? 1.0f : (d < 0 ? -1.0f : 0.0f));
            dplane[y * w + xx + 1] += s;
            dplane[y * w + xx] -= s;
          }
        }
      }
    }
    x.node()->accumulate_grad(dx);
  });
}

Variable tikhonov_rows(const Variable& x, const Tensor& l_operator) {
  if (x.shape().rank() != 4) throw std::invalid_argument("tikhonov_rows: expected NCHW");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  if (l_operator.rank() != 2 || l_operator.dim(0) != h || l_operator.dim(1) != h) {
    throw std::invalid_argument("tikhonov_rows: operator must be HxH");
  }
  const float scale = 1.0f / static_cast<float>(n * c);
  const float* lv = l_operator.data();
  const float* xv = x.value().data();
  // G[p] = L * F[p]; loss = scale * sum ||G||^2. Parallelism lands on the
  // coarse plane loop (the per-plane GEMMs are tiny and run nested-inline);
  // each plane's squared sum is stored by index and reduced in plane order,
  // so the total is identical for any worker count.
  Tensor g_all(Shape{n * c, h, w});
  std::vector<double> plane_sq(static_cast<std::size_t>(n * c));
  util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      float* gp = g_all.data() + p * h * w;
      linalg::sgemm_nn(h, w, h, lv, xv + p * h * w, gp, /*accumulate=*/false);
      double sq = 0.0;
      for (std::int64_t i = 0; i < h * w; ++i) sq += static_cast<double>(gp[i]) * gp[i];
      plane_sq[static_cast<std::size_t>(p)] = sq;
    }
  }, /*min_chunk=*/1);
  double acc = 0.0;
  for (const double sq : plane_sq) acc += sq;
  Tensor out = Tensor::scalar(static_cast<float>(acc) * scale);
  const Tensor l_copy = l_operator;
  return make_op("tikhonov_rows", std::move(out), {x},
                 [x, l_copy, g_all, n, c, h, w, scale](Node& node) mutable {
                   if (!x.requires_grad()) return;
                   const float g = node.grad()[0] * 2.0f * scale;
                   // dF = 2*scale * L^T * G
                   Tensor dx(x.value().shape());
                   util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
                     for (std::int64_t p = p0; p < p1; ++p) {
                       linalg::sgemm_tn(h, w, h, l_copy.data(),
                                        g_all.data() + p * h * w,
                                        dx.data() + p * h * w, /*accumulate=*/false);
                     }
                   }, /*min_chunk=*/1);
                   dx.scale_(g);
                   x.node()->accumulate_grad(dx);
                 });
}

Variable tikhonov_elementwise(const Variable& x, const Tensor& p_operator) {
  if (x.shape().rank() != 4) throw std::invalid_argument("tikhonov_elementwise: expected NCHW");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  if (p_operator.numel() != h * w) {
    throw std::invalid_argument("tikhonov_elementwise: operator must be HxW");
  }
  const float scale = 1.0f / static_cast<float>(n * c);
  const float* pv = p_operator.data();
  const float* xv = x.value().data();
  double acc = 0.0;
  for (std::int64_t p = 0; p < n * c; ++p) {
    const float* plane = xv + p * h * w;
    for (std::int64_t i = 0; i < h * w; ++i) {
      const double t = static_cast<double>(pv[i]) * plane[i];
      acc += t * t;
    }
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc) * scale);
  const Tensor p_copy = p_operator;
  return make_op("tikhonov_elem", std::move(out), {x},
                 [x, p_copy, n, c, h, w, scale](Node& node) mutable {
                   if (!x.requires_grad()) return;
                   const float g = node.grad()[0] * 2.0f * scale;
                   Tensor dx(x.value().shape());
                   const float* xv2 = x.value().data();
                   const float* pv2 = p_copy.data();
                   for (std::int64_t p = 0; p < n * c; ++p) {
                     const float* plane = xv2 + p * h * w;
                     float* dplane = dx.data() + p * h * w;
                     for (std::int64_t i = 0; i < h * w; ++i) {
                       dplane[i] = g * pv2[i] * pv2[i] * plane[i];
                     }
                   }
                   x.node()->accumulate_grad(dx);
                 });
}

Variable linf_per_channel(const Variable& w) {
  if (w.shape().rank() != 3) throw std::invalid_argument("linf_per_channel: expected [C,kh,kw]");
  const std::int64_t c = w.shape()[0];
  const std::int64_t plane = w.shape()[1] * w.shape()[2];
  const float* wv = w.value().data();
  auto argmaxes = std::make_shared<std::vector<std::int64_t>>(static_cast<std::size_t>(c));
  double acc = 0.0;
  for (std::int64_t ic = 0; ic < c; ++ic) {
    const float* p = wv + ic * plane;
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < plane; ++i) {
      if (std::fabs(p[i]) > std::fabs(p[best])) best = i;
    }
    (*argmaxes)[static_cast<std::size_t>(ic)] = ic * plane + best;
    acc += std::fabs(p[best]);
  }
  Tensor out = Tensor::scalar(static_cast<float>(acc));
  return make_op("linf_per_channel", std::move(out), {w}, [w, argmaxes](Node& node) mutable {
    if (!w.requires_grad()) return;
    const float g = node.grad()[0];
    Tensor dw(w.value().shape());
    const float* wv2 = w.value().data();
    for (const auto idx : *argmaxes) {
      const float v = wv2[idx];
      dw[idx] += g * (v > 0 ? 1.0f : (v < 0 ? -1.0f : 0.0f));
    }
    w.node()->accumulate_grad(dw);
  });
}

// ---- attack-specific ops --------------------------------------------------------

Affine2D Affine2D::rotation_scale_about_center(double angle_rad, double scale, double dx,
                                               double dy, int height, int width) {
  // Forward model: p_out = s*R(theta)*(p_in - c) + c + t.
  // We need the inverse map (output -> input):
  //   p_in = R(-theta)*(p_out - c - t)/s + c.
  const double cx = (width - 1) / 2.0;
  const double cy = (height - 1) / 2.0;
  const double cos_t = std::cos(angle_rad);
  const double sin_t = std::sin(angle_rad);
  const double inv_s = 1.0 / scale;
  Affine2D a;
  a.m00 = cos_t * inv_s;
  a.m01 = sin_t * inv_s;
  a.m10 = -sin_t * inv_s;
  a.m11 = cos_t * inv_s;
  a.tx = cx - (cos_t * (cx + dx) + sin_t * (cy + dy)) * inv_s;
  a.ty = cy - (-sin_t * (cx + dx) + cos_t * (cy + dy)) * inv_s;
  return a;
}

Variable affine_warp(const Variable& x, const std::vector<Affine2D>& transforms) {
  if (x.shape().rank() != 4) throw std::invalid_argument("affine_warp: expected NCHW");
  const std::int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], w = x.shape()[3];
  if (static_cast<std::int64_t>(transforms.size()) != n) {
    throw std::invalid_argument("affine_warp: need one transform per batch row (" +
                                std::to_string(transforms.size()) + " transforms for batch " +
                                std::to_string(n) + ")");
  }
  Tensor out(x.shape());
  const float* xv = x.value().data();
  // The forward per-row gather+lerp is kernel-dispatched; every target
  // evaluates the inverse map, weights, and tap sum in the same double op
  // order with out-of-bounds taps contributing exact +0, so results are
  // bitwise identical across targets. The backward scatter stays scalar.
  const kernels::WarpRowFn warp =
      kernels::warp_row(util::active_kernel_target());
  for (std::int64_t p = 0; p < n * c; ++p) {
    const Affine2D& t = transforms[static_cast<std::size_t>(p / c)];
    const kernels::WarpCoeffs coeffs{t.m00, t.m01, t.tx, t.m10, t.m11, t.ty};
    const float* src = xv + p * h * w;
    float* dst = out.data() + p * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      warp(src, h, w, coeffs, y, dst + y * w);
    }
  }
  return make_op("affine_warp", std::move(out), {x},
                 [x, transforms, n, c, h, w](Node& node) mutable {
    if (!x.requires_grad()) return;
    Tensor dx(x.value().shape());
    const float* g = node.grad().data();
    for (std::int64_t p = 0; p < n * c; ++p) {
      const Affine2D& t = transforms[static_cast<std::size_t>(p / c)];
      const float* gp = g + p * h * w;
      float* dst = dx.data() + p * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t xx = 0; xx < w; ++xx) {
          const float gv = gp[y * w + xx];
          if (gv == 0.0f) continue;
          const double in_x = t.m00 * xx + t.m01 * y + t.tx;
          const double in_y = t.m10 * xx + t.m11 * y + t.ty;
          const std::int64_t x0 = static_cast<std::int64_t>(std::floor(in_x));
          const std::int64_t y0 = static_cast<std::int64_t>(std::floor(in_y));
          const double fx = in_x - x0;
          const double fy = in_y - y0;
          for (int dyi = 0; dyi <= 1; ++dyi) {
            const std::int64_t sy = y0 + dyi;
            if (sy < 0 || sy >= h) continue;
            const double wy = dyi ? fy : 1.0 - fy;
            for (int dxi = 0; dxi <= 1; ++dxi) {
              const std::int64_t sx = x0 + dxi;
              if (sx < 0 || sx >= w) continue;
              const double wx = dxi ? fx : 1.0 - fx;
              dst[sy * w + sx] += static_cast<float>(wy * wx * gv);
            }
          }
        }
      }
    }
    x.node()->accumulate_grad(dx);
  });
}

Variable affine_warp(const Variable& x, const Affine2D& t) {
  if (x.shape().rank() != 4) throw std::invalid_argument("affine_warp: expected NCHW");
  // Same taps, same arithmetic: one transform for every row is bitwise
  // identical to the per-sample path with n equal transforms.
  return affine_warp(x, std::vector<Affine2D>(static_cast<std::size_t>(x.shape()[0]), t));
}

Variable dct_lowpass(const Variable& x, int dim) {
  if (x.shape().rank() != 4) throw std::invalid_argument("dct_lowpass: expected NCHW");
  Tensor out = signal::dct_lowpass_nchw(x.value(), dim);
  return make_op("dct_lowpass", std::move(out), {x}, [x, dim](Node& node) mutable {
    if (!x.requires_grad()) return;
    // Orthonormal projection => self-adjoint: the adjoint is the projection
    // itself applied to the upstream gradient.
    x.node()->accumulate_grad(signal::dct_lowpass_nchw(node.grad(), dim));
  });
}

Variable nps_loss(const Variable& x, const Tensor& palette) {
  if (x.shape().rank() != 4 || x.shape()[1] != 3) {
    throw std::invalid_argument("nps_loss: expected [N,3,H,W]");
  }
  if (palette.rank() != 2 || palette.dim(1) != 3 || palette.dim(0) < 1) {
    throw std::invalid_argument("nps_loss: palette must be [P,3]");
  }
  const std::int64_t n = x.shape()[0], h = x.shape()[2], w = x.shape()[3];
  const std::int64_t plane = h * w;
  const std::int64_t num_colors = palette.dim(0);
  const float* xv = x.value().data();
  const float* pv = palette.data();
  double acc = 0.0;
  for (std::int64_t in = 0; in < n; ++in) {
    const float* r = xv + (in * 3 + 0) * plane;
    const float* g = xv + (in * 3 + 1) * plane;
    const float* b = xv + (in * 3 + 2) * plane;
    for (std::int64_t i = 0; i < plane; ++i) {
      double prod = 1.0;
      for (std::int64_t j = 0; j < num_colors; ++j) {
        const double d = (std::fabs(r[i] - pv[j * 3 + 0]) + std::fabs(g[i] - pv[j * 3 + 1]) +
                          std::fabs(b[i] - pv[j * 3 + 2])) /
                         3.0;
        prod *= d;
      }
      acc += prod;
    }
  }
  const double inv_count = 1.0 / static_cast<double>(n * plane);
  Tensor out = Tensor::scalar(static_cast<float>(acc * inv_count));
  const Tensor pal = palette;
  return make_op("nps_loss", std::move(out), {x},
                 [x, pal, n, h, w, plane, num_colors, inv_count](Node& node) mutable {
                   if (!x.requires_grad()) return;
                   const double gscale = static_cast<double>(node.grad()[0]) * inv_count;
                   Tensor dx(x.value().shape());
                   const float* xv2 = x.value().data();
                   const float* pv2 = pal.data();
                   std::vector<double> dist(static_cast<std::size_t>(num_colors));
                   for (std::int64_t in = 0; in < n; ++in) {
                     const float* chan[3] = {xv2 + (in * 3 + 0) * plane,
                                             xv2 + (in * 3 + 1) * plane,
                                             xv2 + (in * 3 + 2) * plane};
                     float* dchan[3] = {dx.data() + (in * 3 + 0) * plane,
                                        dx.data() + (in * 3 + 1) * plane,
                                        dx.data() + (in * 3 + 2) * plane};
                     for (std::int64_t i = 0; i < plane; ++i) {
                       for (std::int64_t j = 0; j < num_colors; ++j) {
                         dist[static_cast<std::size_t>(j)] =
                             (std::fabs(chan[0][i] - pv2[j * 3 + 0]) +
                              std::fabs(chan[1][i] - pv2[j * 3 + 1]) +
                              std::fabs(chan[2][i] - pv2[j * 3 + 2])) /
                             3.0;
                       }
                       // prod_except[j] = prod_{k != j} dist[k], via prefix/suffix.
                       for (std::int64_t j = 0; j < num_colors; ++j) {
                         double prod_except = 1.0;
                         for (std::int64_t k = 0; k < num_colors; ++k) {
                           if (k != j) prod_except *= dist[static_cast<std::size_t>(k)];
                         }
                         for (int ch = 0; ch < 3; ++ch) {
                           const double diff = chan[ch][i] - pv2[j * 3 + ch];
                           const double s = diff > 0 ? 1.0 : (diff < 0 ? -1.0 : 0.0);
                           dchan[ch][i] += static_cast<float>(gscale * prod_except * s / 3.0);
                         }
                       }
                     }
                   }
                   x.node()->accumulate_grad(dx);
                 });
}

}  // namespace blurnet::autograd
