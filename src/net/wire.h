// blurnetd wire protocol: a dependency-free, length-prefixed binary framing
// for serving the InferenceEngine over TCP.
//
// Every message is one frame — a fixed 16-byte header followed by an opcode-
// specific payload:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic          0x544E4C42 ("BLNT", little-endian)
//        4     1  version        protocol version, currently 1
//        5     1  opcode         Opcode below
//        6     2  reserved       must be zero in version 1
//        8     4  request id     caller-chosen correlation id, echoed back
//       12     4  payload bytes  length of the payload that follows
//
// All integers are little-endian on the wire; float32 values travel as their
// IEEE-754 bit pattern in a little-endian u32, so a payload round-trip is
// bitwise exact — the loopback server path can (and is tested to) reproduce
// in-process classify() results bit for bit. Encoders and decoders assemble
// bytes explicitly, so the codec works on any host byte order.
//
// Request opcodes (client → server): kClassify (one CHW image), kClassifyBatch
// (an NCHW batch), kStats, kPing. Response opcodes (server → client) mirror
// them with the high bit set; kErrorResponse carries a typed error frame
// (ErrorCode + message) which the client library rethrows as the matching C++
// exception — serve::OverloadError for sheds, std::invalid_argument for
// validation failures, ShuttingDownError during server drain.
//
// Responses carry the request's id and may interleave across opcodes on one
// connection; classify responses for a connection always come back in
// submission order (the server harvests futures FIFO per connection), so a
// pipelined client can keep many requests in flight and match replies by id.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/serve/engine.h"
#include "src/serve/replica.h"
#include "src/tensor/tensor.h"

namespace blurnet::net {

inline constexpr std::uint32_t kMagic = 0x544E4C42;  // "BLNT"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
/// Default bound on a single frame (header + payload). Large enough for a
/// 64-image NCHW batch of 3x32x32 floats with room to spare; small enough
/// that a hostile length prefix cannot balloon a connection's buffer.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{16} << 20;

enum class Opcode : std::uint8_t {
  kClassify = 0x01,       // payload: ClassifyRequest, single CHW image
  kClassifyBatch = 0x02,  // payload: ClassifyRequest, NCHW batch
  kStats = 0x03,          // payload: empty
  kPing = 0x04,           // payload: empty

  kClassifyResponse = 0x81,       // payload: one Prediction
  kClassifyBatchResponse = 0x82,  // payload: N Predictions
  kStatsResponse = 0x83,          // payload: ServerStats
  kPongResponse = 0x84,           // payload: empty
  kErrorResponse = 0xFF,          // payload: ErrorFrame
};

const char* to_string(Opcode opcode);
bool is_request_opcode(Opcode opcode);
bool is_known_opcode(std::uint8_t raw);
/// The response opcode paired with a request opcode (kPing → kPongResponse).
Opcode response_for(Opcode request);

enum class ErrorCode : std::uint16_t {
  kInvalidRequest = 1,  // validation/decode failure; connection stays usable
  kOverload = 2,        // engine queue full — the request was shed
  kShuttingDown = 3,    // server is draining; no new work accepted
  kInternal = 4,        // unexpected server-side failure
};

const char* to_string(ErrorCode code);

/// Framing/protocol violations: bad magic, unknown version or opcode,
/// oversized length prefix, truncated or trailing payload bytes.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The server is draining: it replied with ErrorCode::kShuttingDown.
struct ShuttingDownError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The server replied with ErrorCode::kInternal.
struct RemoteError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---- payload scribes --------------------------------------------------------

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f32(float v);
  void put_f64(double v);
  /// u16 length prefix + raw bytes. Throws WireError past 65535 bytes.
  void put_string(const std::string& s);

  std::vector<std::uint8_t>& bytes() { return out_; }
  const std::vector<std::uint8_t>& bytes() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian payload reader. Every overrun throws
/// WireError naming the field being read.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t get_u8(const char* field);
  std::uint16_t get_u16(const char* field);
  std::uint32_t get_u32(const char* field);
  std::uint64_t get_u64(const char* field);
  std::int64_t get_i64(const char* field) { return static_cast<std::int64_t>(get_u64(field)); }
  float get_f32(const char* field);
  double get_f64(const char* field);
  std::string get_string(const char* field);

  std::size_t remaining() const { return size_ - cursor_; }
  /// Reject trailing garbage: decoders call this once the payload is parsed.
  void expect_end(const char* what) const;

 private:
  const std::uint8_t* need(std::size_t n, const char* field);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

// ---- typed payloads ---------------------------------------------------------

/// kClassify / kClassifyBatch payload: routing options plus the image bytes.
struct ClassifyRequest {
  std::string variant = serve::kBaseVariant;
  std::int32_t max_batch = 0;  // 0 = engine default
  tensor::Tensor images;       // CHW (kClassify) or NCHW (kClassifyBatch)
};

std::vector<std::uint8_t> encode_classify_request(const ClassifyRequest& request, bool batch);
ClassifyRequest decode_classify_request(const std::uint8_t* data, std::size_t size, bool batch);

std::vector<std::uint8_t> encode_predictions(const std::vector<serve::Prediction>& predictions,
                                             bool batch);
std::vector<serve::Prediction> decode_predictions(const std::uint8_t* data, std::size_t size,
                                                  bool batch);

/// kErrorResponse payload.
struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

std::vector<std::uint8_t> encode_error(const ErrorFrame& error);
ErrorFrame decode_error(const std::uint8_t* data, std::size_t size);

/// Rethrow a decoded error frame as its typed C++ exception: kOverload →
/// serve::OverloadError, kInvalidRequest → std::invalid_argument,
/// kShuttingDown → ShuttingDownError, kInternal → RemoteError.
[[noreturn]] void throw_error(const ErrorFrame& error);

// ---- server stats snapshot --------------------------------------------------

/// Per-variant serving counters as reported by the Stats opcode. One entry per
/// registered variant *name* (aliases included), sourced from
/// InferenceEngine::variant_names() + variant_stats().
struct WireVariantStats {
  std::string variant;
  std::int64_t replicas = 0;
  std::int64_t requests = 0;  // images served through the submit() queue
  std::int64_t images = 0;    // images through classify*/submit in total
  std::int64_t rejected = 0;
  std::int64_t blocked = 0;
  std::int64_t queue_depth = 0;
  std::int64_t queue_peak = 0;
  std::int64_t latency_count = 0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
};

/// Per-connection counters (open connections at snapshot time).
struct WireConnectionStats {
  std::uint64_t id = 0;
  std::int64_t frames_in = 0;
  std::int64_t requests = 0;   // classify images admitted from this connection
  std::int64_t responses = 0;  // frames queued back to this connection
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
};

/// The Stats opcode's response (also Server::stats() locally): per-opcode and
/// per-connection counters alongside the engine's per-variant serving stats.
struct ServerStats {
  std::int64_t accepted = 0;           // connections ever accepted
  std::int64_t open_connections = 0;   // currently open
  std::int64_t frames_in = 0;          // well-formed frames decoded
  std::int64_t frames_out = 0;         // frames queued for write
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  std::int64_t classify = 0;           // kClassify frames handled
  std::int64_t classify_batch = 0;     // kClassifyBatch frames handled
  std::int64_t stats = 0;              // kStats frames handled
  std::int64_t ping = 0;               // kPing frames handled
  std::int64_t errors_sent = 0;        // kErrorResponse frames queued
  std::int64_t protocol_errors = 0;    // framing violations (connection closed)
  std::int64_t overloads = 0;          // requests shed with ErrorCode::kOverload
  std::int64_t shutdown_rejected = 0;  // requests refused during drain
  std::vector<WireVariantStats> variants;
  std::vector<WireConnectionStats> connections;
};

std::vector<std::uint8_t> encode_stats(const ServerStats& stats);
ServerStats decode_stats(const std::uint8_t* data, std::size_t size);

}  // namespace blurnet::net
