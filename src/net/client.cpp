#include "src/net/client.h"

#include <utility>

namespace blurnet::net {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
}  // namespace

Client::Client(const std::string& host, std::uint16_t port, std::size_t max_frame_bytes)
    : socket_(tcp_connect(host, port)), decoder_(max_frame_bytes) {}

std::uint32_t Client::send_frame(Opcode opcode, const std::vector<std::uint8_t>& payload) {
  std::lock_guard<util::DebugMutex> lock(send_mutex_);
  if (!socket_.is_open()) {
    throw SocketError("Client: connection is closed");
  }
  const std::uint32_t request_id = next_request_id_++;
  if (next_request_id_ == 0) next_request_id_ = 1;  // id 0 is the connection-fatal sentinel
  const std::vector<std::uint8_t> frame = encode_frame(opcode, request_id, payload);
  write_all(socket_.fd(), frame.data(), frame.size());
  return request_id;
}

Frame Client::receive_frame(std::uint32_t request_id, Opcode expected) {
  std::unique_lock<util::DebugMutex> lock(receive_mutex_);
  for (;;) {
    const auto stashed = stash_.find(request_id);
    Frame frame;
    if (stashed != stash_.end()) {
      frame = std::move(stashed->second);
      stash_.erase(stashed);
    } else {
      if (!socket_.is_open()) {
        throw SocketError("Client: connection is closed");
      }
      std::uint8_t chunk[kReadChunk];
      if (!decoder_.next(frame)) {
        const std::size_t got = read_some(socket_.fd(), chunk, sizeof(chunk));
        if (got == 0) {
          throw SocketError("Client: server closed the connection while a response for request " +
                            std::to_string(request_id) + " was pending");
        }
        decoder_.feed(chunk, got);
        continue;
      }
      if (frame.request_id != request_id) {
        // An error frame with id 0 is connection-fatal (framing violation on
        // our side) — surface it to whoever is reading, immediately.
        if (frame.opcode == Opcode::kErrorResponse && frame.request_id == 0) {
          throw_error(decode_error(frame.payload.data(), frame.payload.size()));
        }
        stash_[frame.request_id] = std::move(frame);
        continue;
      }
    }
    if (frame.opcode == Opcode::kErrorResponse) {
      throw_error(decode_error(frame.payload.data(), frame.payload.size()));
    }
    if (frame.opcode != expected) {
      throw WireError(std::string("Client: expected ") + to_string(expected) + " for request " +
                      std::to_string(request_id) + " but received " + to_string(frame.opcode));
    }
    return frame;
  }
}

std::uint32_t Client::send_classify(const tensor::Tensor& image, const std::string& variant,
                                    std::int32_t max_batch) {
  ClassifyRequest request{variant, max_batch, image};
  return send_frame(Opcode::kClassify, encode_classify_request(request, /*batch=*/false));
}

std::uint32_t Client::send_classify_batch(const tensor::Tensor& images, const std::string& variant,
                                          std::int32_t max_batch) {
  ClassifyRequest request{variant, max_batch, images};
  return send_frame(Opcode::kClassifyBatch, encode_classify_request(request, /*batch=*/true));
}

serve::Prediction Client::receive_classify(std::uint32_t request_id) {
  const Frame frame = receive_frame(request_id, Opcode::kClassifyResponse);
  return decode_predictions(frame.payload.data(), frame.payload.size(), /*batch=*/false).front();
}

std::vector<serve::Prediction> Client::receive_classify_batch(std::uint32_t request_id) {
  const Frame frame = receive_frame(request_id, Opcode::kClassifyBatchResponse);
  return decode_predictions(frame.payload.data(), frame.payload.size(), /*batch=*/true);
}

serve::Prediction Client::classify(const tensor::Tensor& image, const std::string& variant,
                                   std::int32_t max_batch) {
  return receive_classify(send_classify(image, variant, max_batch));
}

std::vector<serve::Prediction> Client::classify_batch(const tensor::Tensor& images,
                                                      const std::string& variant,
                                                      std::int32_t max_batch) {
  return receive_classify_batch(send_classify_batch(images, variant, max_batch));
}

void Client::ping() {
  const std::uint32_t request_id = send_frame(Opcode::kPing, {});
  receive_frame(request_id, Opcode::kPongResponse);
}

ServerStats Client::stats() {
  const std::uint32_t request_id = send_frame(Opcode::kStats, {});
  const Frame frame = receive_frame(request_id, Opcode::kStatsResponse);
  return decode_stats(frame.payload.data(), frame.payload.size());
}

void Client::close() {
  std::lock_guard<util::DebugMutex> send_lock(send_mutex_);
  socket_.close();
}

}  // namespace blurnet::net
