// Frame codec for the blurnetd wire protocol (see wire.h for the layout).
//
// FrameDecoder is the read side: a byte-stream reassembler fed arbitrary
// chunks (whatever recv() returned — single bytes, half a header, three frames
// at once) that yields complete validated frames. It enforces the protocol
// invariants at the framing layer, before any payload decoding runs:
//
//   * magic must match (catches a non-blurnet peer immediately),
//   * version must be kVersion,
//   * the reserved header bytes must be zero,
//   * the opcode must be known, and
//   * the length prefix must not exceed the configured frame bound — a
//     hostile or corrupt length can therefore never balloon the buffer.
//
// Violations throw WireError; a framing error is not recoverable (byte
// alignment is lost), so the server closes the connection after reporting it.
//
// encode_frame / append_frame are the write side: header assembly around an
// already-encoded payload. append_frame writes into an existing buffer so the
// server's per-connection outbox can batch frames into one send().
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/wire.h"

namespace blurnet::net {

/// One complete, validated frame.
struct Frame {
  Opcode opcode = Opcode::kPing;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Header + payload as one contiguous byte vector.
std::vector<std::uint8_t> encode_frame(Opcode opcode, std::uint32_t request_id,
                                       const std::vector<std::uint8_t>& payload);
/// Append header + payload to `out` (the outbox form of encode_frame).
void append_frame(std::vector<std::uint8_t>& out, Opcode opcode, std::uint32_t request_id,
                  const std::vector<std::uint8_t>& payload);

class FrameDecoder {
 public:
  /// `max_frame_bytes` bounds header + payload of any single frame.
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Buffer `n` more bytes of the stream.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extract the next complete frame into `out`. Returns false when the
  /// buffered bytes do not yet hold a full frame. Throws WireError on any
  /// protocol violation (bad magic/version/reserved/opcode, oversized length).
  bool next(Frame& out);

  /// Bytes buffered but not yet consumed (mid-frame partial data).
  std::size_t buffered() const { return buffer_.size() - offset_; }

  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  const std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  // consumed prefix; compacted once it grows
};

}  // namespace blurnet::net
