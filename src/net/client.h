// Blocking client for the blurnetd wire protocol, with pipelining.
//
// The simple calls — classify(), classify_batch(), ping(), stats() — send one
// request and block until its response frame arrives. The split send_* /
// receive_* pairs pipeline: send_classify() returns immediately with the
// request id it put on the wire, so a caller can keep many requests in flight
// on one connection and collect responses later in any order —
// receive_classify(id) stashes frames for other ids until their owner asks.
// The open-loop load generator drives the server exactly this way.
//
// Error frames become the typed C++ exceptions the in-process engine throws
// (see wire.h throw_error): a shed request surfaces as serve::OverloadError, a
// validation failure as std::invalid_argument, a draining server as
// ShuttingDownError — so a caller can swap `engine.submit(...)` for a Client
// without changing its error handling.
//
// Thread-safety: one sender and one receiver may run concurrently (sends and
// receives take separate locks, matching the socket's full-duplex nature), but
// multiple concurrent senders or receivers serialize on those locks. The load
// generator gives each worker its own Client instead.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/util/lockdep.h"
#include "src/net/wire.h"
#include "src/serve/replica.h"
#include "src/tensor/tensor.h"

namespace blurnet::net {

class Client {
 public:
  /// Connect to a blurnetd server. Throws SocketError when nothing listens.
  Client(const std::string& host, std::uint16_t port,
         std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- blocking convenience calls -------------------------------------------

  /// Classify one CHW image; blocks for the prediction. `max_batch` 0 uses the
  /// engine default.
  serve::Prediction classify(const tensor::Tensor& image,
                             const std::string& variant = serve::kBaseVariant,
                             std::int32_t max_batch = 0);
  /// Classify an NCHW batch; blocks for all predictions, in input order.
  std::vector<serve::Prediction> classify_batch(const tensor::Tensor& images,
                                                const std::string& variant = serve::kBaseVariant,
                                                std::int32_t max_batch = 0);
  /// Round-trip a ping frame (connectivity / liveness check).
  void ping();
  /// Fetch the server's counter snapshot.
  ServerStats stats();

  // ---- pipelined calls ------------------------------------------------------

  /// Put a classify request on the wire and return its request id without
  /// waiting. Collect the prediction later with receive_classify(id).
  std::uint32_t send_classify(const tensor::Tensor& image,
                              const std::string& variant = serve::kBaseVariant,
                              std::int32_t max_batch = 0);
  std::uint32_t send_classify_batch(const tensor::Tensor& images,
                                    const std::string& variant = serve::kBaseVariant,
                                    std::int32_t max_batch = 0);
  /// Block until the response for `request_id` arrives (frames for other ids
  /// are stashed for their own receive_* calls). Throws the typed exception if
  /// the server answered with an error frame.
  serve::Prediction receive_classify(std::uint32_t request_id);
  std::vector<serve::Prediction> receive_classify_batch(std::uint32_t request_id);

  /// Close the connection. Further calls throw. Idempotent.
  void close();
  bool is_open() const { return socket_.is_open(); }

 private:
  std::uint32_t send_frame(Opcode opcode, const std::vector<std::uint8_t>& payload);
  /// Block until the frame for `request_id` is available; expects
  /// `expected` (or an error frame, which throws).
  Frame receive_frame(std::uint32_t request_id, Opcode expected);

  Socket socket_;
  FrameDecoder decoder_;

  // serializes writes (frame bytes must not interleave)
  util::DebugMutex send_mutex_ BLURNET_LOCK_CLASS("net::Client::send");
  std::uint32_t next_request_id_ = 1;

  // serializes reads + guards the stash
  util::DebugMutex receive_mutex_ BLURNET_LOCK_CLASS("net::Client::receive");
  std::map<std::uint32_t, Frame> stash_;  // frames read while waiting for another id
};

}  // namespace blurnet::net
