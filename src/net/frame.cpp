#include "src/net/frame.h"

#include <stdexcept>
#include <string>

namespace blurnet::net {

namespace {

void put_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint16_t read_u16_le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, Opcode opcode, std::uint32_t request_id,
                  const std::vector<std::uint8_t>& payload) {
  if (payload.size() > 0xFFFFFFFFu) {
    throw WireError("append_frame: payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the u32 length prefix");
  }
  out.reserve(out.size() + kHeaderBytes + payload.size());
  put_u32_le(out, kMagic);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(opcode));
  put_u16_le(out, 0);  // reserved, zero in version 1
  put_u32_le(out, request_id);
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_frame(Opcode opcode, std::uint32_t request_id,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  append_frame(out, opcode, request_id, payload);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {
  if (max_frame_bytes_ < kHeaderBytes) {
    throw std::invalid_argument("FrameDecoder: max_frame_bytes must be >= the " +
                                std::to_string(kHeaderBytes) + "-byte header (got " +
                                std::to_string(max_frame_bytes_) + ")");
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Compact lazily: once the consumed prefix dominates, slide the tail down
  // so the buffer never grows past (one frame + one read chunk).
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

bool FrameDecoder::next(Frame& out) {
  if (buffered() < kHeaderBytes) return false;
  const std::uint8_t* header = buffer_.data() + offset_;

  const std::uint32_t magic = read_u32_le(header);
  if (magic != kMagic) {
    throw WireError("frame: bad magic 0x" + [magic] {
      static const char* digits = "0123456789abcdef";
      std::string hex;
      for (int shift = 28; shift >= 0; shift -= 4) hex += digits[(magic >> shift) & 0xF];
      return hex;
    }() + " (expected 0x544e4c42 \"BLNT\" — is the peer speaking the blurnetd protocol?)");
  }
  const std::uint8_t version = header[4];
  if (version != kVersion) {
    throw WireError("frame: unsupported protocol version " + std::to_string(version) +
                    " (this build speaks version " + std::to_string(kVersion) + ")");
  }
  const std::uint8_t raw_opcode = header[5];
  if (!is_known_opcode(raw_opcode)) {
    throw WireError("frame: unknown opcode " + std::to_string(raw_opcode));
  }
  if (read_u16_le(header + 6) != 0) {
    throw WireError("frame: reserved header bytes must be zero in version 1");
  }
  const std::uint32_t request_id = read_u32_le(header + 8);
  const std::uint32_t payload_bytes = read_u32_le(header + 12);
  if (kHeaderBytes + static_cast<std::size_t>(payload_bytes) > max_frame_bytes_) {
    throw WireError("frame: length prefix of " + std::to_string(payload_bytes) +
                    " payload bytes exceeds the " + std::to_string(max_frame_bytes_) +
                    "-byte frame bound");
  }
  if (buffered() < kHeaderBytes + payload_bytes) return false;  // mid-frame

  out.opcode = static_cast<Opcode>(raw_opcode);
  out.request_id = request_id;
  const std::uint8_t* payload = header + kHeaderBytes;
  out.payload.assign(payload, payload + payload_bytes);
  offset_ += kHeaderBytes + payload_bytes;
  return true;
}

}  // namespace blurnet::net
