#include "src/net/wire.h"

#include <cstring>

namespace blurnet::net {

using tensor::Shape;
using tensor::Tensor;

const char* to_string(Opcode opcode) {
  switch (opcode) {
    case Opcode::kClassify: return "classify";
    case Opcode::kClassifyBatch: return "classify_batch";
    case Opcode::kStats: return "stats";
    case Opcode::kPing: return "ping";
    case Opcode::kClassifyResponse: return "classify_response";
    case Opcode::kClassifyBatchResponse: return "classify_batch_response";
    case Opcode::kStatsResponse: return "stats_response";
    case Opcode::kPongResponse: return "pong";
    case Opcode::kErrorResponse: return "error";
  }
  return "?";
}

bool is_request_opcode(Opcode opcode) {
  switch (opcode) {
    case Opcode::kClassify:
    case Opcode::kClassifyBatch:
    case Opcode::kStats:
    case Opcode::kPing:
      return true;
    default:
      return false;
  }
}

bool is_known_opcode(std::uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kClassify:
    case Opcode::kClassifyBatch:
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kClassifyResponse:
    case Opcode::kClassifyBatchResponse:
    case Opcode::kStatsResponse:
    case Opcode::kPongResponse:
    case Opcode::kErrorResponse:
      return true;
  }
  return false;
}

Opcode response_for(Opcode request) {
  switch (request) {
    case Opcode::kClassify: return Opcode::kClassifyResponse;
    case Opcode::kClassifyBatch: return Opcode::kClassifyBatchResponse;
    case Opcode::kStats: return Opcode::kStatsResponse;
    case Opcode::kPing: return Opcode::kPongResponse;
    default:
      throw WireError(std::string("response_for: ") + to_string(request) +
                      " is not a request opcode");
  }
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

// ---- WireWriter -------------------------------------------------------------

void WireWriter::put_u8(std::uint8_t v) { out_.push_back(v); }

void WireWriter::put_u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::put_u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void WireWriter::put_u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void WireWriter::put_f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(bits);
}

void WireWriter::put_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void WireWriter::put_string(const std::string& s) {
  if (s.size() > 0xFFFF) {
    throw WireError("WireWriter: string of " + std::to_string(s.size()) +
                    " bytes exceeds the u16 length prefix");
  }
  put_u16(static_cast<std::uint16_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

// ---- WireReader -------------------------------------------------------------

const std::uint8_t* WireReader::need(std::size_t n, const char* field) {
  if (size_ - cursor_ < n) {
    throw WireError(std::string("payload truncated reading ") + field + " (need " +
                    std::to_string(n) + " bytes, have " + std::to_string(size_ - cursor_) +
                    ")");
  }
  const std::uint8_t* at = data_ + cursor_;
  cursor_ += n;
  return at;
}

std::uint8_t WireReader::get_u8(const char* field) { return *need(1, field); }

std::uint16_t WireReader::get_u16(const char* field) {
  const std::uint8_t* p = need(2, field);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::get_u32(const char* field) {
  const std::uint8_t* p = need(4, field);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::get_u64(const char* field) {
  const std::uint8_t* p = need(8, field);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

float WireReader::get_f32(const char* field) {
  const std::uint32_t bits = get_u32(field);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double WireReader::get_f64(const char* field) {
  const std::uint64_t bits = get_u64(field);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::get_string(const char* field) {
  const std::uint16_t n = get_u16(field);
  const std::uint8_t* p = need(n, field);
  return std::string(reinterpret_cast<const char*>(p), n);
}

void WireReader::expect_end(const char* what) const {
  if (cursor_ != size_) {
    throw WireError(std::string(what) + ": " + std::to_string(size_ - cursor_) +
                    " trailing payload bytes after a complete message");
  }
}

// ---- classify payloads ------------------------------------------------------

std::vector<std::uint8_t> encode_classify_request(const ClassifyRequest& request, bool batch) {
  const Tensor& images = request.images;
  const int want_rank = batch ? 4 : 3;
  if (images.rank() != want_rank) {
    throw WireError(std::string("encode_classify_request: expected rank ") +
                    std::to_string(want_rank) + (batch ? " (NCHW batch)" : " (CHW image)") +
                    ", got shape " + images.shape().to_string());
  }
  WireWriter w;
  w.put_string(request.variant);
  w.put_u32(static_cast<std::uint32_t>(request.max_batch));
  std::int64_t n = 1;
  int axis = 0;
  if (batch) {
    n = images.dim(0);
    w.put_u32(static_cast<std::uint32_t>(n));
    axis = 1;
  }
  for (int d = 0; d < 3; ++d) {
    const std::int64_t dim = images.dim(axis + d);
    if (dim < 1 || dim > 0xFFFF) {
      throw WireError("encode_classify_request: dimension " + std::to_string(dim) +
                      " does not fit the u16 wire field (shape " +
                      images.shape().to_string() + ")");
    }
    w.put_u16(static_cast<std::uint16_t>(dim));
  }
  const std::int64_t numel = images.numel();
  for (std::int64_t i = 0; i < numel; ++i) w.put_f32(images.data()[i]);
  return std::move(w.bytes());
}

ClassifyRequest decode_classify_request(const std::uint8_t* data, std::size_t size,
                                        bool batch) {
  WireReader r(data, size);
  ClassifyRequest request;
  request.variant = r.get_string("variant");
  request.max_batch = static_cast<std::int32_t>(r.get_u32("max_batch"));
  std::int64_t n = 1;
  if (batch) n = static_cast<std::int64_t>(r.get_u32("batch size"));
  const std::int64_t c = r.get_u16("channels");
  const std::int64_t h = r.get_u16("height");
  const std::int64_t w = r.get_u16("width");
  if (n < 1 || c < 1 || h < 1 || w < 1) {
    throw WireError("decode_classify_request: non-positive image dimensions (n=" +
                    std::to_string(n) + ", c=" + std::to_string(c) + ", h=" +
                    std::to_string(h) + ", w=" + std::to_string(w) + ")");
  }
  // n is a raw u32 and c/h/w raw u16s: forming n*c*h*w directly can overflow
  // even int64 (and a product that wraps to match the payload size would
  // drive a gigantic Tensor allocation). Bound n against what the payload
  // could possibly hold before multiplying — c*h*w itself is safe, three
  // u16 factors stay far below 2^63.
  const std::int64_t per_image = c * h * w;
  const std::size_t per_image_bytes = static_cast<std::size_t>(per_image) * 4;
  if (static_cast<std::uint64_t>(n) > r.remaining() / per_image_bytes) {
    throw WireError("decode_classify_request: batch of " + std::to_string(n) + " " +
                    std::to_string(c) + "x" + std::to_string(h) + "x" + std::to_string(w) +
                    " images cannot fit the " + std::to_string(r.remaining()) +
                    " payload bytes present");
  }
  const std::int64_t numel = n * per_image;
  const std::size_t expect = static_cast<std::size_t>(numel) * 4;
  if (r.remaining() != expect) {
    throw WireError("decode_classify_request: image payload holds " +
                    std::to_string(r.remaining()) + " bytes, shape requires " +
                    std::to_string(expect));
  }
  request.images = Tensor(batch ? Shape::nchw(n, c, h, w) : Shape{c, h, w});
  for (std::int64_t i = 0; i < numel; ++i) {
    request.images.data()[i] = r.get_f32("pixels");
  }
  r.expect_end("decode_classify_request");
  return request;
}

std::vector<std::uint8_t> encode_predictions(const std::vector<serve::Prediction>& predictions,
                                             bool batch) {
  if (!batch && predictions.size() != 1) {
    throw WireError("encode_predictions: a single-classify response carries exactly one "
                    "prediction, got " + std::to_string(predictions.size()));
  }
  WireWriter w;
  if (batch) w.put_u32(static_cast<std::uint32_t>(predictions.size()));
  for (const auto& p : predictions) {
    w.put_u32(static_cast<std::uint32_t>(p.label));
    w.put_f32(p.confidence);
    w.put_u32(static_cast<std::uint32_t>(p.logits.size()));
    for (const float v : p.logits) w.put_f32(v);
  }
  return std::move(w.bytes());
}

std::vector<serve::Prediction> decode_predictions(const std::uint8_t* data, std::size_t size,
                                                  bool batch) {
  WireReader r(data, size);
  std::size_t n = 1;
  if (batch) {
    n = r.get_u32("prediction count");
    // label + confidence + logit count = 12 bytes minimum per prediction;
    // reject a hostile count before reserving anything against it.
    if (n > r.remaining() / 12) {
      throw WireError("decode_predictions: prediction count " + std::to_string(n) +
                      " exceeds what " + std::to_string(r.remaining()) +
                      " payload bytes can hold");
    }
  }
  std::vector<serve::Prediction> predictions;
  predictions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::Prediction p;
    p.label = static_cast<int>(r.get_u32("label"));
    p.confidence = r.get_f32("confidence");
    const std::uint32_t k = r.get_u32("logit count");
    if (k > r.remaining() / 4) {
      throw WireError("decode_predictions: logit count " + std::to_string(k) +
                      " exceeds what " + std::to_string(r.remaining()) +
                      " payload bytes can hold");
    }
    p.logits.reserve(k);
    for (std::uint32_t j = 0; j < k; ++j) p.logits.push_back(r.get_f32("logits"));
    predictions.push_back(std::move(p));
  }
  r.expect_end("decode_predictions");
  return predictions;
}

// ---- error payloads ---------------------------------------------------------

std::vector<std::uint8_t> encode_error(const ErrorFrame& error) {
  WireWriter w;
  w.put_u16(static_cast<std::uint16_t>(error.code));
  // Error text may exceed the u16 string prefix in pathological cases; clamp.
  std::string message = error.message;
  if (message.size() > 0xFFFF) message.resize(0xFFFF);
  w.put_string(message);
  return std::move(w.bytes());
}

ErrorFrame decode_error(const std::uint8_t* data, std::size_t size) {
  WireReader r(data, size);
  ErrorFrame error;
  const std::uint16_t code = r.get_u16("error code");
  switch (static_cast<ErrorCode>(code)) {
    case ErrorCode::kInvalidRequest:
    case ErrorCode::kOverload:
    case ErrorCode::kShuttingDown:
    case ErrorCode::kInternal:
      error.code = static_cast<ErrorCode>(code);
      break;
    default:
      throw WireError("decode_error: unknown error code " + std::to_string(code));
  }
  error.message = r.get_string("error message");
  r.expect_end("decode_error");
  return error;
}

void throw_error(const ErrorFrame& error) {
  switch (error.code) {
    case ErrorCode::kOverload: throw serve::OverloadError(error.message);
    case ErrorCode::kInvalidRequest: throw std::invalid_argument(error.message);
    case ErrorCode::kShuttingDown: throw ShuttingDownError(error.message);
    case ErrorCode::kInternal: break;
  }
  throw RemoteError(error.message);
}

// ---- stats payloads ---------------------------------------------------------

std::vector<std::uint8_t> encode_stats(const ServerStats& stats) {
  WireWriter w;
  w.put_i64(stats.accepted);
  w.put_i64(stats.open_connections);
  w.put_i64(stats.frames_in);
  w.put_i64(stats.frames_out);
  w.put_i64(stats.bytes_in);
  w.put_i64(stats.bytes_out);
  w.put_i64(stats.classify);
  w.put_i64(stats.classify_batch);
  w.put_i64(stats.stats);
  w.put_i64(stats.ping);
  w.put_i64(stats.errors_sent);
  w.put_i64(stats.protocol_errors);
  w.put_i64(stats.overloads);
  w.put_i64(stats.shutdown_rejected);
  w.put_u32(static_cast<std::uint32_t>(stats.variants.size()));
  for (const auto& v : stats.variants) {
    w.put_string(v.variant);
    w.put_i64(v.replicas);
    w.put_i64(v.requests);
    w.put_i64(v.images);
    w.put_i64(v.rejected);
    w.put_i64(v.blocked);
    w.put_i64(v.queue_depth);
    w.put_i64(v.queue_peak);
    w.put_i64(v.latency_count);
    w.put_f64(v.latency_mean_us);
    w.put_f64(v.latency_p50_us);
    w.put_f64(v.latency_p99_us);
    w.put_f64(v.latency_p999_us);
  }
  w.put_u32(static_cast<std::uint32_t>(stats.connections.size()));
  for (const auto& c : stats.connections) {
    w.put_u64(c.id);
    w.put_i64(c.frames_in);
    w.put_i64(c.requests);
    w.put_i64(c.responses);
    w.put_i64(c.bytes_in);
    w.put_i64(c.bytes_out);
  }
  return std::move(w.bytes());
}

ServerStats decode_stats(const std::uint8_t* data, std::size_t size) {
  WireReader r(data, size);
  ServerStats stats;
  stats.accepted = r.get_i64("accepted");
  stats.open_connections = r.get_i64("open_connections");
  stats.frames_in = r.get_i64("frames_in");
  stats.frames_out = r.get_i64("frames_out");
  stats.bytes_in = r.get_i64("bytes_in");
  stats.bytes_out = r.get_i64("bytes_out");
  stats.classify = r.get_i64("classify");
  stats.classify_batch = r.get_i64("classify_batch");
  stats.stats = r.get_i64("stats");
  stats.ping = r.get_i64("ping");
  stats.errors_sent = r.get_i64("errors_sent");
  stats.protocol_errors = r.get_i64("protocol_errors");
  stats.overloads = r.get_i64("overloads");
  stats.shutdown_rejected = r.get_i64("shutdown_rejected");
  const std::uint32_t variants = r.get_u32("variant count");
  // Name prefix + 8 i64 counters + 4 f64 quantiles = 98 bytes minimum each.
  if (variants > r.remaining() / 98) {
    throw WireError("decode_stats: variant count " + std::to_string(variants) +
                    " exceeds what " + std::to_string(r.remaining()) +
                    " payload bytes can hold");
  }
  stats.variants.reserve(variants);
  for (std::uint32_t i = 0; i < variants; ++i) {
    WireVariantStats v;
    v.variant = r.get_string("variant name");
    v.replicas = r.get_i64("replicas");
    v.requests = r.get_i64("requests");
    v.images = r.get_i64("images");
    v.rejected = r.get_i64("rejected");
    v.blocked = r.get_i64("blocked");
    v.queue_depth = r.get_i64("queue_depth");
    v.queue_peak = r.get_i64("queue_peak");
    v.latency_count = r.get_i64("latency_count");
    v.latency_mean_us = r.get_f64("latency_mean_us");
    v.latency_p50_us = r.get_f64("latency_p50_us");
    v.latency_p99_us = r.get_f64("latency_p99_us");
    v.latency_p999_us = r.get_f64("latency_p999_us");
    stats.variants.push_back(std::move(v));
  }
  const std::uint32_t connections = r.get_u32("connection count");
  // Connection id + 5 i64 counters = 48 bytes minimum each.
  if (connections > r.remaining() / 48) {
    throw WireError("decode_stats: connection count " + std::to_string(connections) +
                    " exceeds what " + std::to_string(r.remaining()) +
                    " payload bytes can hold");
  }
  stats.connections.reserve(connections);
  for (std::uint32_t i = 0; i < connections; ++i) {
    WireConnectionStats c;
    c.id = r.get_u64("connection id");
    c.frames_in = r.get_i64("conn frames_in");
    c.requests = r.get_i64("conn requests");
    c.responses = r.get_i64("conn responses");
    c.bytes_in = r.get_i64("conn bytes_in");
    c.bytes_out = r.get_i64("conn bytes_out");
    stats.connections.push_back(c);
  }
  r.expect_end("decode_stats");
  return stats;
}

}  // namespace blurnet::net
