// blurnetd: the socket serving front-end for serve::InferenceEngine.
//
// A Server binds one TCP listen socket and runs a small poll()-based event
// loop on its own thread: the loop accepts connections, reassembles frames
// from nonblocking reads (FrameDecoder), decodes requests, and writes queued
// response bytes back with short-write handling. Classify work never executes
// on the loop — and neither does admission: decoded requests queue to a
// per-connection submitter thread that calls the engine's existing submit()
// path, so remote traffic inherits batching, replica sharding, bounded-queue
// admission control and latency measurement unchanged, and a submit() that
// waits for queue space (OverloadPolicy::kBlock) backpressures only its own
// connection, never the loop:
//
//   wire → decode → [submitter] submit() → coalesced replica forward → encode → wire
//
// Because a blocked submitter must still be joinable by stop(), the
// constructor rejects engines configured with kBlock and no block timeout —
// socket serving requires kReject or a finite block_timeout_ms.
//
// Each connection also owns one harvester thread that waits on its submitted
// futures in FIFO order, encodes the prediction (or typed error) frame, and
// appends it to the connection's outbox for the event loop to flush. Replies
// to classify requests therefore come back in per-connection submission
// order, while ping/stats replies are written immediately by the loop and may
// overtake them — clients correlate by request id (the client library
// pipelines on exactly this).
//
// Backpressure is bidirectional: the loop stops reading from a connection
// whose unflushed outbox exceeds ServerConfig::max_outbox_bytes (a client
// that pipelines requests without reading replies cannot grow server memory
// without bound) or that already has max_inflight_requests classify requests
// unanswered; reads resume as the backlog drains.
//
// Failure is always a *frame*, never a dropped connection (except framing
// violations, where byte alignment is lost): an engine OverloadError becomes
// an ErrorCode::kOverload frame, validation failures (unknown variant, bad
// shape — the engine's descriptive messages, which list the registered
// variants) become kInvalidRequest, and requests arriving while the server
// drains become kShuttingDown.
//
// stop() is graceful: the listener closes immediately, requests already
// admitted keep draining (bounded by ServerConfig::drain_timeout_ms), new
// classify requests are refused with kShuttingDown frames, and once every
// connection is idle — or the deadline passes — connections are closed and
// all threads join. The destructor calls stop().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/serve/engine.h"
#include "src/util/lockdep.h"

namespace blurnet::net {

struct ServerConfig {
  /// Numeric IPv4 bind address. Loopback by default: blurnetd speaks an
  /// unauthenticated protocol, so exposing it beyond the host is a deliberate
  /// operator decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one back with Server::port().
  std::uint16_t port = 0;
  int backlog = 64;
  /// Bound on any single frame (header + payload), both directions.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// stop(): longest wait for in-flight requests to drain before connections
  /// are closed anyway. Must be >= 1 — an unbounded drain would let one stuck
  /// request wedge shutdown forever.
  int drain_timeout_ms = 5000;
  /// Write backpressure: while a connection's unflushed outbox exceeds this
  /// many bytes, the loop stops reading from it (resuming once the backlog
  /// flushes), so a peer that pipelines requests without reading replies
  /// cannot grow server memory without bound.
  std::size_t max_outbox_bytes = std::size_t{8} << 20;
  /// Read backpressure: while a connection has this many decoded classify
  /// requests unanswered, the loop stops reading from it. Bounds the decoded
  /// image tensors a pipelining client can park server-side.
  int max_inflight_requests = 1024;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (engine validation style).
  void validate() const;
};

class Server {
 public:
  /// Validates the config, binds and listens, and starts the event loop.
  /// The engine must outlive the server.
  Server(serve::InferenceEngine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves an ephemeral bind).
  std::uint16_t port() const { return port_; }
  const ServerConfig& config() const { return config_; }

  /// True once stop() has been requested (drain may still be in progress).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Graceful shutdown: stop accepting, refuse new classify requests with
  /// kShuttingDown frames, drain in-flight requests (bounded by
  /// drain_timeout_ms), flush outboxes, then close every connection and join
  /// all threads. Idempotent and safe to call from any thread; blocks until
  /// shutdown is complete.
  void stop();

  /// Counter snapshot: per-opcode totals, per-open-connection counters, and
  /// the engine's per-variant stats (every name from variant_names(), aliases
  /// included). This is exactly the Stats opcode's payload.
  ServerStats stats() const;

 private:
  /// One decoded classify (or classify-batch) request awaiting submission by
  /// the connection's submitter thread.
  struct PendingRequest {
    std::uint32_t request_id = 0;
    bool batch = false;
    ClassifyRequest request;
  };

  /// One submitted request handed to the harvester: the engine futures for
  /// each image, in image order.
  struct PendingReply {
    std::uint32_t request_id = 0;
    bool batch = false;
    std::vector<std::future<serve::Prediction>> futures;
  };

  struct Connection {
    Connection(Socket sock, std::uint64_t id, std::size_t max_frame_bytes)
        : socket(std::move(sock)), id(id), decoder(max_frame_bytes) {}

    Socket socket;
    const std::uint64_t id;
    FrameDecoder decoder;

    // guards inbox, submitted, outbox, flags below
    util::DebugMutex mutex BLURNET_LOCK_CLASS("net::Server::connection");
    util::DebugConditionVariable cv;  // submitter waits for inbox work / abandon
    util::DebugConditionVariable harvest_cv;  // harvester waits for submitted work
    std::deque<PendingRequest> inbox;   // decoded, not yet submitted
    std::deque<PendingReply> submitted;  // submitted, awaiting harvest
    std::vector<std::uint8_t> outbox;  // encoded frames awaiting write
    std::size_t outbox_offset = 0;     // flushed prefix of outbox
    bool input_closed = false;    // no further requests will be enqueued
    bool close_after_flush = false;  // framing error: flush the error frame, then close

    std::atomic<bool> abandoned{false};   // submitter/harvester: drop pending work now
    std::atomic<int> replies_in_flight{0};  // inbox + submitted + currently harvesting
    std::atomic<bool> submitter_done{false};
    std::atomic<bool> harvester_done{false};
    std::thread submitter;
    std::thread harvester;

    // Per-connection counters (atomic: loop + harvester both touch them).
    std::atomic<std::int64_t> frames_in{0};
    std::atomic<std::int64_t> requests{0};
    std::atomic<std::int64_t> responses{0};
    std::atomic<std::int64_t> bytes_in{0};
    std::atomic<std::int64_t> bytes_out{0};
  };

  void event_loop();
  void accept_ready();
  /// Read-ready connection: pull bytes, decode frames, dispatch. Returns
  /// false when the connection should be torn down (EOF/reset).
  bool read_ready(Connection& conn);
  /// Flush as much outbox as the socket accepts. Returns false on write
  /// failure (peer gone).
  bool flush_outbox(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  void handle_classify(Connection& conn, const Frame& frame, bool batch);
  /// Queue an error frame on the connection (counts errors_sent + specific
  /// counters per code).
  void queue_error(Connection& conn, std::uint32_t request_id, ErrorCode code,
                   const std::string& message);
  void queue_frame(Connection& conn, Opcode opcode, std::uint32_t request_id,
                   const std::vector<std::uint8_t>& payload);
  /// Per-connection submitter: pops decoded requests off the inbox and runs
  /// engine submit() — off the event loop, so blocking admission (kBlock)
  /// stalls only this connection. Engine-side failures become typed error
  /// frames (kOverload / kInvalidRequest / kInternal), never a crash.
  void submitter_loop(const std::shared_ptr<Connection>& conn);
  void harvester_loop(const std::shared_ptr<Connection>& conn);
  /// Abandon + close a connection and move it to the zombie list for joining.
  void retire(std::size_t index);
  /// Signal the event loop (harvesters call this after queueing output).
  void wake();

  serve::InferenceEngine& engine_;
  ServerConfig config_;
  std::uint16_t port_ = 0;

  Socket listener_;
  int wake_read_fd_ = -1;   // self-pipe: poll() wake-up
  int wake_write_fd_ = -1;

  std::atomic<bool> draining_{false};
  std::atomic<bool> loop_exited_{false};

  std::thread loop_;
  // Connections are owned by shared_ptrs handed to both the loop and the
  // harvester; `connections_` (loop-only) holds the live set, `zombies_`
  // (mutex-guarded) the retired ones awaiting a join.
  // Lock hierarchy (outermost first): lifecycle -> roster -> connection ->
  // zombies, with the engine's locks (shards -> queue) below any of them —
  // stats() and the submitter threads call into the engine, nothing in the
  // engine calls back into the server. Locks on one level are never nested
  // (e.g. two connections' mutexes are never held together). Enforced in
  // Debug builds by util::DebugMutex (src/util/lockdep.h).
  std::vector<std::shared_ptr<Connection>> connections_;
  mutable util::DebugMutex zombies_mutex_ BLURNET_LOCK_CLASS("net::Server::zombies");
  std::vector<std::shared_ptr<Connection>> zombies_;

  // serializes stop() callers
  util::DebugMutex lifecycle_mutex_ BLURNET_LOCK_CLASS("net::Server::lifecycle");
  bool stopped_ = false;

  std::atomic<std::uint64_t> next_connection_id_{1};
  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> frames_in_{0};
  std::atomic<std::int64_t> frames_out_{0};
  std::atomic<std::int64_t> bytes_in_{0};
  std::atomic<std::int64_t> bytes_out_{0};
  std::atomic<std::int64_t> classify_{0};
  std::atomic<std::int64_t> classify_batch_{0};
  std::atomic<std::int64_t> stats_{0};
  std::atomic<std::int64_t> ping_{0};
  std::atomic<std::int64_t> errors_sent_{0};
  std::atomic<std::int64_t> protocol_errors_{0};
  std::atomic<std::int64_t> overloads_{0};
  std::atomic<std::int64_t> shutdown_rejected_{0};

  // `connections_` is loop-thread-only, but stats() runs on caller threads;
  // this mutex guards the snapshot the loop maintains for it.
  mutable util::DebugMutex roster_mutex_ BLURNET_LOCK_CLASS("net::Server::roster");
  std::vector<std::shared_ptr<Connection>> roster_;
};

}  // namespace blurnet::net
