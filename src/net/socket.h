// Thin POSIX TCP helpers shared by the blurnetd server and client. No
// external dependencies — just sockets, with the two failure modes the wire
// layer cares about made explicit: SocketError for syscall failures and a
// clean-EOF signal from read_some().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace blurnet::net {

/// Connect/bind/IO syscall failures (carries errno text).
struct SocketError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Move-only owning fd. close() is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool is_open() const { return fd_ >= 0; }
  void close();
  /// Release ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Bind + listen on host:port (port 0 = ephemeral; read it back with
/// local_port). Throws SocketError.
Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog);

/// Blocking connect to host:port. Throws SocketError.
Socket tcp_connect(const std::string& host, std::uint16_t port);

/// The locally-bound port of a socket (resolves ephemeral binds).
std::uint16_t local_port(int fd);

void set_nonblocking(int fd);

/// Write all `n` bytes (blocking fd), retrying short writes and EINTR.
/// Throws SocketError on failure (including a peer that closed: EPIPE).
void write_all(int fd, const void* data, std::size_t n);

/// One blocking read of up to `n` bytes. Returns the byte count, 0 on clean
/// EOF. Throws SocketError on failure. Retries EINTR.
std::size_t read_some(int fd, void* data, std::size_t n);

}  // namespace blurnet::net
