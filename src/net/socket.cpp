#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace blurnet::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, std::uint16_t port,
                         const std::string& what) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw SocketError(what + ": \"" + host +
                      "\" is not a dotted-quad IPv4 address (blurnetd binds numeric "
                      "addresses only; use 127.0.0.1 for loopback)");
  }
  return address;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.is_open()) fail("tcp_listen: socket()");
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in address = make_address(host, port, "tcp_listen");
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    fail("tcp_listen: bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(socket.fd(), backlog) != 0) fail("tcp_listen: listen()");
  return socket;
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.is_open()) fail("tcp_connect: socket()");
  const sockaddr_in address = make_address(host, port, "tcp_connect");
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    fail("tcp_connect: connect(" + host + ":" + std::to_string(port) + ")");
  }
  // Frames are assembled in full before sending; Nagle only adds latency.
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

std::uint16_t local_port(int fd) {
  sockaddr_in address{};
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    fail("local_port: getsockname()");
  }
  return ntohs(address.sin_port);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    fail("set_nonblocking: fcntl()");
  }
}

void write_all(int fd, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process signal.
    const ssize_t wrote = ::send(fd, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail("write_all: send()");
    }
    sent += static_cast<std::size_t>(wrote);
  }
}

std::size_t read_some(int fd, void* data, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd, data, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("read_some: recv()");
    }
    return static_cast<std::size_t>(got);
  }
}

}  // namespace blurnet::net
