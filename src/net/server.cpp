#include "src/net/server.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/tensor/shape.h"

namespace blurnet::net {

namespace {

using Clock = std::chrono::steady_clock;

/// How long a harvester sleeps on one future before re-checking the abandoned
/// flag, and the loop's idle poll period. Small enough that stop() never
/// stalls noticeably past the drain deadline.
constexpr auto kHarvestTick = std::chrono::milliseconds(50);
constexpr int kPollTimeoutMs = 50;
constexpr std::size_t kReadChunk = 64 * 1024;

/// Copy image `index` out of an NCHW batch as a standalone CHW tensor.
tensor::Tensor slice_image(const tensor::Tensor& batch, int index) {
  const int c = batch.dim(1), h = batch.dim(2), w = batch.dim(3);
  tensor::Tensor image(tensor::Shape{c, h, w});
  const std::size_t stride = image.numel();
  std::memcpy(image.data(), batch.data() + static_cast<std::size_t>(index) * stride,
              stride * sizeof(float));
  return image;
}

}  // namespace

void ServerConfig::validate() const {
  if (host.empty()) {
    throw std::invalid_argument("ServerConfig: host must not be empty");
  }
  if (backlog < 1) {
    throw std::invalid_argument("ServerConfig: backlog must be >= 1 (got " +
                                std::to_string(backlog) + ")");
  }
  if (max_frame_bytes < kHeaderBytes) {
    throw std::invalid_argument("ServerConfig: max_frame_bytes must be >= the " +
                                std::to_string(kHeaderBytes) + "-byte header (got " +
                                std::to_string(max_frame_bytes) + ")");
  }
  if (drain_timeout_ms < 1) {
    throw std::invalid_argument(
        "ServerConfig: drain_timeout_ms must be >= 1 (got " + std::to_string(drain_timeout_ms) +
        "); an unbounded drain would let one stuck request wedge shutdown");
  }
  if (max_outbox_bytes < 1) {
    throw std::invalid_argument("ServerConfig: max_outbox_bytes must be >= 1");
  }
  if (max_inflight_requests < 1) {
    throw std::invalid_argument("ServerConfig: max_inflight_requests must be >= 1 (got " +
                                std::to_string(max_inflight_requests) + ")");
  }
}

Server::Server(serve::InferenceEngine& engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  config_.validate();
  if (engine_.overload_policy() == serve::OverloadPolicy::kBlock &&
      engine_.block_timeout_ms() == 0) {
    throw std::invalid_argument(
        "Server: the engine uses OverloadPolicy::kBlock with block_timeout_ms == 0; an "
        "unbounded blocking submit() could wedge a connection submitter (and stop()) "
        "forever — serve with kReject or a finite block timeout");
  }
  listener_ = tcp_listen(config_.host, config_.port, config_.backlog);
  set_nonblocking(listener_.fd());
  port_ = local_port(listener_.fd());
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw SocketError(std::string("Server: pipe(): ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  loop_ = std::thread([this] { event_loop(); });
}

Server::~Server() { stop(); }

void Server::wake() {
  const std::uint8_t one = 1;
  // EAGAIN means the pipe already holds a pending wake-up; that is enough.
  [[maybe_unused]] const ssize_t rc = ::write(wake_write_fd_, &one, 1);
}

void Server::stop() {
  std::lock_guard<util::DebugMutex> lifecycle(lifecycle_mutex_);
  if (stopped_) return;
  stopped_ = true;
  draining_.store(true, std::memory_order_release);
  wake();
  if (loop_.joinable()) loop_.join();
  // The loop exits only after retiring every connection into zombies_.
  std::vector<std::shared_ptr<Connection>> zombies;
  {
    std::lock_guard<util::DebugMutex> lock(zombies_mutex_);
    zombies.swap(zombies_);
  }
  for (auto& conn : zombies) {
    if (conn->submitter.joinable()) conn->submitter.join();
    if (conn->harvester.joinable()) conn->harvester.join();
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void Server::event_loop() {
  bool drain_started = false;
  Clock::time_point drain_deadline{};
  std::vector<std::uint8_t> read_buffer(kReadChunk);

  for (;;) {
    if (draining_.load(std::memory_order_acquire) && !drain_started) {
      drain_started = true;
      listener_.close();  // stop accepting immediately
      drain_deadline = Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (listener_.is_open()) fds.push_back({listener_.fd(), POLLIN, 0});
    const std::size_t first_conn = fds.size();
    for (auto& conn : connections_) {
      short events = 0;
      {
        std::lock_guard<util::DebugMutex> lock(conn->mutex);
        // Backpressure: stop reading from a peer whose replies it is not
        // consuming (unflushed outbox past the bound) or that already has a
        // full pipeline of unanswered classify requests. Reads resume once
        // the backlog drains — harvesters wake the loop as replies complete.
        const bool outbox_full =
            conn->outbox.size() - conn->outbox_offset > config_.max_outbox_bytes;
        const bool pipeline_full = conn->replies_in_flight.load(std::memory_order_acquire) >=
                                   config_.max_inflight_requests;
        if (!conn->input_closed && !outbox_full && !pipeline_full) events |= POLLIN;
        if (conn->outbox_offset < conn->outbox.size()) events |= POLLOUT;
      }
      fds.push_back({conn->socket.fd(), events, 0});
    }

    int timeout_ms = kPollTimeoutMs;
    if (drain_started) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(drain_deadline - Clock::now())
              .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(left, 0, kPollTimeoutMs));
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // poll failure: bail out and tear down

    // Drain the wake pipe.
    if (fds[0].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }
    if (listener_.is_open() && fds.size() > 1 && (fds[1].revents & POLLIN)) accept_ready();

    // Service connections; collect the ones to tear down.
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      Connection& conn = *connections_[i];
      const short revents = first_conn + i < fds.size() ? fds[first_conn + i].revents : 0;
      bool alive = true;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & (POLLIN | POLLHUP))) {
        try {
          alive = read_ready(conn);
        } catch (const SocketError&) {
          alive = false;  // peer reset mid-read
        }
        // Note: read_ready() feeds the decoder and dispatches frames; it
        // buffers responses, so always try a flush afterwards.
      }
      if (alive) {
        try {
          alive = flush_outbox(conn);
        } catch (const SocketError&) {
          alive = false;
        }
      }
      if (alive) {
        // Fully served and peer finished sending: close once nothing is
        // pending and everything queued has hit the wire.
        std::lock_guard<util::DebugMutex> lock(conn.mutex);
        const bool flushed = conn.outbox_offset >= conn.outbox.size();
        if (flushed && conn.close_after_flush) alive = false;
        if (flushed && conn.input_closed && conn.inbox.empty() &&
            conn.replies_in_flight.load(std::memory_order_acquire) == 0) {
          alive = false;
        }
      }
      if (!alive) dead.push_back(i);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) retire(*it);

    // Reap retired connections whose harvester has finished.
    {
      std::lock_guard<util::DebugMutex> lock(zombies_mutex_);
      for (auto it = zombies_.begin(); it != zombies_.end();) {
        if ((*it)->harvester_done.load(std::memory_order_acquire) &&
            (*it)->submitter_done.load(std::memory_order_acquire)) {
          if ((*it)->submitter.joinable()) (*it)->submitter.join();
          if ((*it)->harvester.joinable()) (*it)->harvester.join();
          it = zombies_.erase(it);
        } else {
          ++it;
        }
      }
    }

    if (drain_started) {
      bool idle = true;
      for (auto& conn : connections_) {
        std::lock_guard<util::DebugMutex> lock(conn->mutex);
        if (conn->replies_in_flight.load(std::memory_order_acquire) != 0 ||
            !conn->inbox.empty() || conn->outbox_offset < conn->outbox.size()) {
          idle = false;
          break;
        }
      }
      if (idle || Clock::now() >= drain_deadline) break;
    }
  }

  // Teardown: abandon whatever is left (drain deadline passed, or poll died).
  while (!connections_.empty()) retire(connections_.size() - 1);
  loop_exited_.store(true, std::memory_order_release);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN/EWOULDBLOCK: accepted everything pending
    }
    Socket socket(fd);
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(
        std::move(socket), next_connection_id_.fetch_add(1, std::memory_order_relaxed),
        config_.max_frame_bytes);
    conn->submitter = std::thread([this, conn] { submitter_loop(conn); });
    conn->harvester = std::thread([this, conn] { harvester_loop(conn); });
    connections_.push_back(conn);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<util::DebugMutex> lock(roster_mutex_);
    roster_ = connections_;
  }
}

bool Server::read_ready(Connection& conn) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t got = ::recv(conn.socket.fd(), chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // reset
    }
    if (got == 0) {
      // Peer finished sending (half-close). Pending replies still flush; the
      // connection closes once they have.
      std::lock_guard<util::DebugMutex> lock(conn.mutex);
      conn.input_closed = true;
      conn.cv.notify_all();
      break;
    }
    bytes_in_.fetch_add(got, std::memory_order_relaxed);
    conn.bytes_in.fetch_add(got, std::memory_order_relaxed);
    conn.decoder.feed(chunk, static_cast<std::size_t>(got));
    Frame frame;
    try {
      while (conn.decoder.next(frame)) {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        conn.frames_in.fetch_add(1, std::memory_order_relaxed);
        handle_frame(conn, frame);
      }
    } catch (const WireError& e) {
      // Framing violation: byte alignment is lost, so report and close. The
      // error frame carries id 0 — it cannot be tied to a request.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      queue_error(conn, 0, ErrorCode::kInvalidRequest, e.what());
      std::lock_guard<util::DebugMutex> lock(conn.mutex);
      conn.input_closed = true;
      conn.close_after_flush = true;
      conn.cv.notify_all();
      break;
    }
  }
  return true;
}

bool Server::flush_outbox(Connection& conn) {
  std::lock_guard<util::DebugMutex> lock(conn.mutex);
  while (conn.outbox_offset < conn.outbox.size()) {
    const ssize_t wrote =
        ::send(conn.socket.fd(), conn.outbox.data() + conn.outbox_offset,
               conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // retry on POLLOUT
      return false;  // peer gone
    }
    conn.outbox_offset += static_cast<std::size_t>(wrote);
    bytes_out_.fetch_add(wrote, std::memory_order_relaxed);
    conn.bytes_out.fetch_add(wrote, std::memory_order_relaxed);
  }
  conn.outbox.clear();
  conn.outbox_offset = 0;
  return true;
}

void Server::queue_frame(Connection& conn, Opcode opcode, std::uint32_t request_id,
                         const std::vector<std::uint8_t>& payload) {
  {
    std::lock_guard<util::DebugMutex> lock(conn.mutex);
    append_frame(conn.outbox, opcode, request_id, payload);
  }
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  conn.responses.fetch_add(1, std::memory_order_relaxed);
}

void Server::queue_error(Connection& conn, std::uint32_t request_id, ErrorCode code,
                         const std::string& message) {
  queue_frame(conn, Opcode::kErrorResponse, request_id, encode_error({code, message}));
  errors_sent_.fetch_add(1, std::memory_order_relaxed);
  if (code == ErrorCode::kOverload) overloads_.fetch_add(1, std::memory_order_relaxed);
  if (code == ErrorCode::kShuttingDown) {
    shutdown_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_frame(Connection& conn, const Frame& frame) {
  switch (frame.opcode) {
    case Opcode::kPing:
      ping_.fetch_add(1, std::memory_order_relaxed);
      queue_frame(conn, Opcode::kPongResponse, frame.request_id, {});
      return;
    case Opcode::kStats:
      stats_.fetch_add(1, std::memory_order_relaxed);
      queue_frame(conn, Opcode::kStatsResponse, frame.request_id, encode_stats(stats()));
      return;
    case Opcode::kClassify:
      classify_.fetch_add(1, std::memory_order_relaxed);
      handle_classify(conn, frame, /*batch=*/false);
      return;
    case Opcode::kClassifyBatch:
      classify_batch_.fetch_add(1, std::memory_order_relaxed);
      handle_classify(conn, frame, /*batch=*/true);
      return;
    default:
      // A response opcode sent *to* the server. The frame was well-formed, so
      // the stream stays aligned and the connection stays usable.
      queue_error(conn, frame.request_id, ErrorCode::kInvalidRequest,
                  std::string("server received response opcode ") + to_string(frame.opcode) +
                      " (clients send kClassify/kClassifyBatch/kStats/kPing)");
      return;
  }
}

void Server::handle_classify(Connection& conn, const Frame& frame, bool batch) {
  PendingRequest pending;
  pending.request_id = frame.request_id;
  pending.batch = batch;
  try {
    pending.request =
        decode_classify_request(frame.payload.data(), frame.payload.size(), batch);
  } catch (const WireError& e) {
    // Payload decode failure: framing was fine, so only this request fails.
    queue_error(conn, frame.request_id, ErrorCode::kInvalidRequest, e.what());
    return;
  } catch (const std::exception& e) {
    // Defense in depth: a failure past the codec's own validation (e.g. the
    // image allocation) fails the request, never the process.
    queue_error(conn, frame.request_id, ErrorCode::kInvalidRequest, e.what());
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    queue_error(conn, frame.request_id, ErrorCode::kShuttingDown,
                "blurnetd is draining; no new classify requests accepted");
    return;
  }

  // Admission happens on the connection's submitter thread, never here: a
  // submit() that waits for queue space (kBlock) must not stall the loop.
  {
    std::lock_guard<util::DebugMutex> lock(conn.mutex);
    conn.replies_in_flight.fetch_add(1, std::memory_order_release);
    conn.inbox.push_back(std::move(pending));
  }
  conn.cv.notify_one();
}

void Server::submitter_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    PendingRequest pending;
    {
      std::unique_lock<util::DebugMutex> lock(conn->mutex);
      conn->cv.wait(lock, [&] {
        return conn->abandoned.load(std::memory_order_acquire) || !conn->inbox.empty() ||
               conn->input_closed;
      });
      if (conn->abandoned.load(std::memory_order_acquire)) break;
      if (conn->inbox.empty()) {
        if (conn->input_closed) break;  // drained: nothing more will arrive
        continue;
      }
      pending = std::move(conn->inbox.front());
      conn->inbox.pop_front();
    }

    const int count = pending.batch ? static_cast<int>(pending.request.images.dim(0)) : 1;
    PendingReply reply;
    reply.request_id = pending.request_id;
    reply.batch = pending.batch;
    reply.futures.reserve(static_cast<std::size_t>(count));
    serve::Options options;
    options.variant = pending.request.variant;
    options.max_batch = pending.request.max_batch;

    bool failed = false;
    if (draining_.load(std::memory_order_acquire)) {
      // Decoded before the drain began, not yet admitted: refuse it typed.
      queue_error(*conn, pending.request_id, ErrorCode::kShuttingDown,
                  "blurnetd is draining; no new classify requests accepted");
      failed = true;
    } else {
      try {
        for (int i = 0; i < count; ++i) {
          if (conn->abandoned.load(std::memory_order_acquire)) break;
          reply.futures.push_back(engine_.submit(
              pending.batch ? slice_image(pending.request.images, i) : pending.request.images,
              options));
        }
      } catch (const serve::OverloadError& e) {
        // Mid-batch shed: the whole request fails as one unit. Futures already
        // obtained are dropped — the engine resolves them into the void.
        queue_error(*conn, pending.request_id, ErrorCode::kOverload, e.what());
        failed = true;
      } catch (const std::invalid_argument& e) {
        // Unknown variant / bad shape: the engine's message lists the
        // registered variants, which travels back to the client verbatim.
        queue_error(*conn, pending.request_id, ErrorCode::kInvalidRequest, e.what());
        failed = true;
      } catch (const std::exception& e) {
        // Anything else the engine throws (e.g. "engine is shutting down"
        // when it stops while the server is live) becomes a typed frame,
        // never an escaped exception that would terminate the process.
        queue_error(*conn, pending.request_id, ErrorCode::kInternal, e.what());
        failed = true;
      }
    }
    if (failed) {
      conn->replies_in_flight.fetch_sub(1, std::memory_order_release);
      wake();
      continue;
    }
    conn->requests.fetch_add(count, std::memory_order_relaxed);
    {
      std::lock_guard<util::DebugMutex> lock(conn->mutex);
      conn->submitted.push_back(std::move(reply));
    }
    conn->harvest_cv.notify_one();
  }
  conn->submitter_done.store(true, std::memory_order_release);
  conn->harvest_cv.notify_all();  // harvester may be waiting for more work
  wake();
}

void Server::harvester_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    PendingReply reply;
    {
      std::unique_lock<util::DebugMutex> lock(conn->mutex);
      conn->harvest_cv.wait(lock, [&] {
        return conn->abandoned.load(std::memory_order_acquire) || !conn->submitted.empty() ||
               conn->submitter_done.load(std::memory_order_acquire);
      });
      if (conn->abandoned.load(std::memory_order_acquire)) break;
      if (conn->submitted.empty()) {
        if (conn->submitter_done.load(std::memory_order_acquire)) break;  // drained
        continue;
      }
      reply = std::move(conn->submitted.front());
      conn->submitted.pop_front();
    }

    std::vector<serve::Prediction> predictions;
    predictions.reserve(reply.futures.size());
    bool abandoned = false;
    bool failed = false;
    for (auto& future : reply.futures) {
      // wait_for + flag check instead of a blocking get(): stop() must be able
      // to time out past a future that never resolves.
      while (future.wait_for(kHarvestTick) != std::future_status::ready) {
        if (conn->abandoned.load(std::memory_order_acquire)) {
          abandoned = true;
          break;
        }
      }
      if (abandoned) break;
      try {
        predictions.push_back(future.get());
      } catch (const std::exception& e) {
        // Broken promise (engine torn down) or another unexpected failure.
        queue_error(*conn, reply.request_id, ErrorCode::kInternal, e.what());
        failed = true;
        break;
      }
    }
    if (abandoned) break;
    if (!failed) {
      queue_frame(*conn,
                  reply.batch ? Opcode::kClassifyBatchResponse : Opcode::kClassifyResponse,
                  reply.request_id, encode_predictions(predictions, reply.batch));
    }
    conn->replies_in_flight.fetch_sub(1, std::memory_order_release);
    wake();
  }
  conn->harvester_done.store(true, std::memory_order_release);
  wake();
}

void Server::retire(std::size_t index) {
  auto conn = connections_[index];
  connections_.erase(connections_.begin() + static_cast<std::ptrdiff_t>(index));
  {
    std::lock_guard<util::DebugMutex> lock(roster_mutex_);
    roster_ = connections_;
  }
  {
    std::lock_guard<util::DebugMutex> lock(conn->mutex);
    conn->abandoned.store(true, std::memory_order_release);
    conn->socket.close();
  }
  conn->cv.notify_all();
  conn->harvest_cv.notify_all();
  std::lock_guard<util::DebugMutex> lock(zombies_mutex_);
  zombies_.push_back(std::move(conn));
}

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.frames_in = frames_in_.load(std::memory_order_relaxed);
  out.frames_out = frames_out_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  out.classify = classify_.load(std::memory_order_relaxed);
  out.classify_batch = classify_batch_.load(std::memory_order_relaxed);
  out.stats = stats_.load(std::memory_order_relaxed);
  out.ping = ping_.load(std::memory_order_relaxed);
  out.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.overloads = overloads_.load(std::memory_order_relaxed);
  out.shutdown_rejected = shutdown_rejected_.load(std::memory_order_relaxed);

  {
    std::lock_guard<util::DebugMutex> lock(roster_mutex_);
    out.open_connections = static_cast<std::int64_t>(roster_.size());
    out.connections.reserve(roster_.size());
    for (const auto& conn : roster_) {
      WireConnectionStats c;
      c.id = conn->id;
      c.frames_in = conn->frames_in.load(std::memory_order_relaxed);
      c.requests = conn->requests.load(std::memory_order_relaxed);
      c.responses = conn->responses.load(std::memory_order_relaxed);
      c.bytes_in = conn->bytes_in.load(std::memory_order_relaxed);
      c.bytes_out = conn->bytes_out.load(std::memory_order_relaxed);
      out.connections.push_back(c);
    }
  }

  for (const auto& name : engine_.variant_names()) {
    const serve::VariantStats vs = engine_.variant_stats(name);
    WireVariantStats v;
    v.variant = name;
    v.replicas = static_cast<std::int64_t>(vs.replicas.size());
    for (const auto& r : vs.replicas) {
      v.requests += r.requests;
      v.images += r.images;
    }
    v.rejected = vs.rejected;
    v.blocked = vs.blocked;
    v.queue_depth = vs.queue_depth;
    v.queue_peak = vs.queue_peak;
    v.latency_count = static_cast<std::int64_t>(vs.latency.count);
    v.latency_mean_us = vs.latency.mean_us;
    v.latency_p50_us = vs.latency.p50_us;
    v.latency_p99_us = vs.latency.p99_us;
    v.latency_p999_us = vs.latency.p999_us;
    out.variants.push_back(std::move(v));
  }
  return out;
}

}  // namespace blurnet::net
