#include "src/data/dataset.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace blurnet::data {

tensor::Tensor Dataset::image_batch(std::int64_t i) const {
  if (i < 0 || i >= size()) throw std::out_of_range("Dataset::image_batch: index");
  const std::int64_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  tensor::Tensor out(tensor::Shape::nchw(1, c, h, w));
  const float* src = images.data() + i * c * h * w;
  std::copy(src, src + c * h * w, out.data());
  return out;
}

Dataset Dataset::subset(const std::vector<int>& indices) const {
  const std::int64_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  Dataset out;
  out.num_classes = num_classes;
  out.images = tensor::Tensor(
      tensor::Shape::nchw(static_cast<std::int64_t>(indices.size()), c, h, w));
  out.labels.reserve(indices.size());
  const std::int64_t stride = c * h * w;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int src_index = indices[i];
    if (src_index < 0 || src_index >= size()) {
      throw std::out_of_range("Dataset::subset: index out of range");
    }
    std::copy(images.data() + src_index * stride, images.data() + (src_index + 1) * stride,
              out.images.data() + static_cast<std::int64_t>(i) * stride);
    out.labels.push_back(labels[static_cast<std::size_t>(src_index)]);
  }
  return out;
}

std::vector<Batch> make_batches(const Dataset& data, int batch_size, util::Rng& rng) {
  if (batch_size <= 0) throw std::invalid_argument("make_batches: batch_size must be positive");
  std::vector<int> order(static_cast<std::size_t>(data.size()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  const std::int64_t c = data.images.dim(1), h = data.images.dim(2), w = data.images.dim(3);
  const std::int64_t stride = c * h * w;
  std::vector<Batch> batches;
  for (std::size_t start = 0; start < order.size(); start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(order.size(), start + static_cast<std::size_t>(batch_size));
    Batch batch;
    batch.images = tensor::Tensor(
        tensor::Shape::nchw(static_cast<std::int64_t>(end - start), c, h, w));
    for (std::size_t i = start; i < end; ++i) {
      const int idx = order[i];
      std::copy(data.images.data() + idx * stride, data.images.data() + (idx + 1) * stride,
                batch.images.data() + static_cast<std::int64_t>(i - start) * stride);
      batch.labels.push_back(data.labels[static_cast<std::size_t>(idx)]);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

namespace {

Dataset render_split(const SignRenderer& renderer, int per_class, bool wide_pose,
                     util::Rng& rng) {
  const int classes = SignRenderer::kNumClasses;
  const int size = renderer.image_size();
  Dataset out;
  out.num_classes = classes;
  out.images = tensor::Tensor(
      tensor::Shape::nchw(static_cast<std::int64_t>(classes) * per_class, 3, size, size));
  out.labels.reserve(static_cast<std::size_t>(classes) * per_class);
  const std::int64_t stride = 3LL * size * size;
  std::int64_t row = 0;
  for (int cls = 0; cls < classes; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      const auto params = SignRenderer::sample_params(rng, wide_pose);
      const auto image = renderer.render(cls, params);
      std::copy(image.data(), image.data() + stride, out.images.data() + row * stride);
      out.labels.push_back(cls);
      ++row;
    }
  }
  return out;
}

}  // namespace

SynthLisa make_synth_lisa(const SynthLisaOptions& options) {
  SignRenderer renderer(options.image_size);
  util::Rng train_rng(options.seed);
  util::Rng test_rng(options.seed ^ 0xabcdef12345678ULL);
  SynthLisa out;
  out.train = render_split(renderer, options.train_per_class, options.wide_pose, train_rng);
  out.test = render_split(renderer, options.test_per_class, options.wide_pose, test_rng);
  return out;
}

StopSignSet stop_sign_eval_set(int count, int image_size, std::uint64_t seed) {
  SignRenderer renderer(image_size);
  util::Rng rng(seed);
  StopSignSet out;
  out.images = tensor::Tensor(tensor::Shape::nchw(count, 3, image_size, image_size));
  out.masks = tensor::Tensor(tensor::Shape::nchw(count, 1, image_size, image_size));
  const std::int64_t img_stride = 3LL * image_size * image_size;
  const std::int64_t mask_stride = 1LL * image_size * image_size;
  for (int i = 0; i < count; ++i) {
    const auto params = SignRenderer::sample_params(rng, /*wide_pose=*/true);
    const auto image = renderer.render(SignRenderer::stop_class_id(), params);
    const auto mask = renderer.sign_region_mask(SignRenderer::stop_class_id(), params);
    std::copy(image.data(), image.data() + img_stride, out.images.data() + i * img_stride);
    std::copy(mask.data(), mask.data() + mask_stride, out.masks.data() + i * mask_stride);
  }
  return out;
}

}  // namespace blurnet::data
