#include "src/data/augment.h"

#include <algorithm>
#include <stdexcept>

namespace blurnet::data {

tensor::Tensor gaussian_noise(const tensor::Tensor& x, double sigma, util::Rng& rng) {
  tensor::Tensor out = x.clone();
  float* p = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    p[i] = static_cast<float>(std::clamp(p[i] + rng.normal(0.0, sigma), 0.0, 1.0));
  }
  return out;
}

tensor::Tensor brightness_jitter(const tensor::Tensor& x, double range, util::Rng& rng) {
  if (x.rank() != 4) throw std::invalid_argument("brightness_jitter: expected NCHW");
  tensor::Tensor out = x.clone();
  const std::int64_t n = x.dim(0);
  const std::int64_t stride = x.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    const float gain = static_cast<float>(rng.uniform(1.0 - range, 1.0 + range));
    float* p = out.data() + i * stride;
    for (std::int64_t j = 0; j < stride; ++j) {
      p[j] = std::clamp(p[j] * gain, 0.0f, 1.0f);
    }
  }
  return out;
}

}  // namespace blurnet::data
