// Dataset container, deterministic synthetic-LISA generation, batching and
// the held-out stop-sign evaluation set (the stand-in for the paper's 40
// physical stop-sign photos).
#pragma once

#include <string>
#include <vector>

#include "src/data/sign_renderer.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace blurnet::data {

struct Dataset {
  tensor::Tensor images;     // [N, 3, H, W]
  std::vector<int> labels;   // size N
  int num_classes = 0;

  std::int64_t size() const { return images.rank() == 4 ? images.dim(0) : 0; }

  /// Copy image i as a [1,3,H,W] batch.
  tensor::Tensor image_batch(std::int64_t i) const;
  /// Copy a subset of rows.
  Dataset subset(const std::vector<int>& indices) const;
};

struct Batch {
  tensor::Tensor images;    // [B, 3, H, W]
  std::vector<int> labels;  // size B
};

/// Shuffle + split a dataset into fixed-size batches (last partial batch kept).
std::vector<Batch> make_batches(const Dataset& data, int batch_size, util::Rng& rng);

struct SynthLisaOptions {
  int image_size = 32;
  int train_per_class = 60;
  int test_per_class = 15;
  /// Sample the full pose range (distance/angle variation) during training,
  /// matching the varied viewpoints of dashcam-style captures. Keeps the
  /// trained classifiers confident on the wide-pose stop-sign eval set.
  bool wide_pose = true;
  std::uint64_t seed = 42;
};

struct SynthLisa {
  Dataset train;
  Dataset test;
};

/// Generate the synthetic LISA-18 dataset (deterministic given the seed).
SynthLisa make_synth_lisa(const SynthLisaOptions& options);

/// Render `count` held-out stop signs at wide poses, with their sign-region
/// masks (stacked as [count,1,H,W]).
struct StopSignSet {
  tensor::Tensor images;  // [count, 3, H, W]
  tensor::Tensor masks;   // [count, 1, H, W] sign silhouette region
};
StopSignSet stop_sign_eval_set(int count, int image_size = 32, std::uint64_t seed = 977);

}  // namespace blurnet::data
