#include "src/data/sign_renderer.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace blurnet::data {

namespace {

using Vec2 = std::array<double, 2>;

enum class Silhouette { kOctagon, kDiamond, kTriangleDown, kRect, kPentagon, kDisc };

struct Prim {
  enum class Kind { kBar, kDisc, kRing };
  Kind kind = Kind::kBar;
  double cx = 0, cy = 0;    // centre in sign-local coords (v up)
  double w = 0.2, h = 0.2;  // bar: width/height; disc: w = radius; ring: w = outer radius, h = thickness
  double angle = 0.0;       // bar rotation (radians)
  Rgb color;
};

struct Archetype {
  Silhouette silhouette = Silhouette::kRect;
  Rgb base{0.9f, 0.9f, 0.9f};
  Rgb border{0.05f, 0.05f, 0.05f};
  double border_width = 0.08;  // fraction of the sign radius
  std::vector<Prim> glyphs;
};

constexpr Rgb kRed{0.72f, 0.07f, 0.07f};
constexpr Rgb kWhite{0.93f, 0.93f, 0.93f};
constexpr Rgb kBlack{0.06f, 0.06f, 0.06f};
constexpr Rgb kYellow{0.95f, 0.75f, 0.10f};
constexpr Rgb kYellowGreen{0.80f, 0.90f, 0.20f};
constexpr Rgb kGreen{0.10f, 0.60f, 0.20f};
constexpr Rgb kAmber{0.95f, 0.60f, 0.05f};

std::vector<Vec2> silhouette_polygon(Silhouette s) {
  switch (s) {
    case Silhouette::kOctagon: {
      std::vector<Vec2> v;
      for (int k = 0; k < 8; ++k) {
        const double a = M_PI / 8.0 + k * M_PI / 4.0;
        v.push_back({std::cos(a), std::sin(a)});
      }
      return v;
    }
    case Silhouette::kDiamond:
      return {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    case Silhouette::kTriangleDown:
      return {{0, -1}, {0.95, 0.72}, {-0.95, 0.72}};
    case Silhouette::kRect:
      return {{0.78, -0.95}, {0.78, 0.95}, {-0.78, 0.95}, {-0.78, -0.95}};
    case Silhouette::kPentagon: {
      std::vector<Vec2> v;
      for (int k = 0; k < 5; ++k) {
        const double a = M_PI / 2.0 + k * 2.0 * M_PI / 5.0;
        v.push_back({std::cos(a), std::sin(a)});
      }
      return v;
    }
    case Silhouette::kDisc:
      return {};  // handled analytically
  }
  return {};
}

bool inside_convex(const std::vector<Vec2>& verts, double u, double v) {
  const std::size_t n = verts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& a = verts[i];
    const Vec2& b = verts[(i + 1) % n];
    const double cross = (b[0] - a[0]) * (v - a[1]) - (b[1] - a[1]) * (u - a[0]);
    if (cross < 0) return false;
  }
  return true;
}

bool inside_silhouette(Silhouette s, const std::vector<Vec2>& poly, double u, double v,
                       double shrink = 1.0) {
  const double su = u / shrink;
  const double sv = v / shrink;
  if (s == Silhouette::kDisc) return su * su + sv * sv <= 1.0;
  return inside_convex(poly, su, sv);
}

bool inside_prim(const Prim& p, double u, double v) {
  const double du = u - p.cx;
  const double dv = v - p.cy;
  switch (p.kind) {
    case Prim::Kind::kBar: {
      const double c = std::cos(-p.angle), s = std::sin(-p.angle);
      const double x = du * c - dv * s;
      const double y = du * s + dv * c;
      return std::fabs(x) <= p.w / 2.0 && std::fabs(y) <= p.h / 2.0;
    }
    case Prim::Kind::kDisc:
      return du * du + dv * dv <= p.w * p.w;
    case Prim::Kind::kRing: {
      const double r = std::sqrt(du * du + dv * dv);
      return r <= p.w && r >= p.w - p.h;
    }
  }
  return false;
}

Prim bar(double cx, double cy, double w, double h, Rgb color, double angle = 0.0) {
  Prim p;
  p.kind = Prim::Kind::kBar;
  p.cx = cx; p.cy = cy; p.w = w; p.h = h; p.angle = angle; p.color = color;
  return p;
}

Prim disc(double cx, double cy, double r, Rgb color) {
  Prim p;
  p.kind = Prim::Kind::kDisc;
  p.cx = cx; p.cy = cy; p.w = r; p.color = color;
  return p;
}

Prim ring(double cx, double cy, double outer, double thickness, Rgb color) {
  Prim p;
  p.kind = Prim::Kind::kRing;
  p.cx = cx; p.cy = cy; p.w = outer; p.h = thickness; p.color = color;
  return p;
}

// The 18 class archetypes (names in class_names() below, index-aligned).
const std::vector<Archetype>& archetypes() {
  static const std::vector<Archetype> kArchetypes = [] {
    std::vector<Archetype> a(SignRenderer::kNumClasses);
    // 0: stop — red octagon, white band.
    a[0] = {Silhouette::kOctagon, kRed, kWhite, 0.10,
            {bar(0, 0, 1.35, 0.30, kWhite)}};
    // 1: yield — white triangle, thick red border.
    a[1] = {Silhouette::kTriangleDown, kWhite, kRed, 0.26, {}};
    // 2: speedLimit25 — white rect, two vertical digit bars + base bar.
    a[2] = {Silhouette::kRect, kWhite, kBlack, 0.07,
            {bar(-0.26, 0.28, 0.22, 0.62, kBlack), bar(0.26, 0.28, 0.22, 0.62, kBlack),
             bar(0, -0.45, 0.95, 0.18, kBlack)}};
    // 3: speedLimit30 — white rect, bar + disc digits.
    a[3] = {Silhouette::kRect, kWhite, kBlack, 0.07,
            {bar(-0.3, 0.28, 0.2, 0.62, kBlack), disc(0.25, 0.28, 0.28, kBlack),
             bar(0, -0.45, 0.95, 0.18, kBlack)}};
    // 4: speedLimit35 — white rect, slanted digit bars.
    a[4] = {Silhouette::kRect, kWhite, kBlack, 0.07,
            {bar(-0.25, 0.28, 0.2, 0.62, kBlack, 0.45), bar(0.25, 0.28, 0.2, 0.62, kBlack, -0.45),
             bar(0, -0.45, 0.95, 0.18, kBlack)}};
    // 5: speedLimit45 — white rect, X digit pattern.
    a[5] = {Silhouette::kRect, kWhite, kBlack, 0.07,
            {bar(0, 0.3, 0.18, 0.85, kBlack, 0.6), bar(0, 0.3, 0.18, 0.85, kBlack, -0.6),
             bar(0, -0.45, 0.95, 0.18, kBlack)}};
    // 6: signalAhead — yellow diamond, traffic-signal glyph.
    a[6] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
            {bar(0, 0, 0.40, 1.05, kBlack), disc(0, 0.32, 0.11, kRed),
             disc(0, 0, 0.11, kAmber), disc(0, -0.32, 0.11, kGreen)}};
    // 7: pedestrianCrossing — yellow diamond, walking figure.
    a[7] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
            {disc(0, 0.42, 0.13, kBlack), bar(0, 0.02, 0.20, 0.55, kBlack),
             bar(-0.14, -0.42, 0.14, 0.45, kBlack, 0.35),
             bar(0.14, -0.42, 0.14, 0.45, kBlack, -0.35)}};
    // 8: laneEnds — yellow diamond, converging bars.
    a[8] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
            {bar(-0.24, 0, 0.13, 0.95, kBlack, 0.28), bar(0.24, 0, 0.13, 0.95, kBlack, -0.28)}};
    // 9: school — yellow-green pentagon, two figures over a base line.
    a[9] = {Silhouette::kPentagon, kYellowGreen, kBlack, 0.07,
            {disc(-0.22, 0.18, 0.13, kBlack), disc(0.22, 0.18, 0.13, kBlack),
             bar(0, -0.32, 0.85, 0.16, kBlack)}};
    // 10: merge — yellow diamond, merging lane glyph.
    a[10] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
             {bar(0.05, 0, 0.14, 1.05, kBlack, 0.32), bar(0.34, -0.28, 0.14, 0.5, kBlack, -0.5)}};
    // 11: addedLane — yellow diamond, two parallel bars.
    a[11] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
             {bar(-0.2, 0, 0.13, 1.0, kBlack), bar(0.2, 0, 0.13, 1.0, kBlack)}};
    // 12: keepRight — white rect, right-pointing arrow block.
    a[12] = {Silhouette::kRect, kWhite, kBlack, 0.07,
             {bar(0.18, -0.15, 0.2, 0.8, kBlack), bar(0.18, 0.38, 0.55, 0.18, kBlack),
              bar(0.42, 0.25, 0.18, 0.4, kBlack, 0.6)}};
    // 13: stopAhead — yellow diamond, red octagon inset.
    a[13] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
             {disc(0, 0.05, 0.38, kRed), bar(0, 0.05, 0.5, 0.12, kWhite)}};
    // 14: yieldAhead — yellow diamond, red triangle ring inset.
    a[14] = {Silhouette::kDiamond, kYellow, kBlack, 0.06,
             {ring(0, 0.05, 0.42, 0.14, kRed)}};
    // 15: turnRight — white rect, L-shaped arrow.
    a[15] = {Silhouette::kRect, kWhite, kBlack, 0.07,
             {bar(-0.1, -0.2, 0.18, 0.7, kBlack), bar(0.2, 0.28, 0.6, 0.18, kBlack),
              bar(0.45, 0.28, 0.2, 0.42, kBlack, 0.7)}};
    // 16: doNotPass — white rect, two horizontal bars.
    a[16] = {Silhouette::kRect, kWhite, kBlack, 0.07,
             {bar(0, 0.3, 0.9, 0.17, kBlack), bar(0, -0.3, 0.9, 0.17, kBlack)}};
    // 17: noLeftTurn — white disc, red border + slash over arrow.
    a[17] = {Silhouette::kDisc, kWhite, kRed, 0.11,
             {bar(0.05, -0.12, 0.5, 0.16, kBlack), bar(-0.3, 0.1, 0.16, 0.45, kBlack, 0.5),
              bar(0, 0, 0.16, 1.4, kRed, M_PI / 4.0)}};
    return a;
  }();
  return kArchetypes;
}

}  // namespace

const std::vector<std::string>& SignRenderer::class_names() {
  static const std::vector<std::string> kNames = {
      "stop",          "yield",        "speedLimit25", "speedLimit30", "speedLimit35",
      "speedLimit45",  "signalAhead",  "pedestrianCrossing", "laneEnds", "school",
      "merge",         "addedLane",    "keepRight",    "stopAhead",    "yieldAhead",
      "turnRight",     "rightLaneMustTurn",            "doNotPass"};
  return kNames;
}

SignRenderer::SignRenderer(int image_size, int supersample)
    : image_size_(image_size), supersample_(supersample) {
  if (image_size <= 0 || supersample <= 0) {
    throw std::invalid_argument("SignRenderer: sizes must be positive");
  }
}

RenderParams SignRenderer::sample_params(util::Rng& rng, bool wide_pose) {
  RenderParams p;
  const double rot_range = wide_pose ? 0.30 : 0.15;
  p.rotation = rng.uniform(-rot_range, rot_range);
  p.scale = wide_pose ? rng.uniform(0.62, 1.10) : rng.uniform(0.80, 1.05);
  const double shift = wide_pose ? 3.0 : 2.0;
  p.dx = rng.uniform(-shift, shift);
  p.dy = rng.uniform(-shift, shift);
  p.brightness = rng.uniform(0.75, 1.15);
  // Mild sensor noise: enough to be realistic, low enough that the trained
  // classifier keeps the sharp high-frequency sensitivity the RP2 attack
  // exploits (heavy noise would act as implicit augmentation-robustness).
  p.noise_std = rng.uniform(0.003, 0.012);
  p.background = Rgb{static_cast<float>(rng.uniform(0.25, 0.7)),
                     static_cast<float>(rng.uniform(0.3, 0.7)),
                     static_cast<float>(rng.uniform(0.3, 0.75))};
  p.noise_seed = rng.next_u64();
  return p;
}

tensor::Tensor SignRenderer::render(int class_id, const RenderParams& params) const {
  if (class_id < 0 || class_id >= kNumClasses) {
    throw std::invalid_argument("SignRenderer::render: class_id out of range");
  }
  const Archetype& arch = archetypes()[static_cast<std::size_t>(class_id)];
  const auto poly = silhouette_polygon(arch.silhouette);

  const int size = image_size_;
  tensor::Tensor image(tensor::Shape{3, size, size});
  const double cx = (size - 1) / 2.0 + params.dx;
  const double cy = (size - 1) / 2.0 + params.dy;
  const double radius = 0.42 * size * params.scale;
  const double cos_t = std::cos(params.rotation);
  const double sin_t = std::sin(params.rotation);
  const int ss = supersample_;
  const double inv_ss = 1.0 / ss;

  for (int py = 0; py < size; ++py) {
    for (int px = 0; px < size; ++px) {
      double acc_r = 0, acc_g = 0, acc_b = 0;
      for (int sy = 0; sy < ss; ++sy) {
        for (int sx = 0; sx < ss; ++sx) {
          const double fx = px + (sx + 0.5) * inv_ss - 0.5 - cx;
          const double fy = py + (sy + 0.5) * inv_ss - 0.5 - cy;
          // Rotate into sign frame; v axis points up.
          const double u = (fx * cos_t + fy * sin_t) / radius;
          const double v = -(-fx * sin_t + fy * cos_t) / radius;
          Rgb color = params.background;
          // Soft vertical background gradient for mild realism.
          const float grad = static_cast<float>(0.06 * (static_cast<double>(py) / size - 0.5));
          color.r -= grad;
          color.g -= grad;
          color.b -= grad;
          if (inside_silhouette(arch.silhouette, poly, u, v)) {
            color = arch.border;
            if (inside_silhouette(arch.silhouette, poly, u, v, 1.0 - arch.border_width)) {
              color = arch.base;
              for (const auto& prim : arch.glyphs) {
                if (inside_prim(prim, u, v)) color = prim.color;
              }
            }
          }
          acc_r += color.r;
          acc_g += color.g;
          acc_b += color.b;
        }
      }
      const double norm = 1.0 / (ss * ss);
      image[0 * size * size + py * size + px] = static_cast<float>(acc_r * norm);
      image[1 * size * size + py * size + px] = static_cast<float>(acc_g * norm);
      image[2 * size * size + py * size + px] = static_cast<float>(acc_b * norm);
    }
  }

  // Photometric jitter + sensor noise, clamped to [0,1].
  util::Rng noise_rng(params.noise_seed);
  float* data = image.data();
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    double value = data[i] * params.brightness +
                   noise_rng.normal(0.0, params.noise_std);
    data[i] = static_cast<float>(std::clamp(value, 0.0, 1.0));
  }
  return image;
}

tensor::Tensor SignRenderer::sign_region_mask(int class_id, const RenderParams& params) const {
  if (class_id < 0 || class_id >= kNumClasses) {
    throw std::invalid_argument("SignRenderer::sign_region_mask: class_id out of range");
  }
  const Archetype& arch = archetypes()[static_cast<std::size_t>(class_id)];
  const auto poly = silhouette_polygon(arch.silhouette);
  const int size = image_size_;
  tensor::Tensor mask(tensor::Shape{1, size, size});
  const double cx = (size - 1) / 2.0 + params.dx;
  const double cy = (size - 1) / 2.0 + params.dy;
  const double radius = 0.42 * size * params.scale;
  const double cos_t = std::cos(params.rotation);
  const double sin_t = std::sin(params.rotation);
  for (int py = 0; py < size; ++py) {
    for (int px = 0; px < size; ++px) {
      const double fx = px - cx;
      const double fy = py - cy;
      const double u = (fx * cos_t + fy * sin_t) / radius;
      const double v = -(-fx * sin_t + fy * cos_t) / radius;
      mask[py * size + px] = inside_silhouette(arch.silhouette, poly, u, v) ? 1.0f : 0.0f;
    }
  }
  return mask;
}

}  // namespace blurnet::data
