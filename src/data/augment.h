// Training-time augmentations: Gaussian noise (the paper's "Gaussian aug"
// baseline and the randomized-smoothing sampler) and brightness jitter.
#pragma once

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace blurnet::data {

/// x + N(0, sigma^2) per element, clamped to [0,1].
tensor::Tensor gaussian_noise(const tensor::Tensor& x, double sigma, util::Rng& rng);

/// Per-image multiplicative brightness jitter in [1-range, 1+range], clamped.
tensor::Tensor brightness_jitter(const tensor::Tensor& x, double range, util::Rng& rng);

}  // namespace blurnet::data
