// Procedural traffic-sign renderer: the synthetic stand-in for the LISA
// dataset (see DESIGN.md §1 for the substitution argument).
//
// Each of the 18 classes is an archetype: a convex sign silhouette (octagon,
// diamond, triangle, rectangle, disc) with a border and a class-specific
// glyph pattern, rendered at 32×32 with pose, lighting and background jitter
// plus additive sensor noise. Rendering is supersampled for soft edges so the
// images have the smooth-region/sharp-edge statistics the paper's frequency
// analysis relies on.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace blurnet::data {

struct Rgb {
  float r = 0, g = 0, b = 0;
};

/// Pose / photometric parameters of one render.
struct RenderParams {
  double rotation = 0.0;      // radians
  double scale = 1.0;         // sign radius multiplier
  double dx = 0.0, dy = 0.0;  // centre offset in pixels
  double brightness = 1.0;    // global gain
  double noise_std = 0.02;    // additive Gaussian sensor noise
  Rgb background{0.45f, 0.5f, 0.55f};
  std::uint64_t noise_seed = 1;
};

class SignRenderer {
 public:
  explicit SignRenderer(int image_size = 32, int supersample = 2);

  static constexpr int kNumClasses = 18;
  static const std::vector<std::string>& class_names();
  static int stop_class_id() { return 0; }

  /// Render one sign as a [3,H,W] tensor in [0,1].
  tensor::Tensor render(int class_id, const RenderParams& params) const;

  /// Draw pose/lighting/background jitter. `wide_pose` widens the pose range
  /// (used for the evaluation set, mimicking varied distances/angles).
  static RenderParams sample_params(util::Rng& rng, bool wide_pose = false);

  int image_size() const { return image_size_; }

  /// Binary mask [1,H,W] of the sign region (1 inside the silhouette) for a
  /// given pose — the attack's M_x mask is derived from this.
  tensor::Tensor sign_region_mask(int class_id, const RenderParams& params) const;

 private:
  int image_size_;
  int supersample_;
};

}  // namespace blurnet::data
