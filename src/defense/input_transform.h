// Input-transformation defenses: stateless preprocessing kernels applied to
// the *image* before it reaches the classifier (vs BlurNet's feature-map
// filtering). The serving engine runs one of these as the preprocess stage of
// a variant's preprocess→forward pipeline, so transformed variants inherit
// batching, replica sharding and the bitwise determinism contract unchanged.
//
// Three kernels, the related-work axis of Xu et al. (NDSS 2018) and
// JPEG-style compression defenses:
//
//   * bit-depth squeeze  — round each pixel to 2^bits - 1 uniform levels,
//   * k×k median filter  — per-channel spatial median with replicate padding,
//   * 8×8 DCT quantize   — JPEG-style blockwise DCT coefficient quantization
//                          at a libjpeg-convention quality factor.
//
// All three are deterministic, per-image (so batch splits cannot change
// results), thread-safe (per-thread scratch only, mirroring the conv path's
// ConvScratch), and non-differentiable — the attack side breaks them with
// BPDA straight-through gradients (attack::VictimHandle).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace blurnet::defense {

enum class TransformKind { kNone, kSqueeze, kMedian, kDctQuant };

const char* to_string(TransformKind kind);

/// One transform recipe. Only the field matching `kind` is read.
struct TransformSpec {
  TransformKind kind = TransformKind::kNone;
  int bits = 5;      // kSqueeze: pixel bit depth, 1..8
  int kernel = 3;    // kMedian: window side, odd and >= 1
  int quality = 50;  // kDctQuant: JPEG-convention quality factor, 1..100

  static TransformSpec none() { return {}; }
  static TransformSpec squeeze(int bits);
  static TransformSpec median(int kernel);
  static TransformSpec dct_quant(int quality);

  /// Canonical zoo name: "none", "squeeze5", "median3", "dctq50".
  std::string name() const;

  /// Reject malformed specs with a descriptive std::invalid_argument (the
  /// serving engine's input-validation style).
  void validate() const;
};

/// A validated, immutable transform: apply() maps a CHW image or NCHW batch
/// to its transformed counterpart, same shape, clamped to [0,1]. Stateless
/// beyond the spec, so one instance may be shared by every replica of a
/// variant and called from any number of threads at once.
class InputTransform {
 public:
  explicit InputTransform(TransformSpec spec);
  virtual ~InputTransform() = default;

  const TransformSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }

  /// Virtual so custom preprocess stages can be injected into the serving
  /// pipeline (InferenceEngine::register_pipeline_variant) — the load tests
  /// use a gate transform that blocks here to fill queues deterministically.
  /// Overrides must keep the contract above: same shape, deterministic,
  /// per-image, thread-safe.
  virtual tensor::Tensor apply(const tensor::Tensor& images) const;

 protected:
  /// For subclasses providing their own apply(): records the spec (typically
  /// kNone) under a custom zoo name.
  InputTransform(TransformSpec spec, std::string name);

 private:
  TransformSpec spec_;
  std::string name_;
};

using TransformPtr = std::shared_ptr<const InputTransform>;

/// Build a shareable transform from a validated spec. kNone yields nullptr —
/// the engine's representation of "no preprocess stage", so a kNone-wrapped
/// variant is bitwise the plain forward path.
TransformPtr make_transform(const TransformSpec& spec);

/// The standard defense zoo: squeeze4, squeeze5, median3, median5, dctq50,
/// dctq75 (names are TransformSpec::name()).
std::vector<TransformSpec> standard_transforms();

// ---- raw kernels (exposed for tests and microbenchmarks) --------------------
/// Round every value of a [0,1] image to 2^bits - 1 uniform levels
/// (clamping first). Idempotent. bits in 1..8.
tensor::Tensor bit_depth_squeeze(const tensor::Tensor& x, int bits);
/// Per-plane k×k spatial median with replicate (edge-clamp) padding, so every
/// window holds exactly k*k samples and a constant plane stays constant at
/// the borders. kernel odd and >= 1 (1 is the identity).
tensor::Tensor median_filter_nchw(const tensor::Tensor& x, int kernel);
/// JPEG-style blockwise compression of a [0,1] image: each channel plane is
/// scaled to [-128,127], split into 8×8 blocks (edge-replicated past the
/// boundary), DCT-II transformed, quantized with the JPEG luminance table
/// scaled by `quality` (libjpeg convention, 1..100), dequantized and inverse
/// transformed. Output clamped back to [0,1].
tensor::Tensor dct_quantize_nchw(const tensor::Tensor& x, int quality);

}  // namespace blurnet::defense
