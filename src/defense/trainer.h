// Training loop for every model variant in the paper's evaluation: plain
// cross-entropy, the BlurNet regularizers, Gaussian-augmentation training
// (Cohen et al. baseline), and 50/50 PGD adversarial training (Madry et al.).
#pragma once

#include <cstdint>

#include "src/attack/pgd.h"
#include "src/data/dataset.h"
#include "src/defense/regularizers.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::defense {

struct TrainConfig {
  int epochs = 15;
  int batch_size = 32;
  double learning_rate = 1e-3;  // Adam, β/ε as in the paper (§II-D)
  std::uint64_t seed = 11;

  RegularizerSpec regularizer;

  /// Gaussian-augmentation sigma (0 disables). Applied to every batch.
  double gaussian_sigma = 0.0;

  /// PGD adversarial training: each epoch trains half the batches on clean
  /// and half on adversarial examples (paper §IV-D).
  bool adversarial = false;
  attack::PgdConfig adversarial_pgd;

  bool verbose = false;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (non-positive epochs/batch/learning rate, negative sigma; the PGD
  /// sub-config validates when adversarial training is on). Called by
  /// train_classifier.
  void validate() const;
};

struct TrainStats {
  double final_train_loss = 0.0;
  double test_accuracy = 0.0;
  int epochs_run = 0;
};

/// Top-1 accuracy over a dataset (batched inference).
double classifier_accuracy(const nn::LisaCnn& model, const data::Dataset& dataset,
                           int batch_size = 64);

/// Train in place; returns final statistics.
TrainStats train_classifier(nn::LisaCnn& model, const data::Dataset& train,
                            const data::Dataset& test, const TrainConfig& config);

}  // namespace blurnet::defense
