#include "src/defense/regularizers.h"

#include <cmath>
#include <stdexcept>

#include "src/autograd/ops.h"
#include "src/linalg/operators.h"
#include "src/linalg/svd.h"

namespace blurnet::defense {

std::string to_string(RegularizerKind kind) {
  switch (kind) {
    case RegularizerKind::kNone: return "none";
    case RegularizerKind::kLinfDepthwise: return "linf_depthwise";
    case RegularizerKind::kTv: return "tv";
    case RegularizerKind::kTikHf: return "tik_hf";
    case RegularizerKind::kTikPseudo: return "tik_pseudo";
  }
  return "?";
}

tensor::Tensor tik_hf_operator(int n, int window) {
  const linalg::Matrix l = linalg::high_frequency_operator(n, window);
  tensor::Tensor out(tensor::Shape::mat(n, n));
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) out.at2(r, c) = static_cast<float>(l.at(r, c));
  return out;
}

tensor::Tensor tik_pseudo_operator(int h, int w) {
  // L_diff is (h-1)×h, so L_diff⁺ is h×(h-1); zero-pad the missing column and
  // tile cyclically if the maps are wider than tall.
  const linalg::Matrix p = linalg::difference_pinv(h);
  tensor::Tensor out(tensor::Shape::mat(h, w));
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const int src_col = c % h;
      out.at2(r, c) =
          src_col < h - 1 ? static_cast<float>(p.at(r, src_col)) : 0.0f;
    }
  }
  return out;
}

namespace {

/// Batch activation scale treated as a constant w.r.t. the graph: mean |F|
/// for the (1-homogeneous) TV penalty, mean F² for the quadratic Tikhonov
/// penalties. See RegularizerSpec::normalize.
float activation_scale(const nn::ForwardResult& forward, bool squared) {
  const tensor::Tensor& f = forward.features_l1.value();
  double acc = 0.0;
  const float* p = f.data();
  for (std::int64_t i = 0; i < f.numel(); ++i) {
    acc += squared ? static_cast<double>(p[i]) * p[i] : std::fabs(p[i]);
  }
  return static_cast<float>(acc / static_cast<double>(f.numel()) + 1e-6);
}

}  // namespace

autograd::Variable regularization_term(const RegularizerSpec& spec, const nn::LisaCnn& model,
                                       const nn::ForwardResult& forward) {
  if (spec.kind == RegularizerKind::kNone || spec.alpha == 0.0) return {};
  const float alpha = static_cast<float>(spec.alpha);
  switch (spec.kind) {
    case RegularizerKind::kLinfDepthwise: {
      const autograd::Variable w = model.depthwise_weights();
      if (!w.defined()) {
        throw std::logic_error(
            "regularization_term: linf_depthwise requires a learnable depthwise layer");
      }
      return autograd::mul_scalar(autograd::linf_per_channel(w), alpha);
    }
    case RegularizerKind::kTv: {
      const float scale =
          spec.normalize ? alpha / activation_scale(forward, /*squared=*/false) : alpha;
      return autograd::mul_scalar(autograd::tv_loss(forward.features_l1), scale);
    }
    case RegularizerKind::kTikHf: {
      const int h = static_cast<int>(forward.features_l1.shape()[2]);
      const float scale =
          spec.normalize ? alpha / activation_scale(forward, /*squared=*/true) : alpha;
      return autograd::mul_scalar(
          autograd::tikhonov_rows(forward.features_l1, tik_hf_operator(h, spec.avg_window)),
          scale);
    }
    case RegularizerKind::kTikPseudo: {
      const int h = static_cast<int>(forward.features_l1.shape()[2]);
      const int w = static_cast<int>(forward.features_l1.shape()[3]);
      const float scale =
          spec.normalize ? alpha / activation_scale(forward, /*squared=*/true) : alpha;
      return autograd::mul_scalar(
          autograd::tikhonov_elementwise(forward.features_l1, tik_pseudo_operator(h, w)),
          scale);
    }
    case RegularizerKind::kNone:
      break;
  }
  return {};
}

}  // namespace blurnet::defense
