#include "src/defense/randomized_smoothing.h"

#include <algorithm>
#include <stdexcept>

#include "src/data/augment.h"
#include "src/util/rng.h"

namespace blurnet::defense {

void SmoothingConfig::validate() const {
  if (sigma < 0.0) {
    throw std::invalid_argument("SmoothingConfig: sigma must be non-negative");
  }
  if (samples <= 0) {
    throw std::invalid_argument("SmoothingConfig: samples must be positive");
  }
}

std::vector<int> smoothed_predict(const SampleClassifier& classify, int num_classes,
                                  const tensor::Tensor& images, const SmoothingConfig& config) {
  config.validate();
  if (images.rank() != 4) throw std::invalid_argument("smoothed_predict: expected NCHW");
  if (!classify) throw std::invalid_argument("smoothed_predict: classifier must be callable");
  const std::int64_t n = images.dim(0);
  std::vector<std::vector<int>> votes(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(num_classes), 0));
  util::Rng rng(config.seed);
  for (int s = 0; s < config.samples; ++s) {
    const auto noisy = data::gaussian_noise(images, config.sigma, rng);
    const auto preds = classify(noisy);
    for (std::int64_t i = 0; i < n; ++i) {
      votes[static_cast<std::size_t>(i)][static_cast<std::size_t>(preds[static_cast<std::size_t>(i)])]++;
    }
  }
  std::vector<int> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& v = votes[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
  }
  return out;
}

std::vector<int> smoothed_predict(const nn::LisaCnn& model, const tensor::Tensor& images,
                                  const SmoothingConfig& config) {
  return smoothed_predict(
      [&model](const tensor::Tensor& batch) { return model.predict(batch); },
      model.config().num_classes, images, config);
}

double smoothed_accuracy(const nn::LisaCnn& model, const tensor::Tensor& images,
                         const std::vector<int>& labels, const SmoothingConfig& config) {
  const auto preds = smoothed_predict(model, images, config);
  if (preds.size() != labels.size()) {
    throw std::invalid_argument("smoothed_accuracy: label count mismatch");
  }
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return preds.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace blurnet::defense
