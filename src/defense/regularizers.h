// The BlurNet training-time defenses (paper §IV): every regularization
// scheme that induces low-pass behaviour in the first-layer feature maps.
//
//   kLinfDepthwise — Eq. (2): α·Σ_c ‖W_dw[c]‖∞ on the learnable filter layer
//   kTv            — Eq. (4): α·(1/NK)·Σ TV(F)
//   kTikHf         — Eq. (6): α·(1/NK)·Σ ‖(I−L_avg)·F‖²
//   kTikPseudo     — Eq. (7): α·(1/NK)·Σ ‖L_diff⁺ ⊙ F‖²
#pragma once

#include <string>

#include "src/autograd/variable.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::defense {

enum class RegularizerKind { kNone, kLinfDepthwise, kTv, kTikHf, kTikPseudo };

struct RegularizerSpec {
  RegularizerKind kind = RegularizerKind::kNone;
  double alpha = 0.0;
  int avg_window = 3;  // moving-average window of L_avg for Tik_hf

  /// Scale-normalized penalties (default). The raw TV/Tikhonov penalties of
  /// Eqs. (4)/(6)/(7) are scale-variant while cross-entropy is not: at finite
  /// epochs the network minimizes them by shrinking activation amplitude
  /// instead of smoothing spatially (downstream layers rescale for free). We
  /// therefore divide the feature penalties by the batch activation scale
  /// (treated as a constant), which preserves the spatial preference the
  /// paper intends. Disable to get the literal paper objective.
  bool normalize = true;

  static RegularizerSpec none() { return {}; }
  static RegularizerSpec linf(double alpha) {
    return {RegularizerKind::kLinfDepthwise, alpha, 3, true};
  }
  static RegularizerSpec tv(double alpha) { return {RegularizerKind::kTv, alpha, 3, true}; }
  static RegularizerSpec tik_hf(double alpha, int window = 3) {
    return {RegularizerKind::kTikHf, alpha, window, true};
  }
  static RegularizerSpec tik_pseudo(double alpha) {
    return {RegularizerKind::kTikPseudo, alpha, 3, true};
  }
};

std::string to_string(RegularizerKind kind);

/// L_hf = I − L_avg(window) as a float tensor [n,n].
tensor::Tensor tik_hf_operator(int n, int window = 3);

/// L_diff⁺ zero-padded to h×h and tiled to width w (elementwise operator).
tensor::Tensor tik_pseudo_operator(int h, int w);

/// The regularization term for one forward pass (undefined Variable when the
/// spec is kNone or alpha == 0). Uses the *unfiltered* first-layer maps,
/// matching the paper (the penalty shapes conv1, not the filter layer).
autograd::Variable regularization_term(const RegularizerSpec& spec, const nn::LisaCnn& model,
                                       const nn::ForwardResult& forward);

}  // namespace blurnet::defense
