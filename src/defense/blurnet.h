// Umbrella header: the BlurNet public API.
//
//   #include "src/defense/blurnet.h"
//
// pulls in the classifier, dataset, defenses, attacks and evaluation metrics
// needed to reproduce the paper end to end. See examples/quickstart.cpp.
#pragma once

#include "src/attack/adaptive.h"       // IWYU pragma: export
#include "src/attack/masks.h"          // IWYU pragma: export
#include "src/attack/pgd.h"            // IWYU pragma: export
#include "src/attack/rp2.h"            // IWYU pragma: export
#include "src/data/dataset.h"          // IWYU pragma: export
#include "src/defense/model_zoo.h"     // IWYU pragma: export
#include "src/defense/randomized_smoothing.h"  // IWYU pragma: export
#include "src/defense/regularizers.h"  // IWYU pragma: export
#include "src/defense/trainer.h"       // IWYU pragma: export
#include "src/nn/lisa_cnn.h"           // IWYU pragma: export
