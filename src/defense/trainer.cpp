#include "src/defense/trainer.h"

#include <stdexcept>

#include "src/autograd/ops.h"
#include "src/data/augment.h"
#include "src/nn/optim.h"
#include "src/tensor/ops.h"
#include "src/util/logging.h"

namespace blurnet::defense {

using autograd::Variable;
using tensor::Tensor;

double classifier_accuracy(const nn::LisaCnn& model, const data::Dataset& dataset,
                           int batch_size) {
  const std::int64_t n = dataset.size();
  if (n == 0) return 0.0;
  const std::int64_t c = dataset.images.dim(1), h = dataset.images.dim(2),
                     w = dataset.images.dim(3);
  const std::int64_t stride = c * h * w;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t end = std::min<std::int64_t>(n, start + batch_size);
    Tensor batch(tensor::Shape::nchw(end - start, c, h, w));
    std::copy(dataset.images.data() + start * stride, dataset.images.data() + end * stride,
              batch.data());
    const auto preds = model.predict(batch);
    for (std::int64_t i = start; i < end; ++i) {
      if (preds[static_cast<std::size_t>(i - start)] ==
          dataset.labels[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

void TrainConfig::validate() const {
  if (epochs <= 0) {
    throw std::invalid_argument("TrainConfig: epochs must be positive");
  }
  if (batch_size <= 0) {
    throw std::invalid_argument("TrainConfig: batch_size must be positive");
  }
  if (learning_rate <= 0.0) {
    throw std::invalid_argument("TrainConfig: learning_rate must be positive");
  }
  if (gaussian_sigma < 0.0) {
    throw std::invalid_argument("TrainConfig: gaussian_sigma must be non-negative");
  }
  if (adversarial) adversarial_pgd.validate();
}

TrainStats train_classifier(nn::LisaCnn& model, const data::Dataset& train,
                            const data::Dataset& test, const TrainConfig& config) {
  config.validate();
  util::Rng rng(config.seed);
  // Paper §II-D: Adam with β1=0.9, β2=0.999, ε=1e-8.
  nn::Adam optimizer(model.parameters(), config.learning_rate, 0.9, 0.999, 1e-8);

  TrainStats stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    auto batches = data::make_batches(train, config.batch_size, rng);
    double epoch_loss = 0.0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      Tensor images = batches[b].images;
      const std::vector<int>& labels = batches[b].labels;

      if (config.gaussian_sigma > 0.0) {
        images = data::gaussian_noise(images, config.gaussian_sigma, rng);
      }
      // 50/50 clean/adversarial schedule: odd batches are attacked with PGD
      // against the current weights.
      if (config.adversarial && (b % 2 == 1)) {
        attack::PgdConfig pgd = config.adversarial_pgd;
        pgd.seed = rng.next_u64();
        images = attack::pgd_attack(model, images, labels, pgd).adversarial;
      }

      const Variable input = Variable::constant(images);
      const auto forward = model.forward(input);
      Variable loss = autograd::softmax_cross_entropy(forward.logits, labels);
      const Variable reg = regularization_term(config.regularizer, model, forward);
      if (reg.defined()) loss = autograd::add(loss, reg);

      optimizer.zero_grad();
      autograd::backward(loss);
      optimizer.step();
      epoch_loss += loss.scalar_value();
    }
    stats.final_train_loss = epoch_loss / static_cast<double>(batches.size());
    stats.epochs_run = epoch + 1;
    if (config.verbose) {
      util::log_info() << "epoch " << (epoch + 1) << "/" << config.epochs
                       << " loss=" << stats.final_train_loss;
    }
  }
  stats.test_accuracy = classifier_accuracy(model, test);
  return stats;
}

}  // namespace blurnet::defense
