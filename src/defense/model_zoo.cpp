#include "src/defense/model_zoo.h"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "src/util/env.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace blurnet::defense {

ZooConfig default_zoo_config() {
  ZooConfig config;
  if (util::env_flag("BLURNET_FAST")) {
    config.dataset.train_per_class = 24;
    config.dataset.test_per_class = 8;
    config.epochs = 4;
  } else if (util::env_flag("BLURNET_PAPER")) {
    config.dataset.train_per_class = 100;
    config.dataset.test_per_class = 25;
    config.epochs = 30;
  } else {
    config.dataset.train_per_class = 40;
    config.dataset.test_per_class = 12;
    config.epochs = 12;
  }
  if (const auto dir = util::env_string("BLURNET_CACHE_DIR")) {
    config.cache_dir = *dir;
  }
  return config;
}

namespace {

std::map<std::string, ZooEntry> build_specs(const ZooConfig& zoo) {
  std::map<std::string, ZooEntry> specs;

  nn::LisaCnnConfig base_model;
  base_model.image_size = zoo.dataset.image_size;
  // Scaled LISA-CNN (see DESIGN.md §1): 3 conv + FC.
  base_model.conv1_filters = 8;
  base_model.conv2_filters = 16;
  base_model.conv3_filters = 32;

  TrainConfig base_train;
  base_train.epochs = zoo.epochs;
  base_train.verbose = zoo.verbose;

  auto add = [&](const std::string& name, nn::LisaCnnConfig model, TrainConfig train,
                 const std::string& description) {
    specs.emplace(name, ZooEntry{model, train, description});
  };

  add("baseline", base_model, base_train, "undefended classifier");

  // Learnable depthwise filter layer + L-inf penalty (Table II alphas).
  {
    nn::LisaCnnConfig m = base_model;
    TrainConfig t = base_train;
    m.learnable_depthwise_kernel = 3;
    t.regularizer = RegularizerSpec::linf(1e-5);
    add("dw3", m, t, "3x3 depthwise conv, L-inf alpha=1e-5");
    m.learnable_depthwise_kernel = 5;
    t.regularizer = RegularizerSpec::linf(0.1);
    add("dw5", m, t, "5x5 depthwise conv, L-inf alpha=0.1");
    m.learnable_depthwise_kernel = 7;
    t.regularizer = RegularizerSpec::linf(0.1);
    add("dw7", m, t, "7x7 depthwise conv, L-inf alpha=0.1");
  }

  // Total-variation regularization on the first-layer feature maps.
  //
  // The variant names keep the paper's alpha labels (its table rows); the
  // effective strengths are recalibrated for our scale-normalized objective
  // (see RegularizerSpec::normalize and EXPERIMENTS.md): the paper's raw
  // alphas are tied to the authors' feature magnitudes and are inert here.
  {
    TrainConfig t = base_train;
    t.regularizer = RegularizerSpec::tv(3e-4);
    add("tv1e-4", base_model, t, "TV feature regularization (paper row alpha=1e-4)");
    t.regularizer = RegularizerSpec::tv(1e-4);
    add("tv1e-5", base_model, t, "TV feature regularization (paper row alpha=1e-5)");
  }

  // Tikhonov regularization (same recalibration note as TV).
  {
    TrainConfig t = base_train;
    t.regularizer = RegularizerSpec::tik_hf(3e-4);
    add("tik_hf", base_model, t, "Tikhonov high-frequency operator (paper alpha=1e-4)");
    t.regularizer = RegularizerSpec::tik_pseudo(3e-4);
    add("tik_pseudo", base_model, t, "Tikhonov pseudoinverse operator (paper alpha=1e-6)");
  }

  // Gaussian augmentation baselines (Cohen et al.).
  for (const double sigma : {0.1, 0.2, 0.3}) {
    TrainConfig t = base_train;
    t.gaussian_sigma = sigma;
    std::ostringstream name;
    name << "gauss" << sigma;
    add(name.str(), base_model, t, "Gaussian augmentation");
  }

  // PGD adversarial training (Madry et al.; paper §IV-D parameters).
  {
    TrainConfig t = base_train;
    t.adversarial = true;
    t.adversarial_pgd.epsilon = 8.0 / 255.0;
    t.adversarial_pgd.step_size = 0.1;
    t.adversarial_pgd.steps = 7;
    add("advtrain", base_model, t, "PGD adversarial training, eps=8/255");
  }

  return specs;
}

}  // namespace

void ZooConfig::validate() const {
  if (epochs <= 0) {
    throw std::invalid_argument("ZooConfig: epochs must be positive");
  }
  if (cache_dir.empty()) {
    throw std::invalid_argument("ZooConfig: cache_dir must not be empty");
  }
}

ModelZoo::ModelZoo(ZooConfig config) : config_(std::move(config)) {
  config_.validate();
  specs_ = build_specs(config_);
}

std::vector<std::string> ModelZoo::known_variants() {
  return {"baseline", "dw3",      "dw5",      "dw7",      "tv1e-4",  "tv1e-5",
          "tik_hf",   "tik_pseudo", "gauss0.1", "gauss0.2", "gauss0.3", "advtrain"};
}

std::vector<std::string> ModelZoo::transform_variants() {
  std::vector<std::string> names;
  for (const auto& spec : standard_transforms()) names.push_back(spec.name());
  return names;
}

TransformSpec ModelZoo::transform_spec(const std::string& name) {
  for (const auto& spec : standard_transforms()) {
    if (spec.name() == name) return spec;
  }
  std::string known;
  for (const auto& spec : standard_transforms()) {
    if (!known.empty()) known += ", ";
    known += spec.name();
  }
  throw std::invalid_argument("ModelZoo: unknown transform variant \"" + name +
                              "\" (registered: " + known + ")");
}

const ZooEntry& ModelZoo::spec(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) throw std::invalid_argument("ModelZoo: unknown variant " + name);
  return it->second;
}

const data::SynthLisa& ModelZoo::dataset() {
  if (!data_) data_ = data::make_synth_lisa(config_.dataset);
  return *data_;
}

std::string ModelZoo::cache_path(const std::string& name) const {
  std::ostringstream key;
  key << name << "_t" << config_.dataset.train_per_class << "_e" << config_.epochs << "_s"
      << config_.dataset.seed << ".bin";
  return (std::filesystem::path(config_.cache_dir) / key.str()).string();
}

nn::LisaCnn& ModelZoo::get(const std::string& name) {
  if (const auto it = models_.find(name); it != models_.end()) return *it->second;
  const ZooEntry& entry = spec(name);
  auto model = std::make_unique<nn::LisaCnn>(entry.model_config);
  const std::string path = cache_path(name);
  if (std::filesystem::exists(path)) {
    model->load(path);
    util::log_info() << "zoo: loaded '" << name << "' from " << path;
  } else {
    util::log_info() << "zoo: training '" << name << "' (" << entry.description << ")";
    util::Timer timer;
    const auto& lisa = dataset();
    const auto stats = train_classifier(*model, lisa.train, lisa.test, entry.train_config);
    util::log_info() << "zoo: '" << name << "' trained in " << static_cast<int>(timer.seconds())
                     << "s, test acc " << stats.test_accuracy;
    std::filesystem::create_directories(config_.cache_dir);
    model->save(path);
  }
  auto [it, inserted] = models_.emplace(name, std::move(model));
  (void)inserted;
  return *it->second;
}

double ModelZoo::test_accuracy(const std::string& name) {
  nn::LisaCnn& model = get(name);
  return classifier_accuracy(model, dataset().test);
}

}  // namespace blurnet::defense
