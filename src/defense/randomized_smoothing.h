// Randomized-smoothing inference (Cohen et al. 2019), the paper's "Rand. sm"
// baseline: classify by majority vote over Monte-Carlo Gaussian-noised copies
// of the input (the paper uses 100 samples on the Gaussian-augmented models).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/nn/lisa_cnn.h"
#include "src/tensor/tensor.h"

namespace blurnet::defense {

struct SmoothingConfig {
  double sigma = 0.1;
  int samples = 100;
  std::uint64_t seed = 5;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (negative sigma, non-positive sample count). Called by
  /// smoothed_predict.
  void validate() const;
};

/// Base-classifier hook: labels for one NCHW batch of noisy samples. In the
/// engine-backed evaluation harness this is a batched
/// serve::InferenceEngine::classify call on the victim's variant.
using SampleClassifier = std::function<std::vector<int>(const tensor::Tensor&)>;

/// Majority-vote smoothed predictions for a batch, with the Monte-Carlo
/// sample batches classified through `classify`. The noise draws depend only
/// on the config seed, so any bitwise-identical classifier (raw model or any
/// serving replica of it) yields bitwise-identical votes.
std::vector<int> smoothed_predict(const SampleClassifier& classify, int num_classes,
                                  const tensor::Tensor& images, const SmoothingConfig& config);

/// Majority-vote smoothed predictions with `model` as the base classifier.
std::vector<int> smoothed_predict(const nn::LisaCnn& model, const tensor::Tensor& images,
                                  const SmoothingConfig& config);

/// Smoothed top-1 accuracy against labels.
double smoothed_accuracy(const nn::LisaCnn& model, const tensor::Tensor& images,
                         const std::vector<int>& labels, const SmoothingConfig& config);

}  // namespace blurnet::defense
