// Randomized-smoothing inference (Cohen et al. 2019), the paper's "Rand. sm"
// baseline: classify by majority vote over Monte-Carlo Gaussian-noised copies
// of the input (the paper uses 100 samples on the Gaussian-augmented models).
#pragma once

#include <cstdint>
#include <vector>

#include "src/nn/lisa_cnn.h"
#include "src/tensor/tensor.h"

namespace blurnet::defense {

struct SmoothingConfig {
  double sigma = 0.1;
  int samples = 100;
  std::uint64_t seed = 5;
};

/// Majority-vote smoothed predictions for a batch.
std::vector<int> smoothed_predict(const nn::LisaCnn& model, const tensor::Tensor& images,
                                  const SmoothingConfig& config);

/// Smoothed top-1 accuracy against labels.
double smoothed_accuracy(const nn::LisaCnn& model, const tensor::Tensor& images,
                         const std::vector<int>& labels, const SmoothingConfig& config);

}  // namespace blurnet::defense
