// Model zoo: every trained variant the evaluation tables need, built on
// demand from a deterministic recipe and cached on disk so the bench binaries
// stay independently runnable (DESIGN.md §5).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/defense/input_transform.h"
#include "src/defense/trainer.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::defense {

struct ZooConfig {
  data::SynthLisaOptions dataset;
  int epochs = 15;
  std::string cache_dir = ".cache/models";
  bool verbose = false;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (non-positive epochs, empty cache dir). Called by the ModelZoo
  /// constructor.
  void validate() const;
};

/// Scale knobs from the environment (BLURNET_FAST / BLURNET_PAPER /
/// BLURNET_CACHE_DIR); see DESIGN.md §6.
ZooConfig default_zoo_config();

struct ZooEntry {
  nn::LisaCnnConfig model_config;
  TrainConfig train_config;
  std::string description;
};

class ModelZoo {
 public:
  explicit ModelZoo(ZooConfig config);

  /// Variant names: baseline, dw3, dw5, dw7, tv1e-4, tv1e-5, tik_hf,
  /// tik_pseudo, gauss0.1, gauss0.2, gauss0.3, advtrain.
  static std::vector<std::string> known_variants();

  /// Input-transform defense variants (standard_transforms() names:
  /// squeeze4, squeeze5, median3, median5, dctq50, dctq75). These need no
  /// training of their own — they wrap the baseline weights behind the
  /// engine's preprocess stage — so they live here as a pure name→spec
  /// registry next to the trained variants.
  static std::vector<std::string> transform_variants();
  /// The TransformSpec behind a transform_variants() name; descriptive
  /// std::invalid_argument (listing the registry) for unknown names.
  static TransformSpec transform_spec(const std::string& name);

  const ZooEntry& spec(const std::string& name) const;

  /// Lazily generated shared dataset.
  const data::SynthLisa& dataset();

  /// Train (or load from cache) and return the named model.
  nn::LisaCnn& get(const std::string& name);

  /// Legitimate (clean test-set) accuracy of the named model.
  double test_accuracy(const std::string& name);

  const ZooConfig& config() const { return config_; }

 private:
  std::string cache_path(const std::string& name) const;

  ZooConfig config_;
  std::map<std::string, ZooEntry> specs_;
  std::map<std::string, std::unique_ptr<nn::LisaCnn>> models_;
  std::optional<data::SynthLisa> data_;
};

}  // namespace blurnet::defense
