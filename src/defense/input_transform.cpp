#include "src/defense/input_transform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/kernels/dispatch.h"
#include "src/signal/dct.h"
#include "src/util/parallel.h"

namespace blurnet::defense {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Per-thread scratch for the plane-at-a-time kernels, mirroring the conv
/// path's ConvScratch: each worker lane reuses one allocation across planes
/// instead of mallocing per call, and lanes never share buffers.
struct TransformScratch {
  std::vector<float> padded;   // median: replicate-padded plane
  std::vector<float> window;   // median: the k*k samples under one pixel
  std::vector<double> block;   // dct-quant: one 8x8 block (pixel domain)
  std::vector<double> coeff;   // dct-quant: the block's DCT coefficients
};

TransformScratch& transform_scratch() {
  thread_local TransformScratch scratch;
  return scratch;
}

/// Normalize a CHW image or NCHW batch to NCHW (shared-storage reshape).
Tensor as_nchw(const Tensor& x, const char* op) {
  if (x.rank() == 3) {
    return x.reshape(Shape::nchw(1, x.dim(0), x.dim(1), x.dim(2)));
  }
  if (x.rank() != 4) {
    throw std::invalid_argument(std::string(op) +
                                ": expected a CHW image (rank 3) or NCHW batch (rank 4), "
                                "got rank " + std::to_string(x.rank()));
  }
  return x;
}

/// JPEG Annex K.1 luminance quantization table, row-major 8x8.
constexpr int kJpegLuminanceQ[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

/// libjpeg-convention quality scaling of the base table, clamped to [1,255].
std::vector<double> scaled_quant_table(int quality) {
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::vector<double> table(64);
  for (int i = 0; i < 64; ++i) {
    const int q = std::clamp((kJpegLuminanceQ[i] * scale + 50) / 100, 1, 255);
    table[static_cast<std::size_t>(i)] = static_cast<double>(q);
  }
  return table;
}

}  // namespace

const char* to_string(TransformKind kind) {
  switch (kind) {
    case TransformKind::kNone:
      return "none";
    case TransformKind::kSqueeze:
      return "squeeze";
    case TransformKind::kMedian:
      return "median";
    case TransformKind::kDctQuant:
      return "dctq";
  }
  return "?";
}

TransformSpec TransformSpec::squeeze(int bits) {
  TransformSpec spec;
  spec.kind = TransformKind::kSqueeze;
  spec.bits = bits;
  return spec;
}

TransformSpec TransformSpec::median(int kernel) {
  TransformSpec spec;
  spec.kind = TransformKind::kMedian;
  spec.kernel = kernel;
  return spec;
}

TransformSpec TransformSpec::dct_quant(int quality) {
  TransformSpec spec;
  spec.kind = TransformKind::kDctQuant;
  spec.quality = quality;
  return spec;
}

std::string TransformSpec::name() const {
  switch (kind) {
    case TransformKind::kNone:
      return "none";
    case TransformKind::kSqueeze:
      return "squeeze" + std::to_string(bits);
    case TransformKind::kMedian:
      return "median" + std::to_string(kernel);
    case TransformKind::kDctQuant:
      return "dctq" + std::to_string(quality);
  }
  return "?";
}

void TransformSpec::validate() const {
  switch (kind) {
    case TransformKind::kNone:
      return;
    case TransformKind::kSqueeze:
      if (bits < 1 || bits > 8) {
        throw std::invalid_argument("TransformSpec: squeeze bits must be in 1..8 (got " +
                                    std::to_string(bits) + ")");
      }
      return;
    case TransformKind::kMedian:
      if (kernel < 1 || kernel % 2 == 0) {
        throw std::invalid_argument(
            "TransformSpec: median kernel must be odd and >= 1 (got " +
            std::to_string(kernel) + ")");
      }
      return;
    case TransformKind::kDctQuant:
      if (quality < 1 || quality > 100) {
        throw std::invalid_argument(
            "TransformSpec: dct-quant quality must be in 1..100 (got " +
            std::to_string(quality) + ")");
      }
      return;
  }
  throw std::invalid_argument("TransformSpec: unknown transform kind");
}

Tensor bit_depth_squeeze(const Tensor& x, int bits) {
  TransformSpec::squeeze(bits).validate();
  const float levels = static_cast<float>((1 << bits) - 1);
  Tensor out(x.shape());
  const float* src = x.data();
  float* dst = out.data();
  util::parallel_for(x.numel(), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v = std::clamp(src[i], 0.0f, 1.0f);
      dst[i] = std::round(v * levels) / levels;
    }
  });
  return out;
}

Tensor median_filter_nchw(const Tensor& x, int kernel) {
  TransformSpec::median(kernel).validate();
  const Tensor batch = as_nchw(x, "median_filter_nchw");
  if (kernel == 1) return x.clone();
  const std::int64_t planes = batch.dim(0) * batch.dim(1);
  const std::int64_t h = batch.dim(2), w = batch.dim(3);
  const int pad = kernel / 2;
  const std::int64_t ph = h + 2 * pad, pw = w + 2 * pad;
  const std::size_t taps = static_cast<std::size_t>(kernel) * static_cast<std::size_t>(kernel);

  Tensor out(x.shape());
  util::parallel_for(
      planes,
      [&](std::int64_t p0, std::int64_t p1) {
        auto& scratch = transform_scratch();
        scratch.padded.resize(static_cast<std::size_t>(ph * pw));
        scratch.window.resize(taps);
        for (std::int64_t p = p0; p < p1; ++p) {
          const float* src = batch.data() + p * h * w;
          float* dst = out.data() + p * h * w;
          // Replicate-pad the plane so every window holds exactly k*k
          // samples: an odd count, so the median is a single order statistic
          // and constant regions stay constant right up to the border.
          float* padded = scratch.padded.data();
          for (std::int64_t y = 0; y < ph; ++y) {
            const std::int64_t sy = std::clamp<std::int64_t>(y - pad, 0, h - 1);
            for (std::int64_t xx = 0; xx < pw; ++xx) {
              const std::int64_t sx = std::clamp<std::int64_t>(xx - pad, 0, w - 1);
              padded[y * pw + xx] = src[sy * w + sx];
            }
          }
          // 3x3 is the hot size (the paper's default): a dispatched
          // min/max-network kernel computes the same order statistic as
          // nth_element a full row at a time. Other sizes (and targets
          // without a specialization) keep the window + nth_element path.
          const kernels::Median3RowFn median3 =
              kernel == 3 ? kernels::median3_row(util::active_kernel_target())
                          : nullptr;
          if (median3 != nullptr) {
            for (std::int64_t y = 0; y < h; ++y) {
              median3(padded + y * pw, padded + (y + 1) * pw,
                      padded + (y + 2) * pw, dst + y * w, w);
            }
            continue;
          }
          for (std::int64_t y = 0; y < h; ++y) {
            for (std::int64_t xx = 0; xx < w; ++xx) {
              float* window = scratch.window.data();
              for (int fy = 0; fy < kernel; ++fy) {
                const float* row = padded + (y + fy) * pw + xx;
                for (int fx = 0; fx < kernel; ++fx) window[fy * kernel + fx] = row[fx];
              }
              std::nth_element(window, window + taps / 2, window + taps);
              dst[y * w + xx] = window[taps / 2];
            }
          }
        }
      },
      /*min_chunk=*/1);
  return out;
}

Tensor dct_quantize_nchw(const Tensor& x, int quality) {
  TransformSpec::dct_quant(quality).validate();
  const Tensor batch = as_nchw(x, "dct_quantize_nchw");
  const std::int64_t planes = batch.dim(0) * batch.dim(1);
  const std::int64_t h = batch.dim(2), w = batch.dim(3);
  constexpr int kBlock = 8;
  const std::vector<double> quant = scaled_quant_table(quality);

  Tensor out(x.shape());
  // The 8x8 transform is kernel-dispatched: the specialized kernels use a
  // shared runtime cosine table with the exact fold order of
  // signal::dct2d/idct2d, so every target produces bitwise-identical
  // blocks; targets without a specialization keep the generic path.
  const util::KernelTarget target = util::active_kernel_target();
  const kernels::Dct8x8Fn dct_fwd = kernels::dct8x8(target, /*inverse=*/false);
  const kernels::Dct8x8Fn dct_inv = kernels::dct8x8(target, /*inverse=*/true);
  util::parallel_for(
      planes,
      [&](std::int64_t p0, std::int64_t p1) {
        auto& scratch = transform_scratch();
        scratch.block.resize(kBlock * kBlock);
        scratch.coeff.resize(kBlock * kBlock);
        for (std::int64_t p = p0; p < p1; ++p) {
          const float* src = batch.data() + p * h * w;
          float* dst = out.data() + p * h * w;
          for (std::int64_t by = 0; by < h; by += kBlock) {
            for (std::int64_t bx = 0; bx < w; bx += kBlock) {
              // Gather the block, replicating edge pixels past the image
              // boundary (32x32 planes tile evenly; the clamp only matters
              // for odd sizes). JPEG convention: [0,255] range, centred.
              for (int y = 0; y < kBlock; ++y) {
                const std::int64_t sy = std::min<std::int64_t>(by + y, h - 1);
                for (int xx = 0; xx < kBlock; ++xx) {
                  const std::int64_t sx = std::min<std::int64_t>(bx + xx, w - 1);
                  scratch.block[static_cast<std::size_t>(y * kBlock + xx)] =
                      static_cast<double>(src[sy * w + sx]) * 255.0 - 128.0;
                }
              }
              const double* rebuilt = nullptr;
              std::vector<double> rebuilt_vec;  // generic-path storage
              if (dct_fwd != nullptr) {
                dct_fwd(scratch.block.data(), scratch.coeff.data());
                for (int i = 0; i < kBlock * kBlock; ++i) {
                  const double q = quant[static_cast<std::size_t>(i)];
                  scratch.coeff[static_cast<std::size_t>(i)] =
                      std::round(scratch.coeff[static_cast<std::size_t>(i)] / q) * q;
                }
                dct_inv(scratch.coeff.data(), scratch.block.data());
                rebuilt = scratch.block.data();
              } else {
                auto coeff = signal::dct2d(scratch.block, kBlock, kBlock);
                for (int i = 0; i < kBlock * kBlock; ++i) {
                  const double q = quant[static_cast<std::size_t>(i)];
                  coeff[static_cast<std::size_t>(i)] =
                      std::round(coeff[static_cast<std::size_t>(i)] / q) * q;
                }
                rebuilt_vec = signal::idct2d(coeff, kBlock, kBlock);
                rebuilt = rebuilt_vec.data();
              }
              for (int y = 0; y < kBlock; ++y) {
                const std::int64_t oy = by + y;
                if (oy >= h) break;
                for (int xx = 0; xx < kBlock; ++xx) {
                  const std::int64_t ox = bx + xx;
                  if (ox >= w) break;
                  const double v =
                      (rebuilt[static_cast<std::size_t>(y * kBlock + xx)] + 128.0) / 255.0;
                  dst[oy * w + ox] = static_cast<float>(std::clamp(v, 0.0, 1.0));
                }
              }
            }
          }
        }
      },
      /*min_chunk=*/1);
  return out;
}

InputTransform::InputTransform(TransformSpec spec) : spec_(spec), name_(spec.name()) {
  spec_.validate();
}

InputTransform::InputTransform(TransformSpec spec, std::string name)
    : spec_(spec), name_(std::move(name)) {
  spec_.validate();
}

Tensor InputTransform::apply(const Tensor& images) const {
  switch (spec_.kind) {
    case TransformKind::kNone:
      return images.clone();
    case TransformKind::kSqueeze:
      return bit_depth_squeeze(images, spec_.bits);
    case TransformKind::kMedian:
      return median_filter_nchw(images, spec_.kernel);
    case TransformKind::kDctQuant:
      return dct_quantize_nchw(images, spec_.quality);
  }
  return images.clone();
}

TransformPtr make_transform(const TransformSpec& spec) {
  spec.validate();
  if (spec.kind == TransformKind::kNone) return nullptr;
  return std::make_shared<const InputTransform>(spec);
}

std::vector<TransformSpec> standard_transforms() {
  return {TransformSpec::squeeze(4),  TransformSpec::squeeze(5),
          TransformSpec::median(3),   TransformSpec::median(5),
          TransformSpec::dct_quant(50), TransformSpec::dct_quant(75)};
}

}  // namespace blurnet::defense
