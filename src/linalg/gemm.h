// Single-precision GEMM shared by every matmul / convolution path.
//
// One packed, cache-blocked, register-tiled kernel sits behind
// tensor::matmul{,_tn,_nt}, the conv forward im2col GEMM, the conv backward
// accumulate GEMMs and the Tikhonov filter-plane GEMMs, so the whole system
// has exactly one set of GEMM numerics.
//
// Numeric contract (identical for every transpose variant):
//   * float32 accumulation, no widening to double;
//   * each output element C[i,j] is a fold over k in ascending order, split
//     at fixed kKc boundaries (a per-block register fold, blocks then added
//     to C in ascending block order). The fold therefore depends only on k,
//     never on m, n, the batch composition, or the worker count;
//   * the microtile is runtime-dispatched per util::active_kernel_target()
//     (see src/kernels/dispatch.h): the scalar tile folds with separate
//     mul+add roundings (matching sgemm_reference), the avx2/neon tiles
//     fold with fused multiply-add (matching sgemm_reference_fused). Low
//     bits may therefore differ *across* targets; within one target every
//     result is bitwise deterministic;
//   * no zero-skip shortcuts: 0 * NaN and 0 * Inf propagate NaN as IEEE
//     demands (the naive loops this kernel replaced silently dropped them);
//   * transpose handling happens entirely in the pack step, so
//     sgemm_nn(A, B^T-materialized), sgemm_nt(A, B) and friends are bitwise
//     identical whenever their operands hold the same values.
//
// Determinism: row microtiles are distributed over util::parallel_for with
// chunk boundaries that depend only on (m, block sizes) — the same invariant the serving
// engine guarantees across replica counts — so results are bitwise identical
// for any BLURNET_WORKERS value. Each worker packs its own A panels into
// thread-local scratch and all workers read one shared packed-B panel, so a
// warm serving thread performs no allocations here.
#pragma once

#include <cstdint>

namespace blurnet::linalg {

/// How an operand of sgemm is stored. kNo: the operand is the [rows, cols]
/// matrix itself. kYes: the operand stores the transpose, i.e. op(X) = X^T.
enum class Trans { kNo, kYes };

// Blocking parameters, exposed so tests can target partial-tile edges.
// kMr is the *scalar* microtile height; the avx2 target runs an 8-row tile
// (kernels::gemm_microkernel(target).mr), and kMc is a multiple of both.
inline constexpr std::int64_t kMr = 4;    ///< microtile rows (register block)
inline constexpr std::int64_t kNr = 8;    ///< microtile cols (register block)
inline constexpr std::int64_t kMc = 32;   ///< A panel rows (parallel grain)
inline constexpr std::int64_t kKc = 256;  ///< k block (packed panel depth)
inline constexpr std::int64_t kNc = 1024; ///< B panel cols (L2/L3 block)

/// C[m,n] = op(A)[m,k] * op(B)[k,n]  (accumulate=false: overwrite C)
/// C[m,n] += op(A) * op(B)           (accumulate=true)
///
/// All matrices are dense row-major. `lda`/`ldb`/`ldc` are leading
/// dimensions of the *stored* operands: op(A)=A means A is [m, k] with
/// stride lda; op(A)=A^T means the buffer holds [k, m] with stride lda.
/// Empty problems are well-defined: m==0 or n==0 is a no-op; k==0 zeroes C
/// unless accumulating.
void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, const float* a, std::int64_t lda, const float* b,
           std::int64_t ldb, float* c, std::int64_t ldc, bool accumulate);

// Tight-layout convenience wrappers (leading dimension == stored width).
inline void sgemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c, bool accumulate) {
  sgemm(Trans::kNo, Trans::kNo, m, n, k, a, k, b, n, c, n, accumulate);
}
inline void sgemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c, bool accumulate) {
  sgemm(Trans::kNo, Trans::kYes, m, n, k, a, k, b, k, c, n, accumulate);
}
inline void sgemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, const float* b, float* c, bool accumulate) {
  sgemm(Trans::kYes, Trans::kNo, m, n, k, a, m, b, n, c, n, accumulate);
}

/// Naive triple-loop reference with the same numeric contract as the
/// *scalar* microtile (float ascending-k fold split at kKc boundaries,
/// separate mul+add roundings, no zero-skip). Serial, kept as the ground
/// truth the scalar target is tested against; not used on any hot path.
void sgemm_reference(Trans trans_a, Trans trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, const float* a,
                     std::int64_t lda, const float* b, std::int64_t ldb,
                     float* c, std::int64_t ldc, bool accumulate);

/// Same fold structure, but each term folded with std::fma — the
/// correctly-rounded fused multiply-add the avx2/neon microtiles use — so
/// it is the bitwise ground truth for the fused dispatch targets.
void sgemm_reference_fused(Trans trans_a, Trans trans_b, std::int64_t m,
                           std::int64_t n, std::int64_t k, const float* a,
                           std::int64_t lda, const float* b, std::int64_t ldb,
                           float* c, std::int64_t ldc, bool accumulate);

}  // namespace blurnet::linalg
