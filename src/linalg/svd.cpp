#include "src/linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace blurnet::linalg {

SvdResult svd(const Matrix& a, int max_sweeps, double tol) {
  // One-sided Jacobi: orthogonalize the columns of a working copy W = A*V by
  // plane rotations accumulated into V. At convergence the column norms are
  // the singular values and the normalized columns are U.
  const int m = a.rows();
  const int n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  auto col_dot = [&](const Matrix& mat, int c1, int c2) {
    double acc = 0.0;
    for (int r = 0; r < mat.rows(); ++r) acc += mat.at(r, c1) * mat.at(r, c2);
    return acc;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double alpha = col_dot(w, p, p);
        const double beta = col_dot(w, q, q);
        const double gamma = col_dot(w, p, q);
        off += gamma * gamma;
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) || gamma == 0.0) continue;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int r = 0; r < m; ++r) {
          const double wp = w.at(r, p), wq = w.at(r, q);
          w.at(r, p) = c * wp - s * wq;
          w.at(r, q) = s * wp + c * wq;
        }
        for (int r = 0; r < n; ++r) {
          const double vp = v.at(r, p), vq = v.at(r, q);
          v.at(r, p) = c * vp - s * vq;
          v.at(r, q) = s * vp + c * vq;
        }
      }
    }
    if (off < tol * tol) break;
  }

  // Column norms -> singular values; sort descending.
  std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
  for (int c = 0; c < n; ++c) sigma[static_cast<std::size_t>(c)] = std::sqrt(col_dot(w, c, c));
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return sigma[static_cast<std::size_t>(i)] > sigma[static_cast<std::size_t>(j)]; });

  SvdResult out;
  out.sigma.resize(static_cast<std::size_t>(n));
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (int c = 0; c < n; ++c) {
    const int src = order[static_cast<std::size_t>(c)];
    const double s = sigma[static_cast<std::size_t>(src)];
    out.sigma[static_cast<std::size_t>(c)] = s;
    for (int r = 0; r < m; ++r) {
      out.u.at(r, c) = s > 0 ? w.at(r, src) / s : 0.0;
    }
    for (int r = 0; r < n; ++r) out.v.at(r, c) = v.at(r, src);
  }
  return out;
}

Matrix pinv(const Matrix& a, double rcond) {
  const SvdResult decomposition = svd(a);
  const double smax =
      decomposition.sigma.empty() ? 0.0 : decomposition.sigma.front();
  const double cutoff = rcond * smax;
  // pinv = V diag(1/sigma) U^T
  const int n = a.cols();
  const int m = a.rows();
  Matrix out(n, m);
  for (std::size_t k = 0; k < decomposition.sigma.size(); ++k) {
    const double s = decomposition.sigma[k];
    if (s <= cutoff || s == 0.0) continue;
    const double inv = 1.0 / s;
    for (int i = 0; i < n; ++i) {
      const double vik = decomposition.v.at(i, static_cast<int>(k));
      if (vik == 0.0) continue;
      for (int j = 0; j < m; ++j) {
        out.at(i, j) += inv * vik * decomposition.u.at(j, static_cast<int>(k));
      }
    }
  }
  return out;
}

}  // namespace blurnet::linalg
