#include "src/linalg/matrix.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace blurnet::linalg {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      values_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Matrix: negative dims");
}

Matrix::Matrix(int rows, int cols, std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  if (values_.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    throw std::invalid_argument("Matrix: value count mismatch");
  }
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < rhs.cols_; ++j) out.at(i, j) += aik * rhs.at(k, j);
    }
  }
  return out;
}

void Matrix::check_same_shape(const Matrix& rhs, const char* op) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
  }
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  check_same_shape(rhs, "Matrix::operator+");
  Matrix out = *this;
  for (std::size_t i = 0; i < values_.size(); ++i) out.values_[i] += rhs.values_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  check_same_shape(rhs, "Matrix::operator-");
  Matrix out = *this;
  for (std::size_t i = 0; i < values_.size(); ++i) out.values_[i] -= rhs.values_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (auto& v : out.values_) v *= s;
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != cols_) {
    throw std::invalid_argument("Matrix::apply: vector size mismatch");
  }
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += at(r, c) * x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (const auto v : values_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const auto v : values_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::to_string() const {
  std::ostringstream out;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out << (c ? " " : "") << at(r, c);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace blurnet::linalg
