#include "src/linalg/gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/kernels/dispatch.h"
#include "src/util/parallel.h"

namespace blurnet::linalg {

namespace {

// Per-thread pack scratch, the GEMM analogue of the autograd ConvScratch:
// serving replays the same shapes forever, so after the first call on a pool
// thread both panels are warm and a forward pass performs no allocations
// here. Workers pack their own A panels; the shared B panel is packed by the
// producer thread and read (never written) by the workers for the duration
// of the parallel region, which the region's join fences.
struct PackScratch {
  std::vector<float> a;
  std::vector<float> b;
};

PackScratch& pack_scratch() {
  thread_local PackScratch scratch;
  return scratch;
}

inline float load_a(Trans trans, const float* a, std::int64_t lda,
                    std::int64_t i, std::int64_t kk) {
  return trans == Trans::kNo ? a[i * lda + kk] : a[kk * lda + i];
}

inline float load_b(Trans trans, const float* b, std::int64_t ldb,
                    std::int64_t kk, std::int64_t j) {
  return trans == Trans::kNo ? b[kk * ldb + j] : b[j * ldb + kk];
}

// Pack op(B)[kb .. kb+kc, jc .. jc+nc) into kNr-wide column panels:
//   packed[(jt * kc + kk) * kNr + jj] = op(B)[kb + kk, jc + jt*kNr + jj]
// with zero fill past the last valid column, so the microkernel never
// branches on partial tiles (the padded lanes are discarded on writeback).
void pack_b_panel(Trans trans, const float* b, std::int64_t ldb,
                  std::int64_t kb, std::int64_t kc, std::int64_t jc,
                  std::int64_t nc, float* packed) {
  const std::int64_t tiles = (nc + kNr - 1) / kNr;
  for (std::int64_t jt = 0; jt < tiles; ++jt) {
    const std::int64_t j0 = jc + jt * kNr;
    const std::int64_t jn = std::min<std::int64_t>(kNr, jc + nc - j0);
    float* dst = packed + jt * kc * kNr;
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      float* row = dst + kk * kNr;
      for (std::int64_t jj = 0; jj < jn; ++jj) {
        row[jj] = load_b(trans, b, ldb, kb + kk, j0 + jj);
      }
      std::fill(row + jn, row + kNr, 0.0f);
    }
  }
}

// Pack op(A)[i0 .. i0+mc, kb .. kb+kc) into mr-tall row panels:
//   packed[(it * kc + kk) * mr + ii] = op(A)[i0 + it*mr + ii, kb + kk]
// zero filled past the last valid row. `mr` is the microtile height of the
// active kernel target (kMr for scalar/neon, 8 for avx2).
void pack_a_panel(Trans trans, const float* a, std::int64_t lda,
                  std::int64_t i0, std::int64_t mc, std::int64_t kb,
                  std::int64_t kc, std::int64_t mr, float* packed) {
  const std::int64_t tiles = (mc + mr - 1) / mr;
  for (std::int64_t it = 0; it < tiles; ++it) {
    const std::int64_t r0 = i0 + it * mr;
    const std::int64_t rn = std::min<std::int64_t>(mr, i0 + mc - r0);
    float* dst = packed + it * kc * mr;
    for (std::int64_t kk = 0; kk < kc; ++kk) {
      float* col = dst + kk * mr;
      for (std::int64_t ii = 0; ii < rn; ++ii) {
        col[ii] = load_a(trans, a, lda, r0 + ii, kb + kk);
      }
      std::fill(col + rn, col + mr, 0.0f);
    }
  }
}

// The mr x kNr register microtile itself lives behind the kernel dispatch
// (kernels::gemm_microkernel): acc = sum_{kk < kc} ap[:,kk] * b-row[kk,:].
// ap is one packed A tile (mr floats per kk); the B tile is read ldb-strided
// — either from a packed panel (ldb == kNr) or directly from a row-major B
// whose kNr-wide slice is contiguous per kk (the NN/TN fast path that skips
// packing B altogether). Each acc element is a strict ascending-k fold —
// the documented accumulation contract — identical for both B layouts.
// Scalar folds with separate mul+add; the avx2/neon tiles fold with fused
// multiply-add (one rounding per term), the documented per-target numerics
// modelled exactly by sgemm_reference_fused.
static_assert(kNr == kernels::kGemmNr, "B pack width must match the microtiles");
static_assert(kMc % kernels::kGemmMaxMr == 0,
              "panel rows must hold whole microtiles for every target");

}  // namespace

void sgemm(Trans trans_a, Trans trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, const float* a, std::int64_t lda, const float* b,
           std::int64_t ldb, float* c, std::int64_t ldc, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
      }
    }
    return;
  }

  // Resolved once per call: the microtile height shapes the A packing and
  // the parallel chunking below, and both depend only on the target — so
  // within one target every chunk boundary (and result) stays bitwise
  // identical for any worker count.
  const kernels::GemmMicrokernel& mk =
      kernels::gemm_microkernel(util::active_kernel_target());
  const std::int64_t mr = mk.mr;

  for (std::int64_t jc = 0; jc < n; jc += kNc) {
    const std::int64_t nc = std::min(kNc, n - jc);
    const std::int64_t n_tiles = (nc + kNr - 1) / kNr;
    for (std::int64_t kb = 0; kb < k; kb += kKc) {
      const std::int64_t kc = std::min(kKc, k - kb);
      // The first k-block of a non-accumulating GEMM overwrites C; every
      // later block adds its register fold, giving the ascending-block sum.
      const bool store = (kb == 0) && !accumulate;

      // A non-transposed B already presents each microtile as a contiguous
      // kNr-wide slice per kk, so full tiles are read in place and only a
      // partial tail tile is packed (zero-padded). A transposed B is packed
      // wholesale to turn its strided columns into contiguous panels. Either
      // way the arithmetic order is identical, so the layouts are
      // bitwise-interchangeable.
      const bool direct_b = (trans_b == Trans::kNo);
      const std::int64_t packed_tiles = direct_b ? (nc % kNr ? 1 : 0) : n_tiles;
      auto& producer_scratch = pack_scratch();
      float* packed_b = nullptr;
      if (packed_tiles > 0) {
        producer_scratch.b.resize(static_cast<std::size_t>(packed_tiles * kc * kNr));
        packed_b = producer_scratch.b.data();
        if (direct_b) {
          const std::int64_t tail = jc + (n_tiles - 1) * kNr;
          pack_b_panel(trans_b, b, ldb, kb, kc, tail, jc + nc - tail, packed_b);
        } else {
          pack_b_panel(trans_b, b, ldb, kb, kc, jc, nc, packed_b);
        }
      }

      // Row microtiles are the unit of parallelism; each parallel chunk is
      // processed in packing panels of at most kMc rows. min_chunk is a pure
      // function of m — kMc-row chunks normally, kMr*2-row chunks when the
      // whole problem is small (the dense head's m == batch) so it still
      // fans out — so chunk boundaries, and therefore results, are identical
      // for any worker count.
      const std::int64_t panel_tiles = kMc / mr;
      const std::int64_t total_tiles = (m + mr - 1) / mr;
      const std::int64_t chunk_tiles = total_tiles >= 2 * panel_tiles ? panel_tiles : 2;
      util::parallel_for(total_tiles, [&](std::int64_t t0, std::int64_t t1) {
        auto& scratch = pack_scratch();
        for (std::int64_t tp = t0; tp < t1; tp += panel_tiles) {
          const std::int64_t i0 = tp * mr;
          const std::int64_t mc =
              std::min(m, std::min(t1, tp + panel_tiles) * mr) - i0;
          const std::int64_t m_tiles = (mc + mr - 1) / mr;
          scratch.a.resize(static_cast<std::size_t>(m_tiles * kc * mr));
          pack_a_panel(trans_a, a, lda, i0, mc, kb, kc, mr, scratch.a.data());

          for (std::int64_t jt = 0; jt < n_tiles; ++jt) {
            const std::int64_t j0 = jc + jt * kNr;
            const std::int64_t jn = std::min<std::int64_t>(kNr, jc + nc - j0);
            const bool full = (jn == kNr);
            const float* b_tile = (direct_b && full)
                                      ? b + kb * ldb + j0
                                      : packed_b + (direct_b ? 0 : jt * kc * kNr);
            const std::int64_t b_stride = (direct_b && full) ? ldb : kNr;
            for (std::int64_t it = 0; it < m_tiles; ++it) {
              const std::int64_t r0 = i0 + it * mr;
              const std::int64_t rn = std::min<std::int64_t>(mr, i0 + mc - r0);
              float acc[kernels::kGemmMaxMr * kNr];
              mk.fn(kc, scratch.a.data() + it * kc * mr, b_tile, b_stride, acc);
              for (std::int64_t ii = 0; ii < rn; ++ii) {
                float* crow = c + (r0 + ii) * ldc + j0;
                const float* arow = acc + ii * kNr;
                if (store) {
                  for (std::int64_t jj = 0; jj < jn; ++jj) crow[jj] = arow[jj];
                } else {
                  for (std::int64_t jj = 0; jj < jn; ++jj) crow[jj] += arow[jj];
                }
              }
            }
          }
        }
      }, /*min_chunk=*/chunk_tiles);
    }
  }
}

void sgemm_reference(Trans trans_a, Trans trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, const float* a,
                     std::int64_t lda, const float* b, std::int64_t ldb,
                     float* c, std::int64_t ldc, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // Same contract as the packed kernel: a float fold over ascending k,
      // split at kKc boundaries, with no zero-skip shortcut.
      float* out = c + i * ldc + j;
      bool store = !accumulate;
      for (std::int64_t kb = 0; kb < k; kb += kKc) {
        const std::int64_t kc = std::min(kKc, k - kb);
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < kc; ++kk) {
          acc += load_a(trans_a, a, lda, i, kb + kk) *
                 load_b(trans_b, b, ldb, kb + kk, j);
        }
        if (store) {
          *out = acc;
          store = false;
        } else {
          *out += acc;
        }
      }
      if (store) *out = 0.0f;  // k == 0, overwrite mode
    }
  }
}

void sgemm_reference_fused(Trans trans_a, Trans trans_b, std::int64_t m,
                           std::int64_t n, std::int64_t k, const float* a,
                           std::int64_t lda, const float* b, std::int64_t ldb,
                           float* c, std::int64_t ldc, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // Same fold structure as sgemm_reference, but each term is folded in
      // with std::fma — correctly-rounded fused multiply-add, the exact
      // per-term rounding of the avx2/neon microtiles — so this models the
      // fused targets bit for bit.
      float* out = c + i * ldc + j;
      bool store = !accumulate;
      for (std::int64_t kb = 0; kb < k; kb += kKc) {
        const std::int64_t kc = std::min(kKc, k - kb);
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < kc; ++kk) {
          acc = std::fma(load_a(trans_a, a, lda, i, kb + kk),
                         load_b(trans_b, b, ldb, kb + kk, j), acc);
        }
        if (store) {
          *out = acc;
          store = false;
        } else {
          *out += acc;
        }
      }
      if (store) *out = 0.0f;  // k == 0, overwrite mode
    }
  }
}

}  // namespace blurnet::linalg
