// One-sided Jacobi SVD and Moore–Penrose pseudoinverse for the small,
// well-conditioned matrices used as smoothing regularization operators
// (Reichel & Ye, "Simple square smoothing regularization operators").
#pragma once

#include "src/linalg/matrix.h"

namespace blurnet::linalg {

struct SvdResult {
  Matrix u;                     // rows x r
  std::vector<double> sigma;    // r singular values, descending
  Matrix v;                     // cols x r
};

/// Thin SVD A = U diag(sigma) V^T via one-sided Jacobi rotations.
/// Converges for any real matrix; intended for dims <= a few hundred.
SvdResult svd(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

/// Moore–Penrose pseudoinverse. Singular values below
/// rcond * max(sigma) are treated as zero.
Matrix pinv(const Matrix& a, double rcond = 1e-10);

}  // namespace blurnet::linalg
