#include "src/linalg/operators.h"

#include <cmath>
#include <stdexcept>

#include "src/linalg/svd.h"

namespace blurnet::linalg {

Matrix moving_average_matrix(int n, int window) {
  if (n <= 0) throw std::invalid_argument("moving_average_matrix: n must be positive");
  if (window <= 0 || window % 2 == 0) {
    throw std::invalid_argument("moving_average_matrix: window must be odd and positive");
  }
  const int half = window / 2;
  Matrix m(n, n);
  for (int r = 0; r < n; ++r) {
    // Clamp the window inside [0, n): border rows average fewer *distinct*
    // neighbours but stay row-stochastic.
    int lo = r - half;
    int hi = r + half;
    if (lo < 0) { hi -= lo; lo = 0; }
    if (hi > n - 1) { lo -= hi - (n - 1); hi = n - 1; }
    lo = std::max(lo, 0);
    const int count = hi - lo + 1;
    for (int c = lo; c <= hi; ++c) m.at(r, c) = 1.0 / count;
  }
  return m;
}

Matrix high_frequency_operator(int n, int window) {
  return Matrix::identity(n) - moving_average_matrix(n, window);
}

Matrix difference_matrix(int n) {
  if (n < 2) throw std::invalid_argument("difference_matrix: n must be >= 2");
  Matrix m(n - 1, n);
  for (int r = 0; r < n - 1; ++r) {
    m.at(r, r) = -1.0;
    m.at(r, r + 1) = 1.0;
  }
  return m;
}

Matrix difference_matrix_square(int n) {
  Matrix m(n, n);
  for (int r = 0; r < n - 1; ++r) {
    m.at(r, r) = -1.0;
    m.at(r, r + 1) = 1.0;
  }
  return m;
}

Matrix difference_pinv(int n) { return pinv(difference_matrix(n)); }

Matrix dct_matrix(int n) {
  if (n <= 0) throw std::invalid_argument("dct_matrix: n must be positive");
  Matrix d(n, n);
  const double scale0 = std::sqrt(1.0 / n);
  const double scale = std::sqrt(2.0 / n);
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      d.at(k, i) = (k == 0 ? scale0 : scale) *
                   std::cos(M_PI * (2.0 * i + 1.0) * k / (2.0 * n));
    }
  }
  return d;
}

std::vector<double> box_kernel_1d(int width) {
  if (width <= 0) throw std::invalid_argument("box_kernel_1d: width must be positive");
  return std::vector<double>(static_cast<std::size_t>(width), 1.0 / width);
}

std::vector<double> gaussian_kernel_1d(int width, double sigma) {
  if (width <= 0) throw std::invalid_argument("gaussian_kernel_1d: width must be positive");
  if (sigma <= 0.0) sigma = 0.3 * ((width - 1) * 0.5 - 1.0) + 0.8;  // OpenCV default
  std::vector<double> taps(static_cast<std::size_t>(width));
  const double center = (width - 1) / 2.0;
  double sum = 0.0;
  for (int i = 0; i < width; ++i) {
    const double d = i - center;
    taps[static_cast<std::size_t>(i)] = std::exp(-d * d / (2.0 * sigma * sigma));
    sum += taps[static_cast<std::size_t>(i)];
  }
  for (auto& t : taps) t /= sum;
  return taps;
}

}  // namespace blurnet::linalg
