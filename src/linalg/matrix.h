// Small dense double-precision matrix used for the regularization operators
// (L_avg, L_hf, L_diff, pseudoinverses) and the DCT basis. These matrices are
// tiny (<= feature-map side length), so clarity beats blocking tricks here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace blurnet::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);
  Matrix(int rows, int cols, std::vector<double> values);

  static Matrix identity(int n);
  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) { return values_[static_cast<std::size_t>(r) * cols_ + c]; }
  double at(int r, int c) const { return values_[static_cast<std::size_t>(r) * cols_ + c]; }

  const std::vector<double>& values() const { return values_; }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

  /// Apply to a vector: y = M x.
  std::vector<double> apply(const std::vector<double>& x) const;

  double frobenius_norm() const;
  double max_abs() const;

  std::string to_string() const;

 private:
  void check_same_shape(const Matrix& rhs, const char* op) const;
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> values_;
};

}  // namespace blurnet::linalg
