// Regularization operators from the paper (§IV-C), following Reichel & Ye,
// "Simple square smoothing regularization operators" (ETNA 2009):
//
//   L_avg  — moving-average matrix (each row averages a window of entries).
//   L_hf   — I − L_avg: extracts the high-frequency residual; minimizing
//            ‖L_hf·F‖² penalizes high-frequency content ("Tik_hf").
//   L_diff — forward-difference matrix approximating d/dx.
//   L_diff⁺— Moore–Penrose pseudoinverse of L_diff; since the derivative's
//            pseudoinverse approximates integration, it is a low-pass /
//            smoothing operator ("Tik_pseudo").
#pragma once

#include "src/linalg/matrix.h"

namespace blurnet::linalg {

/// n×n moving-average matrix with an odd window (clamped at the borders so
/// each row still averages `window` entries and rows sum to 1).
Matrix moving_average_matrix(int n, int window = 3);

/// High-frequency extractor L_hf = I − L_avg(window).
Matrix high_frequency_operator(int n, int window = 3);

/// (n-1)×n forward-difference matrix: (Lx)_i = x_{i+1} − x_i.
Matrix difference_matrix(int n);

/// Square n×n forward-difference with a zero last row (convenient when a
/// square operator is required; the zero row contributes nothing).
Matrix difference_matrix_square(int n);

/// Pseudoinverse of difference_matrix(n) — a smoothing (integral-like)
/// operator per Reichel & Ye.
Matrix difference_pinv(int n);

/// Orthonormal DCT-II basis matrix D (n×n): (D x) gives DCT coefficients,
/// D^T is the inverse transform.
Matrix dct_matrix(int n);

/// 1-D box blur taps (length `width`, sums to 1).
std::vector<double> box_kernel_1d(int width);

/// 1-D Gaussian taps (length `width`, sums to 1); sigma defaults to a value
/// proportional to the width like standard image pipelines.
std::vector<double> gaussian_kernel_1d(int width, double sigma = -1.0);

}  // namespace blurnet::linalg
