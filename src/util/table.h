// ASCII table rendering for the benchmark harness: every bench prints the
// same rows the paper's tables report, via this formatter. Also supports CSV
// dumps so downstream plotting does not need to re-parse aligned text.
#pragma once

#include <string>
#include <vector>

namespace blurnet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Helpers for numeric cells.
  static std::string pct(double fraction, int decimals = 1);   // 0.175 -> "17.5%"
  static std::string num(double value, int decimals = 3);

  /// Aligned monospace rendering with a rule under the header.
  std::string to_string() const;

  /// Comma-separated dump (no alignment padding).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blurnet::util
