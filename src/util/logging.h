// Minimal leveled logger. Single global sink (stderr) with a settable level;
// experiments use INFO for progress lines and DEBUG for per-iteration detail.
#pragma once

#include <sstream>
#include <string>

namespace blurnet::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace blurnet::util
