#include "src/util/ppm.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace blurnet::util {

ImageU8 quantize_chw(const float* data, int channels, int height, int width) {
  if (channels != 1 && channels != 3) {
    throw std::invalid_argument("quantize_chw: channels must be 1 or 3");
  }
  ImageU8 image;
  image.height = height;
  image.width = width;
  image.channels = channels;
  image.pixels.resize(static_cast<std::size_t>(height) * width * channels);
  const std::int64_t plane = static_cast<std::int64_t>(height) * width;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      for (int c = 0; c < channels; ++c) {
        const float v = data[c * plane + y * width + x];
        const float clamped = std::clamp(v, 0.0f, 1.0f);
        image.pixels[(static_cast<std::size_t>(y) * width + x) * channels + c] =
            static_cast<std::uint8_t>(std::lround(clamped * 255.0f));
      }
    }
  }
  return image;
}

void write_pnm(const std::string& path, const ImageU8& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pnm: cannot open " + path);
  out << (image.channels == 3 ? "P6" : "P5") << "\n"
      << image.width << " " << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels.data()),
            static_cast<std::streamsize>(image.pixels.size()));
  if (!out) throw std::runtime_error("write_pnm: write failed for " + path);
}

void write_pnm_chw(const std::string& path, const float* data, int channels,
                   int height, int width) {
  write_pnm(path, quantize_chw(data, channels, height, width));
}

namespace {
int read_pnm_int(std::istream& in) {
  // Skips whitespace and '#' comments per the PNM spec.
  while (true) {
    int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      break;
    }
  }
  int value = 0;
  in >> value;
  return value;
}
}  // namespace

ImageU8 read_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pnm: cannot open " + path);
  std::string magic;
  in >> magic;
  ImageU8 image;
  if (magic == "P6") {
    image.channels = 3;
  } else if (magic == "P5") {
    image.channels = 1;
  } else {
    throw std::runtime_error("read_pnm: unsupported magic " + magic);
  }
  image.width = read_pnm_int(in);
  image.height = read_pnm_int(in);
  const int maxval = read_pnm_int(in);
  if (maxval != 255) throw std::runtime_error("read_pnm: only maxval 255 supported");
  in.get();  // single whitespace after header
  image.pixels.resize(static_cast<std::size_t>(image.width) * image.height * image.channels);
  in.read(reinterpret_cast<char*>(image.pixels.data()),
          static_cast<std::streamsize>(image.pixels.size()));
  if (!in) throw std::runtime_error("read_pnm: truncated file " + path);
  return image;
}

}  // namespace blurnet::util
