// Deterministic pseudo-random number generation for every stochastic
// component in the library (dataset rendering, weight init, batching,
// augmentation, EOT transform sampling, Monte-Carlo smoothing).
//
// We intentionally do not use std::mt19937 / std::normal_distribution because
// their output is not guaranteed identical across standard-library
// implementations; reproducibility of experiments is a design requirement
// (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

namespace blurnet::util {

/// xoshiro256** PRNG seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (deterministic, caches the spare value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  /// Derive an independent child generator (for per-worker streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace blurnet::util
