// Environment-variable helpers implementing the scale knobs documented in
// DESIGN.md §6 (BLURNET_FAST / BLURNET_PAPER / BLURNET_CACHE_DIR).
#pragma once

#include <optional>
#include <string>

namespace blurnet::util {

std::optional<std::string> env_string(const std::string& name);

/// True when the variable is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const std::string& name);

/// Integer env var with fallback.
int env_int(const std::string& name, int fallback);

}  // namespace blurnet::util
