// Portable pixmap (PPM/PGM) I/O for dumping rendered signs, adversarial
// examples, and FFT spectra. Binary P6/P5 format; values are float images in
// [0, 1] (CHW for colour, HW for grayscale).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace blurnet::util {

struct ImageU8 {
  int height = 0;
  int width = 0;
  int channels = 0;  // 1 (gray) or 3 (rgb)
  std::vector<std::uint8_t> pixels;  // HWC order
};

/// Quantize a CHW float image in [0,1] to an 8-bit HWC image. Values are
/// clamped; channels must be 1 or 3.
ImageU8 quantize_chw(const float* data, int channels, int height, int width);

/// Write a binary PPM (channels == 3) or PGM (channels == 1).
void write_pnm(const std::string& path, const ImageU8& image);

/// Convenience: quantize + write.
void write_pnm_chw(const std::string& path, const float* data, int channels,
                   int height, int width);

/// Read a binary P5/P6 file (used by tests for round-tripping).
ImageU8 read_pnm(const std::string& path);

}  // namespace blurnet::util
