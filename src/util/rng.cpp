#include "src/util/rng.h"

#include <cmath>
#include <stdexcept>

namespace blurnet::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::shuffle(std::vector<int>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = uniform_index(i);
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1342543de82ef95ULL); }

}  // namespace blurnet::util
