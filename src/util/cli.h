// Tiny command-line flag parser for the bench/example binaries.
//
// Supported syntax: --name=value, --name value, --flag (bool true),
// --no-flag (bool false). Unknown flags raise; positional args are collected.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace blurnet::util {

class CliParser {
 public:
  /// Register a flag with a default value and help text (all values are
  /// stored as strings; typed getters convert on access).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv. Throws std::invalid_argument on unknown/malformed flags.
  void parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Render a --help message.
  std::string help(const std::string& program) const;

  /// True if --help was passed.
  bool help_requested() const { return help_requested_; }

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  const Flag& find(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace blurnet::util
