#include "src/util/cpu_caps.h"

#include <atomic>
#include <stdexcept>

#include "src/util/env.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace blurnet::util {
namespace {

CpuCaps probe_caps() {
  CpuCaps caps;
#if defined(BLURNET_HAVE_AVX2_KERNELS) && (defined(__x86_64__) || defined(_M_X64))
  caps.avx2_fma =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif
#if defined(BLURNET_HAVE_NEON_KERNELS) && defined(__aarch64__)
#if defined(__linux__)
  caps.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  caps.neon = true;  // ASIMD is mandatory in AArch64 baseline
#endif
#endif
  return caps;
}

KernelTarget resolve_from_env() {
  const CpuCaps& caps = cpu_caps();
  if (auto forced = env_string("BLURNET_FORCE_KERNEL"); forced && !forced->empty()) {
    KernelTarget target = parse_kernel_target(*forced);
    if (!kernel_target_available(target)) {
      throw std::invalid_argument(
          "BLURNET_FORCE_KERNEL=" + *forced + ": target '" + *forced +
          "' is not available on this host/build (host caps: avx2_fma=" +
          (caps.avx2_fma ? "yes" : "no") + ", neon=" +
          (caps.neon ? "yes" : "no") + "); 'scalar' always works");
    }
    return target;
  }
  if (caps.avx2_fma) return KernelTarget::kAvx2;
  if (caps.neon) return KernelTarget::kNeon;
  return KernelTarget::kScalar;
}

// -1: unresolved; otherwise a KernelTarget value.
std::atomic<int> g_active{-1};

}  // namespace

const CpuCaps& cpu_caps() {
  static const CpuCaps caps = probe_caps();
  return caps;
}

bool kernel_target_available(KernelTarget target) {
  switch (target) {
    case KernelTarget::kScalar: return true;
    case KernelTarget::kAvx2: return cpu_caps().avx2_fma;
    case KernelTarget::kNeon: return cpu_caps().neon;
  }
  return false;
}

KernelTarget active_kernel_target() {
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<KernelTarget>(cached);
  KernelTarget resolved = resolve_from_env();
  // Benign race: every thread resolves to the same value.
  g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

const char* kernel_target_name(KernelTarget target) {
  switch (target) {
    case KernelTarget::kScalar: return "scalar";
    case KernelTarget::kAvx2: return "avx2";
    case KernelTarget::kNeon: return "neon";
  }
  return "unknown";
}

KernelTarget parse_kernel_target(const std::string& name) {
  if (name == "scalar") return KernelTarget::kScalar;
  if (name == "avx2") return KernelTarget::kAvx2;
  if (name == "neon") return KernelTarget::kNeon;
  throw std::invalid_argument("unknown kernel target '" + name +
                              "' (expected scalar, avx2, or neon)");
}

void set_kernel_target(KernelTarget target) {
  if (!kernel_target_available(target)) {
    throw std::invalid_argument(
        std::string("kernel target '") + kernel_target_name(target) +
        "' is not available on this host/build");
  }
  g_active.store(static_cast<int>(target), std::memory_order_relaxed);
}

void reset_kernel_target() {
  g_active.store(-1, std::memory_order_relaxed);
}

}  // namespace blurnet::util
