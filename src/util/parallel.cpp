#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace blurnet::util {

namespace {
std::atomic<int> g_workers{0};
}

int parallel_workers() {
  const int override_count = g_workers.load();
  if (override_count > 0) return override_count;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

void set_parallel_workers(int workers) { g_workers.store(workers); }

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t min_chunk) {
  if (n <= 0) return;
  const int workers = parallel_workers();
  if (workers <= 1 || n < 2 * min_chunk) {
    fn(0, n);
    return;
  }
  const int chunks = static_cast<int>(std::min<std::int64_t>(workers, (n + min_chunk - 1) / min_chunk));
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    const std::int64_t begin = c * chunk;
    const std::int64_t end = std::min<std::int64_t>(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace blurnet::util
