#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "src/util/thread_pool.h"

namespace blurnet::util {

namespace {
std::atomic<int> g_workers{0};
// BLURNET_WORKERS, read once at first use and cached: getenv on the dispatch
// hot path would both cost a linear environ scan per parallel region and race
// (UB) against any concurrent setenv. -1 = not read yet; 0 = unset/invalid.
std::atomic<int> g_env_workers{-1};

int read_env_workers() {
  if (const char* raw = std::getenv("BLURNET_WORKERS")) {
    const int value = std::atoi(raw);
    if (value > 0) return value;
  }
  return 0;
}
}  // namespace

int parallel_workers() {
  const int override_count = g_workers.load(std::memory_order_relaxed);
  if (override_count > 0) return override_count;
  int from_env = g_env_workers.load(std::memory_order_relaxed);
  if (from_env < 0) {
    from_env = read_env_workers();
    g_env_workers.store(from_env, std::memory_order_relaxed);
  }
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void set_parallel_workers(int workers) {
  if (workers <= 0) {
    throw std::invalid_argument("set_parallel_workers: workers must be positive");
  }
  g_workers.store(workers);
}

void reset_parallel_workers() {
  g_workers.store(0);
  // Re-read the environment so tests (and long-lived processes) can refresh
  // the cached BLURNET_WORKERS value at a safe point.
  g_env_workers.store(read_env_workers(), std::memory_order_relaxed);
}

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t min_chunk) {
  if (n <= 0) return;
  if (min_chunk < 1) min_chunk = 1;
  const int workers = parallel_workers();
  if (workers <= 1 || n < 2 * min_chunk || ThreadPool::on_worker_thread()) {
    fn(0, n);
    return;
  }
  // Oversplit relative to the lane count so uneven chunks load-balance, but
  // derive the chunk size from n/min_chunk alone: the split (and therefore
  // any accumulation order inside fn) is identical for every worker count.
  const std::int64_t wanted = (n + min_chunk - 1) / min_chunk;
  const std::int64_t chunk = std::max<std::int64_t>(
      min_chunk, (n + wanted - 1) / wanted);
  const std::int64_t chunks = (n + chunk - 1) / chunk;
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  auto& pool = ThreadPool::instance();
  pool.ensure_parallelism(workers);
  pool.run(chunks, [&](std::int64_t c) {
    const std::int64_t begin = c * chunk;
    const std::int64_t end = std::min<std::int64_t>(n, begin + chunk);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace blurnet::util
