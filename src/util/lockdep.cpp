#include "src/util/lockdep.h"

#if BLURNET_LOCKDEP

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace blurnet::util {

namespace {

constexpr int kMaxFrames = 32;

struct Stack {
  void* frames[kMaxFrames];
  int depth = 0;
};

Stack capture_stack() {
  Stack s;
  s.depth = ::backtrace(s.frames, kMaxFrames);
  return s;
}

std::string render_stack(const Stack& s) {
  std::string out;
  char** symbols = ::backtrace_symbols(s.frames, s.depth);
  for (int i = 0; i < s.depth; ++i) {
    out += "    #";
    out += std::to_string(i);
    out += " ";
    if (symbols != nullptr && symbols[i] != nullptr) {
      out += symbols[i];
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%p", s.frames[i]);
      out += buf;
    }
    out += "\n";
  }
  std::free(symbols);
  return out;
}

/// A dependency edge held-class -> acquired-class, with the stack of the
/// acquisition that first recorded it (the "prior site" of a later report).
struct Edge {
  Stack stack;
};

struct Graph {
  std::mutex mutex;
  std::vector<std::string> class_names;
  std::unordered_map<std::string, int> by_name;
  /// edges[a] holds the classes some thread acquired while holding class a.
  std::vector<std::unordered_map<int, Edge>> edges;
  LockdepHandler handler = nullptr;
  std::size_t edge_count = 0;

  int register_class(const std::string& name, bool shared) {
    std::lock_guard<std::mutex> lock(mutex);
    if (shared) {
      const auto it = by_name.find(name);
      if (it != by_name.end()) return it->second;
    }
    const int id = static_cast<int>(class_names.size());
    class_names.push_back(name);
    edges.emplace_back();
    if (shared) by_name.emplace(name, id);
    return id;
  }

  /// DFS: is `to` reachable from `from` over recorded edges? On success the
  /// first edge taken out of `from` on the found path is returned through
  /// `first_edge` — its stack is the prior site shown in the report.
  bool reachable(int from, int to, const Edge** first_edge) {
    std::vector<int> stack{from};
    std::vector<char> seen(edges.size(), 0);
    std::vector<const Edge*> via(edges.size(), nullptr);
    seen[static_cast<std::size_t>(from)] = 1;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      for (const auto& [next, edge] : edges[static_cast<std::size_t>(node)]) {
        if (seen[static_cast<std::size_t>(next)]) continue;
        seen[static_cast<std::size_t>(next)] = 1;
        // Track the first hop out of `from` that leads to this node.
        via[static_cast<std::size_t>(next)] = (node == from) ? &edge : via[static_cast<std::size_t>(node)];
        if (next == to) {
          *first_edge = via[static_cast<std::size_t>(next)];
          return true;
        }
        stack.push_back(next);
      }
    }
    return false;
  }
};

Graph& graph() {
  // Leaked deliberately: worker threads may lock DebugMutexes during static
  // destruction, after a normal static Graph would already be gone.
  static Graph* g = new Graph();
  return *g;
}

struct HeldLock {
  int class_id;
  const DebugMutex* instance;
};

// The thread's currently-held DebugMutexes, acquisition order. This must be
// trivially destructible: exit() runs __call_tls_dtors before static
// destructors, and static objects (the global ThreadPool, a static Engine in
// a test) lock DebugMutexes while tearing down. A heap-backed container here
// is a use-after-free in that window — ASan caught exactly that against
// std::vector — so the held set is a fixed POD array that never registers a
// TLS destructor and stays valid until the thread truly ends.
constexpr std::size_t kMaxHeldLocks = 64;

struct HeldSet {
  HeldLock locks[kMaxHeldLocks];
  std::size_t count = 0;

  void push(int class_id, const DebugMutex* instance) {
    if (count >= kMaxHeldLocks) {
      std::fprintf(stderr,
                   "blurnet lockdep: thread holds more than %zu locks at once; "
                   "raise kMaxHeldLocks\n",
                   kMaxHeldLocks);
      std::fflush(stderr);
      std::abort();
    }
    locks[count++] = {class_id, instance};
  }

  void remove(const DebugMutex* instance) {
    for (std::size_t i = count; i > 0; --i) {
      if (locks[i - 1].instance == instance) {
        for (std::size_t j = i - 1; j + 1 < count; ++j) locks[j] = locks[j + 1];
        --count;
        return;
      }
    }
  }
};
static_assert(std::is_trivially_destructible_v<HeldSet>,
              "the held set must survive TLS destruction (see comment above)");

thread_local HeldSet t_held;

HeldSet& held() { return t_held; }

/// True while dispatching a report: acquisitions inside the handler record
/// nothing, so a handler that logs through a locked sink cannot recurse.
thread_local bool t_in_report = false;

void dispatch(LockdepReport report) {
  LockdepHandler handler;
  {
    std::lock_guard<std::mutex> lock(graph().mutex);
    handler = graph().handler;
  }
  t_in_report = true;
  if (handler != nullptr) {
    handler(report);
  } else {
    std::fprintf(stderr, "%s", report.message.c_str());
    std::fflush(stderr);
    std::abort();
  }
  t_in_report = false;
}

LockdepReport make_report(const char* kind, const std::string& acquiring,
                          const std::string& held_name, const Stack& current,
                          const Edge* prior) {
  LockdepReport report;
  report.kind = kind;
  report.acquiring = acquiring;
  report.held = held_name;
  report.current_stack = render_stack(current);
  if (prior != nullptr) report.prior_stack = render_stack(prior->stack);
  report.message = "\n==== blurnet lockdep: potential deadlock (" + report.kind + ") ====\n";
  report.message += "acquiring lock class [" + acquiring + "] while holding [" + held_name + "]\n";
  report.message += "but the reverse ordering was already recorded.\n";
  report.message += "\nacquisition closing the cycle (this thread):\n" + report.current_stack;
  if (!report.prior_stack.empty()) {
    report.message +=
        "\nfirst acquisition on the existing [" + acquiring + "] -> ... -> [" + held_name +
        "] path (recorded earlier):\n" + report.prior_stack;
  }
  report.message += "====\n";
  return report;
}

/// Pre-acquisition check: record (held -> acquiring) edges, reporting the
/// first one that would close a cycle. Runs before blocking on the mutex, so
/// the hazard is reported even when the deadlock itself never fires.
void check_order(int class_id) {
  HeldSet& h = held();
  if (h.count == 0 || t_in_report) return;

  LockdepReport pending;
  bool have_report = false;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> lock(g.mutex);
    for (std::size_t i = 0; i < h.count; ++i) {
      const HeldLock& held_lock = h.locks[i];
      if (held_lock.class_id == class_id) {
        pending = make_report("recursive-acquisition", g.class_names[static_cast<std::size_t>(class_id)],
                              g.class_names[static_cast<std::size_t>(held_lock.class_id)],
                              capture_stack(), nullptr);
        pending.message =
            "\n==== blurnet lockdep: recursive acquisition ====\n"
            "acquiring lock class [" + pending.acquiring + "] while already holding an " +
            "instance of the same class — same-class instances have no defined " +
            "order against each other.\n\nacquisition (this thread):\n" +
            pending.current_stack + "====\n";
        have_report = true;
        break;
      }
      auto& out = g.edges[static_cast<std::size_t>(held_lock.class_id)];
      if (out.find(class_id) != out.end()) continue;  // edge already proven
      const Edge* prior = nullptr;
      if (g.reachable(class_id, held_lock.class_id, &prior)) {
        pending = make_report("order-inversion", g.class_names[static_cast<std::size_t>(class_id)],
                              g.class_names[static_cast<std::size_t>(held_lock.class_id)],
                              capture_stack(), prior);
        have_report = true;
        break;
      }
      out.emplace(class_id, Edge{capture_stack()});
      ++g.edge_count;
    }
  }
  // The handler runs outside the graph lock: it may query edge counts, log,
  // or longjmp out of a test without wedging every other DebugMutex.
  if (have_report) dispatch(std::move(pending));
}

}  // namespace

LockdepHandler lockdep_set_handler(LockdepHandler handler) {
  std::lock_guard<std::mutex> lock(graph().mutex);
  LockdepHandler previous = graph().handler;
  graph().handler = handler;
  return previous;
}

std::size_t lockdep_edge_count() {
  std::lock_guard<std::mutex> lock(graph().mutex);
  return graph().edge_count;
}

void lockdep_reset_edges() {
  std::lock_guard<std::mutex> lock(graph().mutex);
  for (auto& out : graph().edges) out.clear();
  graph().edge_count = 0;
}

DebugMutex::DebugMutex() {
  char name[32];
  std::snprintf(name, sizeof name, "anon@%p", static_cast<void*>(this));
  class_id_ = graph().register_class(name, /*shared=*/false);
}

DebugMutex::DebugMutex(const char* lock_class)
    : class_id_(graph().register_class(lock_class, /*shared=*/true)) {}

void DebugMutex::lock() {
  check_order(class_id_);
  mutex_.lock();
  held().push(class_id_, this);
}

bool DebugMutex::try_lock() {
  // No edge recording: a try_lock never blocks, so it can never be the
  // waiting edge of a deadlock cycle. It still joins the held set — locks
  // acquired under it do order against it.
  if (!mutex_.try_lock()) return false;
  held().push(class_id_, this);
  return true;
}

void DebugMutex::unlock() {
  held().remove(this);
  mutex_.unlock();
}

}  // namespace blurnet::util

#endif  // BLURNET_LOCKDEP
