#include "src/util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace blurnet::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  using clock = std::chrono::system_clock;
  const auto now = clock::to_time_t(clock::now());
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", stamp, level_tag(level), message.c_str());
}

}  // namespace detail
}  // namespace blurnet::util
