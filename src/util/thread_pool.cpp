#include "src/util/thread_pool.h"

#include <stdexcept>

#include "src/util/parallel.h"

namespace blurnet::util {

namespace {
thread_local bool t_on_worker_thread = false;
// True while this thread is the producer inside run(). Guards the nested-run
// inline fallback: try_lock on a mutex the thread already owns is UB, so the
// re-entrancy check must not rely on run_mutex_.
thread_local bool t_in_run = false;
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(parallel_workers());
  return pool;
}

ThreadPool::ThreadPool(int parallelism) {
  parallelism_.store(parallelism < 1 ? 1 : parallelism);
  spawn_workers(parallelism_.load() - 1);
}

ThreadPool::~ThreadPool() { stop_workers(); }

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

void ThreadPool::spawn_workers(int count) {
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<DebugMutex> lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  std::lock_guard<DebugMutex> lock(mutex_);
  stop_ = false;
}

void ThreadPool::ensure_parallelism(int parallelism) {
  if (parallelism < 1) {
    throw std::invalid_argument("ThreadPool: parallelism must be positive");
  }
  if (parallelism_.load(std::memory_order_relaxed) == parallelism) return;
  // A nested region runs inline anyway; resizing from inside a job on this
  // thread would self-deadlock on run_mutex_.
  if (t_in_run || t_on_worker_thread) return;
  // Wait out any in-flight job, and keep new producers inline while resizing.
  std::lock_guard<DebugMutex> busy(run_mutex_);
  if (parallelism_.load(std::memory_order_relaxed) == parallelism) return;
  stop_workers();
  parallelism_.store(parallelism);
  spawn_workers(parallelism - 1);
}

void ThreadPool::record_error() noexcept {
  std::lock_guard<DebugMutex> lock(mutex_);
  if (!job_error_) job_error_ = std::current_exception();
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  std::uint64_t seen_generation = 0;
  std::unique_lock<DebugMutex> lock(mutex_);
  for (;;) {
    job_cv_.wait(lock, [&] {
      return stop_ || (job_generation_ != seen_generation && job_fn_ != nullptr);
    });
    if (stop_) return;
    seen_generation = job_generation_;
    const auto* fn = job_fn_;
    const std::int64_t chunks = job_chunks_;
    ++active_workers_;
    lock.unlock();

    std::int64_t chunk;
    while ((chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      try {
        (*fn)(chunk);
      } catch (...) {
        record_error();
        break;
      }
    }

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run(std::int64_t chunks, const std::function<void(std::int64_t)>& fn) {
  if (chunks <= 0) return;
  if (t_in_run || t_on_worker_thread) {
    // Nested parallel region (from the producer or a worker): inline.
    for (std::int64_t chunk = 0; chunk < chunks; ++chunk) fn(chunk);
    return;
  }
  std::unique_lock<DebugMutex> busy(run_mutex_, std::try_to_lock);
  if (!busy.owns_lock() || workers_.empty()) {
    // Pool busy with a concurrent region, or no background workers: run
    // everything on the calling thread.
    for (std::int64_t chunk = 0; chunk < chunks; ++chunk) fn(chunk);
    return;
  }
  struct InRunScope {
    InRunScope() { t_in_run = true; }
    ~InRunScope() { t_in_run = false; }
  } in_run_scope;

  {
    std::lock_guard<DebugMutex> lock(mutex_);
    job_fn_ = &fn;
    job_chunks_ = chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    job_error_ = nullptr;
    ++job_generation_;
  }
  // Wake only as many workers as there are chunks beyond the producer's
  // share: notify_all on a wide machine would stampede every idle worker
  // through the mutex for a job most of them would find already drained.
  const std::size_t to_wake =
      std::min<std::size_t>(workers_.size(), static_cast<std::size_t>(chunks - 1));
  if (to_wake == workers_.size()) {
    job_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < to_wake; ++i) job_cv_.notify_one();
  }

  // The producer works too — on small jobs it may drain every chunk before a
  // worker even wakes up, which is exactly the cheap path we want.
  std::int64_t chunk;
  while ((chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed)) < chunks) {
    try {
      fn(chunk);
    } catch (...) {
      record_error();
      break;
    }
  }

  std::unique_lock<DebugMutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  job_fn_ = nullptr;  // late-waking workers see null and go back to sleep
  if (job_error_) {
    std::exception_ptr error = job_error_;
    job_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace blurnet::util
