#include "src/util/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace blurnet::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match headers");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return out.str();
}

std::string Table::num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c];
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace blurnet::util
