// Wall-clock stopwatch used by the experiment harness for progress reporting.
#pragma once

#include <chrono>

namespace blurnet::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace blurnet::util
