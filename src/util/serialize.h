// Little binary (de)serializer for model checkpoints and cached artifacts.
// Format: tagged key/value records; all integers little-endian fixed width.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace blurnet::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void write_u32(std::uint32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  void write_f32_array(const float* data, std::size_t count);
  void write_i64_array(const std::int64_t* data, std::size_t count);

  /// Flush and close; throws on I/O failure.
  void close();

 private:
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::int64_t read_i64();
  float read_f32();
  std::string read_string();
  std::vector<float> read_f32_array();
  std::vector<std::int64_t> read_i64_array();

  bool at_end();

 private:
  void require(bool ok, const char* what);
  std::ifstream in_;
  std::string path_;
};

}  // namespace blurnet::util
