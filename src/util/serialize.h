// Little binary (de)serializer for model checkpoints and cached artifacts.
// Format: tagged key/value records; all integers little-endian fixed width.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace blurnet::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void write_u32(std::uint32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  void write_f32_array(const float* data, std::size_t count);
  void write_i64_array(const std::int64_t* data, std::size_t count);

  /// Flush and close; throws on I/O failure.
  void close();

 private:
  std::ofstream out_;
  std::string path_;
};

/// Bounds-checked reader over a checkpoint's bytes. The file constructor
/// slurps the whole file up front, so every length prefix is validated
/// against the bytes actually present *before* anything is allocated — a
/// hostile or corrupt count can produce only a clean std::runtime_error,
/// never a multi-gigabyte allocation or a partial read. The memory
/// constructor reads an in-memory image the same way (serving fuzzers and
/// callers that already hold the bytes).
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  /// Read from `size` bytes at `data`, which must outlive the reader.
  /// `name` labels error messages the way the file path otherwise would.
  BinaryReader(const void* data, std::size_t size, std::string name = "<memory>");

  std::uint32_t read_u32();
  std::int64_t read_i64();
  float read_f32();
  std::string read_string();
  std::vector<float> read_f32_array();
  std::vector<std::int64_t> read_i64_array();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - cursor_; }
  bool at_end() const { return cursor_ == size_; }

 private:
  void require(bool ok, const char* what);
  const std::uint8_t* take(std::size_t n, const char* what);

  std::vector<std::uint8_t> owned_;  // file contents (file constructor only)
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cursor_ = 0;
  std::string name_;
};

}  // namespace blurnet::util
