// Debug-build lock-order checking (lockdep) for the serving stack.
//
// The serving path crosses a dozen locks — engine shard router, bounded
// submit queues, latency rings, connection inbox/outbox, thread-pool state —
// and a lock-order inversion between any two of them is a deadlock that only
// fires under exactly the wrong interleaving. DebugMutex makes the *potential*
// inversion the bug: every acquisition records a "held A, acquired B" edge
// into a global lock-class graph, and the first acquisition that would close
// a cycle in that graph is reported immediately with both acquisition stacks
// (the current one and the one that recorded the reverse path), even though
// no thread is actually deadlocked. This is the same idea as the kernel's
// lockdep and TSan's second_deadlock_stack, but available in any plain Debug
// build with zero extra tooling.
//
// Lock *classes*, not instances: every DebugMutex constructed with the same
// class name (via BLURNET_LOCK_CLASS) shares one node in the graph, so one
// connection's inbox mutex proving "connection before zombies" applies to
// every connection. A DebugMutex constructed without a name gets a private
// per-instance class.
//
// Semantics:
//   * lock() checks (held -> this) edges for cycles before blocking, then
//     acquires and joins the thread's held set.
//   * try_lock() joins the held set on success but records no edges — a
//     non-blocking acquisition can never be the blocked edge of a deadlock.
//   * Acquiring a class already held by the thread (any instance) is reported
//     as a recursive-acquisition hazard: two same-class instances taken
//     together have no defined order against each other.
//   * Detection calls the installed handler (default: report to stderr and
//     abort). Tests install their own handler to assert on reports.
//
// Release builds (NDEBUG, unless overridden by defining BLURNET_LOCKDEP):
// DebugMutex *is* std::mutex — a type alias, not a wrapper — and
// DebugConditionVariable is std::condition_variable, so the checker costs
// nothing when it is off. BLURNET_LOCK_CLASS(name) expands to an empty token
// so member declarations read identically in both modes:
//
//   util::DebugMutex queue_mutex_ BLURNET_LOCK_CLASS("serve::Engine::queue");
//
// Waiting on a DebugMutex requires DebugConditionVariable: in Debug it is
// std::condition_variable_any (wait() releases/reacquires through DebugMutex,
// keeping the held set exact); in Release it is std::condition_variable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>

#if !defined(BLURNET_LOCKDEP)
#if defined(NDEBUG)
#define BLURNET_LOCKDEP 0
#else
#define BLURNET_LOCKDEP 1
#endif
#endif

#if BLURNET_LOCKDEP
#define BLURNET_LOCK_CLASS(name) {name}
#else
#define BLURNET_LOCK_CLASS(name)
#endif

namespace blurnet::util {

#if BLURNET_LOCKDEP

/// One detected hazard, handed to the installed handler.
struct LockdepReport {
  /// "order-inversion" or "recursive-acquisition".
  std::string kind;
  /// The class being acquired when the hazard was detected.
  std::string acquiring;
  /// The held class it conflicts with.
  std::string held;
  /// Stack of the acquisition that closed the cycle (this thread, now).
  std::string current_stack;
  /// Stack recorded when the conflicting (reverse-path) edge was first taken.
  std::string prior_stack;
  /// The full human-readable report (what the default handler prints).
  std::string message;
};

/// Called on detection instead of the default print-and-abort. nullptr
/// restores the default. Returns the previous handler. The handler runs with
/// no lockdep-internal locks held; acquiring DebugMutexes inside it records
/// no edges.
using LockdepHandler = void (*)(const LockdepReport&);
LockdepHandler lockdep_set_handler(LockdepHandler handler);

/// Edges recorded so far (test introspection).
std::size_t lockdep_edge_count();

/// Forget every recorded edge (lock classes persist — live DebugMutexes keep
/// their ids). Test isolation only; call with no DebugMutex held anywhere.
void lockdep_reset_edges();

class DebugMutex {
 public:
  /// Anonymous: a private per-instance lock class.
  DebugMutex();
  /// Named: all instances with the same name share one lock class. The name
  /// must outlive the program (string literals).
  explicit DebugMutex(const char* lock_class);
  ~DebugMutex() = default;

  DebugMutex(const DebugMutex&) = delete;
  DebugMutex& operator=(const DebugMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  std::mutex mutex_;
  int class_id_;
};

using DebugConditionVariable = std::condition_variable_any;

#else  // !BLURNET_LOCKDEP

using DebugMutex = std::mutex;
using DebugConditionVariable = std::condition_variable;

#endif

}  // namespace blurnet::util
