#include "src/util/env.h"

#include <cstdlib>

namespace blurnet::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

bool env_flag(const std::string& name) {
  const auto value = env_string(name);
  if (!value) return false;
  return *value == "1" || *value == "true" || *value == "yes" || *value == "on";
}

int env_int(const std::string& name, int fallback) {
  const auto value = env_string(name);
  if (!value || value->empty()) return fallback;
  try {
    return std::stoi(*value);
  } catch (...) {
    return fallback;
  }
}

}  // namespace blurnet::util
