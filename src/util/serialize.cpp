#include "src/util/serialize.h"

#include <cstring>
#include <stdexcept>

namespace blurnet::util {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
}

BinaryWriter::~BinaryWriter() {
  if (out_.is_open()) out_.close();
}

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_i64(std::int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_f32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_array(const float* data, std::size_t count) {
  write_i64(static_cast<std::int64_t>(count));
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(float)));
}

void BinaryWriter::write_i64_array(const std::int64_t* data, std::size_t count) {
  write_i64(static_cast<std::int64_t>(count));
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(std::int64_t)));
}

void BinaryWriter::close() {
  out_.close();
  if (out_.fail()) throw std::runtime_error("BinaryWriter: write failed for " + path_);
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
}

void BinaryReader::require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("BinaryReader: ") + what + " in " + path_);
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof v);
  require(static_cast<bool>(in_), "truncated u32");
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof v);
  require(static_cast<bool>(in_), "truncated i64");
  return v;
}

float BinaryReader::read_f32() {
  float v = 0;
  in_.read(reinterpret_cast<char*>(&v), sizeof v);
  require(static_cast<bool>(in_), "truncated f32");
  return v;
}

std::string BinaryReader::read_string() {
  const auto n = read_u32();
  std::string s(n, '\0');
  in_.read(s.data(), n);
  require(static_cast<bool>(in_), "truncated string");
  return s;
}

std::vector<float> BinaryReader::read_f32_array() {
  const auto n = read_i64();
  require(n >= 0, "negative array length");
  std::vector<float> v(static_cast<std::size_t>(n));
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
  require(static_cast<bool>(in_), "truncated f32 array");
  return v;
}

std::vector<std::int64_t> BinaryReader::read_i64_array() {
  const auto n = read_i64();
  require(n >= 0, "negative array length");
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(std::int64_t)));
  require(static_cast<bool>(in_), "truncated i64 array");
  return v;
}

bool BinaryReader::at_end() {
  return in_.peek() == std::char_traits<char>::eof();
}

}  // namespace blurnet::util
