#include "src/util/serialize.h"

#include <cstring>
#include <stdexcept>

namespace blurnet::util {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
}

BinaryWriter::~BinaryWriter() {
  if (out_.is_open()) out_.close();
}

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_i64(std::int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_f32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_array(const float* data, std::size_t count) {
  write_i64(static_cast<std::int64_t>(count));
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(float)));
}

void BinaryWriter::write_i64_array(const std::int64_t* data, std::size_t count) {
  write_i64(static_cast<std::int64_t>(count));
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(count * sizeof(std::int64_t)));
}

void BinaryWriter::close() {
  out_.close();
  if (out_.fail()) throw std::runtime_error("BinaryWriter: write failed for " + path_);
}

BinaryReader::BinaryReader(const std::string& path) : name_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("BinaryReader: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  if (end < 0) throw std::runtime_error("BinaryReader: cannot size " + path);
  in.seekg(0, std::ios::beg);
  owned_.resize(static_cast<std::size_t>(end));
  if (!owned_.empty()) {
    in.read(reinterpret_cast<char*>(owned_.data()),
            static_cast<std::streamsize>(owned_.size()));
    if (!in) throw std::runtime_error("BinaryReader: short read of " + path);
  }
  data_ = owned_.empty() ? reinterpret_cast<const std::uint8_t*>("") : owned_.data();
  size_ = owned_.size();
}

BinaryReader::BinaryReader(const void* data, std::size_t size, std::string name)
    // Null data is only legal for an empty image; substitute a valid pointer
    // so cursor arithmetic never offsets from null (UB even at offset zero).
    : data_(data != nullptr ? static_cast<const std::uint8_t*>(data)
                            : reinterpret_cast<const std::uint8_t*>("")),
      size_(size),
      name_(std::move(name)) {
  if (data == nullptr && size != 0) {
    throw std::runtime_error("BinaryReader: null data with nonzero size for " + name_);
  }
}

void BinaryReader::require(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("BinaryReader: ") + what + " in " + name_);
}

const std::uint8_t* BinaryReader::take(std::size_t n, const char* what) {
  require(n <= remaining(), what);
  const std::uint8_t* at = data_ + cursor_;
  cursor_ += n;
  return at;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  std::memcpy(&v, take(sizeof v, "truncated u32"), sizeof v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  std::memcpy(&v, take(sizeof v, "truncated i64"), sizeof v);
  return v;
}

float BinaryReader::read_f32() {
  float v;
  std::memcpy(&v, take(sizeof v, "truncated f32"), sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const auto n = read_u32();
  // Checked against the bytes actually present before the allocation: a
  // hostile length prefix cannot force a 4 GB std::string.
  const std::uint8_t* p = take(n, "truncated string");
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<float> BinaryReader::read_f32_array() {
  const auto n = read_i64();
  require(n >= 0, "negative array length");
  require(static_cast<std::uint64_t>(n) <= remaining() / sizeof(float),
          "array length exceeds the bytes present");
  std::vector<float> v(static_cast<std::size_t>(n));
  if (!v.empty()) {
    std::memcpy(v.data(), take(v.size() * sizeof(float), "truncated f32 array"),
                v.size() * sizeof(float));
  }
  return v;
}

std::vector<std::int64_t> BinaryReader::read_i64_array() {
  const auto n = read_i64();
  require(n >= 0, "negative array length");
  require(static_cast<std::uint64_t>(n) <= remaining() / sizeof(std::int64_t),
          "array length exceeds the bytes present");
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  if (!v.empty()) {
    std::memcpy(v.data(), take(v.size() * sizeof(std::int64_t), "truncated i64 array"),
                v.size() * sizeof(std::int64_t));
  }
  return v;
}

}  // namespace blurnet::util
