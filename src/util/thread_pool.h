// Persistent work-sharing thread pool behind parallel_for.
//
// The seed runtime spawned and joined fresh std::threads on every
// parallel_for call, which dominates the cost of the many small parallel
// regions the filter/convolution kernels issue per inference. This pool keeps
// one set of workers alive for the lifetime of the process and hands them
// chunk indices through an atomic counter, so a parallel region costs a
// wakeup instead of thread creation.
//
// Concurrency model: one job runs at a time. The thread that calls run()
// participates in the job, so a pool with parallelism P uses P-1 background
// workers. When the pool is busy (a concurrent or nested parallel region) the
// caller simply runs every chunk inline — the pool never blocks a second
// producer and nested parallel_for calls cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/lockdep.h"

namespace blurnet::util {

class ThreadPool {
 public:
  /// Process-wide pool, created on first use with parallel_workers() lanes.
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total parallelism (background workers + the calling thread).
  int parallelism() const { return parallelism_.load(std::memory_order_relaxed); }

  /// Retarget the pool to `parallelism` lanes (>= 1), joining or spawning
  /// workers as needed. Blocks until any in-flight job finishes. No-op when
  /// the pool already has that many lanes.
  void ensure_parallelism(int parallelism);

  /// Run fn(chunk) for every chunk in [0, chunks). The caller participates;
  /// the call returns once every chunk has executed. The first exception
  /// thrown by fn is rethrown here (remaining chunks may be skipped).
  void run(std::int64_t chunks, const std::function<void(std::int64_t)>& fn);

  /// True when the current thread is one of the pool's background workers.
  static bool on_worker_thread();

 private:
  explicit ThreadPool(int parallelism);

  void spawn_workers(int count);
  void stop_workers();
  void worker_loop();
  void record_error() noexcept;

  // Lock hierarchy: run_mutex_ (producer serialization) above mutex_ (job
  // state) — ensure_parallelism() and run() both take run first.
  // Guards job state and worker lifecycle; never held while running fn.
  DebugMutex mutex_ BLURNET_LOCK_CLASS("util::ThreadPool::state");
  DebugConditionVariable job_cv_;   // workers: new job available / stop
  DebugConditionVariable done_cv_;  // producer: all arrived workers finished
  std::vector<std::thread> workers_;
  std::atomic<int> parallelism_{1};

  // Current job. job_fn_ is only non-null between post and completion, and is
  // always read under mutex_, so a late-waking worker can never touch a
  // function object whose run() call already returned.
  std::uint64_t job_generation_ = 0;
  const std::function<void(std::int64_t)>* job_fn_ = nullptr;
  std::int64_t job_chunks_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::int64_t active_workers_ = 0;
  std::exception_ptr job_error_;
  bool stop_ = false;

  // Serializes producers: run() try-locks this and falls back to inline
  // execution when another parallel region is already using the workers.
  DebugMutex run_mutex_ BLURNET_LOCK_CLASS("util::ThreadPool::run");
};

}  // namespace blurnet::util
