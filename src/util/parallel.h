// Data-parallel helper used by the convolution / attack kernels.
//
// parallel_for splits [0, n) into contiguous chunks across a small number of
// worker threads. The work function must be safe to run concurrently on
// disjoint index ranges. For tiny n the call degrades to a serial loop so the
// threading overhead never dominates.
#pragma once

#include <cstdint>
#include <functional>

namespace blurnet::util {

/// Number of worker threads used by parallel_for (defaults to hardware
/// concurrency, clamped to [1, 8]).
int parallel_workers();

/// Override the worker count (0 restores the default). Used in tests to
/// exercise both serial and parallel paths.
void set_parallel_workers(int workers);

/// Invoke fn(begin, end) over a partition of [0, n).
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t min_chunk = 256);

}  // namespace blurnet::util
