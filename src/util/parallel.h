// Data-parallel helper used by the convolution / attack kernels.
//
// parallel_for splits [0, n) into contiguous chunks and executes them on the
// persistent process-wide ThreadPool (src/util/thread_pool.h). The work
// function must be safe to run concurrently on disjoint index ranges. For
// tiny n the call degrades to a serial loop so the threading overhead never
// dominates, and chunk boundaries depend only on n and min_chunk — never on
// the worker count — so results are reproducible under any parallelism.
#pragma once

#include <cstdint>
#include <functional>

namespace blurnet::util {

/// Number of worker lanes used by parallel_for. Resolution order: the
/// set_parallel_workers override, then the BLURNET_WORKERS environment
/// variable (read once at first use and cached), then
/// std::thread::hardware_concurrency() (uncapped).
int parallel_workers();

/// Override the worker count. Throws std::invalid_argument when workers is
/// not positive; use reset_parallel_workers() to restore the default.
void set_parallel_workers(int workers);

/// Drop any override and return to the environment/hardware default. Also
/// re-reads BLURNET_WORKERS, so call this after changing it at runtime.
void reset_parallel_workers();

/// Invoke fn(begin, end) over a partition of [0, n).
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn,
                  std::int64_t min_chunk = 256);

}  // namespace blurnet::util
