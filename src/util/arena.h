// Per-request bump-pointer arena behind the serving hot path.
//
// The inference forward chain (preprocess -> pad -> im2col -> GEMM -> logits)
// used to heap-allocate every intermediate tensor and autograd node on every
// request. The conv kernels already keep their big pad/column scratch warm per
// thread; this file generalizes that idea to *every* transient allocation of a
// request:
//
//   * Arena        — a chain of malloc'd blocks handed out by pointer bump.
//                    Allocation is an add + compare; freeing is a no-op; the
//                    whole request's memory is reclaimed at once by rewinding.
//   * ArenaScope   — RAII frame: binds an arena as the current thread's
//                    scratch source, records a mark, and rewinds to it on
//                    exit. Frames nest (a worker's batch frame around each
//                    image's forward frame), each releasing only its own
//                    allocations.
//   * scratch_alloc / scratch_free — the allocation hook tensor storage and
//                    autograd nodes route through. Inside a scope they bump
//                    the bound arena; outside they fall back to the heap. A
//                    process-wide counter records every heap fallback (and
//                    every arena block growth), so tests can assert that a
//                    warm serving thread performs zero heap allocations.
//
// Contract: memory handed out inside a scope must not outlive that scope's
// rewind — callers copy anything that escapes (the serving path copies
// logits into plain Prediction vectors before its frame closes). An Arena is
// single-threaded by design; the serving path keeps one per thread
// (serve::Replica::serving_arena()), mirroring the per-thread conv scratch.
//
// Reference shape: pixmask's one-arena-per-pipeline reset-per-request
// allocator; ours adds nested frames and the heap-fallback accounting hook.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blurnet::util {

class Arena {
 public:
  /// Blocks are carved in multiples of `block_bytes` (default 1 MiB —
  /// comfortably a whole small-CNN forward, so steady state is one block).
  static constexpr std::size_t kDefaultBlockBytes = std::size_t(1) << 20;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two). Walks the
  /// existing block chain first-fit, so a rewound arena replays the same
  /// allocation sequence onto the same addresses; grows a new block (heap,
  /// counted) only when nothing fits. An oversized request — larger than
  /// block_bytes — gets a dedicated block of exactly its size.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewind position for nested frames.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };
  Mark mark() const { return {current_, offset_}; }
  /// Rewind to a mark, releasing every allocation made after it. Blocks are
  /// kept for reuse — rewinding never touches the heap.
  void rewind(Mark m);
  /// Rewind to the beginning (keeps all blocks).
  void reset() { rewind({0, 0}); }

  /// Blocks currently owned (grows during warm-up, then stays flat).
  std::size_t block_count() const { return blocks_.size(); }
  /// Total bytes across all blocks.
  std::size_t capacity() const;
  /// Bytes handed out since the last reset (including alignment padding).
  std::size_t used() const;
  /// Times this arena had to malloc a new block — the arena's share of the
  /// process-wide scratch_heap_allocations() counter.
  std::int64_t growths() const { return growths_; }

 private:
  struct Block {
    char* data = nullptr;
    std::size_t size = 0;
  };

  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t block_bytes_;
  std::size_t current_ = 0;  // block being bumped
  std::size_t offset_ = 0;   // bump position inside blocks_[current_]
  std::int64_t growths_ = 0;
};

/// The arena bound to this thread by the innermost live ArenaScope, or
/// nullptr when scratch allocations should use the heap.
Arena* current_arena();

/// RAII frame on an arena (see file comment). Binding is thread-local; the
/// destructor restores the previous binding and rewinds the arena to the
/// entry mark, so nested frames release only their own allocations.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena* previous_;
  Arena::Mark mark_;
};

/// Allocate `bytes` aligned to `align` from the current thread's arena, or
/// from the heap (counted) when no scope is bound. The returned block carries
/// a hidden header so scratch_free() knows which case it was.
void* scratch_alloc(std::size_t bytes, std::size_t align = 64);

/// Release a scratch_alloc'd block: frees heap blocks, no-ops arena blocks
/// (their memory is reclaimed by the owning scope's rewind). Must run before
/// the owning scope rewinds past the block.
void scratch_free(void* p) noexcept;

/// Process-wide count of scratch-layer heap events: scratch_alloc heap
/// fallbacks plus arena block growths. Flat between two snapshots ⇒ the
/// tensor/node hot path in between was allocation-free.
std::int64_t scratch_heap_allocations();

/// Minimal std allocator over scratch_alloc/scratch_free, used to place
/// autograd node control blocks in the request arena (allocate_shared).
template <typename T>
struct ScratchAllocator {
  using value_type = T;

  ScratchAllocator() noexcept = default;
  template <typename U>
  ScratchAllocator(const ScratchAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(scratch_alloc(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { scratch_free(p); }

  template <typename U>
  bool operator==(const ScratchAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const ScratchAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace blurnet::util
