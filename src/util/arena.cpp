#include "src/util/arena.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>

namespace blurnet::util {

namespace {

thread_local Arena* t_current_arena = nullptr;

std::atomic<std::int64_t> g_scratch_heap_allocations{0};

/// Hidden prefix of every scratch_alloc'd block. 16 bytes, placed immediately
/// before the returned pointer (which is aligned to >= 16, so the header is
/// too). `base` is the raw malloc pointer for heap blocks, nullptr for arena
/// blocks; the tag tells scratch_free which case it is looking at.
struct ScratchHeader {
  void* base;
  std::uint64_t tag;
};
static_assert(sizeof(ScratchHeader) == 16, "header must stay 16 bytes");

constexpr std::uint64_t kHeapTag = 0x48454150u;   // "HEAP"
constexpr std::uint64_t kArenaTag = 0x4152454eu;  // "AREN"

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t block_bytes) : block_bytes_(block_bytes) {
  if (block_bytes_ == 0) {
    throw std::invalid_argument("Arena: block_bytes must be positive");
  }
}

Arena::~Arena() {
  for (auto& block : blocks_) std::free(block.data);
}

void Arena::grow(std::size_t min_bytes) {
  Block block;
  block.size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  block.data = static_cast<char*>(std::malloc(block.size));
  if (block.data == nullptr) throw std::bad_alloc();
  blocks_.push_back(block);
  ++growths_;
  g_scratch_heap_allocations.fetch_add(1, std::memory_order_relaxed);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("Arena::allocate: align must be a power of two");
  }
  // First-fit walk over the block chain from the current bump position: after
  // a rewind the same allocation sequence lands on the same addresses, which
  // is what makes warm-path reuse (and the reset-reuse tests) deterministic.
  while (current_ < blocks_.size()) {
    const Block& block = blocks_[current_];
    const std::size_t base = reinterpret_cast<std::size_t>(block.data);
    const std::size_t aligned = align_up(base + offset_, align) - base;
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      return block.data + aligned;
    }
    ++current_;
    offset_ = 0;
  }
  // Nothing fits: grow. Oversized requests get a block of exactly their size
  // (plus alignment slack) so they do not inflate every later block.
  grow(bytes + align);
  current_ = blocks_.size() - 1;
  const Block& block = blocks_[current_];
  const std::size_t base = reinterpret_cast<std::size_t>(block.data);
  const std::size_t aligned = align_up(base, align) - base;
  offset_ = aligned + bytes;
  return block.data + aligned;
}

void Arena::rewind(Mark m) {
  if (m.block > blocks_.size()) {
    throw std::invalid_argument("Arena::rewind: mark is not from this arena");
  }
  current_ = m.block;
  offset_ = m.offset;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block.size;
  return total;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < current_ && i < blocks_.size(); ++i) {
    total += blocks_[i].size;
  }
  return total + offset_;
}

Arena* current_arena() { return t_current_arena; }

ArenaScope::ArenaScope(Arena& arena)
    : arena_(&arena), previous_(t_current_arena), mark_(arena.mark()) {
  t_current_arena = arena_;
}

ArenaScope::~ArenaScope() {
  // Rewind before unbinding: every allocation this frame handed out is dead
  // by the time the scope object is destroyed (locals die in reverse
  // declaration order, and escaping values are copied by contract).
  arena_->rewind(mark_);
  t_current_arena = previous_;
}

void* scratch_alloc(std::size_t bytes, std::size_t align) {
  if (align < 16) align = 16;
  // The payload sits `pad` bytes into the block so that it is `align`-aligned
  // with the 16-byte header immediately before it.
  const std::size_t pad = align_up(sizeof(ScratchHeader), align);
  if (Arena* arena = t_current_arena) {
    char* raw = static_cast<char*>(arena->allocate(pad + bytes, align));
    char* p = raw + pad;
    auto* header = reinterpret_cast<ScratchHeader*>(p) - 1;
    header->base = nullptr;
    header->tag = kArenaTag;
    return p;
  }
  // Heap fallback: over-allocate so the payload can be aligned with the
  // header immediately before it, and remember the raw pointer for free().
  void* raw = std::malloc(pad + bytes + align);
  if (raw == nullptr) throw std::bad_alloc();
  g_scratch_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  char* p = static_cast<char*>(raw) + sizeof(ScratchHeader);
  p = reinterpret_cast<char*>(align_up(reinterpret_cast<std::size_t>(p), align));
  auto* header = reinterpret_cast<ScratchHeader*>(p) - 1;
  header->base = raw;
  header->tag = kHeapTag;
  return p;
}

void scratch_free(void* p) noexcept {
  if (p == nullptr) return;
  auto* header = reinterpret_cast<ScratchHeader*>(p) - 1;
  if (header->tag == kHeapTag) {
    std::free(header->base);
  }
  // Arena blocks: nothing to do — the owning scope's rewind reclaims them.
  // (Freeing after that rewind is a contract violation; the header may
  // already be reused, which is why escape-by-copy is mandatory.)
}

std::int64_t scratch_heap_allocations() {
  return g_scratch_heap_allocations.load(std::memory_order_relaxed);
}

}  // namespace blurnet::util
