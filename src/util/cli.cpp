#include "src/util/cli.h"

#include <sstream>
#include <stdexcept>

namespace blurnet::util {

void CliParser::add_flag(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    if (!has_value && name.rfind("no-", 0) == 0) {
      const std::string base = name.substr(3);
      if (flags_.count(base)) {
        flags_[base].value = "false";
        continue;
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) throw std::invalid_argument("unknown flag: --" + name);
    if (has_value) {
      it->second.value = value;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0 &&
               it->second.default_value != "true" && it->second.default_value != "false") {
      it->second.value = argv[++i];
    } else {
      it->second.value = "true";  // bare boolean flag
    }
  }
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) throw std::invalid_argument("flag not registered: --" + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const { return find(name).value; }

int CliParser::get_int(const std::string& name) const {
  return std::stoi(find(name).value);
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(find(name).value);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + " is not a boolean: " + v);
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.default_value << ")\n      "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace blurnet::util
