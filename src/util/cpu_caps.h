// Runtime CPU-capability probe and SIMD kernel-target selection.
//
// The hot float loops (linalg::sgemm microtile, signal::filter_plane,
// the depthwise conv taps, autograd::affine_warp, the input-transform
// median/DCT kernels) are routed through per-ISA implementations picked
// once per process:
//
//   * probe the host once (cpuid-style builtins on x86-64, auxv on
//     aarch64) and intersect with what this binary was compiled with;
//   * honour BLURNET_FORCE_KERNEL=scalar|avx2|neon as an override —
//     unknown or unavailable values fail fast with a descriptive
//     std::invalid_argument, the same contract as serve::EngineConfig
//     validation; an empty value counts as unset;
//   * cache the decision in an atomic so steady-state dispatch is one
//     relaxed load.
//
// Determinism contract (documented in README "SIMD dispatch"): within one
// kernel target, every result is bitwise identical for any worker count,
// replica count, batch split, and queue capacity — the SIMD kernels keep
// the scalar chunking invariants and accumulation orders. Across targets,
// only the GEMM microtile may differ (AVX2/NEON use fused multiply-add,
// one rounding per term instead of two); every non-GEMM kernel reproduces
// the scalar numerics bit-for-bit on all targets.
//
// set_kernel_target() exists for tests and benches; call it only between
// computations, never while another thread is inside a kernel.
#pragma once

#include <string>

namespace blurnet::util {

/// Which microkernel family dispatch resolves to.
enum class KernelTarget { kScalar, kAvx2, kNeon };

/// What the host supports, intersected with what this binary carries.
/// (A build without the AVX2 translation unit reports avx2_fma=false even
/// on an AVX2 machine — the probe answers "can we dispatch to it".)
struct CpuCaps {
  bool avx2_fma = false;  ///< x86-64 with AVX2 and FMA3, kernels compiled in
  bool neon = false;      ///< aarch64 ASIMD, kernels compiled in
};

/// Probe-once host capabilities (cached after the first call).
const CpuCaps& cpu_caps();

/// True when `target` can execute on this host in this binary. kScalar is
/// always available.
bool kernel_target_available(KernelTarget target);

/// The target every dispatched kernel uses: the BLURNET_FORCE_KERNEL
/// override when set (else the best available of avx2 > neon > scalar),
/// resolved once and cached. Throws std::invalid_argument when the env
/// var names an unknown target or one this host/binary cannot run.
KernelTarget active_kernel_target();

/// "scalar" / "avx2" / "neon" — stable names, also the accepted
/// BLURNET_FORCE_KERNEL spellings.
const char* kernel_target_name(KernelTarget target);

/// Parse a BLURNET_FORCE_KERNEL spelling. Throws std::invalid_argument
/// listing the accepted values on anything else (including "").
KernelTarget parse_kernel_target(const std::string& name);

/// Test/bench hook: force the active target for the rest of the process
/// (or until reset_kernel_target). Throws std::invalid_argument when the
/// target is not available on this host. Not safe to call concurrently
/// with running kernels.
void set_kernel_target(KernelTarget target);

/// Drop any set_kernel_target() override and re-resolve from the
/// environment on the next active_kernel_target() call.
void reset_kernel_target();

}  // namespace blurnet::util
