// Engine-backed evaluation harness: every attack protocol the bench binaries
// run (Tables I–V, the figures, the ablation) is expressed against a
// serve::InferenceEngine instead of raw models.
//
//   * eval::Harness owns (or borrows) an InferenceEngine and a registry of
//     **victims** — named engine variants plus per-victim prediction policy
//     (e.g. randomized smoothing). Victims can be independently trained
//     models (add_victim -> serve::InferenceEngine::register_model) or
//     weight-transfer variants of the engine's base model
//     (add_variant_victim / adopt_variant).
//   * Protocol objects (WhiteboxSweep, TransferMatrix, AdaptiveSweep) submit
//     every clean/adversarial classification batch through
//     classify(images, Options{variant}) and run their crafting through the
//     cross-victim SweepScheduler: every victim's per-target RP2 jobs are
//     striped over that victim's replica slots (replica k's model handles the
//     gradient side of its lane's targets, so no two concurrent crafting runs
//     share autograd state), and *different victims' lanes run concurrently*
//     — a multi-victim evaluation saturates every registered replica shard
//     instead of sweeping victims one after another.
//
// Hard invariant, inherited from the serving layer and preserved by the
// scheduler: per-image predictions and every aggregated table number are
// bitwise identical for any replica count, scheduler interleaving, batch
// split, or routing order — replicas are deep weight clones, per-target
// crafting is seeded independently of scheduling, and all aggregation
// happens in submission/target-index order. Sharding the evaluation is
// purely a throughput decision.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/attack/threat_model.h"
#include "src/data/dataset.h"
#include "src/defense/randomized_smoothing.h"
#include "src/eval/experiments.h"
#include "src/serve/engine.h"

namespace blurnet::eval {

/// Per-victim registration knobs.
struct VictimSpec {
  /// Serving replicas for the victim's engine variant (0 = engine default).
  /// Ignored by adopt_variant(), which reuses the existing shard.
  int replicas = 0;
  /// Monte-Carlo randomized smoothing applied at prediction time (the
  /// paper's "Rand. sm" rows). The noisy sample batches are classified
  /// through the engine variant like any other evaluation traffic. Crafting
  /// still differentiates through the base model, matching the paper's
  /// protocol.
  std::optional<defense::SmoothingConfig> smoothing;
};

class Harness {
 public:
  /// Borrow an engine the caller owns — evaluation traffic rides the same
  /// replicas as any other traffic on it. The engine must outlive the
  /// harness (and any VictimHandle obtained from it).
  explicit Harness(serve::InferenceEngine& engine);
  /// Own a dedicated engine built around `base` (served as variant "base")
  /// with `replicas` serving replicas per variant.
  explicit Harness(const nn::LisaCnn& base, int replicas = 1, int max_batch = 64);

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  serve::InferenceEngine& engine() { return *engine_; }
  const serve::InferenceEngine& engine() const { return *engine_; }

  /// Register an independently trained model as engine variant `name` (deep
  /// weight clones on every replica) and as a victim.
  void add_victim(const std::string& name, const nn::LisaCnn& model,
                  const VictimSpec& spec = {});
  /// Register a weight-transfer variant of the engine's base model (Table I
  /// protocol: `config`'s architecture serving the base weights) as a victim.
  void add_variant_victim(const std::string& name, const nn::LisaCnnConfig& config,
                          const VictimSpec& spec = {});
  /// Register an input-transform defense over the engine's base weights
  /// (serve::InferenceEngine::register_transform_variant — the
  /// preprocess→forward pipeline) as a victim. victim_handle() exposes the
  /// transform, so RP2/PGD craft against it with BPDA straight-through
  /// gradients by default.
  void add_transform_victim(const std::string& name, const defense::TransformSpec& transform,
                            const VictimSpec& spec = {});
  /// Mark an already-registered engine variant (e.g. "base" or "defended")
  /// as a victim.
  void adopt_variant(const std::string& name, const VictimSpec& spec = {});

  bool has_victim(const std::string& name) const;
  std::vector<std::string> victim_names() const;
  int replica_count(const std::string& victim) const;
  /// Images the victim's variant has served so far (exact per-replica sums).
  std::int64_t images_served(const std::string& victim) const;

  /// Labels for a CHW image or NCHW batch through the victim's serving path,
  /// with the victim's prediction policy (smoothing) applied.
  std::vector<int> predict(const std::string& victim, const tensor::Tensor& images) const;
  /// Clean accuracy on a labeled dataset through the serving path.
  double dataset_accuracy(const std::string& victim, const data::Dataset& data) const;
  /// Fraction of `images` classified as the stop sign (Table I "Accuracy").
  double stop_sign_accuracy(const std::string& victim, const tensor::Tensor& images) const;

  /// Attack handle for fan-out slot `slot`: gradients through replica
  /// (slot % replica_count)'s model — every replica is a bitwise-identical
  /// deep clone, but each owns its autograd state, so distinct slots can
  /// craft concurrently — and predictions through the engine's batched
  /// classify on the victim's variant (no smoothing: the handle's
  /// predictions mirror the raw serving path; prediction policy is applied
  /// by predict()). A transform-wrapped victim's handle also carries the
  /// variant's input transform for BPDA crafting.
  attack::VictimHandle victim_handle(const std::string& victim, int slot = 0) const;

 private:
  struct Victim {
    std::string name;
    std::optional<defense::SmoothingConfig> smoothing;
  };

  const Victim& require_victim(const std::string& name) const;
  void add_entry(const std::string& name, const VictimSpec& spec);
  std::vector<int> classify_labels(const std::string& variant,
                                   const tensor::Tensor& images) const;

  std::unique_ptr<serve::InferenceEngine> owned_;  // only when constructed from a model
  serve::InferenceEngine* engine_;
  std::vector<Victim> victims_;
};

/// White-box target sweep (Table II protocol): attack the victim on the stop
/// sign set at every target class; aggregates altered-ASR / L2. run() is a
/// single-job SweepScheduler — enqueue several victims' sweeps on one
/// scheduler to run them concurrently across their replica shards.
struct WhiteboxSweep {
  ExperimentScale scale;

  SweepResult run(const Harness& harness, const std::string& victim, double legit_accuracy,
                  const data::StopSignSet& eval_set) const;
};

/// Adaptive white-box sweep (Table III/V protocol): the same target sweep
/// with the protocol's base RP2 config tailored to the victim through
/// `adapt` (attack::low_frequency_adapter, attack::tv_aware_adapter, ...).
/// `adapt` is invoked once per target on the thread that prepares the
/// schedule, before the crafting fan-out, so it needs no synchronization of
/// its own.
struct AdaptiveSweep {
  ExperimentScale scale;
  ConfigAdapter adapt;

  SweepResult run(const Harness& harness, const std::string& victim, double legit_accuracy,
                  const data::StopSignSet& eval_set) const;
};

/// Black-box transfer matrix (Table I protocol): each per-target sticker is
/// crafted ONCE on `source` (fanned across its replicas), then the same
/// physical sticker is evaluated on every victim variant through the engine.
/// Result i corresponds to victims[i].
struct TransferMatrix {
  ExperimentScale scale;

  std::vector<TransferResult> run(const Harness& harness, const std::string& source,
                                  const std::vector<std::string>& victims,
                                  const data::StopSignSet& eval_set) const;
};

/// serve::EngineStats-style snapshot of one crafting victim's progress
/// through a SweepScheduler run: exact counters, readable mid-flight.
struct VictimProgress {
  std::string victim;              // crafting victim (a sweep's victim / a transfer's source)
  int targets_total = 0;           // crafting tasks enqueued against this victim
  int targets_done = 0;            // crafting tasks finished so far
  int lanes = 0;                   // concurrent crafting lanes (<= victim's replicas; 0 before run())
  std::int64_t images_served = 0;  // engine counter for the victim's variant
};

/// Cross-victim sweep scheduler: enqueue whole protocols (white-box /
/// adaptive sweeps, transfer matrices) for *different* victims and run every
/// crafting job concurrently across each victim's replica shards instead of
/// finishing one victim before starting the next. Within a victim, lane l
/// owns that victim's tasks l, l+L, ... (one lane per replica, so no two
/// concurrent crafting runs share a replica's autograd state); across
/// victims, all lanes run in parallel on the process pool.
///
/// Results are bitwise identical to running each protocol's run() by itself,
/// for any replica count and any lane interleaving: per-target crafting
/// seeds depend only on the target, results land in per-task storage, and
/// aggregation happens sequentially in submission order after the barrier.
///
/// Usage: add(...) every job, then run() exactly once, then read
/// sweep_result(job) / transfer_result(job). progress() may be called from
/// another thread while run() is in flight (e.g. a reporting loop); it must
/// not race add().
class SweepScheduler {
 public:
  explicit SweepScheduler(const Harness& harness);
  ~SweepScheduler();

  SweepScheduler(const SweepScheduler&) = delete;
  SweepScheduler& operator=(const SweepScheduler&) = delete;

  /// Enqueue a protocol. The returned job id indexes the matching
  /// *_result() accessor. `eval_set` is borrowed and must outlive run().
  std::size_t add(const WhiteboxSweep& protocol, const std::string& victim,
                  double legit_accuracy, const data::StopSignSet& eval_set);
  std::size_t add(const AdaptiveSweep& protocol, const std::string& victim,
                  double legit_accuracy, const data::StopSignSet& eval_set);
  std::size_t add(const TransferMatrix& protocol, const std::string& source,
                  std::vector<std::string> victims, const data::StopSignSet& eval_set);

  /// Execute every queued job: per-job preparation (adapters, clean
  /// predictions) in submission order, one cross-victim crafting fan-out,
  /// then per-job aggregation in submission order. Callable once.
  void run();

  std::size_t job_count() const;
  /// Result accessors; throw std::logic_error before run() completes and
  /// std::invalid_argument for a job id of the wrong protocol kind.
  const SweepResult& sweep_result(std::size_t job) const;
  const std::vector<TransferResult>& transfer_result(std::size_t job) const;

  /// One entry per crafting victim, in first-enqueued order.
  std::vector<VictimProgress> progress() const;

 private:
  struct Job;
  struct VictimLanes;

  VictimLanes& lanes_for(const std::string& victim);
  static void run_task(const Harness& harness, Job& job, std::size_t target_index, int slot);

  const Harness* harness_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::vector<std::unique_ptr<VictimLanes>> victims_;
  /// Guards jobs_/victims_ layout for progress() readers (counters are
  /// atomics; entries are held by pointer so they never move).
  mutable std::mutex mutex_;
  bool ran_ = false;        // run() entered (rejects further add()/run())
  bool completed_ = false;  // run() finished (gates the result accessors)
};

}  // namespace blurnet::eval
