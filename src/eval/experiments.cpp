#include "src/eval/experiments.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/attack/masks.h"
#include "src/util/env.h"

namespace blurnet::eval {

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale scale;
  if (util::env_flag("BLURNET_FAST")) {
    scale.eval_images = 4;
    scale.num_targets = 2;
    scale.rp2_iterations = 40;
  } else if (util::env_flag("BLURNET_PAPER")) {
    scale.eval_images = 40;
    scale.num_targets = 17;
    scale.rp2_iterations = 300;
  }
  scale.eot_poses = util::env_int("BLURNET_EOT_POSES", 1);
  if (scale.eot_poses < 1) {
    throw std::invalid_argument("BLURNET_EOT_POSES must be >= 1 (got " +
                                std::to_string(scale.eot_poses) + ")");
  }
  return scale;
}

std::vector<int> ExperimentScale::target_classes() const {
  // Spread evenly over the 17 non-stop classes (1..17), deterministically.
  const int available = data::SignRenderer::kNumClasses - 1;
  const int count = std::min(num_targets, available);
  std::vector<int> targets;
  targets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    targets.push_back(1 + (i * available) / count);
  }
  return targets;
}

attack::Rp2Config paper_rp2_config(const ExperimentScale& scale) {
  attack::Rp2Config config;
  config.iterations = scale.rp2_iterations;
  config.lambda = 0.002;  // paper §III-A
  config.norm = attack::PerturbationNorm::kL2;
  config.learning_rate = 0.05;
  config.nps_weight = 0.25;
  config.use_eot = true;
  config.eot_poses = scale.eot_poses;
  return config;
}

StickeredStopSet make_eval_stop_set(const ExperimentScale& scale, int image_size) {
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images, image_size);
  StickeredStopSet out;
  out.images = stop_set.images;
  out.masks = attack::sticker_mask(stop_set.masks);
  return out;
}

data::StopSignSet attacker_craft_set(const ExperimentScale& scale) {
  return data::stop_sign_eval_set(scale.eval_images, 32, /*seed=*/40501);
}

std::string results_dir() {
  if (const auto dir = util::env_string("BLURNET_OUT_DIR")) return *dir;
  return "results";
}

void write_results_file(const std::string& filename, const std::string& content) {
  const std::filesystem::path dir(results_dir());
  std::filesystem::create_directories(dir);
  const auto path = dir / filename;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_results_file: cannot open " + path.string());
  out << content;
}

}  // namespace blurnet::eval
