#include "src/eval/experiments.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "src/attack/masks.h"
#include "src/tensor/ops.h"
#include "src/util/env.h"
#include "src/util/logging.h"

namespace blurnet::eval {

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale scale;
  if (util::env_flag("BLURNET_FAST")) {
    scale.eval_images = 4;
    scale.num_targets = 2;
    scale.rp2_iterations = 40;
  } else if (util::env_flag("BLURNET_PAPER")) {
    scale.eval_images = 40;
    scale.num_targets = 17;
    scale.rp2_iterations = 300;
  }
  return scale;
}

std::vector<int> ExperimentScale::target_classes() const {
  // Spread evenly over the 17 non-stop classes (1..17), deterministically.
  const int available = data::SignRenderer::kNumClasses - 1;
  const int count = std::min(num_targets, available);
  std::vector<int> targets;
  targets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    targets.push_back(1 + (i * available) / count);
  }
  return targets;
}

attack::Rp2Config paper_rp2_config(const ExperimentScale& scale) {
  attack::Rp2Config config;
  config.iterations = scale.rp2_iterations;
  config.lambda = 0.002;  // paper §III-A
  config.norm = attack::PerturbationNorm::kL2;
  config.learning_rate = 0.05;
  config.nps_weight = 0.25;
  config.use_eot = true;
  return config;
}

StickeredStopSet make_eval_stop_set(const ExperimentScale& scale, int image_size) {
  const auto stop_set = data::stop_sign_eval_set(scale.eval_images, image_size);
  StickeredStopSet out;
  out.images = stop_set.images;
  out.masks = attack::sticker_mask(stop_set.masks);
  return out;
}

namespace {

/// Disjoint stop-sign instances the attacker optimizes the sticker on
/// (RP2 is a single-/few-image optimization whose printed sticker is then
/// evaluated on the held-out photo set — paper §II-D).
data::StopSignSet craft_stop_set(const ExperimentScale& scale) {
  return data::stop_sign_eval_set(scale.eval_images, 32, /*seed=*/40501);
}

}  // namespace

SweepResult whitebox_sweep(const nn::LisaCnn& model, double legit_accuracy,
                           const data::StopSignSet& eval_set, const ExperimentScale& scale,
                           const ConfigAdapter& adapt, const Predictor& predictor) {
  const auto craft_set = craft_stop_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  const auto eval_sticker = attack::sticker_mask(eval_set.masks);
  SweepResult result;
  result.legit_accuracy = legit_accuracy;
  const auto targets = scale.target_classes();
  double sum_asr = 0.0, sum_l2 = 0.0;
  for (const int target : targets) {
    attack::Rp2Config config = paper_rp2_config(scale);
    config.target_class = target;
    config.seed = 1000 + static_cast<std::uint64_t>(target);
    if (adapt) config = adapt(config);
    // Craft the sticker on the attacker's own sign instances, then evaluate
    // the same physical sticker on the held-out stop-sign set.
    const auto crafted = attack::rp2_attack(model, craft_set.images, craft_sticker, config);
    const auto adversarial =
        attack::apply_shared_sticker(eval_set.images, eval_sticker, crafted.shared_delta);
    const auto clean_pred =
        predictor ? predictor(eval_set.images) : model.predict(eval_set.images);
    const auto adv_pred = predictor ? predictor(adversarial) : model.predict(adversarial);

    PerTargetResult per;
    per.target = target;
    int altered = 0, hits = 0;
    for (std::size_t i = 0; i < clean_pred.size(); ++i) {
      if (clean_pred[i] != adv_pred[i]) ++altered;
      if (adv_pred[i] == target) ++hits;
    }
    const double count = static_cast<double>(clean_pred.size());
    per.success_rate = count > 0 ? altered / count : 0.0;
    per.targeted_rate = count > 0 ? hits / count : 0.0;
    per.l2_dissimilarity = tensor::l2_dissimilarity(adversarial, eval_set.images);
    result.per_target.push_back(per);
    sum_asr += per.success_rate;
    sum_l2 += per.l2_dissimilarity;
    result.worst_success = std::max(result.worst_success, per.success_rate);
    util::log_debug() << "sweep target=" << target << " asr=" << per.success_rate
                      << " l2=" << per.l2_dissimilarity;
  }
  if (!targets.empty()) {
    result.average_success = sum_asr / static_cast<double>(targets.size());
    result.mean_l2 = sum_l2 / static_cast<double>(targets.size());
  }
  return result;
}

TransferResult transfer_attack(const nn::LisaCnn& source, const nn::LisaCnn& victim,
                               const data::StopSignSet& eval_set,
                               const ExperimentScale& scale) {
  const auto sticker = attack::sticker_mask(eval_set.masks);
  const auto targets = scale.target_classes();
  TransferResult out;

  // Clean accuracy: fraction of natural stop signs the victim classifies as
  // stop (class 0), mirroring Table I's "Accuracy" column.
  const auto clean_preds = victim.predict(eval_set.images);
  int correct = 0;
  for (const int p : clean_preds) {
    if (p == data::SignRenderer::stop_class_id()) ++correct;
  }
  out.clean_accuracy = clean_preds.empty()
                           ? 0.0
                           : static_cast<double>(correct) / static_cast<double>(clean_preds.size());

  // Transfer ASR averaged over the target sweep: the sticker is crafted on
  // `source` using the attacker's own sign instances, then the same sticker
  // is applied to the held-out set and judged by `victim`.
  const auto craft_set = craft_stop_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  double sum_asr = 0.0;
  for (const int target : targets) {
    attack::Rp2Config config = paper_rp2_config(scale);
    config.target_class = target;
    config.seed = 2000 + static_cast<std::uint64_t>(target);
    const auto crafted = attack::rp2_attack(source, craft_set.images, craft_sticker, config);
    const auto adversarial =
        attack::apply_shared_sticker(eval_set.images, sticker, crafted.shared_delta);
    const auto victim_adv = victim.predict(adversarial);
    int altered = 0;
    for (std::size_t i = 0; i < victim_adv.size(); ++i) {
      if (victim_adv[i] != clean_preds[i]) ++altered;
    }
    sum_asr += victim_adv.empty()
                   ? 0.0
                   : static_cast<double>(altered) / static_cast<double>(victim_adv.size());
  }
  if (!targets.empty()) out.attack_success = sum_asr / static_cast<double>(targets.size());
  return out;
}

std::string results_dir() {
  if (const auto dir = util::env_string("BLURNET_OUT_DIR")) return *dir;
  return "results";
}

void write_results_file(const std::string& filename, const std::string& content) {
  const std::filesystem::path dir(results_dir());
  std::filesystem::create_directories(dir);
  const auto path = dir / filename;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_results_file: cannot open " + path.string());
  out << content;
}

}  // namespace blurnet::eval
