// Shared experiment scaffolding: the scale knobs (DESIGN.md §6) and the
// evaluation protocols used by the bench binaries that regenerate the paper's
// tables and figures.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/attack/rp2.h"
#include "src/data/dataset.h"
#include "src/defense/model_zoo.h"

namespace blurnet::eval {

struct ExperimentScale {
  int eval_images = 8;      // stop-sign evaluation set size (paper: 40)
  int num_targets = 4;      // attack targets swept (paper: all 17)
  int rp2_iterations = 120; // RP2 epochs (paper: 300)

  /// Reads BLURNET_FAST / BLURNET_PAPER.
  static ExperimentScale from_env();

  /// Deterministic, evenly spread target classes (never the true class 0).
  std::vector<int> target_classes() const;
};

/// RP2 configuration matching the paper's attack hyper-parameters
/// (λ = 0.002, L2 mask norm) at the given scale.
attack::Rp2Config paper_rp2_config(const ExperimentScale& scale);

struct PerTargetResult {
  int target = 0;
  double success_rate = 0.0;     // altered-prediction ASR
  double targeted_rate = 0.0;    // fraction classified as the target
  double l2_dissimilarity = 0.0;
};

struct SweepResult {
  double legit_accuracy = 0.0;      // clean test-set accuracy
  double average_success = 0.0;     // mean ASR over targets
  double worst_success = 0.0;       // max ASR over targets
  double mean_l2 = 0.0;             // mean dissimilarity over targets
  std::vector<PerTargetResult> per_target;
};

/// Hook to turn the base RP2 config into an adaptive variant per model.
using ConfigAdapter = std::function<attack::Rp2Config(const attack::Rp2Config&)>;

/// Optional prediction override (e.g. randomized-smoothing inference). The
/// attack still differentiates through the base model; only the final
/// clean/adversarial classifications use the predictor.
using Predictor = std::function<std::vector<int>(const tensor::Tensor&)>;

/// White-box target sweep (Table II protocol): attack `model` on the stop
/// sign set at every target class; aggregates altered-ASR / L2.
SweepResult whitebox_sweep(const nn::LisaCnn& model, double legit_accuracy,
                           const data::StopSignSet& eval_set, const ExperimentScale& scale,
                           const ConfigAdapter& adapt = nullptr,
                           const Predictor& predictor = nullptr);

/// Black-box transfer (Table I protocol): adversarial examples generated on
/// `source` are evaluated on `victim`. Returns {clean accuracy on the stop
/// set, transfer ASR}, where ASR counts predictions altered on `victim`.
struct TransferResult {
  double clean_accuracy = 0.0;
  double attack_success = 0.0;
};
TransferResult transfer_attack(const nn::LisaCnn& source, const nn::LisaCnn& victim,
                               const data::StopSignSet& eval_set,
                               const ExperimentScale& scale);

/// The stop-sign set at the configured scale, with sticker masks.
struct StickeredStopSet {
  tensor::Tensor images;  // [N,3,H,W]
  tensor::Tensor masks;   // [N,1,H,W] sticker mask (two bars)
};
StickeredStopSet make_eval_stop_set(const ExperimentScale& scale, int image_size = 32);

/// Results directory for CSV dumps (BLURNET_OUT_DIR, default "results").
std::string results_dir();
/// Write `content` to `<results_dir>/<filename>` (creates the directory).
void write_results_file(const std::string& filename, const std::string& content);

}  // namespace blurnet::eval
