// Shared experiment scaffolding: the scale knobs (DESIGN.md §6), the result
// types the evaluation protocols aggregate into, and the CSV plumbing used by
// the bench binaries that regenerate the paper's tables and figures.
//
// The protocols themselves (white-box sweep, transfer matrix, adaptive sweep)
// live in src/eval/harness.h and run every classification batch through a
// serve::InferenceEngine variant.
#pragma once

#include <string>
#include <vector>

#include "src/attack/adaptive.h"
#include "src/attack/rp2.h"
#include "src/data/dataset.h"

namespace blurnet::eval {

struct ExperimentScale {
  int eval_images = 8;      // stop-sign evaluation set size (paper: 40)
  int num_targets = 4;      // attack targets swept (paper: all 17)
  int rp2_iterations = 120; // RP2 epochs (paper: 300)
  /// EOT poses averaged per RP2 step (K). 1 = the historical single-pose
  /// path; larger K is the paper's full expectation over alignments, batched
  /// through the victim in one [n*K] graph per step.
  int eot_poses = 1;

  /// Reads BLURNET_FAST / BLURNET_PAPER, plus BLURNET_EOT_POSES (default 1).
  static ExperimentScale from_env();

  /// Deterministic, evenly spread target classes (never the true class 0).
  std::vector<int> target_classes() const;
};

/// RP2 configuration matching the paper's attack hyper-parameters
/// (λ = 0.002, L2 mask norm) at the given scale.
attack::Rp2Config paper_rp2_config(const ExperimentScale& scale);

struct PerTargetResult {
  int target = 0;
  double success_rate = 0.0;     // altered-prediction ASR
  double targeted_rate = 0.0;    // fraction classified as the target
  double l2_dissimilarity = 0.0;
};

struct SweepResult {
  double legit_accuracy = 0.0;      // clean test-set accuracy
  double average_success = 0.0;     // mean ASR over targets
  double worst_success = 0.0;       // max ASR over targets
  double mean_l2 = 0.0;             // mean dissimilarity over targets
  std::vector<PerTargetResult> per_target;
};

/// Black-box transfer outcome for one victim (Table I row): {clean accuracy
/// on the stop set, transfer ASR}, where ASR counts predictions altered on
/// the victim.
struct TransferResult {
  double clean_accuracy = 0.0;
  double attack_success = 0.0;
};

/// Hook to turn a protocol's base RP2 config into the attack actually run
/// (the adaptive attacks of §V); see attack::low_frequency_adapter etc.
using ConfigAdapter = attack::Rp2Adapter;

/// The stop-sign set at the configured scale, with sticker masks.
struct StickeredStopSet {
  tensor::Tensor images;  // [N,3,H,W]
  tensor::Tensor masks;   // [N,1,H,W] sticker mask (two bars)
};
StickeredStopSet make_eval_stop_set(const ExperimentScale& scale, int image_size = 32);

/// Disjoint stop-sign instances the attacker optimizes the sticker on (RP2 is
/// a single-/few-image optimization whose printed sticker is then evaluated
/// on the held-out photo set — paper §II-D).
data::StopSignSet attacker_craft_set(const ExperimentScale& scale);

/// Results directory for CSV dumps (BLURNET_OUT_DIR, default "results").
std::string results_dir();
/// Write `content` to `<results_dir>/<filename>` (creates the directory).
void write_results_file(const std::string& filename, const std::string& content);

}  // namespace blurnet::eval
