#include "src/eval/harness.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "src/attack/masks.h"
#include "src/attack/rp2.h"
#include "src/tensor/ops.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace blurnet::eval {

using tensor::Tensor;

namespace {

/// Labels for a batch through the engine's serving path on one variant; the
/// single prediction route shared by Harness::predict and VictimHandle.
std::vector<int> engine_labels(const serve::InferenceEngine& engine,
                               const std::string& variant, const Tensor& images) {
  const auto predictions = engine.classify(images, serve::Options{variant});
  std::vector<int> labels;
  labels.reserve(predictions.size());
  for (const auto& prediction : predictions) labels.push_back(prediction.label);
  return labels;
}

}  // namespace

Harness::Harness(serve::InferenceEngine& engine) : engine_(&engine) {}

Harness::Harness(const nn::LisaCnn& base, int replicas, int max_batch)
    : owned_(std::make_unique<serve::InferenceEngine>(base, nn::FixedFilterSpec{}, max_batch,
                                                      replicas)),
      engine_(owned_.get()) {}

void Harness::add_entry(const std::string& name, const VictimSpec& spec) {
  for (const auto& victim : victims_) {
    if (victim.name == name) {
      throw std::invalid_argument("Harness: victim \"" + name + "\" is already registered");
    }
  }
  victims_.push_back(Victim{name, spec.smoothing});
}

void Harness::add_victim(const std::string& name, const nn::LisaCnn& model,
                         const VictimSpec& spec) {
  engine_->register_model(name, model, spec.replicas);
  add_entry(name, spec);
}

void Harness::add_variant_victim(const std::string& name, const nn::LisaCnnConfig& config,
                                 const VictimSpec& spec) {
  engine_->register_variant(name, config, spec.replicas);
  add_entry(name, spec);
}

void Harness::add_transform_victim(const std::string& name,
                                   const defense::TransformSpec& transform,
                                   const VictimSpec& spec) {
  engine_->register_transform_variant(name, transform, spec.replicas);
  add_entry(name, spec);
}

void Harness::adopt_variant(const std::string& name, const VictimSpec& spec) {
  if (!engine_->has_variant(name)) {
    throw std::invalid_argument("Harness::adopt_variant: engine has no variant \"" + name +
                                "\"");
  }
  add_entry(name, spec);
}

const Harness::Victim& Harness::require_victim(const std::string& name) const {
  for (const auto& victim : victims_) {
    if (victim.name == name) return victim;
  }
  std::string known;
  for (const auto& victim : victims_) {
    if (!known.empty()) known += ", ";
    known += victim.name;
  }
  throw std::invalid_argument("Harness: unknown victim \"" + name +
                              "\" (registered: " + known + ")");
}

bool Harness::has_victim(const std::string& name) const {
  for (const auto& victim : victims_) {
    if (victim.name == name) return true;
  }
  return false;
}

std::vector<std::string> Harness::victim_names() const {
  std::vector<std::string> names;
  names.reserve(victims_.size());
  for (const auto& victim : victims_) names.push_back(victim.name);
  return names;
}

int Harness::replica_count(const std::string& victim) const {
  return engine_->replica_count(require_victim(victim).name);
}

std::int64_t Harness::images_served(const std::string& victim) const {
  return engine_->images_served(require_victim(victim).name);
}

std::vector<int> Harness::classify_labels(const std::string& variant,
                                          const Tensor& images) const {
  return engine_labels(*engine_, variant, images);
}

std::vector<int> Harness::predict(const std::string& victim, const Tensor& images) const {
  const Victim& entry = require_victim(victim);
  // Accept a CHW image wherever a batch is accepted (the engine normalizes
  // the plain path; the smoothing path needs NCHW up front).
  const Tensor batch =
      images.rank() == 3
          ? images.reshape(tensor::Shape::nchw(1, images.dim(0), images.dim(1), images.dim(2)))
          : images;
  if (entry.smoothing) {
    return defense::smoothed_predict(
        [this, &entry](const Tensor& samples) { return classify_labels(entry.name, samples); },
        engine_->variant(entry.name).config().num_classes, batch, *entry.smoothing);
  }
  return classify_labels(entry.name, batch);
}

double Harness::dataset_accuracy(const std::string& victim, const data::Dataset& data) const {
  if (data.size() == 0) return 0.0;
  const auto predictions = predict(victim, data.images);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double Harness::stop_sign_accuracy(const std::string& victim, const Tensor& images) const {
  const auto predictions = predict(victim, images);
  if (predictions.empty()) return 0.0;
  int correct = 0;
  for (const int label : predictions) {
    if (label == data::SignRenderer::stop_class_id()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

attack::VictimHandle Harness::victim_handle(const std::string& victim, int slot) const {
  const Victim& entry = require_victim(victim);
  if (slot < 0) throw std::invalid_argument("Harness::victim_handle: slot must be >= 0");
  const int replicas = engine_->replica_count(entry.name);
  const nn::LisaCnn& gradient_model = engine_->replica_model(entry.name, slot % replicas);
  // The closures capture the engine pointer and the variant name by value so
  // the handle stays valid as long as the engine does. A transform-wrapped
  // victim's handle also carries the variant's (shared, immutable) input
  // transform, so the attack side can craft with BPDA straight-through
  // gradients against exactly the preprocess stage the serving path runs.
  const serve::InferenceEngine* engine = engine_;
  attack::VictimHandle::TransformFn transform_fn;
  if (defense::TransformPtr transform = engine_->variant_transform(entry.name)) {
    transform_fn = [transform = std::move(transform)](const Tensor& images) {
      return transform->apply(images);
    };
  }
  return attack::VictimHandle(gradient_model,
                              [engine, name = entry.name](const Tensor& images) {
                                return engine_labels(*engine, name, images);
                              },
                              std::move(transform_fn));
}

// ---- cross-victim sweep scheduler -------------------------------------------

/// One enqueued protocol. Configuration is captured at add(); the crafting
/// state (configs, stickers, per-task storage) is populated by prepare() at
/// the head of run(), and the aggregate outputs by aggregate() at its tail.
struct SweepScheduler::Job {
  enum class Kind { kSweep, kTransfer };

  Kind kind = Kind::kSweep;
  std::string victim;  // crafting victim (sweep) or source (transfer)
  double legit_accuracy = 0.0;
  const data::StopSignSet* eval_set = nullptr;  // borrowed; outlives run()
  ExperimentScale scale;
  ConfigAdapter adapt;                        // sweeps only (may be null)
  std::vector<std::string> transfer_victims;  // transfer only

  // prepare() outputs.
  data::StopSignSet craft_set;
  Tensor craft_sticker;
  Tensor eval_sticker;
  std::vector<int> targets;
  std::vector<attack::Rp2Config> configs;  // one per target
  std::vector<int> clean_pred;             // sweep only: one engine pass up front

  // Per-task crafting outputs (index = target index, so results are
  // independent of which lane ran the task).
  std::vector<PerTargetResult> per;    // sweep
  std::vector<Tensor> adversarial;     // transfer

  // aggregate() outputs.
  SweepResult sweep_out;
  std::vector<TransferResult> transfer_out;
};

/// All crafting tasks enqueued against one victim, across jobs. Lane l runs
/// tasks l, l+L, ... in enqueue order; `done` is the progress counter the
/// mid-flight snapshots read.
struct SweepScheduler::VictimLanes {
  std::string victim;
  std::vector<std::pair<std::size_t, std::size_t>> tasks;  // (job index, target index)
  std::atomic<int> done{0};
  int lanes = 0;  // assigned by run(); <= the victim's replica count
};

SweepScheduler::SweepScheduler(const Harness& harness) : harness_(&harness) {}
SweepScheduler::~SweepScheduler() = default;

SweepScheduler::VictimLanes& SweepScheduler::lanes_for(const std::string& victim) {
  for (auto& group : victims_) {
    if (group->victim == victim) return *group;
  }
  victims_.push_back(std::make_unique<VictimLanes>());
  victims_.back()->victim = victim;
  return *victims_.back();
}

std::size_t SweepScheduler::add(const WhiteboxSweep& protocol, const std::string& victim,
                                double legit_accuracy, const data::StopSignSet& eval_set) {
  AdaptiveSweep plain{protocol.scale, nullptr};
  return add(plain, victim, legit_accuracy, eval_set);
}

std::size_t SweepScheduler::add(const AdaptiveSweep& protocol, const std::string& victim,
                                double legit_accuracy, const data::StopSignSet& eval_set) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ran_) throw std::logic_error("SweepScheduler::add: scheduler already ran");
  harness_->replica_count(victim);  // validates the victim is registered
  auto job = std::make_unique<Job>();
  job->kind = Job::Kind::kSweep;
  job->victim = victim;
  job->legit_accuracy = legit_accuracy;
  job->eval_set = &eval_set;
  job->scale = protocol.scale;
  job->adapt = protocol.adapt;
  job->targets = protocol.scale.target_classes();
  jobs_.push_back(std::move(job));
  const std::size_t id = jobs_.size() - 1;
  auto& group = lanes_for(victim);
  for (std::size_t t = 0; t < jobs_[id]->targets.size(); ++t) group.tasks.emplace_back(id, t);
  return id;
}

std::size_t SweepScheduler::add(const TransferMatrix& protocol, const std::string& source,
                                std::vector<std::string> victims,
                                const data::StopSignSet& eval_set) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ran_) throw std::logic_error("SweepScheduler::add: scheduler already ran");
  harness_->replica_count(source);
  for (const auto& victim : victims) harness_->replica_count(victim);
  auto job = std::make_unique<Job>();
  job->kind = Job::Kind::kTransfer;
  job->victim = source;
  job->eval_set = &eval_set;
  job->scale = protocol.scale;
  job->transfer_victims = std::move(victims);
  job->targets = protocol.scale.target_classes();
  jobs_.push_back(std::move(job));
  const std::size_t id = jobs_.size() - 1;
  auto& group = lanes_for(source);
  for (std::size_t t = 0; t < jobs_[id]->targets.size(); ++t) group.tasks.emplace_back(id, t);
  return id;
}

/// Craft one target's sticker against the job's victim through lane `slot`'s
/// replica and fill the task's slot in the job's per-target storage.
void SweepScheduler::run_task(const Harness& harness, Job& job, std::size_t t, int slot) {
  const auto crafted =
      attack::rp2_attack(harness.victim_handle(job.victim, slot), job.craft_set.images,
                         job.craft_sticker, job.configs[t]);
  const auto adversarial = attack::apply_shared_sticker(job.eval_set->images,
                                                        job.eval_sticker, crafted.shared_delta);
  if (job.kind == Job::Kind::kTransfer) {
    job.adversarial[t] = adversarial;
    return;
  }
  // Sweep: evaluate the sticker on the held-out set right away.
  const auto adv_pred = harness.predict(job.victim, adversarial);
  PerTargetResult& out = job.per[t];
  out.target = job.targets[t];
  int altered = 0, hits = 0;
  for (std::size_t i = 0; i < job.clean_pred.size(); ++i) {
    if (job.clean_pred[i] != adv_pred[i]) ++altered;
    if (adv_pred[i] == out.target) ++hits;
  }
  const double count = static_cast<double>(job.clean_pred.size());
  out.success_rate = count > 0 ? altered / count : 0.0;
  out.targeted_rate = count > 0 ? hits / count : 0.0;
  out.l2_dissimilarity = tensor::l2_dissimilarity(adversarial, job.eval_set->images);
  util::log_debug() << "sweep victim=" << job.victim << " target=" << out.target
                    << " asr=" << out.success_rate << " l2=" << out.l2_dissimilarity;
}

void SweepScheduler::run() {
  struct Lane {
    VictimLanes* group;
    int lane;
  };
  std::vector<Lane> lanes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ran_) throw std::logic_error("SweepScheduler::run: scheduler already ran");
    ran_ = true;
    for (auto& group : victims_) {
      group->lanes = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(std::max(harness_->replica_count(group->victim), 1)),
          group->tasks.size()));
      for (int l = 0; l < group->lanes; ++l) lanes.push_back({group.get(), l});
    }
  }

  // Per-job preparation, sequentially in submission order: the craft set,
  // per-target configs (the adapter is caller-supplied code with no
  // thread-safety contract) and the target-independent clean predictions.
  for (auto& job_ptr : jobs_) {
    Job& job = *job_ptr;
    job.craft_set = attacker_craft_set(job.scale);
    job.craft_sticker = attack::sticker_mask(job.craft_set.masks);
    job.eval_sticker = attack::sticker_mask(job.eval_set->masks);
    const std::uint64_t seed_base = job.kind == Job::Kind::kSweep ? 1000 : 2000;
    job.configs.reserve(job.targets.size());
    for (const int target : job.targets) {
      attack::Rp2Config config = paper_rp2_config(job.scale);
      config.target_class = target;
      config.seed = seed_base + static_cast<std::uint64_t>(target);
      if (job.adapt) config = job.adapt(config);
      job.configs.push_back(std::move(config));
    }
    if (job.kind == Job::Kind::kSweep) {
      job.clean_pred = harness_->predict(job.victim, job.eval_set->images);
      job.per.resize(job.targets.size());
    } else {
      job.adversarial.resize(job.targets.size());
    }
  }

  // The cross-victim fan-out: every victim's lanes run concurrently, each
  // lane striding its victim's task list. min_chunk 1: one pool chunk per
  // lane; nested parallel_for calls inside the crafting runs fall back
  // inline, so the pool is never deadlocked.
  util::parallel_for(
      static_cast<std::int64_t>(lanes.size()),
      [&](std::int64_t l0, std::int64_t l1) {
        for (std::int64_t l = l0; l < l1; ++l) {
          VictimLanes& group = *lanes[static_cast<std::size_t>(l)].group;
          const int lane = lanes[static_cast<std::size_t>(l)].lane;
          for (std::size_t i = static_cast<std::size_t>(lane); i < group.tasks.size();
               i += static_cast<std::size_t>(group.lanes)) {
            const auto [job_index, target_index] = group.tasks[i];
            run_task(*harness_, *jobs_[job_index], target_index, lane);
            group.done.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      /*min_chunk=*/1);

  // Per-job aggregation, sequentially in submission order — independent of
  // the crafting schedule.
  for (auto& job_ptr : jobs_) {
    Job& job = *job_ptr;
    if (job.kind == Job::Kind::kSweep) {
      SweepResult& result = job.sweep_out;
      result.legit_accuracy = job.legit_accuracy;
      double sum_asr = 0.0, sum_l2 = 0.0;
      for (const auto& entry : job.per) {
        result.per_target.push_back(entry);
        sum_asr += entry.success_rate;
        sum_l2 += entry.l2_dissimilarity;
        result.worst_success = std::max(result.worst_success, entry.success_rate);
      }
      if (!job.targets.empty()) {
        result.average_success = sum_asr / static_cast<double>(job.targets.size());
        result.mean_l2 = sum_l2 / static_cast<double>(job.targets.size());
      }
      continue;
    }
    // Transfer: every victim judges the same crafted stickers.
    job.transfer_out.reserve(job.transfer_victims.size());
    for (const auto& victim : job.transfer_victims) {
      TransferResult row;
      // Clean accuracy: fraction of natural stop signs the victim classifies
      // as stop (class 0), mirroring Table I's "Accuracy" column.
      const auto clean_pred = harness_->predict(victim, job.eval_set->images);
      int stop_correct = 0;
      for (const int label : clean_pred) {
        if (label == data::SignRenderer::stop_class_id()) ++stop_correct;
      }
      row.clean_accuracy = clean_pred.empty()
                               ? 0.0
                               : static_cast<double>(stop_correct) /
                                     static_cast<double>(clean_pred.size());
      double sum_asr = 0.0;
      for (std::size_t t = 0; t < job.targets.size(); ++t) {
        const auto adv_pred = harness_->predict(victim, job.adversarial[t]);
        int altered = 0;
        for (std::size_t i = 0; i < adv_pred.size(); ++i) {
          if (adv_pred[i] != clean_pred[i]) ++altered;
        }
        sum_asr += adv_pred.empty() ? 0.0
                                    : static_cast<double>(altered) /
                                          static_cast<double>(adv_pred.size());
      }
      if (!job.targets.empty()) {
        row.attack_success = sum_asr / static_cast<double>(job.targets.size());
      }
      util::log_debug() << "transfer source=" << job.victim << " victim=" << victim
                        << " asr=" << row.attack_success;
      job.transfer_out.push_back(row);
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  completed_ = true;
}

std::size_t SweepScheduler::job_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

const SweepResult& SweepScheduler::sweep_result(std::size_t job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!completed_) throw std::logic_error("SweepScheduler::sweep_result: run() has not completed");
  if (job >= jobs_.size() || jobs_[job]->kind != Job::Kind::kSweep) {
    throw std::invalid_argument("SweepScheduler::sweep_result: job " + std::to_string(job) +
                                " is not a sweep");
  }
  return jobs_[job]->sweep_out;
}

const std::vector<TransferResult>& SweepScheduler::transfer_result(std::size_t job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!completed_) throw std::logic_error("SweepScheduler::transfer_result: run() has not completed");
  if (job >= jobs_.size() || jobs_[job]->kind != Job::Kind::kTransfer) {
    throw std::invalid_argument("SweepScheduler::transfer_result: job " + std::to_string(job) +
                                " is not a transfer matrix");
  }
  return jobs_[job]->transfer_out;
}

std::vector<VictimProgress> SweepScheduler::progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<VictimProgress> snapshot;
  snapshot.reserve(victims_.size());
  for (const auto& group : victims_) {
    VictimProgress entry;
    entry.victim = group->victim;
    entry.targets_total = static_cast<int>(group->tasks.size());
    entry.targets_done = group->done.load(std::memory_order_relaxed);
    entry.lanes = group->lanes;
    entry.images_served = harness_->images_served(group->victim);
    snapshot.push_back(std::move(entry));
  }
  return snapshot;
}

// ---- protocol objects: single-job schedulers --------------------------------

SweepResult WhiteboxSweep::run(const Harness& harness, const std::string& victim,
                               double legit_accuracy,
                               const data::StopSignSet& eval_set) const {
  SweepScheduler scheduler(harness);
  const std::size_t job = scheduler.add(*this, victim, legit_accuracy, eval_set);
  scheduler.run();
  return scheduler.sweep_result(job);
}

SweepResult AdaptiveSweep::run(const Harness& harness, const std::string& victim,
                               double legit_accuracy,
                               const data::StopSignSet& eval_set) const {
  SweepScheduler scheduler(harness);
  const std::size_t job = scheduler.add(*this, victim, legit_accuracy, eval_set);
  scheduler.run();
  return scheduler.sweep_result(job);
}

std::vector<TransferResult> TransferMatrix::run(const Harness& harness,
                                                const std::string& source,
                                                const std::vector<std::string>& victims,
                                                const data::StopSignSet& eval_set) const {
  SweepScheduler scheduler(harness);
  const std::size_t job = scheduler.add(*this, source, victims, eval_set);
  scheduler.run();
  return scheduler.transfer_result(job);
}

}  // namespace blurnet::eval
