#include "src/eval/harness.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "src/attack/masks.h"
#include "src/attack/rp2.h"
#include "src/tensor/ops.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace blurnet::eval {

using tensor::Tensor;

namespace {

/// Labels for a batch through the engine's serving path on one variant; the
/// single prediction route shared by Harness::predict and VictimHandle.
std::vector<int> engine_labels(const serve::InferenceEngine& engine,
                               const std::string& variant, const Tensor& images) {
  const auto predictions = engine.classify(images, serve::Options{variant});
  std::vector<int> labels;
  labels.reserve(predictions.size());
  for (const auto& prediction : predictions) labels.push_back(prediction.label);
  return labels;
}

}  // namespace

Harness::Harness(serve::InferenceEngine& engine) : engine_(&engine) {}

Harness::Harness(const nn::LisaCnn& base, int replicas, int max_batch)
    : owned_(std::make_unique<serve::InferenceEngine>(base, nn::FixedFilterSpec{}, max_batch,
                                                      replicas)),
      engine_(owned_.get()) {}

void Harness::add_entry(const std::string& name, const VictimSpec& spec) {
  for (const auto& victim : victims_) {
    if (victim.name == name) {
      throw std::invalid_argument("Harness: victim \"" + name + "\" is already registered");
    }
  }
  victims_.push_back(Victim{name, spec.smoothing});
}

void Harness::add_victim(const std::string& name, const nn::LisaCnn& model,
                         const VictimSpec& spec) {
  engine_->register_model(name, model, spec.replicas);
  add_entry(name, spec);
}

void Harness::add_variant_victim(const std::string& name, const nn::LisaCnnConfig& config,
                                 const VictimSpec& spec) {
  engine_->register_variant(name, config, spec.replicas);
  add_entry(name, spec);
}

void Harness::adopt_variant(const std::string& name, const VictimSpec& spec) {
  if (!engine_->has_variant(name)) {
    throw std::invalid_argument("Harness::adopt_variant: engine has no variant \"" + name +
                                "\"");
  }
  add_entry(name, spec);
}

const Harness::Victim& Harness::require_victim(const std::string& name) const {
  for (const auto& victim : victims_) {
    if (victim.name == name) return victim;
  }
  std::string known;
  for (const auto& victim : victims_) {
    if (!known.empty()) known += ", ";
    known += victim.name;
  }
  throw std::invalid_argument("Harness: unknown victim \"" + name +
                              "\" (registered: " + known + ")");
}

bool Harness::has_victim(const std::string& name) const {
  for (const auto& victim : victims_) {
    if (victim.name == name) return true;
  }
  return false;
}

std::vector<std::string> Harness::victim_names() const {
  std::vector<std::string> names;
  names.reserve(victims_.size());
  for (const auto& victim : victims_) names.push_back(victim.name);
  return names;
}

int Harness::replica_count(const std::string& victim) const {
  return engine_->replica_count(require_victim(victim).name);
}

std::int64_t Harness::images_served(const std::string& victim) const {
  return engine_->images_served(require_victim(victim).name);
}

std::vector<int> Harness::classify_labels(const std::string& variant,
                                          const Tensor& images) const {
  return engine_labels(*engine_, variant, images);
}

std::vector<int> Harness::predict(const std::string& victim, const Tensor& images) const {
  const Victim& entry = require_victim(victim);
  // Accept a CHW image wherever a batch is accepted (the engine normalizes
  // the plain path; the smoothing path needs NCHW up front).
  const Tensor batch =
      images.rank() == 3
          ? images.reshape(tensor::Shape::nchw(1, images.dim(0), images.dim(1), images.dim(2)))
          : images;
  if (entry.smoothing) {
    return defense::smoothed_predict(
        [this, &entry](const Tensor& samples) { return classify_labels(entry.name, samples); },
        engine_->variant(entry.name).config().num_classes, batch, *entry.smoothing);
  }
  return classify_labels(entry.name, batch);
}

double Harness::dataset_accuracy(const std::string& victim, const data::Dataset& data) const {
  if (data.size() == 0) return 0.0;
  const auto predictions = predict(victim, data.images);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double Harness::stop_sign_accuracy(const std::string& victim, const Tensor& images) const {
  const auto predictions = predict(victim, images);
  if (predictions.empty()) return 0.0;
  int correct = 0;
  for (const int label : predictions) {
    if (label == data::SignRenderer::stop_class_id()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

attack::VictimHandle Harness::victim_handle(const std::string& victim, int slot) const {
  const Victim& entry = require_victim(victim);
  if (slot < 0) throw std::invalid_argument("Harness::victim_handle: slot must be >= 0");
  const int replicas = engine_->replica_count(entry.name);
  const nn::LisaCnn& gradient_model = engine_->replica_model(entry.name, slot % replicas);
  // The closure captures the engine pointer and the variant name by value so
  // the handle stays valid as long as the engine does.
  const serve::InferenceEngine* engine = engine_;
  return attack::VictimHandle(gradient_model,
                              [engine, name = entry.name](const Tensor& images) {
                                return engine_labels(*engine, name, images);
                              });
}

namespace {

/// Run `fn(target_index, slot)` for every target, fanned out over the
/// victim's replica slots: slot s owns targets s, s+S, s+2S, ... so a replica
/// model is never used by two concurrent crafting runs, and results land in
/// per-target storage independent of scheduling — bitwise identical for any
/// replica count.
void fan_out_targets(int replicas, std::size_t count,
                     const std::function<void(std::size_t, int)>& fn) {
  const int slots = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(std::max(replicas, 1)), count));
  if (slots <= 1) {
    for (std::size_t t = 0; t < count; ++t) fn(t, 0);
    return;
  }
  // min_chunk 1: one chunk per slot. Nested parallel_for calls inside the
  // crafting runs fall back inline, so the pool is never deadlocked.
  util::parallel_for(
      slots,
      [&](std::int64_t s0, std::int64_t s1) {
        for (std::int64_t s = s0; s < s1; ++s) {
          for (std::size_t t = static_cast<std::size_t>(s); t < count;
               t += static_cast<std::size_t>(slots)) {
            fn(t, static_cast<int>(s));
          }
        }
      },
      /*min_chunk=*/1);
}

SweepResult run_sweep(const Harness& harness, const std::string& victim,
                      double legit_accuracy, const data::StopSignSet& eval_set,
                      const ExperimentScale& scale, const ConfigAdapter& adapt) {
  const auto craft_set = attacker_craft_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  const auto eval_sticker = attack::sticker_mask(eval_set.masks);
  const auto targets = scale.target_classes();

  SweepResult result;
  result.legit_accuracy = legit_accuracy;
  // Clean predictions are target-independent: one engine pass up front.
  const auto clean_pred = harness.predict(victim, eval_set.images);

  // Adapt the per-target configs sequentially on the calling thread — the
  // fan-out below runs on pool threads, and the adapter is caller-supplied
  // code with no thread-safety contract.
  std::vector<attack::Rp2Config> configs;
  configs.reserve(targets.size());
  for (const int target : targets) {
    attack::Rp2Config config = paper_rp2_config(scale);
    config.target_class = target;
    config.seed = 1000 + static_cast<std::uint64_t>(target);
    if (adapt) config = adapt(config);
    configs.push_back(std::move(config));
  }

  std::vector<PerTargetResult> per(targets.size());
  fan_out_targets(harness.replica_count(victim), targets.size(),
                  [&](std::size_t t, int slot) {
                    const int target = targets[t];
                    // Craft the sticker on the attacker's own sign instances, then
                    // evaluate the same physical sticker on the held-out stop set.
                    const auto crafted = attack::rp2_attack(
                        harness.victim_handle(victim, slot), craft_set.images,
                        craft_sticker, configs[t]);
                    const auto adversarial = attack::apply_shared_sticker(
                        eval_set.images, eval_sticker, crafted.shared_delta);
                    const auto adv_pred = harness.predict(victim, adversarial);

                    PerTargetResult& out = per[t];
                    out.target = target;
                    int altered = 0, hits = 0;
                    for (std::size_t i = 0; i < clean_pred.size(); ++i) {
                      if (clean_pred[i] != adv_pred[i]) ++altered;
                      if (adv_pred[i] == target) ++hits;
                    }
                    const double count = static_cast<double>(clean_pred.size());
                    out.success_rate = count > 0 ? altered / count : 0.0;
                    out.targeted_rate = count > 0 ? hits / count : 0.0;
                    out.l2_dissimilarity =
                        tensor::l2_dissimilarity(adversarial, eval_set.images);
                    util::log_debug() << "sweep victim=" << victim << " target=" << target
                                      << " asr=" << out.success_rate
                                      << " l2=" << out.l2_dissimilarity;
                  });

  // Aggregate in target-index order — independent of crafting schedule.
  double sum_asr = 0.0, sum_l2 = 0.0;
  for (const auto& entry : per) {
    result.per_target.push_back(entry);
    sum_asr += entry.success_rate;
    sum_l2 += entry.l2_dissimilarity;
    result.worst_success = std::max(result.worst_success, entry.success_rate);
  }
  if (!targets.empty()) {
    result.average_success = sum_asr / static_cast<double>(targets.size());
    result.mean_l2 = sum_l2 / static_cast<double>(targets.size());
  }
  return result;
}

}  // namespace

SweepResult WhiteboxSweep::run(const Harness& harness, const std::string& victim,
                               double legit_accuracy,
                               const data::StopSignSet& eval_set) const {
  return run_sweep(harness, victim, legit_accuracy, eval_set, scale, nullptr);
}

SweepResult AdaptiveSweep::run(const Harness& harness, const std::string& victim,
                               double legit_accuracy,
                               const data::StopSignSet& eval_set) const {
  return run_sweep(harness, victim, legit_accuracy, eval_set, scale, adapt);
}

std::vector<TransferResult> TransferMatrix::run(const Harness& harness,
                                                const std::string& source,
                                                const std::vector<std::string>& victims,
                                                const data::StopSignSet& eval_set) const {
  const auto craft_set = attacker_craft_set(scale);
  const auto craft_sticker = attack::sticker_mask(craft_set.masks);
  const auto eval_sticker = attack::sticker_mask(eval_set.masks);
  const auto targets = scale.target_classes();

  // Craft each per-target sticker ONCE on the source, fanned out across the
  // source's replicas. The old per-victim protocol re-ran the identical
  // deterministic optimization for every row; the stickers (and therefore
  // every table number) are unchanged, only the redundant crafting is gone.
  std::vector<Tensor> adversarial(targets.size());
  fan_out_targets(harness.replica_count(source), targets.size(),
                  [&](std::size_t t, int slot) {
                    attack::Rp2Config config = paper_rp2_config(scale);
                    config.target_class = targets[t];
                    config.seed = 2000 + static_cast<std::uint64_t>(targets[t]);
                    const auto crafted = attack::rp2_attack(
                        harness.victim_handle(source, slot), craft_set.images,
                        craft_sticker, config);
                    adversarial[t] = attack::apply_shared_sticker(
                        eval_set.images, eval_sticker, crafted.shared_delta);
                  });

  std::vector<TransferResult> results;
  results.reserve(victims.size());
  for (const auto& victim : victims) {
    TransferResult row;
    // Clean accuracy: fraction of natural stop signs the victim classifies
    // as stop (class 0), mirroring Table I's "Accuracy" column.
    const auto clean_pred = harness.predict(victim, eval_set.images);
    int stop_correct = 0;
    for (const int label : clean_pred) {
      if (label == data::SignRenderer::stop_class_id()) ++stop_correct;
    }
    row.clean_accuracy = clean_pred.empty()
                             ? 0.0
                             : static_cast<double>(stop_correct) /
                                   static_cast<double>(clean_pred.size());

    double sum_asr = 0.0;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const auto adv_pred = harness.predict(victim, adversarial[t]);
      int altered = 0;
      for (std::size_t i = 0; i < adv_pred.size(); ++i) {
        if (adv_pred[i] != clean_pred[i]) ++altered;
      }
      sum_asr += adv_pred.empty() ? 0.0
                                  : static_cast<double>(altered) /
                                        static_cast<double>(adv_pred.size());
    }
    if (!targets.empty()) {
      row.attack_success = sum_asr / static_cast<double>(targets.size());
    }
    util::log_debug() << "transfer source=" << source << " victim=" << victim
                      << " asr=" << row.attack_success;
    results.push_back(row);
  }
  return results;
}

}  // namespace blurnet::eval
