#include "src/serve/qos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blurnet::serve {

LatencyRing::LatencyRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("LatencyRing: capacity must be positive");
  }
  samples_.reserve(capacity_);
}

void LatencyRing::record(double micros) {
  std::lock_guard<util::DebugMutex> lock(mutex_);
  if (samples_.size() < capacity_) {
    samples_.push_back(micros);
  } else {
    samples_[next_] = micros;
  }
  next_ = (next_ + 1) % capacity_;
  ++count_;
}

LatencySnapshot LatencyRing::snapshot() const {
  std::vector<double> window;
  LatencySnapshot snap;
  {
    std::lock_guard<util::DebugMutex> lock(mutex_);
    window = samples_;
    snap.count = count_;
  }
  snap.window = static_cast<std::int64_t>(window.size());
  if (window.empty()) return snap;
  double sum = 0.0, mx = window.front();
  for (const double v : window) {
    sum += v;
    mx = std::max(mx, v);
  }
  snap.mean_us = sum / static_cast<double>(window.size());
  snap.max_us = mx;
  std::sort(window.begin(), window.end());
  auto rank = [&](double q) {
    const auto n = static_cast<std::int64_t>(window.size());
    std::int64_t r = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
    if (r < 1) r = 1;
    if (r > n) r = n;
    return window[static_cast<std::size_t>(r - 1)];
  };
  snap.p50_us = rank(0.50);
  snap.p99_us = rank(0.99);
  snap.p999_us = rank(0.999);
  return snap;
}

double latency_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("latency_quantile: q must be in [0, 1]");
  }
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<std::int64_t>(samples.size());
  std::int64_t r = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
  if (r < 1) r = 1;
  if (r > n) r = n;
  return samples[static_cast<std::size_t>(r - 1)];
}

}  // namespace blurnet::serve
