#include "src/serve/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/tensor/ops.h"
#include "src/util/arena.h"

namespace blurnet::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Normalize a CHW image or NCHW batch to NCHW, rejecting anything that
/// would otherwise fail deep inside conv2d with a cryptic error.
Tensor as_batch(const Tensor& images, const nn::LisaCnnConfig& config,
                const std::string& op) {
  if (images.rank() != 3 && images.rank() != 4) {
    throw std::invalid_argument(op + ": expected a CHW image (rank 3) or NCHW batch (rank 4), got rank " +
                                std::to_string(images.rank()) + " with shape " +
                                images.shape().to_string());
  }
  Tensor batch = images;
  if (images.rank() == 3) {
    batch = images.reshape(Shape::nchw(1, images.dim(0), images.dim(1), images.dim(2)));
  }
  if (batch.dim(0) < 1) {
    throw std::invalid_argument(op + ": batch holds no images (shape " +
                                images.shape().to_string() + ")");
  }
  if (batch.dim(1) != config.in_channels) {
    throw std::invalid_argument(op + ": expected " + std::to_string(config.in_channels) +
                                " input channels, got " + std::to_string(batch.dim(1)) +
                                " (shape " + images.shape().to_string() + ")");
  }
  if (batch.dim(2) != config.image_size || batch.dim(3) != config.image_size) {
    throw std::invalid_argument(op + ": expected " + std::to_string(config.image_size) + "x" +
                                std::to_string(config.image_size) + " spatial dims, got " +
                                std::to_string(batch.dim(2)) + "x" + std::to_string(batch.dim(3)) +
                                " (shape " + images.shape().to_string() + ")");
  }
  return batch;
}

int effective_max_batch(const Options& options, int engine_default, const std::string& op) {
  if (options.max_batch < 0) {
    throw std::invalid_argument(op + ": Options::max_batch must be >= 0 (0 = engine default), got " +
                                std::to_string(options.max_batch));
  }
  return options.max_batch > 0 ? options.max_batch : engine_default;
}

}  // namespace

const char* to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kReject: return "reject";
    case OverloadPolicy::kBlock: return "block";
  }
  return "?";
}

void EngineConfig::validate() const {
  if (max_batch < 1) {
    throw std::invalid_argument("EngineConfig: max_batch must be >= 1 (got " +
                                std::to_string(max_batch) + ")");
  }
  if (replicas < 1) {
    throw std::invalid_argument("EngineConfig: replicas must be >= 1 (got " +
                                std::to_string(replicas) + ")");
  }
  if (queue_capacity < 1) {
    throw std::invalid_argument("EngineConfig: queue_capacity must be >= 1 (got " +
                                std::to_string(queue_capacity) + ")");
  }
  if (block_timeout_ms < 0) {
    throw std::invalid_argument("EngineConfig: block_timeout_ms must be >= 0 (got " +
                                std::to_string(block_timeout_ms) +
                                "; 0 waits indefinitely under OverloadPolicy::kBlock)");
  }
  if (overload_policy == OverloadPolicy::kReject && block_timeout_ms != 0) {
    throw std::invalid_argument(
        "EngineConfig: block_timeout_ms (" + std::to_string(block_timeout_ms) +
        ") only applies to OverloadPolicy::kBlock — a kReject engine never waits; "
        "set it to 0 or switch overload_policy to kBlock");
  }
}

InferenceEngine::InferenceEngine(EngineConfig config)
    // Validate before the model is built: a bad batch/replica/queue knob must
    // not cost a full weight allocation (and must carry the EngineConfig
    // prefix).
    : InferenceEngine([&config] { config.validate(); return nn::LisaCnn(config.model); }(),
                      config.defense, config.max_batch, config.replicas,
                      config.queue_capacity, config.overload_policy,
                      config.block_timeout_ms) {}

InferenceEngine::InferenceEngine(nn::LisaCnn model, nn::FixedFilterSpec defense,
                                 int max_batch, int replicas, int queue_capacity,
                                 OverloadPolicy overload_policy, int block_timeout_ms)
    : model_(std::move(model)), max_batch_(max_batch), default_replicas_(replicas),
      queue_capacity_(queue_capacity), overload_policy_(overload_policy),
      block_timeout_ms_(block_timeout_ms) {
  if (max_batch_ < 1) {
    throw std::invalid_argument("InferenceEngine: max_batch must be >= 1 (got " +
                                std::to_string(max_batch_) + ")");
  }
  if (default_replicas_ < 1) {
    throw std::invalid_argument("InferenceEngine: replicas must be >= 1 (got " +
                                std::to_string(default_replicas_) + ")");
  }
  if (queue_capacity_ < 1) {
    throw std::invalid_argument("InferenceEngine: queue_capacity must be >= 1 (got " +
                                std::to_string(queue_capacity_) + ")");
  }
  if (block_timeout_ms_ < 0) {
    throw std::invalid_argument("InferenceEngine: block_timeout_ms must be >= 0 (got " +
                                std::to_string(block_timeout_ms_) + ")");
  }
  if (overload_policy_ == OverloadPolicy::kReject && block_timeout_ms_ != 0) {
    throw std::invalid_argument(
        "InferenceEngine: block_timeout_ms (" + std::to_string(block_timeout_ms_) +
        ") only applies to OverloadPolicy::kBlock — a kReject engine never waits");
  }
  register_variant_locked(kBaseVariant, model_.config(), default_replicas_);
  defense_enabled_ = defense.placement != nn::FilterPlacement::kNone && defense.kernel > 0;
  if (defense_enabled_) {
    nn::LisaCnnConfig defended = model_.config();
    defended.fixed_filter = defense;
    register_variant_locked(kDefendedVariant, defended, default_replicas_);
  } else {
    // No filter to wrap: serve "defended" from the base shard instead of
    // cloning a second, identical set of replicas.
    aliases_.emplace_back(kDefendedVariant, shards_.front().get());
  }
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<util::DebugMutex> lock(queue_mutex_);
    stop_ = true;
  }
  {
    std::lock_guard<util::DebugMutex> lock(shards_mutex_);
    for (auto& shard : shards_) {
      shard->cv.notify_all();
      shard->space_cv.notify_all();  // wake kBlock submitters into the stop check
    }
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void InferenceEngine::register_shard_locked(const std::string& name,
                                            const nn::LisaCnn& source,
                                            const nn::LisaCnnConfig& config, int replicas,
                                            bool from_base,
                                            defense::TransformPtr transform) {
  if (name.empty()) throw std::invalid_argument("register_variant: name must be non-empty");
  if (find_shard_locked(name) != nullptr) {
    throw std::invalid_argument("register_variant: variant \"" + name +
                                "\" is already registered");
  }
  if (config.in_channels != model_.config().in_channels ||
      config.image_size != model_.config().image_size) {
    throw std::invalid_argument("register_variant: variant \"" + name +
                                "\" input shape does not match the base model");
  }
  if (replicas == 0) replicas = default_replicas_;
  if (replicas < 1) {
    throw std::invalid_argument("register_variant: replicas must be >= 1 (got " +
                                std::to_string(replicas) + ")");
  }
  auto shard = std::make_unique<VariantShard>();
  shard->name = name;
  shard->config = config;
  shard->from_base = from_base;
  shard->transform = transform;
  shard->replicas.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    shard->replicas.push_back(std::make_unique<Replica>(source, config, transform));
  }
  shards_.push_back(std::move(shard));
}

void InferenceEngine::register_variant_locked(const std::string& name,
                                              const nn::LisaCnnConfig& config,
                                              int replicas) {
  register_shard_locked(name, model_, config, replicas, /*from_base=*/true);
}

void InferenceEngine::register_variant(const std::string& name,
                                       const nn::LisaCnnConfig& config, int replicas) {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  register_variant_locked(name, config, replicas);
}

void InferenceEngine::register_model(const std::string& name, const nn::LisaCnn& source,
                                     int replicas) {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  register_shard_locked(name, source, source.config(), replicas, /*from_base=*/false);
}

void InferenceEngine::register_transform_variant(const std::string& name,
                                                 const defense::TransformSpec& spec,
                                                 int replicas) {
  // make_transform validates the spec and maps kNone to nullptr, so a kNone
  // registration is exactly a plain weight-transfer variant of the base
  // config — the transform-off path stays bitwise the bare forward path.
  defense::TransformPtr transform = defense::make_transform(spec);
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  register_shard_locked(name, model_, model_.config(), replicas, /*from_base=*/true,
                        std::move(transform));
}

void InferenceEngine::register_pipeline_variant(const std::string& name,
                                                defense::TransformPtr transform,
                                                int replicas) {
  // The stage is taken as-built (any InputTransform subclass); weights still
  // transfer from the base model, so refresh_variant() works as usual.
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  register_shard_locked(name, model_, model_.config(), replicas, /*from_base=*/true,
                        std::move(transform));
}

void InferenceEngine::register_transform_model(const std::string& name,
                                               const nn::LisaCnn& source,
                                               const defense::TransformSpec& spec,
                                               int replicas) {
  defense::TransformPtr transform = defense::make_transform(spec);
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  register_shard_locked(name, source, source.config(), replicas, /*from_base=*/false,
                        std::move(transform));
}

void InferenceEngine::alias_variant(const std::string& name, const std::string& existing) {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  if (name.empty()) throw std::invalid_argument("alias_variant: name must be non-empty");
  if (find_shard_locked(name) != nullptr) {
    throw std::invalid_argument("alias_variant: variant \"" + name +
                                "\" is already registered");
  }
  aliases_.emplace_back(name, &require_shard_locked(existing));
}

std::string InferenceEngine::shard_kind(const VariantShard& shard) {
  std::string kind = shard.from_base ? "weight-transfer" : "foreign-model";
  if (shard.transform) {
    kind = "transform-wrapped " + kind + " (" + shard.transform->name() + ")";
  }
  return kind;
}

void InferenceEngine::refresh_variant(const std::string& name) {
  VariantShard& shard = require_shard(name);
  if (!shard.from_base) {
    throw std::logic_error("refresh_variant: variant \"" + name + "\" is a " +
                           shard_kind(shard) +
                           " shard: it serves an independently trained model whose "
                           "weights do not come from the base model; re-register it "
                           "(register_model / register_transform_model) instead");
  }
  // Weight-transfer shards — transform-wrapped or not — re-copy the base
  // weights; the preprocess stage is immutable and kept as registered.
  for (auto& replica : shard.replicas) replica->refresh_from(model_);
}

InferenceEngine::VariantShard* InferenceEngine::find_shard_locked(
    const std::string& name) const {
  for (const auto& shard : shards_) {
    if (shard->name == name) return shard.get();
  }
  for (const auto& alias : aliases_) {
    if (alias.first == name) return alias.second;
  }
  return nullptr;
}

InferenceEngine::VariantShard& InferenceEngine::require_shard_locked(
    const std::string& name) const {
  if (VariantShard* shard = find_shard_locked(name)) return *shard;
  std::string known;
  for (const auto& registered : variant_names_locked()) {
    if (!known.empty()) known += ", ";
    known += "\"" + registered + "\"";
  }
  throw std::invalid_argument("InferenceEngine: unknown variant \"" + name +
                              "\" (registered: " + known + ")");
}

InferenceEngine::VariantShard& InferenceEngine::require_shard(const std::string& name) const {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  return require_shard_locked(name);
}

std::vector<std::string> InferenceEngine::variant_names_locked() const {
  std::vector<std::string> names;
  names.reserve(shards_.size() + aliases_.size());
  for (const auto& shard : shards_) names.push_back(shard->name);
  for (const auto& alias : aliases_) names.push_back(alias.first);
  return names;
}

std::vector<std::string> InferenceEngine::variant_names() const {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  return variant_names_locked();
}

bool InferenceEngine::has_variant(const std::string& name) const {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  return find_shard_locked(name) != nullptr;
}

const nn::LisaCnn& InferenceEngine::variant(const std::string& name) const {
  return require_shard(name).replicas.front()->model();
}

const nn::LisaCnn& InferenceEngine::replica_model(const std::string& name, int index) const {
  const VariantShard& shard = require_shard(name);
  if (index < 0 || static_cast<std::size_t>(index) >= shard.replicas.size()) {
    throw std::invalid_argument("replica_model: variant \"" + name + "\" has " +
                                std::to_string(shard.replicas.size()) +
                                " replicas, index " + std::to_string(index) +
                                " is out of range");
  }
  return shard.replicas[static_cast<std::size_t>(index)]->model();
}

int InferenceEngine::replica_count(const std::string& name) const {
  return static_cast<int>(require_shard(name).replicas.size());
}

defense::TransformPtr InferenceEngine::variant_transform(const std::string& name) const {
  return require_shard(name).transform;
}

std::string InferenceEngine::variant_kind(const std::string& name) const {
  return shard_kind(require_shard(name));
}

Replica& InferenceEngine::route_locked(VariantShard& shard) const {
  // Least-loaded with a round-robin cursor as the tiebreak: concurrent
  // callers spread across idle replicas, and repeated single-caller traffic
  // still rotates instead of hammering replica 0. The replica's in-flight
  // count is claimed under the lock so two callers can't both pick the same
  // "idle" replica.
  const std::size_t n = shard.replicas.size();
  std::size_t best = shard.next_replica % n;
  int best_load = shard.replicas[best]->in_flight();
  for (std::size_t step = 1; step < n && best_load > 0; ++step) {
    const std::size_t candidate = (shard.next_replica + step) % n;
    const int load = shard.replicas[candidate]->in_flight();
    if (load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  shard.next_replica = (best + 1) % n;
  Replica& replica = *shard.replicas[best];
  replica.begin_call();
  return replica;
}

std::vector<Prediction> InferenceEngine::classify(const Tensor& images,
                                                  const Options& options) const {
  const int cap = effective_max_batch(options, max_batch_, "InferenceEngine::classify");
  const Tensor batch = as_batch(images, model_.config(), "InferenceEngine::classify");
  Replica* replica;
  {
    // One acquisition covers both the name lookup and the routing pick.
    std::lock_guard<util::DebugMutex> lock(shards_mutex_);
    replica = &route_locked(require_shard_locked(options.variant));
  }
  struct CallGuard {
    Replica& replica;
    ~CallGuard() { replica.end_call(); }
  } guard{*replica};
  return replica->run(batch, cap);
}

Tensor InferenceEngine::classify_logits(const Tensor& images, const Options& options) const {
  const std::vector<Prediction> predictions = classify(images, options);
  const std::int64_t n = static_cast<std::int64_t>(predictions.size());
  const std::int64_t k = static_cast<std::int64_t>(predictions.front().logits.size());
  Tensor out(Shape::mat(n, k));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& logits = predictions[static_cast<std::size_t>(i)].logits;
    std::copy(logits.begin(), logits.end(), out.data() + i * k);
  }
  return out;
}

std::future<Prediction> InferenceEngine::submit(Tensor image, Options options) {
  VariantShard& shard = require_shard(options.variant);
  const int cap = effective_max_batch(options, max_batch_, "InferenceEngine::submit");
  Tensor batch = as_batch(image, model_.config(), "InferenceEngine::submit");
  if (batch.dim(0) != 1) {
    throw std::invalid_argument("InferenceEngine::submit: expected a single image, got a batch of " +
                                std::to_string(batch.dim(0)));
  }
  // Deep-copy the image: the caller may reuse its buffer before a worker
  // runs. Aggregate init so the Tensor member is built directly from the
  // clone (a default-constructed member would cost a dead scalar allocation
  // per submit).
  Request request{batch.reshape(Shape{batch.dim(1), batch.dim(2), batch.dim(3)}).clone(),
                  cap, {}, {}};
  std::future<Prediction> future = request.promise.get_future();
  const auto capacity = static_cast<std::size_t>(queue_capacity_);
  {
    std::unique_lock<util::DebugMutex> lock(queue_mutex_);
    if (stop_) throw std::runtime_error("InferenceEngine::submit: engine is shutting down");
    // Workers are spawned lazily, per variant, on its first queued request:
    // classify()-only engines and never-submitted variants pay for nothing.
    if (!shard.workers_spawned) {
      for (auto& replica : shard.replicas) {
        workers_.emplace_back([this, s = &shard, r = replica.get()] { worker_loop(s, r); });
      }
      shard.workers_spawned = true;
    }
    // Bounded queue: admission control happens here, before the request is
    // visible to any worker, so a shed request costs the engine nothing.
    if (shard.pending.size() >= capacity) {
      if (overload_policy_ == OverloadPolicy::kReject) {
        ++shard.rejected;
        throw OverloadError("InferenceEngine::submit: variant \"" + options.variant +
                            "\" queue is full (" + std::to_string(capacity) +
                            " pending, policy reject)");
      }
      // kBlock: backpressure — wait for a worker to drain a slot. Admission is
      // FIFO by ticket: only the longest-waiting submitter may take a freed
      // slot, so a notify_all never turns into a thundering-herd race where
      // the scheduler picks the winner. Each admitted (or departing) waiter
      // erases its ticket and re-notifies, cascading slots down the line in
      // arrival order.
      ++shard.blocked;
      const std::uint64_t ticket = shard.next_block_ticket++;
      shard.block_waiters.push_back(ticket);
      auto admitted = [&] {
        return stop_ || (shard.block_waiters.front() == ticket &&
                         shard.pending.size() < capacity);
      };
      auto leave_line = [&] {
        auto it = std::find(shard.block_waiters.begin(), shard.block_waiters.end(), ticket);
        if (it != shard.block_waiters.end()) shard.block_waiters.erase(it);
        shard.space_cv.notify_all();  // the next ticket in line may now be admissible
      };
      if (block_timeout_ms_ > 0) {
        if (!shard.space_cv.wait_for(lock, std::chrono::milliseconds(block_timeout_ms_),
                                     admitted)) {
          leave_line();
          ++shard.rejected;
          throw OverloadError("InferenceEngine::submit: variant \"" + options.variant +
                              "\" queue is full (" + std::to_string(capacity) +
                              " pending, policy block, timed out after " +
                              std::to_string(block_timeout_ms_) + " ms)");
        }
      } else {
        shard.space_cv.wait(lock, admitted);
      }
      leave_line();
      if (stop_) throw std::runtime_error("InferenceEngine::submit: engine is shutting down");
    }
    request.enqueued = std::chrono::steady_clock::now();
    shard.pending.push_back(std::move(request));
    shard.queue_peak = std::max(shard.queue_peak,
                                static_cast<std::int64_t>(shard.pending.size()));
  }
  shard.cv.notify_one();
  return future;
}

void InferenceEngine::worker_loop(VariantShard* shard, Replica* replica) {
  for (;;) {
    std::vector<Request> coalesced;
    int cap = max_batch_;
    {
      std::unique_lock<util::DebugMutex> lock(queue_mutex_);
      shard->cv.wait(lock, [&] { return stop_ || !shard->pending.empty(); });
      // Empty is only reachable with stop_ set and this variant's queue
      // drained (a sibling replica may have taken the last batch).
      if (shard->pending.empty()) return;
      // Coalesce the head-of-line request with the pending requests behind
      // it, up to the batch cap the head asked for.
      cap = shard->pending.front().max_batch;
      do {
        coalesced.push_back(std::move(shard->pending.front()));
        shard->pending.pop_front();
      } while (!shard->pending.empty() &&
               coalesced.size() < static_cast<std::size_t>(cap));
    }
    // Popping the coalesced batch freed up to `cap` slots; wake every
    // backpressured submitter so each can claim one.
    shard->space_cv.notify_all();

    const std::int64_t count = static_cast<std::int64_t>(coalesced.size());
    replica->begin_call();  // queued batches count toward the router's load
    {
      // The assembled batch tensor is transient: frame it in this worker's
      // request arena (run() opens its own nested frame) so steady-state
      // submit traffic allocates nothing from the heap.
      util::ArenaScope frame(Replica::serving_arena());
      try {
        const Tensor& first = coalesced.front().image;
        Tensor batch(Shape::nchw(count, first.dim(0), first.dim(1), first.dim(2)));
        const std::int64_t stride = first.numel();
        for (std::int64_t i = 0; i < count; ++i) {
          const Tensor& image = coalesced[static_cast<std::size_t>(i)].image;
          std::copy(image.data(), image.data() + stride, batch.data() + i * stride);
        }
        // Stats are counted inside run(), before the promises resolve: a caller
        // observing its future must see its batch reflected in stats().
        std::vector<Prediction> predictions = replica->run(batch, cap, /*queued=*/true);
        // Latency (enqueue→resolve) is recorded before the promises resolve
        // for the same reason: a caller that has observed its future must
        // find its request in the latency snapshot.
        const auto now = std::chrono::steady_clock::now();
        for (const auto& request : coalesced) {
          shard->latency.record(
              std::chrono::duration<double, std::micro>(now - request.enqueued).count());
        }
        for (std::int64_t i = 0; i < count; ++i) {
          coalesced[static_cast<std::size_t>(i)].promise.set_value(
              std::move(predictions[static_cast<std::size_t>(i)]));
        }
      } catch (...) {
        for (auto& request : coalesced) {
          request.promise.set_exception(std::current_exception());
        }
      }
    }
    replica->end_call();
  }
}

VariantStats InferenceEngine::shard_stats(const VariantShard& shard) const {
  VariantStats stats;
  stats.variant = shard.name;  // aliases report the shard they resolve to
  stats.replicas.reserve(shard.replicas.size());
  for (const auto& replica : shard.replicas) stats.replicas.push_back(replica->stats());
  {
    // Brief queue-lock acquisition; safe after shards_mutex_ because no path
    // waits for shards_mutex_ while holding queue_mutex_.
    std::lock_guard<util::DebugMutex> lock(queue_mutex_);
    stats.queue_depth = static_cast<std::int64_t>(shard.pending.size());
    stats.queue_peak = shard.queue_peak;
    stats.rejected = shard.rejected;
    stats.blocked = shard.blocked;
  }
  stats.latency = shard.latency.snapshot();
  return stats;
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<util::DebugMutex> lock(shards_mutex_);
  EngineStats stats;
  stats.variants.reserve(shards_.size());
  for (const auto& shard : shards_) {
    VariantStats per_variant = shard_stats(*shard);
    for (const auto& rs : per_variant.replicas) {
      stats.requests += rs.requests;
      stats.batches += rs.batches;
      stats.images += rs.images;
      stats.largest_batch = std::max(stats.largest_batch, rs.largest_batch);
    }
    stats.rejected += per_variant.rejected;
    stats.blocked += per_variant.blocked;
    stats.queue_peak = std::max(stats.queue_peak, per_variant.queue_peak);
    stats.variants.push_back(std::move(per_variant));
  }
  return stats;
}

VariantStats InferenceEngine::variant_stats(const std::string& name) const {
  return shard_stats(require_shard(name));
}

std::int64_t InferenceEngine::images_served(const std::string& name) const {
  std::int64_t images = 0;
  for (const auto& rs : variant_stats(name).replicas) images += rs.images;
  return images;
}

double accuracy(const std::vector<Prediction>& predictions, const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("serve::accuracy: size mismatch");
  }
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i].label == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

}  // namespace blurnet::serve
