#include "src/serve/engine.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "src/tensor/ops.h"

namespace blurnet::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Normalize a CHW image or NCHW batch to NCHW, validating against the model.
Tensor as_batch(const Tensor& images, const nn::LisaCnnConfig& config) {
  Tensor batch = images;
  if (images.rank() == 3) {
    batch = images.reshape(Shape::nchw(1, images.dim(0), images.dim(1), images.dim(2)));
  } else if (images.rank() != 4) {
    throw std::invalid_argument("InferenceEngine: expected CHW image or NCHW batch");
  }
  if (batch.dim(1) != config.in_channels || batch.dim(2) != config.image_size ||
      batch.dim(3) != config.image_size) {
    throw std::invalid_argument("InferenceEngine: image shape " + batch.shape().to_string() +
                                " does not match the model input");
  }
  return batch;
}

std::optional<nn::LisaCnn> make_defended(const nn::LisaCnn& base,
                                         const nn::FixedFilterSpec& defense) {
  if (defense.placement == nn::FilterPlacement::kNone || defense.kernel <= 0) {
    return std::nullopt;
  }
  nn::LisaCnnConfig config = base.config();
  config.fixed_filter = defense;
  nn::LisaCnn defended(config);
  defended.copy_weights_from(base);
  return defended;
}

}  // namespace

InferenceEngine::InferenceEngine(EngineConfig config)
    : InferenceEngine(nn::LisaCnn(config.model), config.defense, config.max_batch) {}

InferenceEngine::InferenceEngine(nn::LisaCnn model, nn::FixedFilterSpec defense,
                                 int max_batch)
    : model_(std::move(model)),
      defended_model_(make_defended(model_, defense)),
      max_batch_(max_batch) {
  if (max_batch_ < 1) throw std::invalid_argument("InferenceEngine: max_batch must be >= 1");
}

InferenceEngine::~InferenceEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

const nn::LisaCnn& InferenceEngine::defended_model() const {
  return defended_model_ ? *defended_model_ : model_;
}

void InferenceEngine::refresh_defended_weights() {
  if (defended_model_) defended_model_->copy_weights_from(model_);
}

const nn::LisaCnn& InferenceEngine::route(bool defended) const {
  return defended ? defended_model() : model_;
}

std::vector<Prediction> InferenceEngine::run_batch(const nn::LisaCnn& model,
                                                   const Tensor& batch) const {
  // Bound each forward pass (and therefore the im2col scratch footprint) by
  // max_batch_: callers may hand classify() a whole dataset. Per-image
  // results are independent, so slicing cannot change them.
  if (batch.dim(0) > max_batch_) {
    const std::int64_t n = batch.dim(0);
    const std::int64_t image_size = batch.numel() / n;
    std::vector<Prediction> predictions;
    predictions.reserve(static_cast<std::size_t>(n));
    for (std::int64_t begin = 0; begin < n; begin += max_batch_) {
      const std::int64_t count = std::min<std::int64_t>(max_batch_, n - begin);
      Tensor slice(Shape::nchw(count, batch.dim(1), batch.dim(2), batch.dim(3)));
      std::copy(batch.data() + begin * image_size,
                batch.data() + (begin + count) * image_size, slice.data());
      auto part = run_batch(model, slice);
      predictions.insert(predictions.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
    }
    return predictions;
  }
  const Tensor logits = model.logits(batch);
  const Tensor probabilities = tensor::softmax_rows(logits);
  const std::vector<int> labels = tensor::argmax_rows(logits);
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  std::vector<Prediction> predictions(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Prediction& p = predictions[static_cast<std::size_t>(i)];
    p.label = labels[static_cast<std::size_t>(i)];
    p.confidence = probabilities.at2(i, p.label);
    p.logits.assign(logits.data() + i * k, logits.data() + (i + 1) * k);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.images += n;
  }
  return predictions;
}

std::vector<Prediction> InferenceEngine::classify(const Tensor& images) const {
  return run_batch(model_, as_batch(images, model_.config()));
}

std::vector<Prediction> InferenceEngine::classify_defended(const Tensor& images) const {
  return run_batch(defended_model(), as_batch(images, model_.config()));
}

std::future<Prediction> InferenceEngine::submit(Tensor image, bool defended) {
  Tensor batch = as_batch(image, model_.config());  // validates the shape
  if (batch.dim(0) != 1) {
    throw std::invalid_argument("InferenceEngine::submit: expected a single image");
  }
  Request request;
  // Deep-copy: the caller may reuse its buffer before the batcher runs.
  request.image = batch.reshape(Shape{batch.dim(1), batch.dim(2), batch.dim(3)}).clone();
  request.defended = defended;
  std::future<Prediction> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) throw std::runtime_error("InferenceEngine::submit: engine is shutting down");
    // The batcher thread is only needed by the queued path; engines used
    // purely through classify() never pay for it.
    if (!batcher_.joinable()) batcher_ = std::thread([this] { batcher_loop(); });
    pending_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
  return future;
}

void InferenceEngine::batcher_loop() {
  for (;;) {
    std::vector<Request> coalesced;
    bool defended = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop requested and queue drained
      // Coalesce the head-of-line request with every compatible pending
      // request (same model route), up to max_batch images.
      defended = pending_.front().defended;
      coalesced.push_back(std::move(pending_.front()));
      pending_.pop_front();
      for (auto it = pending_.begin();
           it != pending_.end() && coalesced.size() < static_cast<std::size_t>(max_batch_);) {
        if (it->defended == defended) {
          coalesced.push_back(std::move(*it));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }

    const std::int64_t count = static_cast<std::int64_t>(coalesced.size());
    try {
      const Tensor& first = coalesced.front().image;
      Tensor batch(Shape::nchw(count, first.dim(0), first.dim(1), first.dim(2)));
      const std::int64_t stride = first.numel();
      for (std::int64_t i = 0; i < count; ++i) {
        const Tensor& image = coalesced[static_cast<std::size_t>(i)].image;
        std::copy(image.data(), image.data() + stride, batch.data() + i * stride);
      }
      std::vector<Prediction> predictions = run_batch(route(defended), batch);
      {
        // Count the batch before fulfilling the promises: a caller observing
        // its future resolve must see this batch reflected in stats().
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.requests += count;
        stats_.batches += 1;
        stats_.largest_batch = std::max(stats_.largest_batch, count);
      }
      for (std::int64_t i = 0; i < count; ++i) {
        coalesced[static_cast<std::size_t>(i)].promise.set_value(
            std::move(predictions[static_cast<std::size_t>(i)]));
      }
    } catch (...) {
      for (auto& request : coalesced) {
        request.promise.set_exception(std::current_exception());
      }
    }
  }
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

double accuracy(const std::vector<Prediction>& predictions, const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("serve::accuracy: size mismatch");
  }
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i].label == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

}  // namespace blurnet::serve
