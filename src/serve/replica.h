// A serving replica: one independently-owned clone of a model variant plus
// its own request counters, executing the variant's two-stage
// preprocess→forward pipeline.
//
// Replicas exist so the engine can run several forward passes of the same
// variant at once: each replica's worker computes its coalesced batch on its
// own thread (its convolutions keep per-thread im2col/pad scratch warm) while
// parallel_for pins the intra-batch work to the shared process pool — the
// pool serves whichever replica grabs it first and concurrent regions fall
// back inline, so replicas never deadlock and never share mutable state.
//
// A replica's weights are deep clones (LisaCnn::clone_with_config) of the
// engine's base model, so every replica of a variant is bitwise identical and
// routing a request to any of them yields bitwise-identical predictions. The
// optional defense::InputTransform (the preprocess stage) is shared, const
// and per-image, so it preserves that contract for any batch split.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/defense/input_transform.h"
#include "src/nn/lisa_cnn.h"
#include "src/util/arena.h"
#include "src/util/lockdep.h"

namespace blurnet::serve {

struct Prediction {
  int label = -1;
  float confidence = 0.0f;     // softmax probability of `label`
  std::vector<float> logits;   // raw scores, size num_classes
};

/// Counters for one replica. Totals in EngineStats are the exact sums of
/// these, so per-replica load imbalance is always visible.
struct ReplicaStats {
  std::int64_t requests = 0;       // images served from the submit() queue
  std::int64_t batches = 0;        // coalesced queue batches run by this replica
  std::int64_t images = 0;         // images through this replica in total
  std::int64_t largest_batch = 0;  // biggest coalesced queue batch so far
};

class Replica {
 public:
  /// Clone `source`'s weights into `config`'s architecture (Table I weight
  /// transfer; config == source.config() gives an exact clone). `transform`
  /// is the variant's optional preprocess stage, applied to every forward
  /// slice before the model; nullptr serves the bare forward path.
  Replica(const nn::LisaCnn& source, const nn::LisaCnnConfig& config,
          defense::TransformPtr transform = nullptr);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  const nn::LisaCnn& model() const { return model_; }
  /// The preprocess stage (shared across the variant's replicas); nullptr
  /// when the variant serves the bare forward path.
  const defense::TransformPtr& transform() const { return transform_; }

  /// Re-copy matching-name weights from `source` (after retraining). Not
  /// safe concurrently with in-flight runs on this replica.
  void refresh_from(const nn::LisaCnn& source);

  /// Run an NCHW batch, slicing into forward passes of at most `max_batch`
  /// images. Per-image results are independent of the slicing. `queued` marks
  /// the call as a coalesced submit() batch for the stats counters.
  std::vector<Prediction> run(const tensor::Tensor& batch, int max_batch,
                              bool queued = false);

  ReplicaStats stats() const;

  /// Forward runs currently executing on this replica — synchronous
  /// classify() calls and coalesced queue batches alike; the router picks
  /// the least-loaded replica so independent callers spread out.
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  void begin_call() { in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void end_call() { in_flight_.fetch_sub(1, std::memory_order_relaxed); }

  /// The calling thread's request arena. run() opens a frame in it per call;
  /// the engine's workers open an outer frame around batch assembly. One
  /// arena per serving thread, so after warm-up the steady-state forward
  /// path performs zero heap allocations (results are copied out to plain
  /// heap containers before each frame closes).
  static util::Arena& serving_arena();

 private:
  /// One pipeline pass over a slice: preprocess (optional) then forward.
  std::vector<Prediction> forward(const tensor::Tensor& batch);

  nn::LisaCnn model_;
  defense::TransformPtr transform_;
  std::atomic<int> in_flight_{0};
  /// Leaf of the lock hierarchy (may be taken under the engine's shard lock).
  mutable util::DebugMutex stats_mutex_ BLURNET_LOCK_CLASS("serve::Replica::stats");
  ReplicaStats stats_;
};

}  // namespace blurnet::serve
