#include "src/serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/net/client.h"
#include "src/util/lockdep.h"
#include "src/util/rng.h"

namespace blurnet::serve {

using Clock = std::chrono::steady_clock;

const char* to_string(ArrivalProcess arrival) {
  switch (arrival) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kOnOff: return "onoff";
    case ArrivalProcess::kUniform: return "uniform";
  }
  return "?";
}

void LoadConfig::validate() const {
  if (!(offered_rps > 0.0)) {
    throw std::invalid_argument("LoadConfig: offered_rps must be > 0 (got " +
                                std::to_string(offered_rps) + ")");
  }
  if (requests < 1) {
    throw std::invalid_argument("LoadConfig: requests must be >= 1 (got " +
                                std::to_string(requests) + ")");
  }
  if (reservoir < 1) {
    throw std::invalid_argument("LoadConfig: reservoir must be >= 1 (got " +
                                std::to_string(reservoir) + ")");
  }
  if (max_batch < 0) {
    throw std::invalid_argument("LoadConfig: max_batch must be >= 0 (0 = engine default, got " +
                                std::to_string(max_batch) + ")");
  }
  if (arrival == ArrivalProcess::kOnOff) {
    if (!(on_fraction > 0.0) || on_fraction > 1.0) {
      throw std::invalid_argument("LoadConfig: on_fraction must be in (0, 1] (got " +
                                  std::to_string(on_fraction) + ")");
    }
    if (!(burst_cycle_s > 0.0)) {
      throw std::invalid_argument("LoadConfig: burst_cycle_s must be > 0 (got " +
                                  std::to_string(burst_cycle_s) + ")");
    }
  }
  for (const auto& entry : mix) {
    if (entry.variant.empty()) {
      throw std::invalid_argument("LoadConfig: mix entries must name a variant");
    }
    if (!(entry.weight > 0.0)) {
      throw std::invalid_argument("LoadConfig: mix weight for variant \"" + entry.variant +
                                  "\" must be > 0 (got " + std::to_string(entry.weight) + ")");
    }
  }
  for (std::size_t i = 0; i < mix.size(); ++i) {
    for (std::size_t j = i + 1; j < mix.size(); ++j) {
      if (mix[i].variant == mix[j].variant) {
        throw std::invalid_argument("LoadConfig: variant \"" + mix[i].variant +
                                    "\" appears twice in the mix; merge the weights");
      }
    }
  }
}

void SocketTransport::validate() const {
  if (host.empty()) {
    throw std::invalid_argument("SocketTransport: host must not be empty");
  }
  if (connections < 1) {
    throw std::invalid_argument("SocketTransport: connections must be >= 1 (got " +
                                std::to_string(connections) + ")");
  }
}

LoadGenerator::LoadGenerator(InferenceEngine& engine, LoadConfig config)
    : engine_(engine), config_(std::move(config)) {
  config_.validate();
  mix_ = config_.mix;
  if (mix_.empty()) mix_.push_back({kBaseVariant, 1.0});
  build_schedule();
}

void LoadGenerator::build_schedule() {
  // One generator, fixed draw order (inter-arrival, then variant, per
  // request): the schedule is a pure function of the config.
  util::Rng rng(config_.seed);
  const auto n = static_cast<std::size_t>(config_.requests);
  offsets_.reserve(n);
  variants_.reserve(n);

  double total_weight = 0.0;
  for (const auto& entry : mix_) total_weight += entry.weight;

  // kOnOff generates Poisson arrivals in *active* time at the boosted on-rate
  // and maps active time onto wall time by skipping every cycle's off window,
  // so the long-run mean stays offered_rps while bursts run hotter.
  const double on_len = config_.on_fraction * config_.burst_cycle_s;
  const double rate = config_.arrival == ArrivalProcess::kOnOff
                          ? config_.offered_rps / config_.on_fraction
                          : config_.offered_rps;
  double active = 0.0;  // kPoisson/kOnOff clock; kUniform paces directly
  for (std::size_t i = 0; i < n; ++i) {
    double offset;
    switch (config_.arrival) {
      case ArrivalProcess::kUniform:
        offset = static_cast<double>(i) / config_.offered_rps;
        break;
      case ArrivalProcess::kPoisson:
        active += -std::log(1.0 - rng.uniform()) / rate;
        offset = active;
        break;
      case ArrivalProcess::kOnOff: {
        active += -std::log(1.0 - rng.uniform()) / rate;
        const double cycles = std::floor(active / on_len);
        offset = cycles * config_.burst_cycle_s + (active - cycles * on_len);
        break;
      }
    }
    offsets_.push_back(offset);

    double pick = rng.uniform() * total_weight;
    std::size_t chosen = mix_.size() - 1;
    for (std::size_t m = 0; m < mix_.size(); ++m) {
      pick -= mix_[m].weight;
      if (pick < 0.0) {
        chosen = m;
        break;
      }
    }
    variants_.push_back(chosen);
  }
}

namespace {

/// Completion-side state for one mix variant. The sender pushes futures in
/// submission order; the harvester thread resolves them in that order and
/// records completion − scheduled-arrival into a fixed ring.
struct Harvest {
  util::DebugMutex mutex BLURNET_LOCK_CLASS("serve::LoadGenerator::harvest");
  util::DebugConditionVariable cv;
  std::deque<std::pair<std::size_t, std::future<Prediction>>> inbox;
  bool done = false;

  std::vector<double> window;  // latency ring, microseconds
  std::int64_t count = 0;
  std::int64_t served = 0;
  std::int64_t failed = 0;
  Clock::time_point last_completion{};
};

}  // namespace

LoadReport LoadGenerator::run(const tensor::Tensor& image) {
  // Fail before any traffic if the mix names an unknown variant.
  for (const auto& entry : mix_) {
    if (!engine_.has_variant(entry.variant)) {
      throw std::invalid_argument("LoadGenerator: mix variant \"" + entry.variant +
                                  "\" is not registered with the engine");
    }
  }

  const auto reservoir = static_cast<std::size_t>(config_.reservoir);
  std::vector<Harvest> harvests(mix_.size());
  std::vector<std::int64_t> rejected(mix_.size(), 0);

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> harvesters;
  harvesters.reserve(mix_.size());
  for (std::size_t m = 0; m < mix_.size(); ++m) {
    harvesters.emplace_back([this, &harvests, t0, reservoir, m] {
      Harvest& h = harvests[m];
      for (;;) {
        std::pair<std::size_t, std::future<Prediction>> item;
        {
          std::unique_lock<util::DebugMutex> lock(h.mutex);
          h.cv.wait(lock, [&] { return h.done || !h.inbox.empty(); });
          if (h.inbox.empty()) return;  // done and drained
          item = std::move(h.inbox.front());
          h.inbox.pop_front();
        }
        bool ok = true;
        try {
          item.second.get();
        } catch (...) {
          ok = false;
        }
        const Clock::time_point now = Clock::now();
        const double scheduled_s = offsets_[item.first];
        const double latency_us =
            std::chrono::duration<double, std::micro>(now - t0).count() -
            scheduled_s * 1e6;
        if (ok) {
          if (h.window.size() < reservoir) {
            h.window.push_back(latency_us);
          } else {
            h.window[static_cast<std::size_t>(h.count) % reservoir] = latency_us;
          }
          ++h.count;
          ++h.served;
        } else {
          ++h.failed;
        }
        h.last_completion = now;
      }
    });
  }

  // Open-loop sender: fire each request at its scheduled absolute time,
  // regardless of how far behind the engine is. A shed (OverloadError) is
  // counted and never retried.
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    const std::size_t m = variants_[i];
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(offsets_[i])));
    Options options;
    options.variant = mix_[m].variant;
    options.max_batch = config_.max_batch;
    try {
      std::future<Prediction> future = engine_.submit(image.clone(), std::move(options));
      Harvest& h = harvests[m];
      {
        std::lock_guard<util::DebugMutex> lock(h.mutex);
        h.inbox.emplace_back(i, std::move(future));
      }
      h.cv.notify_one();
    } catch (const OverloadError&) {
      ++rejected[m];
    }
  }
  for (auto& h : harvests) {
    {
      std::lock_guard<util::DebugMutex> lock(h.mutex);
      h.done = true;
    }
    h.cv.notify_one();
  }
  for (auto& t : harvesters) t.join();

  LoadReport report;
  report.offered_rps = config_.offered_rps;
  report.offered = static_cast<std::int64_t>(offsets_.size());
  Clock::time_point end = Clock::now();
  std::vector<double> merged;
  for (std::size_t m = 0; m < mix_.size(); ++m) {
    Harvest& h = harvests[m];
    VariantLoadStats vs;
    vs.variant = mix_[m].variant;
    for (const std::size_t idx : variants_) {
      if (idx == m) ++vs.offered;
    }
    vs.served = h.served;
    vs.rejected = rejected[m];
    vs.failed = h.failed;
    vs.latency.count = h.count;
    vs.latency.window = static_cast<std::int64_t>(h.window.size());
    if (!h.window.empty()) {
      double sum = 0.0, mx = h.window.front();
      for (const double v : h.window) {
        sum += v;
        mx = std::max(mx, v);
      }
      vs.latency.mean_us = sum / static_cast<double>(h.window.size());
      vs.latency.max_us = mx;
      vs.latency.p50_us = latency_quantile(h.window, 0.50);
      vs.latency.p99_us = latency_quantile(h.window, 0.99);
      vs.latency.p999_us = latency_quantile(h.window, 0.999);
    }
    merged.insert(merged.end(), h.window.begin(), h.window.end());
    report.served += vs.served;
    report.rejected += vs.rejected;
    report.failed += vs.failed;
    if (h.count > 0) end = std::max(end, h.last_completion);
    report.variants.push_back(std::move(vs));
  }
  report.duration_s = std::chrono::duration<double>(end - t0).count();
  report.latency.count = report.served;
  report.latency.window = static_cast<std::int64_t>(merged.size());
  if (!merged.empty()) {
    double sum = 0.0, mx = merged.front();
    for (const double v : merged) {
      sum += v;
      mx = std::max(mx, v);
    }
    report.latency.mean_us = sum / static_cast<double>(merged.size());
    report.latency.max_us = mx;
    report.latency.p50_us = latency_quantile(merged, 0.50);
    report.latency.p99_us = latency_quantile(merged, 0.99);
    report.latency.p999_us = latency_quantile(std::move(merged), 0.999);
  }
  if (report.duration_s > 0.0) {
    report.achieved_rps = static_cast<double>(report.served) / report.duration_s;
  }
  return report;
}

namespace {

/// Outcome of one socket request, recorded by its connection's harvester.
struct SocketRecord {
  std::size_t index = 0;  // schedule index (variant + scheduled time)
  enum { kServed, kRejected, kFailed } outcome = kServed;
  double latency_us = 0.0;
  Clock::time_point completion{};
};

/// One client connection plus its share of the pipelined schedule.
struct SocketLane {
  std::unique_ptr<net::Client> client;
  util::DebugMutex mutex BLURNET_LOCK_CLASS("serve::LoadGenerator::lane");
  util::DebugConditionVariable cv;
  std::deque<std::pair<std::size_t, std::uint32_t>> inbox;  // (schedule idx, request id)
  bool done = false;
  std::vector<SocketRecord> records;  // harvester-local until the join
};

void fill_snapshot(LatencySnapshot& snapshot, const std::vector<double>& window,
                   std::int64_t count) {
  snapshot.count = count;
  snapshot.window = static_cast<std::int64_t>(window.size());
  if (window.empty()) return;
  double sum = 0.0, mx = window.front();
  for (const double v : window) {
    sum += v;
    mx = std::max(mx, v);
  }
  snapshot.mean_us = sum / static_cast<double>(window.size());
  snapshot.max_us = mx;
  snapshot.p50_us = latency_quantile(window, 0.50);
  snapshot.p99_us = latency_quantile(window, 0.99);
  snapshot.p999_us = latency_quantile(window, 0.999);
}

}  // namespace

LoadReport LoadGenerator::run_socket(const SocketTransport& transport,
                                     const tensor::Tensor& image) {
  transport.validate();
  const auto lanes_n = static_cast<std::size_t>(transport.connections);
  std::vector<SocketLane> lanes(lanes_n);
  for (auto& lane : lanes) {
    lane.client = std::make_unique<net::Client>(transport.host, transport.port);
    lane.client->ping();  // fail before any traffic if nothing answers
  }

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> harvesters;
  harvesters.reserve(lanes_n);
  for (auto& lane : lanes) {
    harvesters.emplace_back([this, &lane, t0] {
      for (;;) {
        std::pair<std::size_t, std::uint32_t> item;
        {
          std::unique_lock<util::DebugMutex> lock(lane.mutex);
          lane.cv.wait(lock, [&] { return lane.done || !lane.inbox.empty(); });
          if (lane.inbox.empty()) return;  // done and drained
          item = std::move(lane.inbox.front());
          lane.inbox.pop_front();
        }
        SocketRecord record;
        record.index = item.first;
        try {
          lane.client->receive_classify(item.second);
          record.outcome = SocketRecord::kServed;
        } catch (const OverloadError&) {
          record.outcome = SocketRecord::kRejected;  // server-side shed
        } catch (const std::exception&) {
          record.outcome = SocketRecord::kFailed;
        }
        record.completion = Clock::now();
        record.latency_us =
            std::chrono::duration<double, std::micro>(record.completion - t0).count() -
            offsets_[item.first] * 1e6;
        lane.records.push_back(record);
      }
    });
  }

  // Open-loop sender, same absolute-time firing as run(); the wire write is
  // the only thing that differs. A send failure (server gone) is recorded as
  // a failed request and the lane stops being used.
  std::vector<std::int64_t> send_failed(mix_.size(), 0);
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    const std::size_t m = variants_[i];
    SocketLane& lane = lanes[i % lanes_n];
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(offsets_[i])));
    std::uint32_t request_id = 0;
    try {
      request_id = lane.client->send_classify(image, mix_[m].variant, config_.max_batch);
    } catch (const std::exception&) {
      ++send_failed[m];
      continue;
    }
    {
      std::lock_guard<util::DebugMutex> lock(lane.mutex);
      lane.inbox.emplace_back(i, request_id);
    }
    lane.cv.notify_one();
  }
  for (auto& lane : lanes) {
    {
      std::lock_guard<util::DebugMutex> lock(lane.mutex);
      lane.done = true;
    }
    lane.cv.notify_one();
  }
  for (auto& t : harvesters) t.join();

  // Merge the per-lane records into per-variant reservoirs (ring of the
  // latest `reservoir` samples, like run()).
  const auto reservoir = static_cast<std::size_t>(config_.reservoir);
  LoadReport report;
  report.offered_rps = config_.offered_rps;
  report.offered = static_cast<std::int64_t>(offsets_.size());
  Clock::time_point end = Clock::now();

  std::vector<VariantLoadStats> per_variant(mix_.size());
  std::vector<std::vector<double>> windows(mix_.size());
  std::vector<std::int64_t> counts(mix_.size(), 0);
  std::vector<double> merged;
  for (std::size_t m = 0; m < mix_.size(); ++m) {
    per_variant[m].variant = mix_[m].variant;
    per_variant[m].failed = send_failed[m];
    for (const std::size_t idx : variants_) {
      if (idx == m) ++per_variant[m].offered;
    }
  }
  for (const auto& lane : lanes) {
    for (const auto& record : lane.records) {
      const std::size_t m = variants_[record.index];
      switch (record.outcome) {
        case SocketRecord::kServed: {
          auto& window = windows[m];
          if (window.size() < reservoir) {
            window.push_back(record.latency_us);
          } else {
            window[static_cast<std::size_t>(counts[m]) % reservoir] = record.latency_us;
          }
          ++counts[m];
          ++per_variant[m].served;
          end = std::max(end, record.completion);
          break;
        }
        case SocketRecord::kRejected:
          ++per_variant[m].rejected;
          break;
        case SocketRecord::kFailed:
          ++per_variant[m].failed;
          break;
      }
    }
  }
  for (std::size_t m = 0; m < mix_.size(); ++m) {
    fill_snapshot(per_variant[m].latency, windows[m], counts[m]);
    merged.insert(merged.end(), windows[m].begin(), windows[m].end());
    report.served += per_variant[m].served;
    report.rejected += per_variant[m].rejected;
    report.failed += per_variant[m].failed;
    report.variants.push_back(std::move(per_variant[m]));
  }
  report.duration_s = std::chrono::duration<double>(end - t0).count();
  fill_snapshot(report.latency, merged, report.served);
  if (report.duration_s > 0.0) {
    report.achieved_rps = static_cast<double>(report.served) / report.duration_s;
  }
  return report;
}

}  // namespace blurnet::serve
