// Deterministic open-loop load generator for the serving engine.
//
// Closed-loop drivers (send, wait, send) hide overload: when the server slows
// down, the driver slows down with it, and the measured latency stays flat no
// matter how far behind the server falls ("coordinated omission"). This
// generator is open-loop: the *entire* arrival schedule — when each request
// fires and which variant it targets — is precomputed from a seeded
// util::Rng before the first send, and the sender fires each request at its
// scheduled absolute time whether or not earlier ones have finished. Latency
// is measured against the scheduled arrival, so queueing delay a real client
// would suffer is charged to the server.
//
// Determinism contract: two LoadGenerators built from the same LoadConfig
// produce bitwise-identical schedules — same arrival offsets, same
// per-request variant routing (exposed via arrival_offsets() /
// variant_schedule() so tests can assert it). Wall-clock measurements of a
// run naturally vary; the traffic itself never does.
//
// Three arrival processes:
//   * kPoisson — exponential inter-arrivals at offered_rps; the classic
//     memoryless open-loop workload.
//   * kOnOff   — bursty traffic: Poisson arrivals at offered_rps/on_fraction
//     during the "on" window of each burst_cycle_s cycle, silence otherwise.
//     Mean rate stays offered_rps; bursts stress queue capacity and tails.
//   * kUniform — fixed pacing at exactly 1/offered_rps; the no-variance
//     baseline that isolates service-time jitter from arrival jitter.
//
// Rejected submits (OverloadError under the engine's reject policy, or a
// block-policy timeout) are counted per variant, never retried — an open-loop
// shed is load the server refused, which is the datum. Completions are
// harvested by one thread per mix variant, in submission order; a request
// completing behind a slower earlier one is timed at the earlier one's
// resolution (a small conservative bias, bounded by one coalesced batch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/engine.h"
#include "src/serve/qos.h"
#include "src/tensor/tensor.h"

namespace blurnet::serve {

enum class ArrivalProcess { kPoisson, kOnOff, kUniform };

const char* to_string(ArrivalProcess arrival);

/// One entry of the traffic mix: a variant name and its relative weight.
struct VariantMix {
  std::string variant;
  double weight = 1.0;
};

struct LoadConfig {
  /// Mean offered arrival rate, requests/second, over the whole run.
  double offered_rps = 100.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// kOnOff: fraction of each cycle spent sending, in (0, 1].
  double on_fraction = 0.5;
  /// kOnOff: on+off cycle length in seconds.
  double burst_cycle_s = 0.2;
  /// Total requests in the schedule.
  int requests = 1000;
  /// Seed for the schedule (arrivals and variant routing).
  std::uint64_t seed = 42;
  /// Traffic mix; empty means 100% "base". Weights are relative.
  std::vector<VariantMix> mix;
  /// Options::max_batch passed through to submit(); 0 = engine default.
  int max_batch = 0;
  /// Per-variant latency reservoir capacity (ring of the latest samples).
  int reservoir = 65536;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (engine validation style).
  void validate() const;
};

/// Per-variant outcome counters and latency over the reservoir window.
struct VariantLoadStats {
  std::string variant;
  std::int64_t offered = 0;   // requests the schedule routed here
  std::int64_t served = 0;    // futures that resolved with a Prediction
  std::int64_t rejected = 0;  // sheds: OverloadError at submit()
  std::int64_t failed = 0;    // futures that resolved with an exception
  LatencySnapshot latency;    // completion − scheduled arrival, microseconds
};

/// Where run_socket() sends its traffic: a running blurnetd server. The
/// schedule (arrivals, variant routing) is identical to run()'s — the
/// transport only changes *how* each request travels. Request i is pipelined
/// on client connection i % connections, so the per-connection interleaving is
/// itself deterministic.
struct SocketTransport {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent client connections (>= 1). Each connection pipelines its share
  /// of the schedule and harvests responses on its own thread.
  int connections = 2;

  /// Reject malformed configs with a descriptive std::invalid_argument.
  void validate() const;
};

struct LoadReport {
  double offered_rps = 0.0;   // from the config
  double achieved_rps = 0.0;  // served / duration
  double duration_s = 0.0;    // first scheduled send → last completion
  std::int64_t offered = 0;
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
  LatencySnapshot latency;    // all variants merged
  std::vector<VariantLoadStats> variants;  // mix order
};

class LoadGenerator {
 public:
  /// Builds the full deterministic schedule up front; the engine is not
  /// touched until run(). Throws std::invalid_argument on a bad config.
  LoadGenerator(InferenceEngine& engine, LoadConfig config);

  /// Scheduled send time of each request, seconds after the run starts.
  /// Strictly derived from (seed, arrival process, offered_rps); sorted
  /// non-decreasing.
  const std::vector<double>& arrival_offsets() const { return offsets_; }
  /// Mix index each request targets (into mix()); same length as
  /// arrival_offsets().
  const std::vector<std::size_t>& variant_schedule() const { return variants_; }
  /// The normalized mix actually used ("base" when the config's was empty).
  const std::vector<VariantMix>& mix() const { return mix_; }
  const LoadConfig& config() const { return config_; }

  /// Replay the schedule against the engine, submitting clones of `image`
  /// (CHW). Blocks until every non-rejected request resolves. May be called
  /// repeatedly; each run replays the identical schedule.
  LoadReport run(const tensor::Tensor& image);

  /// Replay the same schedule against a blurnetd server over TCP instead of
  /// the in-process engine: requests travel as kClassify frames, pipelined
  /// across `transport.connections` client connections, and latency is still
  /// measured open-loop (completion − scheduled arrival), now including the
  /// wire. Server-side sheds come back as kOverload error frames and are
  /// counted per variant as `rejected`; kShuttingDown / kInvalidRequest /
  /// transport failures count as `failed`. The engine this generator was built
  /// with is not touched — the server may wrap it or live in another process.
  LoadReport run_socket(const SocketTransport& transport, const tensor::Tensor& image);

 private:
  void build_schedule();

  InferenceEngine& engine_;
  LoadConfig config_;
  std::vector<VariantMix> mix_;
  std::vector<double> offsets_;
  std::vector<std::size_t> variants_;
};

}  // namespace blurnet::serve
