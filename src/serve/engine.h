// Batched inference engine: the serving layer above the classifier.
//
// An InferenceEngine owns a LisaCnn plus the BlurNet FixedFilterSpec used as
// its deployed defense, and exposes two ways in:
//
//   * classify() / classify_defended(): synchronous batched classification of
//     a CHW image or an NCHW batch. One forward pass per call, however many
//     images the batch holds. Thread-safe; concurrent callers are fine.
//   * submit(): queue a single image and get a future. A background batcher
//     coalesces queued requests into one forward pass of up to max_batch
//     images, which is how independent callers amortize the per-forward cost
//     without coordinating with each other.
//
// The defended path wraps the same trained weights in a model whose forward
// applies the fixed blur filter (Table I protocol: transfer the weights into
// the filtered architecture). Per-image results are bitwise identical whether
// an image is classified alone, inside a batch, or through the queue — the
// convolution kernels accumulate per image — so batching is purely a
// throughput decision.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/nn/lisa_cnn.h"

namespace blurnet::serve {

struct EngineConfig {
  nn::LisaCnnConfig model;
  /// Defense applied by classify_defended(); kNone/kernel 0 disables it, in
  /// which case the defended path is the plain model.
  nn::FixedFilterSpec defense;
  /// Largest coalesced forward pass the batcher will build.
  int max_batch = 64;
};

struct Prediction {
  int label = -1;
  float confidence = 0.0f;     // softmax probability of `label`
  std::vector<float> logits;   // raw scores, size num_classes
};

struct EngineStats {
  std::int64_t requests = 0;       // images queued through submit()
  std::int64_t batches = 0;        // coalesced forward passes run for the queue
  std::int64_t images = 0;         // images through classify*/submit in total
  std::int64_t largest_batch = 0;  // biggest coalesced batch so far
};

class InferenceEngine {
 public:
  /// Fresh (untrained) model from the config. Useful for tests and benches.
  explicit InferenceEngine(EngineConfig config);
  /// Adopt an already-trained classifier. The engine shares the model's
  /// parameters (Variable handles), so it serves whatever was trained; the
  /// defended wrapper clones the weights at construction — call
  /// refresh_defended_weights() if the base model is retrained afterwards.
  InferenceEngine(nn::LisaCnn model, nn::FixedFilterSpec defense, int max_batch = 64);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  nn::LisaCnn& model() { return model_; }
  const nn::LisaCnn& model() const { return model_; }
  /// The model actually used by the defended path (== model() when the
  /// defense is disabled).
  const nn::LisaCnn& defended_model() const;
  bool defense_enabled() const { return defended_model_.has_value(); }

  /// Re-copy the base model's weights into the defended wrapper.
  void refresh_defended_weights();

  /// Classify a CHW image or an NCHW batch in one forward pass. Returns one
  /// Prediction per image, in input order.
  std::vector<Prediction> classify(const tensor::Tensor& images) const;
  /// Same, through the blur-defended model.
  std::vector<Prediction> classify_defended(const tensor::Tensor& images) const;

  /// Queue one CHW (or [1,C,H,W]) image for coalesced classification. The
  /// background batcher thread is spawned lazily on the first call, so
  /// classify()-only engines never pay for it.
  std::future<Prediction> submit(tensor::Tensor image, bool defended = false);

  EngineStats stats() const;

 private:
  struct Request {
    tensor::Tensor image;  // CHW
    bool defended = false;
    std::promise<Prediction> promise;
  };

  const nn::LisaCnn& route(bool defended) const;
  std::vector<Prediction> run_batch(const nn::LisaCnn& model,
                                    const tensor::Tensor& batch) const;
  void batcher_loop();

  nn::LisaCnn model_;
  std::optional<nn::LisaCnn> defended_model_;
  int max_batch_ = 64;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> pending_;
  bool stop_ = false;
  std::thread batcher_;

  mutable std::mutex stats_mutex_;
  mutable EngineStats stats_;
};

/// Fraction of predictions whose label matches the ground truth. Throws when
/// the sizes disagree.
double accuracy(const std::vector<Prediction>& predictions, const std::vector<int>& labels);

}  // namespace blurnet::serve
