// Replica-sharded inference engine: the serving layer above the classifier.
//
// An InferenceEngine owns a *base* model plus N serving replicas for every
// **named variant** of it. A variant is an architecture the base weights are
// transferred into (the Table I protocol of the paper): by default the engine
// registers
//
//   * "base"     — the adopted weights served as-is, and
//   * "defended" — the same weights wrapped in the deployed FixedFilterSpec
//                  (identical to "base" when the defense is disabled),
//
// and arbitrary further variants — any LisaCnnConfig, e.g. other filter
// placements/kernels or a learnable-depthwise architecture, mirroring the
// ModelZoo variant names — can be added with register_variant(). A disabled
// defense makes "defended" an alias of the base shard (same replicas, no
// extra weight clones), so stats() then reports a single "base" entry.
//
// Every variant executes as an explicit two-stage pipeline:
//
//   preprocess — an optional defense::InputTransform (bit-depth squeeze,
//                median filter, DCT quantization, ...) applied to each
//                forward slice before the model, and
//   forward    — the replica's model forward.
//
// register_transform_variant() / register_transform_model() attach the
// preprocess stage; plain variants skip it. Both stages run inside the
// replica, so transformed variants inherit batching, replica sharding, the
// coalescing submit() workers and the bitwise determinism contract below
// unchanged.
//
// Two ways in, both routed by Options::variant:
//
//   * classify(images, options): synchronous batched classification of a CHW
//     image or an NCHW batch. One forward pass per max_batch slice. The
//     router picks the least-loaded replica of the variant, so independent
//     callers spread across replicas instead of queueing on one model.
//   * submit(image, options): queue a single image and get a future. Each
//     replica runs a worker that coalesces compatible queued requests (same
//     variant) into one forward pass of up to max_batch images; with R
//     replicas, R coalesced batches of a variant can be in flight at once.
//     Queues are bounded (EngineConfig::queue_capacity): a full queue either
//     rejects the submit with OverloadError or blocks the caller for
//     backpressure, per EngineConfig::overload_policy, so overload degrades
//     into explicit sheds or bounded waiting instead of unbounded memory
//     growth and runaway tail latency. Per-variant queue depth high-water
//     marks and enqueue→resolve latency quantiles are readable mid-run
//     through stats().
//
// Every replica is a deep clone of the base weights (LisaCnn::clone), so
// per-image results are bitwise identical for any replica count, batch
// split, or routing order — sharding and batching are purely throughput
// decisions. refresh_variant() re-transfers the base weights after
// retraining; like retraining itself, it must not race in-flight requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/lisa_cnn.h"
#include "src/serve/qos.h"
#include "src/serve/replica.h"
#include "src/util/lockdep.h"

namespace blurnet::serve {

/// Default variant names registered by every engine.
inline constexpr const char* kBaseVariant = "base";
inline constexpr const char* kDefendedVariant = "defended";

/// What submit() does when a variant's bounded queue is full.
enum class OverloadPolicy {
  kReject,  // fail fast: throw OverloadError, caller sheds the request
  kBlock,   // backpressure: block the caller until a slot frees (or timeout)
};

const char* to_string(OverloadPolicy policy);

/// Thrown by submit() when the target variant's queue is full under kReject,
/// or a kBlock wait exceeds block_timeout_ms. Distinct from logic errors so
/// load generators can count sheds without swallowing real failures.
struct OverloadError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct EngineConfig {
  nn::LisaCnnConfig model;
  /// Architecture of the "defended" variant; kNone/kernel 0 disables it, in
  /// which case "defended" serves the plain architecture.
  nn::FixedFilterSpec defense;
  /// Largest forward pass a classify() slice or coalesced queue batch holds.
  int max_batch = 64;
  /// Serving replicas per variant (>= 1).
  int replicas = 1;
  /// Most requests a variant's submit() queue holds before the overload
  /// policy kicks in (>= 1). Bounds worst-case queueing delay: a full queue
  /// is capacity/throughput seconds of latency already committed.
  int queue_capacity = 1024;
  /// What submit() does when the queue is full.
  OverloadPolicy overload_policy = OverloadPolicy::kReject;
  /// kBlock only: longest a submit() waits for a slot before giving up with
  /// OverloadError. 0 = wait indefinitely. Must be 0 under kReject (a
  /// reject-policy engine never waits, so a timeout there is a config bug).
  int block_timeout_ms = 0;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (non-positive max_batch / replicas / queue_capacity, negative timeout,
  /// timeout combined with kReject). Called by the engine constructor.
  void validate() const;
};

/// Per-request routing knobs.
struct Options {
  std::string variant = kBaseVariant;
  /// Override of EngineConfig::max_batch for this request; 0 = engine default.
  /// For submit() it caps the coalesced batch this request leads.
  int max_batch = 0;
};

struct VariantStats {
  std::string variant;
  std::vector<ReplicaStats> replicas;  // one entry per replica, index order
  std::int64_t queue_depth = 0;  // requests pending right now
  std::int64_t queue_peak = 0;   // high-water mark of the pending queue
  std::int64_t rejected = 0;     // submits shed by the overload policy
  std::int64_t blocked = 0;      // submits that had to wait for a slot
  /// Enqueue→resolve latency over the ring window; readable mid-run.
  LatencySnapshot latency;
};

struct EngineStats {
  std::int64_t requests = 0;       // images served through the submit() queue
  std::int64_t batches = 0;        // coalesced queue batches run
  std::int64_t images = 0;         // images through classify*/submit in total
  std::int64_t largest_batch = 0;  // biggest coalesced queue batch so far
  std::int64_t rejected = 0;       // submits shed by the overload policy
  std::int64_t blocked = 0;        // submits that had to wait for a slot
  std::int64_t queue_peak = 0;     // deepest any variant's queue has been
  std::vector<VariantStats> variants;  // exact per-replica breakdown
};

class InferenceEngine {
 public:
  /// Fresh (untrained) model from the config. Useful for tests and benches.
  explicit InferenceEngine(EngineConfig config);
  /// Adopt an already-trained classifier. The engine shares the base model's
  /// parameters (Variable handles) with the caller, but every serving replica
  /// deep-clones the weights at registration — call refresh_variant() if the
  /// base model is retrained afterwards.
  InferenceEngine(nn::LisaCnn model, nn::FixedFilterSpec defense, int max_batch = 64,
                  int replicas = 1, int queue_capacity = 1024,
                  OverloadPolicy overload_policy = OverloadPolicy::kReject,
                  int block_timeout_ms = 0);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// The adopted base weights (shared handles; retrain through this, then
  /// refresh_variant()).
  nn::LisaCnn& model() { return model_; }
  const nn::LisaCnn& model() const { return model_; }

  /// Register a named variant: `config`'s architecture serving the base
  /// weights (matching-name transfer). `replicas` 0 means the engine default.
  /// Throws std::invalid_argument if the name is empty or already taken.
  void register_variant(const std::string& name, const nn::LisaCnnConfig& config,
                        int replicas = 0);
  /// Register an *independently trained* model as a variant: every replica
  /// deep-clones `source`'s weights and architecture. Unlike
  /// register_variant, nothing is transferred from the engine's base model,
  /// so one engine can serve a whole zoo of differently-trained victims.
  /// refresh_variant() on such a shard throws — re-register after retraining.
  void register_model(const std::string& name, const nn::LisaCnn& source, int replicas = 0);
  /// Register an input-transform variant: the base weights served behind the
  /// preprocess stage `spec` describes (the two-stage pipeline above).
  /// Weights transfer from the base model, so refresh_variant() works; the
  /// transform itself is immutable. A kNone spec serves the bare forward
  /// path — bitwise identical to register_variant of the base config.
  void register_transform_variant(const std::string& name, const defense::TransformSpec& spec,
                                  int replicas = 0);
  /// Same, but wrapping an *independently trained* model (register_model
  /// semantics: deep clones of `source`, refresh_variant() throws).
  void register_transform_model(const std::string& name, const nn::LisaCnn& source,
                                const defense::TransformSpec& spec, int replicas = 0);
  /// Register the base weights behind an arbitrary already-built preprocess
  /// stage — any InputTransform subclass, not just the stock spec zoo. This
  /// is the injection point for custom pipeline stages (the load tests gate a
  /// variant's preprocess to fill its queue deterministically). nullptr
  /// serves the bare forward path. The stage must honor the InputTransform
  /// contract: deterministic, per-image, thread-safe, shape-preserving.
  void register_pipeline_variant(const std::string& name, defense::TransformPtr transform,
                                 int replicas = 0);
  /// Register `name` as an alias of an existing variant: same shard, same
  /// replicas, no extra weight clones (e.g. serving a zoo model's name next
  /// to "base" when they are the same weights, or a "canary" alias).
  void alias_variant(const std::string& name, const std::string& existing);
  /// Re-copy the (possibly retrained) base weights into every replica of the
  /// named variant. Must not race in-flight requests for that variant.
  /// Throws std::logic_error — naming the variant and its kind — for
  /// register_model() / register_transform_model() shards, whose weights do
  /// not come from the base model. Transform-wrapped base variants refresh
  /// their weights; the transform stage is immutable and kept.
  void refresh_variant(const std::string& name);

  std::vector<std::string> variant_names() const;
  bool has_variant(const std::string& name) const;
  /// The model served by the named variant (replica 0; all replicas are
  /// bitwise-identical clones).
  const nn::LisaCnn& variant(const std::string& name) const;
  /// The model served by replica `index` of the named variant. All replicas
  /// are bitwise-identical, but each owns its parameters (and therefore its
  /// autograd state), so gradient-side attack drivers can fan out across
  /// replicas without sharing mutable state. Throws on a bad index.
  const nn::LisaCnn& replica_model(const std::string& name, int index) const;
  int replica_count(const std::string& name) const;
  /// The named variant's preprocess stage; nullptr for plain variants (and
  /// kNone transform registrations). Shared by all the variant's replicas,
  /// immutable and thread-safe — attack drivers wrap it into BPDA handles.
  defense::TransformPtr variant_transform(const std::string& name) const;
  /// The kind of shard the name resolves to: "weight-transfer",
  /// "foreign-model", or the transform-wrapped forms of either. Mirrors the
  /// wording of refresh_variant()'s error messages.
  std::string variant_kind(const std::string& name) const;
  /// True when the "defended" variant actually wraps a filter.
  bool defense_enabled() const { return defense_enabled_; }

  /// The admission-control knobs the engine was built with. Front-ends that
  /// call submit() from threads they must be able to join (e.g. the socket
  /// server's per-connection submitters) validate against these: kBlock with
  /// block_timeout_ms == 0 waits for queue space indefinitely.
  OverloadPolicy overload_policy() const { return overload_policy_; }
  int block_timeout_ms() const { return block_timeout_ms_; }

  /// Classify a CHW image or an NCHW batch through the named variant.
  /// Returns one Prediction per image, in input order. Thread-safe.
  std::vector<Prediction> classify(const tensor::Tensor& images,
                                   const Options& options = {}) const;

  /// Raw logits for a CHW image or NCHW batch through the named variant, as
  /// an [N, num_classes] tensor in input order. Same routing/batching as
  /// classify(); for callers (evaluation harnesses, calibration) that want
  /// the score matrix instead of per-image predictions. Thread-safe.
  tensor::Tensor classify_logits(const tensor::Tensor& images,
                                 const Options& options = {}) const;

  /// Queue one CHW (or [1,C,H,W]) image for coalesced classification through
  /// the named variant. Replica workers are spawned lazily on the first call,
  /// so classify()-only engines never pay for them. The variant's queue is
  /// bounded by EngineConfig::queue_capacity: when full, kReject throws
  /// OverloadError immediately and kBlock waits for a slot (throwing
  /// OverloadError only if block_timeout_ms elapses first).
  std::future<Prediction> submit(tensor::Tensor image, Options options = {});

  EngineStats stats() const;
  /// Per-replica counter snapshot for one variant (aliases resolve to the
  /// shard they point at). Lets benches report exactly how many images a
  /// victim variant served during an evaluation protocol.
  VariantStats variant_stats(const std::string& name) const;
  /// Total images served through the named variant so far.
  std::int64_t images_served(const std::string& name) const;

 private:
  struct Request {
    tensor::Tensor image;  // CHW
    int max_batch = 0;  // cap for the coalesced batch this request leads
    std::chrono::steady_clock::time_point enqueued;  // for the latency ring
    std::promise<Prediction> promise;
  };

  /// Samples each variant's latency ring holds. Large enough that a p999 over
  /// the window is meaningful, small enough that snapshot()'s sort is cheap.
  static constexpr std::size_t kLatencyWindow = 4096;

  struct VariantShard {
    std::string name;
    nn::LisaCnnConfig config;
    bool from_base = true;  // weights transferred from model_ (refreshable)
    defense::TransformPtr transform;  // preprocess stage; nullptr = bare forward
    std::vector<std::unique_ptr<Replica>> replicas;
    std::size_t next_replica = 0;  // round-robin tiebreak; guarded by shards_mutex_
    // Queued path, all guarded by the engine-wide queue_mutex_ (except
    // `latency`, which has its own lock). Each shard has its own queue and
    // condition variables so a submit() wakes only this variant's workers and
    // the head lookup is O(1).
    std::deque<Request> pending;
    util::DebugConditionVariable cv;        // workers wait here for requests
    util::DebugConditionVariable space_cv;  // kBlock submitters wait here for slots
    // kBlock admission is FIFO: each backpressured submit() takes a ticket and
    // only the queue's front may claim a freed slot, so slots go to waiters in
    // arrival order instead of whichever thread the scheduler wakes first. A
    // waiter that gives up (timeout, stop) erases its own ticket wherever it
    // sits and re-notifies, so the line never stalls behind a ghost.
    std::deque<std::uint64_t> block_waiters;
    std::uint64_t next_block_ticket = 0;
    bool workers_spawned = false;
    std::int64_t queue_peak = 0;  // high-water mark of pending.size()
    std::int64_t rejected = 0;    // submits shed by the overload policy
    std::int64_t blocked = 0;     // submits that had to wait for a slot
    LatencyRing latency{kLatencyWindow};  // enqueue→resolve, microseconds
  };

  /// _locked variants assume shards_mutex_ is held by the caller.
  std::vector<std::string> variant_names_locked() const;
  VariantShard* find_shard_locked(const std::string& name) const;
  VariantShard& require_shard_locked(const std::string& name) const;
  VariantShard& require_shard(const std::string& name) const;
  Replica& route_locked(VariantShard& shard) const;
  void register_variant_locked(const std::string& name, const nn::LisaCnnConfig& config,
                               int replicas);
  void register_shard_locked(const std::string& name, const nn::LisaCnn& source,
                             const nn::LisaCnnConfig& config, int replicas, bool from_base,
                             defense::TransformPtr transform = nullptr);
  static std::string shard_kind(const VariantShard& shard);
  /// Full per-variant snapshot (replica counters + queue counters + latency).
  VariantStats shard_stats(const VariantShard& shard) const;
  void worker_loop(VariantShard* shard, Replica* replica);

  nn::LisaCnn model_;
  int max_batch_ = 64;
  int default_replicas_ = 1;
  int queue_capacity_ = 1024;
  OverloadPolicy overload_policy_ = OverloadPolicy::kReject;
  int block_timeout_ms_ = 0;
  bool defense_enabled_ = false;

  // Lock hierarchy (outermost first): shards_mutex_ -> queue_mutex_ ->
  // LatencyRing/Replica stats leaves. stats() is the deepest path: it walks
  // shards under shards_mutex_ and snapshots each shard's queue counters and
  // latency ring. No path acquires shards_mutex_ while holding queue_mutex_
  // (submit() routes under shards_mutex_, releases, then queues). Enforced in
  // Debug builds by util::DebugMutex (src/util/lockdep.h).

  /// Guards shards_/aliases_ layout and the router's round-robin cursors.
  /// Shards are held by pointer so registration never invalidates replicas a
  /// worker or an in-flight classify() is using.
  mutable util::DebugMutex shards_mutex_ BLURNET_LOCK_CLASS("serve::Engine::shards");
  std::vector<std::unique_ptr<VariantShard>> shards_;
  /// Extra names resolving to an existing shard (e.g. "defended" -> base
  /// when the defense is disabled).
  std::vector<std::pair<std::string, VariantShard*>> aliases_;

  mutable util::DebugMutex queue_mutex_ BLURNET_LOCK_CLASS("serve::Engine::queue");
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Fraction of predictions whose label matches the ground truth. Throws when
/// the sizes disagree.
double accuracy(const std::vector<Prediction>& predictions, const std::vector<int>& labels);

}  // namespace blurnet::serve
