// Serving-QoS instrumentation shared by the engine and the load generator.
//
// LatencyRing is a fixed-size sliding-window reservoir of latency samples:
// record() is O(1) under a private mutex (safe from any number of replica
// workers), snapshot() copies the window out and derives order statistics.
// Like eval::VictimProgress, snapshots are readable mid-run — the engine
// exposes one per variant shard through EngineStats, so an operator (or the
// load harness) can watch p99 move while traffic is in flight.
//
// Quantiles use the nearest-rank method on the sorted window: p(q) is the
// ceil(q * n)-th smallest sample. The window is fixed at construction, so a
// long benchmark sees the *latest* capacity samples — steady-state tails —
// rather than averaging warm-up spikes into the run.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/lockdep.h"

namespace blurnet::serve {

struct LatencySnapshot {
  std::int64_t count = 0;   // samples ever recorded
  std::int64_t window = 0;  // samples in this snapshot (<= ring capacity)
  double mean_us = 0.0;     // over the window
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;      // over the window
};

class LatencyRing {
 public:
  explicit LatencyRing(std::size_t capacity);

  LatencyRing(const LatencyRing&) = delete;
  LatencyRing& operator=(const LatencyRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Record one latency sample (microseconds). Thread-safe.
  void record(double micros);

  /// Order statistics over the current window. Thread-safe, readable mid-run.
  LatencySnapshot snapshot() const;

 private:
  const std::size_t capacity_;
  /// Leaf of the lock hierarchy: record()/snapshot() call out to nothing.
  mutable util::DebugMutex mutex_ BLURNET_LOCK_CLASS("serve::LatencyRing");
  std::vector<double> samples_;  // ring buffer, size grows to capacity_ once
  std::size_t next_ = 0;
  std::int64_t count_ = 0;
};

/// Nearest-rank quantile of an unsorted sample vector (q in [0, 1]); sorts a
/// copy. Exposed for the load generator's report assembly and for tests.
double latency_quantile(std::vector<double> samples, double q);

}  // namespace blurnet::serve
