#include "src/serve/replica.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "src/tensor/ops.h"
#include "src/util/arena.h"

namespace blurnet::serve {

using tensor::Shape;
using tensor::Tensor;

/// Per-serving-thread request arena. One per thread (classify() callers and
/// submit() workers alike); run() opens a frame per call, so the arena's
/// high-water mark settles at one request's transient footprint and the
/// steady-state forward path stops touching the heap. Frames nest — a
/// worker's batch-assembly frame stays live while run()'s inner frame comes
/// and goes.
util::Arena& Replica::serving_arena() {
  static thread_local util::Arena arena;
  return arena;
}

Replica::Replica(const nn::LisaCnn& source, const nn::LisaCnnConfig& config,
                 defense::TransformPtr transform)
    : model_(source.clone_with_config(config)), transform_(std::move(transform)) {}

void Replica::refresh_from(const nn::LisaCnn& source) {
  model_.copy_weights_from(source);
}

std::vector<Prediction> Replica::forward(const Tensor& batch) {
  // Stage 1 (optional): the variant's input transform. Per-image and
  // deterministic, so slicing the batch cannot change any prediction.
  const Tensor input = transform_ ? transform_->apply(batch) : batch;
  // Stage 2: the model forward.
  const Tensor logits = model_.logits(input);
  const Tensor probabilities = tensor::softmax_rows(logits);
  const std::vector<int> labels = tensor::argmax_rows(logits);
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  std::vector<Prediction> predictions(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Prediction& p = predictions[static_cast<std::size_t>(i)];
    p.label = labels[static_cast<std::size_t>(i)];
    p.confidence = probabilities.at2(i, p.label);
    p.logits.assign(logits.data() + i * k, logits.data() + (i + 1) * k);
  }
  return predictions;
}

std::vector<Prediction> Replica::run(const Tensor& batch, int max_batch, bool queued) {
  if (max_batch < 1) throw std::invalid_argument("Replica::run: max_batch must be >= 1");
  // Every tensor this call creates — transform output, activations, logits,
  // slices — is transient, so it bump-allocates from the thread's request
  // arena and is reclaimed wholesale when the frame closes. Results are
  // copied into plain Prediction vectors below, never arena memory, so
  // nothing escapes the frame. The arena only changes where bytes live, not
  // any arithmetic: outputs stay bitwise identical to the heap path.
  util::ArenaScope frame(serving_arena());
  // Bound each forward pass (and therefore the im2col scratch footprint) by
  // max_batch: callers may hand classify() a whole dataset. Per-image results
  // are independent, so slicing cannot change them.
  const std::int64_t n = batch.dim(0);
  std::vector<Prediction> predictions;
  predictions.reserve(static_cast<std::size_t>(n));
  if (n <= max_batch) {
    predictions = forward(batch);
  } else {
    const std::int64_t image_size = batch.numel() / n;
    for (std::int64_t begin = 0; begin < n; begin += max_batch) {
      const std::int64_t count = std::min<std::int64_t>(max_batch, n - begin);
      Tensor slice(Shape::nchw(count, batch.dim(1), batch.dim(2), batch.dim(3)));
      std::copy(batch.data() + begin * image_size,
                batch.data() + (begin + count) * image_size, slice.data());
      auto part = forward(slice);
      predictions.insert(predictions.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
    }
  }
  {
    std::lock_guard<util::DebugMutex> lock(stats_mutex_);
    stats_.images += n;
    if (queued) {
      stats_.requests += n;
      stats_.batches += 1;
      stats_.largest_batch = std::max(stats_.largest_batch, n);
    }
  }
  return predictions;
}

ReplicaStats Replica::stats() const {
  std::lock_guard<util::DebugMutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace blurnet::serve
