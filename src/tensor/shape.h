// Dense row-major shape descriptor. Ranks 0..4 are used throughout the
// library (scalars, vectors, matrices, and NCHW image batches).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace blurnet::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  int rank() const { return static_cast<int>(dims_.size()); }
  std::int64_t numel() const;
  std::int64_t operator[](int axis) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides (innermost stride 1).
  std::vector<std::int64_t> strides() const;

  std::string to_string() const;

  /// Convenience constructors for the common layouts.
  static Shape scalar() { return Shape{}; }
  static Shape vec(std::int64_t n) { return Shape{n}; }
  static Shape mat(std::int64_t rows, std::int64_t cols) { return Shape{rows, cols}; }
  static Shape nchw(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return Shape{n, c, h, w};
  }

 private:
  void validate() const;
  std::vector<std::int64_t> dims_;
};

}  // namespace blurnet::tensor
