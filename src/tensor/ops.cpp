#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/linalg/gemm.h"
#include "src/util/parallel.h"

namespace blurnet::tensor {

namespace {

void require_same_numel(const Tensor& a, const Tensor& b, const char* op) {
  if (a.numel() != b.numel()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " + b.shape().to_string());
  }
}

Tensor binary(const Tensor& a, const Tensor& b, const char* op,
              float (*fn)(float, float)) {
  require_same_numel(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

Tensor unary(const Tensor& a, float (*fn)(float)) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a.clone();
  float* p = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) p[i] += s;
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a.clone();
  out.scale_(s);
  return out;
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }
Tensor abs(const Tensor& a) { return unary(a, [](float x) { return std::fabs(x); }); }
Tensor sign(const Tensor& a) {
  return unary(a, [](float x) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}
Tensor square(const Tensor& a) { return unary(a, [](float x) { return x * x; }); }
Tensor sqrt(const Tensor& a) { return unary(a, [](float x) { return std::sqrt(x); }); }
Tensor exp(const Tensor& a) { return unary(a, [](float x) { return std::exp(x); }); }
Tensor log(const Tensor& a) { return unary(a, [](float x) { return std::log(x); }); }
Tensor relu(const Tensor& a) { return unary(a, [](float x) { return x > 0 ? x : 0.0f; }); }
Tensor relu_mask(const Tensor& a) {
  return unary(a, [](float x) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = std::clamp(pa[i], lo, hi);
  return out;
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  return binary(a, b, "maximum", [](float x, float y) { return x > y ? x : y; });
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return binary(a, b, "minimum", [](float x, float y) { return x < y ? x : y; });
}

Tensor apply(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = fn(pa[i]);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " + a.shape().to_string() +
                                " x " + b.shape().to_string());
  }
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out(Shape::mat(m, n));
  linalg::sgemm_nn(m, n, k, a.data(), b.data(), out.data(), /*accumulate=*/false);
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes");
  }
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out(Shape::mat(m, n));
  linalg::sgemm_tn(m, n, k, a.data(), b.data(), out.data(), /*accumulate=*/false);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes");
  }
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out(Shape::mat(m, n));
  linalg::sgemm_nt(m, n, k, a.data(), b.data(), out.data(), /*accumulate=*/false);
  return out;
}

Tensor transpose2d(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose2d: rank must be 2");
  const std::int64_t r = a.dim(0), c = a.dim(1);
  Tensor out(Shape::mat(c, r));
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j) out.at2(j, i) = a.at2(i, j);
  return out;
}

Tensor pad2d(const Tensor& x, int pad_h, int pad_w) {
  if (x.rank() != 4) throw std::invalid_argument("pad2d: expected NCHW");
  if (pad_h == 0 && pad_w == 0) return x;
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out(Shape::nchw(n, c, h + 2 * pad_h, w + 2 * pad_w));
  pad2d_into(x, pad_h, pad_w, out.data());
  return out;
}

void pad2d_into(const Tensor& x, int pad_h, int pad_w, float* out) {
  if (x.rank() != 4) throw std::invalid_argument("pad2d_into: expected NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t hp = h + 2 * pad_h, wp = w + 2 * pad_w;
  for (std::int64_t p = 0; p < n * c; ++p) {
    float* plane = out + p * hp * wp;
    std::fill(plane, plane + pad_h * wp, 0.0f);
    for (std::int64_t ih = 0; ih < h; ++ih) {
      const float* src = x.data() + (p * h + ih) * w;
      float* dst = plane + (ih + pad_h) * wp;
      std::fill(dst, dst + pad_w, 0.0f);
      std::copy(src, src + w, dst + pad_w);
      std::fill(dst + pad_w + w, dst + wp, 0.0f);
    }
    std::fill(plane + (pad_h + h) * wp, plane + hp * wp, 0.0f);
  }
}

Tensor unpad2d(const Tensor& x, int pad_h, int pad_w) {
  if (x.rank() != 4) throw std::invalid_argument("unpad2d: expected NCHW");
  if (pad_h == 0 && pad_w == 0) return x;
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const std::int64_t h = x.dim(2) - 2 * pad_h, w = x.dim(3) - 2 * pad_w;
  if (h <= 0 || w <= 0) throw std::invalid_argument("unpad2d: padding exceeds size");
  Tensor out(Shape::nchw(n, c, h, w));
  for (std::int64_t in = 0; in < n; ++in)
    for (std::int64_t ic = 0; ic < c; ++ic)
      for (std::int64_t ih = 0; ih < h; ++ih) {
        const float* src = x.data() +
                           ((in * c + ic) * (h + 2 * pad_h) + ih + pad_h) * (w + 2 * pad_w) +
                           pad_w;
        float* dst = out.data() + ((in * c + ic) * h + ih) * w;
        std::copy(src, src + w, dst);
      }
  return out;
}

std::int64_t conv_out_size(std::int64_t in, int kernel, int stride) {
  return (in - kernel) / stride + 1;
}

Tensor im2col(const Tensor& x, int kh, int kw, int stride_h, int stride_w) {
  if (x.rank() != 4) throw std::invalid_argument("im2col: expected NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = conv_out_size(h, kh, stride_h);
  const std::int64_t ow = conv_out_size(w, kw, stride_w);
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("im2col: kernel larger than input");
  Tensor out(Shape{n, c * kh * kw, oh * ow});
  im2col_into(x.data(), n, c, h, w, kh, kw, stride_h, stride_w, out.data());
  return out;
}

void im2col_into(const float* x, std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w, int kh, int kw, int stride_h, int stride_w, float* out) {
  const std::int64_t oh = conv_out_size(h, kh, stride_h);
  const std::int64_t ow = conv_out_size(w, kw, stride_w);
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("im2col_into: kernel larger than input");
  const std::int64_t patch = c * kh * kw;
  util::parallel_for(n, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in = n0; in < n1; ++in) {
      float* base = out + in * patch * oh * ow;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        for (int fy = 0; fy < kh; ++fy) {
          for (int fx = 0; fx < kw; ++fx) {
            const std::int64_t row = (ic * kh + fy) * kw + fx;
            float* dst = base + row * oh * ow;
            const float* src_plane = x + (in * c + ic) * h * w;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              const std::int64_t iy = oy * stride_h + fy;
              const float* src = src_plane + iy * w + fx;
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                dst[oy * ow + ox] = src[ox * stride_w];
              }
            }
          }
        }
      }
    }
  }, /*min_chunk=*/1);
}

Tensor col2im(const Tensor& cols, std::int64_t n, std::int64_t c, std::int64_t h,
              std::int64_t w, int kh, int kw, int stride_h, int stride_w) {
  const std::int64_t oh = conv_out_size(h, kh, stride_h);
  const std::int64_t ow = conv_out_size(w, kw, stride_w);
  const std::int64_t patch = c * kh * kw;
  if (cols.rank() != 3 || cols.dim(0) != n || cols.dim(1) != patch ||
      cols.dim(2) != oh * ow) {
    throw std::invalid_argument("col2im: column shape mismatch");
  }
  Tensor out(Shape::nchw(n, c, h, w));
  util::parallel_for(n, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in = n0; in < n1; ++in) {
      const float* base = cols.data() + in * patch * oh * ow;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        float* dst_plane = out.data() + (in * c + ic) * h * w;
        for (int fy = 0; fy < kh; ++fy) {
          for (int fx = 0; fx < kw; ++fx) {
            const std::int64_t row = (ic * kh + fy) * kw + fx;
            const float* src = base + row * oh * ow;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              const std::int64_t iy = oy * stride_h + fy;
              float* dst = dst_plane + iy * w + fx;
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                dst[ox * stride_w] += src[oy * ow + ox];
              }
            }
          }
        }
      }
    }
  }, /*min_chunk=*/1);
  return out;
}

Tensor reduce_nhw(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("reduce_nhw: expected NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor out(Shape::vec(c));
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float* src = x.data() + (in * c + ic) * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) acc += src[i];
      out[ic] += static_cast<float>(acc);
    }
  }
  return out;
}

Tensor broadcast_bias_nchw(const Tensor& x, const Tensor& bias) {
  if (x.rank() != 4 || bias.rank() != 1 || bias.dim(0) != x.dim(1)) {
    throw std::invalid_argument("broadcast_bias_nchw: shape mismatch");
  }
  Tensor out = x.clone();
  const std::int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  for (std::int64_t in = 0; in < n; ++in)
    for (std::int64_t ic = 0; ic < c; ++ic) {
      float* dst = out.data() + (in * c + ic) * hw;
      const float b = bias[ic];
      for (std::int64_t i = 0; i < hw; ++i) dst[i] += b;
    }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: rank must be 2");
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* dst = out.data() + i * k;
    float mx = row[0];
    for (std::int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      dst[j] = std::exp(row[j] - mx);
      denom += dst[j];
    }
    for (std::int64_t j = 0; j < k; ++j) dst[j] = static_cast<float>(dst[j] / denom);
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("log_softmax_rows: rank must be 2");
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* dst = out.data() + i * k;
    float mx = row[0];
    for (std::int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) denom += std::exp(row[j] - mx);
    const float log_denom = static_cast<float>(std::log(denom)) + mx;
    for (std::int64_t j = 0; j < k; ++j) dst[j] = row[j] - log_denom;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("argmax_rows: rank must be 2");
  const std::int64_t n = logits.dim(0), k = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    int best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  require_same_numel(a, b, "dot");
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(pa[i]) * pb[i];
  return acc;
}

double l2_dissimilarity(const Tensor& adv, const Tensor& natural) {
  require_same_numel(adv, natural, "l2_dissimilarity");
  double diff = 0.0, base = 0.0;
  const float* pa = adv.data();
  const float* pn = natural.data();
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    const double d = static_cast<double>(pa[i]) - pn[i];
    diff += d * d;
    base += static_cast<double>(pn[i]) * pn[i];
  }
  return base > 0 ? std::sqrt(diff) / std::sqrt(base) : std::sqrt(diff);
}

}  // namespace blurnet::tensor
