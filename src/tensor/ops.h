// Non-differentiable tensor kernels. The autograd layer composes these into
// differentiable ops; attacks and the signal tools also use them directly.
#pragma once

#include <functional>

#include "src/tensor/tensor.h"

namespace blurnet::tensor {

// ---- elementwise (allocating) ----------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);
Tensor square(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor relu_mask(const Tensor& a);  // 1 where a > 0 else 0
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor apply(const Tensor& a, const std::function<float(float)>& fn);

// ---- linear algebra ---------------------------------------------------------
// All three variants route through the packed, blocked microkernel in
// src/linalg/gemm.h and share its numeric contract: float32 accumulation in
// ascending-k order (split at linalg::kKc), identical across the transpose
// variants — matmul(a, transpose2d(b)) == matmul_nt(a, b) bitwise — and
// bitwise deterministic for any worker count. NaN/Inf operands propagate per
// IEEE (no zero-skip shortcuts).
/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T * B where A is [k,m], B is [k,n] -> C [m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A * B^T where A is [m,k], B is [n,k] -> C [m,n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor transpose2d(const Tensor& a);

// ---- convolution plumbing ---------------------------------------------------
/// Zero-pad the spatial dims of an NCHW tensor.
Tensor pad2d(const Tensor& x, int pad_h, int pad_w);
/// Inverse of pad2d: accumulate interior region (used for gradients).
Tensor unpad2d(const Tensor& x, int pad_h, int pad_w);

/// im2col for an NCHW input (already padded). Output is
/// [N, C*kh*kw, out_h*out_w] flattened to a rank-3 shape.
Tensor im2col(const Tensor& x, int kh, int kw, int stride_h, int stride_w);

/// Scratch-buffer variants used by the inference hot path: same layouts as
/// pad2d / im2col but writing into caller-owned buffers (sized
/// n*c*(h+2*pad_h)*(w+2*pad_w) and n*(c*kh*kw)*(out_h*out_w) respectively),
/// so repeated forward passes reuse one allocation instead of mallocing per
/// call. pad2d_into writes the entire padded buffer — zero border plus copied
/// interior — in one pass, so reused scratch needs no pre-clearing.
/// im2col_into reads a raw padded NCHW buffer of the given dims.
void pad2d_into(const Tensor& x, int pad_h, int pad_w, float* out);
void im2col_into(const float* x, std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w, int kh, int kw, int stride_h, int stride_w, float* out);
/// Adjoint of im2col: scatter columns back into an NCHW buffer of shape
/// [n, c, h, w] (padded sizes).
Tensor col2im(const Tensor& cols, std::int64_t n, std::int64_t c, std::int64_t h,
              std::int64_t w, int kh, int kw, int stride_h, int stride_w);

/// Output spatial size for a convolution over a padded input.
std::int64_t conv_out_size(std::int64_t in, int kernel, int stride);

// ---- reductions / shape utilities -------------------------------------------
/// Sum over N,H,W of an NCHW tensor -> rank-1 [C]. Used for bias gradients.
Tensor reduce_nhw(const Tensor& x);
/// Broadcast a rank-1 [C] bias over an NCHW tensor (allocating).
Tensor broadcast_bias_nchw(const Tensor& x, const Tensor& bias);
/// Row-wise softmax of a [n, k] matrix.
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax of a [n, k] matrix (numerically stable).
Tensor log_softmax_rows(const Tensor& logits);
/// Row-wise argmax of a [n, k] matrix.
std::vector<int> argmax_rows(const Tensor& logits);

/// Dot product of two equal-numel tensors.
double dot(const Tensor& a, const Tensor& b);

/// Relative L2 distance ||a - b||_2 / ||b||_2 (the paper's dissimilarity).
double l2_dissimilarity(const Tensor& adv, const Tensor& natural);

}  // namespace blurnet::tensor
