// Dense float32 tensor with shared copy-on-nothing storage.
//
// Semantics mirror the mainstream DL frameworks: copying a Tensor is cheap
// and shares the underlying buffer; use clone() for a deep copy. reshape()
// returns a tensor sharing storage with a different shape. All data is
// contiguous row-major; NCHW layout for image batches.
//
// Storage is one intrusively ref-counted buffer obtained through
// util::scratch_alloc, so a tensor built inside a util::ArenaScope (the
// serving request path) costs a pointer bump instead of a heap allocation,
// and a tensor built anywhere else costs exactly one heap allocation as
// before. Arena-backed tensors must not outlive their scope — callers copy
// escaping values (see src/util/arena.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/tensor/shape.h"
#include "src/util/rng.h"

namespace blurnet::tensor {

class Tensor {
 public:
  /// Empty scalar-shaped tensor holding a single zero.
  Tensor();

  Tensor(const Tensor& other) noexcept;
  Tensor& operator=(const Tensor& other) noexcept;
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Takes ownership of an existing buffer; size must match shape.numel().
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value);
  static Tensor scalar(float value);
  static Tensor from_vector(std::vector<float> values);  // rank-1

  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo = 0.0f, float hi = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  int rank() const { return shape_.rank(); }
  std::int64_t dim(int axis) const { return shape_[axis]; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& operator[](std::int64_t flat_index) { return data_[flat_index]; }
  float operator[](std::int64_t flat_index) const { return data_[flat_index]; }

  /// 4-D accessor (NCHW). Bounds are checked in debug-style: throws on rank
  /// mismatch, asserts indices by flat computation.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// 2-D accessor.
  float& at2(std::int64_t r, std::int64_t c);
  float at2(std::int64_t r, std::int64_t c) const;

  /// Deep copy.
  Tensor clone() const;

  /// Same storage, new shape (numel must match).
  Tensor reshape(Shape new_shape) const;

  /// True when two tensors share the same buffer.
  bool shares_storage_with(const Tensor& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place helpers used on gradient buffers.
  void add_(const Tensor& other);            // this += other
  void add_scaled_(const Tensor& other, float alpha);  // this += alpha * other
  void scale_(float alpha);                  // this *= alpha

  /// Reductions (full tensor).
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;
  double l2_norm() const;

 private:
  /// Reference count living `kDataOffset` bytes before the float data, in the
  /// same scratch_alloc block, so one allocation covers count + payload and
  /// the data stays 64-byte aligned for future SIMD kernels.
  struct StorageHeader {
    std::atomic<std::int64_t> refs;
  };
  static constexpr std::size_t kDataOffset = 64;

  /// Allocate (zero-filled) storage for shape_.numel() floats.
  void allocate_storage();
  void retain() const noexcept;
  void release() noexcept;
  StorageHeader* header() const noexcept;

  std::int64_t flat4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;
  Shape shape_;
  float* data_ = nullptr;
};

}  // namespace blurnet::tensor
