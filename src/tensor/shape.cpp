#include "src/tensor/shape.h"

#include <sstream>
#include <stdexcept>

namespace blurnet::tensor {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { validate(); }

void Shape::validate() const {
  for (const auto d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
  }
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::operator[](int axis) const {
  if (axis < 0 || axis >= rank()) throw std::out_of_range("Shape: axis out of range");
  return dims_[static_cast<std::size_t>(axis)];
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * dims_[static_cast<std::size_t>(i + 1)];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace blurnet::tensor
