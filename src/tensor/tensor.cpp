#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blurnet::tensor {

Tensor::Tensor() : Tensor(Shape::scalar()) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape_.numel()), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)) {
  if (static_cast<std::int64_t>(values.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: value count does not match shape " +
                                shape_.to_string());
  }
  storage_ = std::make_shared<std::vector<float>>(std::move(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t(Shape::scalar());
  (*t.storage_)[0] = value;
  return t;
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const auto n = static_cast<std::int64_t>(values.size());
  return Tensor(Shape::vec(n), std::move(values));
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : *t.storage_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : *t.storage_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::int64_t Tensor::flat4(std::int64_t n, std::int64_t c, std::int64_t h,
                           std::int64_t w) const {
  if (rank() != 4) throw std::logic_error("Tensor::at4 on non-4D tensor " + shape_.to_string());
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  return (*storage_)[static_cast<std::size_t>(flat4(n, c, h, w))];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  return (*storage_)[static_cast<std::size_t>(flat4(n, c, h, w))];
}

float& Tensor::at2(std::int64_t r, std::int64_t c) {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non-2D tensor " + shape_.to_string());
  return (*storage_)[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at2(std::int64_t r, std::int64_t c) const {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non-2D tensor " + shape_.to_string());
  return (*storage_)[static_cast<std::size_t>(r * shape_[1] + c)];
}

Tensor Tensor::clone() const {
  Tensor out(shape_);
  *out.storage_ = *storage_;
  return out;
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " + shape_.to_string() +
                                " -> " + new_shape.to_string());
  }
  Tensor out = *this;  // shares storage
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::fill(float value) { std::fill(storage_->begin(), storage_->end(), value); }

void Tensor::add_(const Tensor& other) { add_scaled_(other, 1.0f); }

void Tensor::add_scaled_(const Tensor& other, float alpha) {
  if (other.numel() != numel()) {
    throw std::invalid_argument("Tensor::add_scaled_: numel mismatch");
  }
  float* dst = data();
  const float* src = other.data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale_(float alpha) {
  for (auto& v : *storage_) v *= alpha;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (const auto v : *storage_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return numel() > 0 ? sum() / static_cast<float>(numel()) : 0.0f;
}

float Tensor::min() const {
  return *std::min_element(storage_->begin(), storage_->end());
}

float Tensor::max() const {
  return *std::max_element(storage_->begin(), storage_->end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const auto v : *storage_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::l2_norm() const {
  double acc = 0.0;
  for (const auto v : *storage_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

}  // namespace blurnet::tensor
