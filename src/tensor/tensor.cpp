#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <new>
#include <stdexcept>

#include "src/util/arena.h"

namespace blurnet::tensor {

// ---- storage ----------------------------------------------------------------
// One scratch_alloc block per buffer: [StorageHeader | pad to 64 | floats].
// Copying a Tensor bumps the count; the last release frees heap blocks and
// no-ops arena blocks (the owning ArenaScope's rewind reclaims those).

Tensor::StorageHeader* Tensor::header() const noexcept {
  return reinterpret_cast<StorageHeader*>(reinterpret_cast<char*>(data_) - kDataOffset);
}

void Tensor::allocate_storage() {
  static_assert(kDataOffset >= sizeof(StorageHeader), "header must fit the offset");
  const std::size_t n = static_cast<std::size_t>(shape_.numel());
  char* block = static_cast<char*>(util::scratch_alloc(kDataOffset + n * sizeof(float), 64));
  new (block) StorageHeader{{1}};
  data_ = reinterpret_cast<float*>(block + kDataOffset);
  std::memset(data_, 0, n * sizeof(float));
}

void Tensor::retain() const noexcept {
  if (data_ != nullptr) header()->refs.fetch_add(1, std::memory_order_relaxed);
}

void Tensor::release() noexcept {
  if (data_ == nullptr) return;
  StorageHeader* h = header();
  if (h->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    h->~StorageHeader();
    util::scratch_free(h);
  }
  data_ = nullptr;
}

Tensor::Tensor(const Tensor& other) noexcept : shape_(other.shape_), data_(other.data_) {
  retain();
}

Tensor& Tensor::operator=(const Tensor& other) noexcept {
  if (this != &other) {
    other.retain();
    release();
    shape_ = other.shape_;
    data_ = other.data_;
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), data_(other.data_) {
  other.data_ = nullptr;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    release();
    shape_ = std::move(other.shape_);
    data_ = other.data_;
    other.data_ = nullptr;
  }
  return *this;
}

Tensor::~Tensor() { release(); }

// ---- construction -----------------------------------------------------------

Tensor::Tensor() : Tensor(Shape::scalar()) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) { allocate_storage(); }

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)) {
  if (static_cast<std::int64_t>(values.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: value count does not match shape " +
                                shape_.to_string());
  }
  allocate_storage();
  std::copy(values.begin(), values.end(), data_);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t(Shape::scalar());
  t.data_[0] = value;
  return t;
}

Tensor Tensor::from_vector(std::vector<float> values) {
  const auto n = static_cast<std::int64_t>(values.size());
  return Tensor(Shape::vec(n), std::move(values));
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    t.data_[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    t.data_[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

std::int64_t Tensor::flat4(std::int64_t n, std::int64_t c, std::int64_t h,
                           std::int64_t w) const {
  if (rank() != 4) throw std::logic_error("Tensor::at4 on non-4D tensor " + shape_.to_string());
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  return data_[flat4(n, c, h, w)];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  return data_[flat4(n, c, h, w)];
}

float& Tensor::at2(std::int64_t r, std::int64_t c) {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non-2D tensor " + shape_.to_string());
  return data_[r * shape_[1] + c];
}

float Tensor::at2(std::int64_t r, std::int64_t c) const {
  if (rank() != 2) throw std::logic_error("Tensor::at2 on non-2D tensor " + shape_.to_string());
  return data_[r * shape_[1] + c];
}

Tensor Tensor::clone() const {
  Tensor out(shape_);
  std::copy(data_, data_ + numel(), out.data_);
  return out;
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " + shape_.to_string() +
                                " -> " + new_shape.to_string());
  }
  Tensor out = *this;  // shares storage
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::fill(float value) { std::fill(data_, data_ + numel(), value); }

void Tensor::add_(const Tensor& other) { add_scaled_(other, 1.0f); }

void Tensor::add_scaled_(const Tensor& other, float alpha) {
  if (other.numel() != numel()) {
    throw std::invalid_argument("Tensor::add_scaled_: numel mismatch");
  }
  float* dst = data();
  const float* src = other.data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale_(float alpha) {
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) data_[i] *= alpha;
}

float Tensor::sum() const {
  double acc = 0.0;
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) acc += data_[i];
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  return numel() > 0 ? sum() / static_cast<float>(numel()) : 0.0f;
}

float Tensor::min() const {
  return *std::min_element(data_, data_ + numel());
}

float Tensor::max() const {
  return *std::max_element(data_, data_ + numel());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(data_[i]));
  return m;
}

double Tensor::l2_norm() const {
  double acc = 0.0;
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(data_[i]) * data_[i];
  }
  return std::sqrt(acc);
}

}  // namespace blurnet::tensor
